// TPC-C on the simulated cluster: a compact version of the Figure 4(a-c)
// experiments, comparing QR-DTM / QR-CN / QR-ACN on a NewOrder+Payment mix
// and printing the figure-style table.
//
//   $ ./examples/tpcc_cluster
#include <cstdio>

#include "src/harness/driver.hpp"
#include "src/harness/report.hpp"
#include "src/workloads/tpcc.hpp"

using namespace acn;

int main() {
  harness::ClusterConfig cluster_config;
  cluster_config.n_servers = 10;
  cluster_config.base_latency = std::chrono::microseconds{25};

  harness::DriverConfig driver;
  driver.n_clients = 6;
  driver.intervals = 4;
  driver.interval = std::chrono::milliseconds{250};

  workloads::TpccConfig tpcc;
  tpcc.w_neworder = 0.5;
  tpcc.w_payment = 0.5;

  try {
    const auto results = harness::run_all_protocols(
        cluster_config,
        [tpcc] { return std::make_unique<workloads::Tpcc>(tpcc); }, driver);
    harness::print_figure("TPC-C NewOrder/Payment mix on the simulated cluster",
                          results, driver);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tpcc_cluster failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
