// Adaptivity demo: Vacation with the hot table rotating mid-run.
//
// Runs QR-ACN only, prints the throughput of every interval together with
// the Block Sequence the controller publishes after each adaptation tick,
// so the re-composition is visible as it happens.
//
//   $ ./examples/adaptive_vacation
#include <cstdio>
#include <thread>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/vacation.hpp"

using namespace acn;

int main() {
  harness::ClusterConfig cluster_config;
  cluster_config.n_servers = 10;
  cluster_config.base_latency = std::chrono::microseconds{25};
  harness::Cluster cluster(cluster_config);

  workloads::Vacation vacation;
  vacation.seed(cluster.servers());
  const auto& reserve = vacation.profiles().front();

  AdaptiveController controller(*reserve.program, {},
                                default_contention_model());
  ContentionMonitor monitor(controller.touched_classes());
  auto admin = cluster.make_stub(100);

  std::atomic<int> phase{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      auto stub = cluster.make_stub(t);
      Executor executor(stub, {}, 10 + t);
      Rng rng(20 + t);
      ExecStats stats;
      while (!stop.load(std::memory_order_relaxed)) {
        executor.run(Protocol::kAcn, with_controller(controller),
                     reserve.make_params(rng, phase.load()), stats);
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const char* table_names[3] = {"cars", "flights", "rooms"};
  for (int interval = 0; interval < 6; ++interval) {
    if (interval == 2) phase.store(1);
    if (interval == 4) phase.store(2);
    const auto before = committed.load();
    std::this_thread::sleep_for(std::chrono::milliseconds{300});
    const auto during = committed.load() - before;

    cluster.roll_contention_windows();
    controller.adapt_from(monitor, admin);
    const auto plan = controller.plan();
    std::printf(
        "interval %d | hot table: %-7s | committed: %5llu | blocks: %zu\n",
        interval, table_names[phase.load() % 3],
        static_cast<unsigned long long>(during), plan->sequence.size());
    std::printf("%s", describe_sequence(plan->sequence, plan->model).c_str());
  }

  stop.store(true);
  for (auto& client : clients) client.join();
  vacation.check_invariants(cluster.servers());
  std::printf("invariants hold after %llu commits\n",
              static_cast<unsigned long long>(committed.load()));
  return 0;
}
