// The paper's running example, reproduced end to end (Figures 1-3).
//
// Prints:
//   * the flat Bank transfer as the programmer wrote it (Figure 1 order);
//   * the UnitBlocks the Static Module derives, with their dependencies;
//   * the manual QR-CN decomposition (Figure 2);
//   * the Block Sequence the Algorithm Module produces when branches are
//     hot (Figure 3: accounts merged into B1, branches merged into B2 and
//     shifted next to the commit phase);
//   * the flipped arrangement when accounts become hot instead.
//
//   $ ./examples/bank_decomposition
#include <cstdio>

#include "src/acn/algorithm_module.hpp"
#include "src/workloads/bank.hpp"

using namespace acn;

int main() {
  workloads::Bank bank;
  const auto& transfer = bank.profiles().front();
  const ir::TxProgram& program = *transfer.program;

  std::printf("=== Flat transaction (Figure 1 order) ===\n");
  for (std::size_t i = 0; i < program.ops.size(); ++i)
    std::printf("  op%zu: %s%s\n", i, program.ops[i].label.c_str(),
                program.ops[i].is_remote() ? "   [remote access]" : "");

  std::printf("\n=== Static Module: UnitBlocks and dependencies ===\n%s",
              transfer.static_model.describe().c_str());

  std::printf("\n=== Manual QR-CN decomposition (Figure 2) ===\n%s",
              describe_sequence(transfer.manual_sequence, transfer.static_model)
                  .c_str());

  AlgorithmModule algorithm(program, {}, default_contention_model());

  std::printf("\n=== QR-ACN, branches hot (Figure 3 arrangement) ===\n");
  const auto hot_branches = algorithm.recompute(
      {{workloads::Bank::kBranch, 200}, {workloads::Bank::kAccount, 4}});
  std::printf("%s", describe_sequence(hot_branches.sequence, hot_branches.model)
                        .c_str());
  std::printf("(block levels:");
  for (const auto& block : hot_branches.sequence)
    std::printf(" %.3f", algorithm.block_level(block, hot_branches.model,
                                               hot_branches.levels_used));
  std::printf(")\n");

  std::printf("\n=== QR-ACN, accounts hot (workload flipped) ===\n");
  const auto hot_accounts = algorithm.recompute(
      {{workloads::Bank::kBranch, 4}, {workloads::Bank::kAccount, 200}});
  std::printf("%s", describe_sequence(hot_accounts.sequence, hot_accounts.model)
                        .c_str());

  std::printf("\n=== QR-ACN, uniform contention (collapses toward flat) ===\n");
  const auto uniform = algorithm.recompute(
      {{workloads::Bank::kBranch, 50}, {workloads::Bank::kAccount, 50}});
  std::printf("%s", describe_sequence(uniform.sequence, uniform.model).c_str());
  return 0;
}
