// Pluggable contention characterization (Section V-C2: "QR-ACN offers the
// opportunity to provide custom characterization" of hot spots).
//
// Defines a custom ContentionModel that treats objects as hot only above a
// write-rate knee (a thresholded characterization an operator might prefer
// when background write noise should not trigger re-composition), plugs it
// into the Algorithm Module next to the two shipped models, and shows how
// the resulting Block Sequences differ on the same contention snapshot.
//
//   $ ./examples/custom_contention_model
#include <cstdio>

#include "src/acn/acn.hpp"
#include "src/workloads/bank.hpp"

using namespace acn;

namespace {

/// Hot/cold step model: levels below the threshold count as zero, levels
/// above saturate to one.  Merging then groups everything on the same side
/// of the knee, and ordering degenerates to "cold first, hot last" with no
/// in-between ranking.
class ThresholdModel final : public ContentionModel {
 public:
  explicit ThresholdModel(double knee) : knee_(knee) {}

  double object_level(std::uint64_t writes_in_window) const override {
    return static_cast<double>(writes_in_window) >= knee_ ? 1.0 : 0.0;
  }
  double combine(const std::vector<double>& levels) const override {
    double hottest = 0.0;
    for (double level : levels) hottest = std::max(hottest, level);
    return hottest;
  }

 private:
  double knee_;
};

void show(const char* name, std::shared_ptr<const ContentionModel> model,
          const ir::TxProgram& program, const RawLevels& snapshot) {
  AlgorithmModule algorithm(program, {}, std::move(model));
  const auto plan = algorithm.recompute(snapshot);
  std::printf("--- %s ---\n%s", name,
              describe_sequence(plan.sequence, plan.model).c_str());
}

}  // namespace

int main() {
  workloads::Bank bank;
  const auto& transfer = *bank.profiles().front().program;

  // A snapshot with a genuine hot spot (branches) and mild account noise.
  const RawLevels snapshot{{workloads::Bank::kBranch, 180},
                           {workloads::Bank::kAccount, 12}};
  std::printf("contention snapshot: branches=180 writes/window, "
              "accounts=12 writes/window\n\n");

  show("WriteRateModel (raw counts)", std::make_shared<WriteRateModel>(),
       transfer, snapshot);
  show("AbortProbabilityModel (default, di Sanzo-style)",
       std::make_shared<AbortProbabilityModel>(), transfer, snapshot);
  show("ThresholdModel(knee=50) (custom)",
       std::make_shared<ThresholdModel>(50.0), transfer, snapshot);
  show("ThresholdModel(knee=500) (custom, nothing qualifies as hot)",
       std::make_shared<ThresholdModel>(500.0), transfer, snapshot);

  // And the Graphviz view of the transaction's structure.
  const auto model =
      build_dependency_model(transfer, AttachPolicy::kLatestProducer);
  std::printf("\nGraphviz (pipe into `dot -Tsvg`):\n%s",
              model.to_dot("bank_transfer").c_str());
  return 0;
}
