// Quickstart: the whole public API in one file.
//
// 1. Build a simulated QR-DTM cluster (replicated servers + tree quorums).
// 2. Seed two shared counters.
// 3. Describe a transaction in the IR: read both counters, move one unit
//    between them.
// 4. Run it flat (QR-DTM), with a manual decomposition (QR-CN), and under
//    the adaptive controller (QR-ACN).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/workload.hpp"

using namespace acn;

int main() {
  // -- cluster -------------------------------------------------------------
  harness::ClusterConfig cluster_config;
  cluster_config.n_servers = 10;
  cluster_config.base_latency = std::chrono::microseconds{25};
  harness::Cluster cluster(cluster_config);

  const store::ObjectKey counter_a{/*cls=*/1, /*id=*/0};
  const store::ObjectKey counter_b{/*cls=*/2, /*id=*/0};
  workloads::seed_all(cluster.servers(), counter_a, store::Record{100});
  workloads::seed_all(cluster.servers(), counter_b, store::Record{100});

  // -- the transaction, in the IR -------------------------------------------
  ir::ProgramBuilder builder("move_one_unit", /*n_params=*/1);
  const ir::VarId amount = builder.param(0);
  const ir::VarId a = builder.remote_read(
      1, {}, [&](const ir::TxEnv&) { return counter_a; }, "read A");
  const ir::VarId b = builder.remote_read(
      2, {}, [&](const ir::TxEnv&) { return counter_b; }, "read B");
  builder.local({a, amount}, {a},
                [a, amount](ir::TxEnv& env) {
                  store::Record r = env.get(a);
                  r[0] -= env.geti(amount);
                  env.write_object(a, std::move(r));
                },
                "withdraw A");
  builder.local({b, amount}, {b},
                [b, amount](ir::TxEnv& env) {
                  store::Record r = env.get(b);
                  r[0] += env.geti(amount);
                  env.write_object(b, std::move(r));
                },
                "deposit B");
  const ir::TxProgram program = builder.build();

  // -- static analysis (what the paper's Soot stage produces) ---------------
  const auto model = build_dependency_model(program, AttachPolicy::kLatestProducer);
  std::printf("UnitBlocks from static analysis:\n%s\n", model.describe().c_str());

  auto stub = cluster.make_stub(/*client_ordinal=*/0);
  Executor executor(stub, {}, /*seed=*/1);
  ExecStats stats;

  // -- 1. flat (QR-DTM) ------------------------------------------------------
  executor.run(Protocol::kFlat, with_program(program), {store::Record{5}}, stats);

  // -- 2. manual closed nesting (QR-CN) --------------------------------------
  const BlockSequence manual = initial_sequence(model);  // one unit per block
  executor.run(Protocol::kManualCN, with_blocks(program, model, manual),
               {store::Record{7}}, stats);

  // -- 3. automated closed nesting (QR-ACN) ----------------------------------
  AdaptiveController controller(program, {}, default_contention_model());
  // Tell the controller B is hot: it reorders/merges accordingly.
  controller.adapt({{1, 0}, {2, 250}});
  std::printf("QR-ACN plan with B hot:\n%s\n",
              describe_sequence(controller.plan()->sequence,
                                controller.plan()->model)
                  .c_str());
  executor.run(Protocol::kAcn, with_controller(controller), {store::Record{11}},
               stats);

  // -- results ---------------------------------------------------------------
  const auto final_a = workloads::latest_value(cluster.servers(), counter_a);
  const auto final_b = workloads::latest_value(cluster.servers(), counter_b);
  std::printf("committed %llu transactions (partial aborts: %llu, full: %llu)\n",
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.partial_aborts),
              static_cast<unsigned long long>(stats.full_aborts));
  std::printf("A = %lld (version %llu), B = %lld (version %llu)\n",
              static_cast<long long>(final_a.value[0]),
              static_cast<unsigned long long>(final_a.version),
              static_cast<long long>(final_b.value[0]),
              static_cast<unsigned long long>(final_b.version));
  std::printf("network: %s\n", cluster.network().stats().summary().c_str());
  return final_a.value[0] + final_b.value[0] == 200 ? 0 : 1;
}
