// acn-inspect: developer tool over the public API.
//
//   inspect <workload> [program] [--dot] [--levels=cls:count,cls:count,...]
//
//   workload  bank | vacation | tpcc
//   program   substring of the program name (default: all programs)
//   --dot     print the Graphviz unit graph instead of the text dump
//   --levels  contention snapshot; when given, also prints the Algorithm
//             Module's recomputed Block Sequence for it
//
// Examples:
//   ./examples/inspect bank transfer --levels=1:200,2:4
//   ./examples/inspect tpcc neworder --dot
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/acn/acn.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"
#include "src/workloads/vacation.hpp"

using namespace acn;

namespace {

std::unique_ptr<workloads::Workload> make_workload(const std::string& name) {
  if (name == "bank") return std::make_unique<workloads::Bank>();
  if (name == "vacation") {
    workloads::VacationConfig config;
    config.cancel_fraction = 0.1;
    return std::make_unique<workloads::Vacation>(config);
  }
  if (name == "tpcc") {
    workloads::TpccConfig config;
    config.w_neworder = 0.4;
    config.w_payment = 0.2;
    config.w_delivery = 0.2;
    config.w_orderstatus = 0.1;
    config.w_stocklevel = 0.1;
    return std::make_unique<workloads::Tpcc>(config);
  }
  return nullptr;
}

RawLevels parse_levels(const std::string& spec) {
  RawLevels levels;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    if (colon == std::string::npos) break;
    std::size_t comma = spec.find(',', colon);
    if (comma == std::string::npos) comma = spec.size();
    const auto cls = static_cast<ir::ClassId>(
        std::strtoul(spec.substr(pos, colon - pos).c_str(), nullptr, 10));
    const auto count = std::strtoull(
        spec.substr(colon + 1, comma - colon - 1).c_str(), nullptr, 10);
    levels[cls] = count;
    pos = comma + 1;
  }
  return levels;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: inspect <bank|vacation|tpcc> [program-substring] "
                 "[--dot] [--levels=cls:count,...]\n");
    return 2;
  }
  const std::string workload_name = argv[1];
  std::string program_filter;
  bool dot = false;
  RawLevels levels;
  bool have_levels = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot")
      dot = true;
    else if (arg.rfind("--levels=", 0) == 0) {
      levels = parse_levels(arg.substr(std::strlen("--levels=")));
      have_levels = true;
    } else
      program_filter = arg;
  }

  auto workload = make_workload(workload_name);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload_name.c_str());
    return 2;
  }

  for (const auto& profile : workload->profiles()) {
    const auto& program = *profile.program;
    if (!program_filter.empty() &&
        program.name.find(program_filter) == std::string::npos)
      continue;

    std::printf("===== %s (weight %.2f, %zu ops, %zu remote) =====\n",
                program.name.c_str(), profile.weight, program.ops.size(),
                program.remote_op_count());
    if (dot) {
      std::string graph = program.name;
      for (auto& c : graph)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      std::printf("%s", profile.static_model.to_dot(graph).c_str());
    } else {
      std::printf("-- ops --\n");
      for (std::size_t i = 0; i < program.ops.size(); ++i)
        std::printf("  op%-3zu %s%s\n", i, program.ops[i].label.c_str(),
                    program.ops[i].is_remote() ? "   [remote]" : "");
      std::printf("-- static UnitBlocks --\n%s",
                  profile.static_model.describe().c_str());
      std::printf("-- manual QR-CN sequence --\n%s",
                  describe_sequence(profile.manual_sequence,
                                    profile.static_model)
                      .c_str());
    }

    if (have_levels) {
      AlgorithmModule algorithm(program, {}, default_contention_model());
      const auto plan = algorithm.recompute(levels);
      std::printf("-- QR-ACN plan for the given levels --\n%s",
                  describe_sequence(plan.sequence, plan.model).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
