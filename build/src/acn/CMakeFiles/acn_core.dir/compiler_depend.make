# Empty compiler generated dependencies file for acn_core.
# This may be replaced when dependencies are built.
