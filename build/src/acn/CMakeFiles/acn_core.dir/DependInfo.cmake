
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acn/algorithm_module.cpp" "src/acn/CMakeFiles/acn_core.dir/algorithm_module.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/algorithm_module.cpp.o.d"
  "/root/repo/src/acn/audit.cpp" "src/acn/CMakeFiles/acn_core.dir/audit.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/audit.cpp.o.d"
  "/root/repo/src/acn/blocks.cpp" "src/acn/CMakeFiles/acn_core.dir/blocks.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/blocks.cpp.o.d"
  "/root/repo/src/acn/contention_model.cpp" "src/acn/CMakeFiles/acn_core.dir/contention_model.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/contention_model.cpp.o.d"
  "/root/repo/src/acn/controller.cpp" "src/acn/CMakeFiles/acn_core.dir/controller.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/controller.cpp.o.d"
  "/root/repo/src/acn/executor.cpp" "src/acn/CMakeFiles/acn_core.dir/executor.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/executor.cpp.o.d"
  "/root/repo/src/acn/monitor.cpp" "src/acn/CMakeFiles/acn_core.dir/monitor.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/monitor.cpp.o.d"
  "/root/repo/src/acn/txir.cpp" "src/acn/CMakeFiles/acn_core.dir/txir.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/txir.cpp.o.d"
  "/root/repo/src/acn/unitgraph.cpp" "src/acn/CMakeFiles/acn_core.dir/unitgraph.cpp.o" "gcc" "src/acn/CMakeFiles/acn_core.dir/unitgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nesting/CMakeFiles/acn_nesting.dir/DependInfo.cmake"
  "/root/repo/build/src/dtm/CMakeFiles/acn_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/acn_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/acn_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
