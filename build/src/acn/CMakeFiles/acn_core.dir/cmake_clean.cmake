file(REMOVE_RECURSE
  "CMakeFiles/acn_core.dir/algorithm_module.cpp.o"
  "CMakeFiles/acn_core.dir/algorithm_module.cpp.o.d"
  "CMakeFiles/acn_core.dir/audit.cpp.o"
  "CMakeFiles/acn_core.dir/audit.cpp.o.d"
  "CMakeFiles/acn_core.dir/blocks.cpp.o"
  "CMakeFiles/acn_core.dir/blocks.cpp.o.d"
  "CMakeFiles/acn_core.dir/contention_model.cpp.o"
  "CMakeFiles/acn_core.dir/contention_model.cpp.o.d"
  "CMakeFiles/acn_core.dir/controller.cpp.o"
  "CMakeFiles/acn_core.dir/controller.cpp.o.d"
  "CMakeFiles/acn_core.dir/executor.cpp.o"
  "CMakeFiles/acn_core.dir/executor.cpp.o.d"
  "CMakeFiles/acn_core.dir/monitor.cpp.o"
  "CMakeFiles/acn_core.dir/monitor.cpp.o.d"
  "CMakeFiles/acn_core.dir/txir.cpp.o"
  "CMakeFiles/acn_core.dir/txir.cpp.o.d"
  "CMakeFiles/acn_core.dir/unitgraph.cpp.o"
  "CMakeFiles/acn_core.dir/unitgraph.cpp.o.d"
  "libacn_core.a"
  "libacn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
