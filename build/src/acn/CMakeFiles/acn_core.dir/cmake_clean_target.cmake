file(REMOVE_RECURSE
  "libacn_core.a"
)
