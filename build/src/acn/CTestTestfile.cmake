# CMake generated Testfile for 
# Source directory: /root/repo/src/acn
# Build directory: /root/repo/build/src/acn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
