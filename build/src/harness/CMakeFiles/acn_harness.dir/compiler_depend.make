# Empty compiler generated dependencies file for acn_harness.
# This may be replaced when dependencies are built.
