file(REMOVE_RECURSE
  "CMakeFiles/acn_harness.dir/cluster.cpp.o"
  "CMakeFiles/acn_harness.dir/cluster.cpp.o.d"
  "CMakeFiles/acn_harness.dir/driver.cpp.o"
  "CMakeFiles/acn_harness.dir/driver.cpp.o.d"
  "CMakeFiles/acn_harness.dir/report.cpp.o"
  "CMakeFiles/acn_harness.dir/report.cpp.o.d"
  "libacn_harness.a"
  "libacn_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
