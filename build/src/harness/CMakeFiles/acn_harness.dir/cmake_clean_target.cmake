file(REMOVE_RECURSE
  "libacn_harness.a"
)
