
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/contention_tracker.cpp" "src/store/CMakeFiles/acn_store.dir/contention_tracker.cpp.o" "gcc" "src/store/CMakeFiles/acn_store.dir/contention_tracker.cpp.o.d"
  "/root/repo/src/store/versioned_store.cpp" "src/store/CMakeFiles/acn_store.dir/versioned_store.cpp.o" "gcc" "src/store/CMakeFiles/acn_store.dir/versioned_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
