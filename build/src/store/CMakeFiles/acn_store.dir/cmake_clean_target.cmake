file(REMOVE_RECURSE
  "libacn_store.a"
)
