# Empty dependencies file for acn_store.
# This may be replaced when dependencies are built.
