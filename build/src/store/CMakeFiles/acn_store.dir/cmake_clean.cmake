file(REMOVE_RECURSE
  "CMakeFiles/acn_store.dir/contention_tracker.cpp.o"
  "CMakeFiles/acn_store.dir/contention_tracker.cpp.o.d"
  "CMakeFiles/acn_store.dir/versioned_store.cpp.o"
  "CMakeFiles/acn_store.dir/versioned_store.cpp.o.d"
  "libacn_store.a"
  "libacn_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
