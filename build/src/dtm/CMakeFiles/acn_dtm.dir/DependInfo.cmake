
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtm/codec.cpp" "src/dtm/CMakeFiles/acn_dtm.dir/codec.cpp.o" "gcc" "src/dtm/CMakeFiles/acn_dtm.dir/codec.cpp.o.d"
  "/root/repo/src/dtm/messages.cpp" "src/dtm/CMakeFiles/acn_dtm.dir/messages.cpp.o" "gcc" "src/dtm/CMakeFiles/acn_dtm.dir/messages.cpp.o.d"
  "/root/repo/src/dtm/quorum_stub.cpp" "src/dtm/CMakeFiles/acn_dtm.dir/quorum_stub.cpp.o" "gcc" "src/dtm/CMakeFiles/acn_dtm.dir/quorum_stub.cpp.o.d"
  "/root/repo/src/dtm/server.cpp" "src/dtm/CMakeFiles/acn_dtm.dir/server.cpp.o" "gcc" "src/dtm/CMakeFiles/acn_dtm.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/acn_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/acn_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
