file(REMOVE_RECURSE
  "libacn_dtm.a"
)
