file(REMOVE_RECURSE
  "CMakeFiles/acn_dtm.dir/codec.cpp.o"
  "CMakeFiles/acn_dtm.dir/codec.cpp.o.d"
  "CMakeFiles/acn_dtm.dir/messages.cpp.o"
  "CMakeFiles/acn_dtm.dir/messages.cpp.o.d"
  "CMakeFiles/acn_dtm.dir/quorum_stub.cpp.o"
  "CMakeFiles/acn_dtm.dir/quorum_stub.cpp.o.d"
  "CMakeFiles/acn_dtm.dir/server.cpp.o"
  "CMakeFiles/acn_dtm.dir/server.cpp.o.d"
  "libacn_dtm.a"
  "libacn_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
