# Empty dependencies file for acn_dtm.
# This may be replaced when dependencies are built.
