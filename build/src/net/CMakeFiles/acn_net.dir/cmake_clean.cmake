file(REMOVE_RECURSE
  "CMakeFiles/acn_net.dir/net_stats.cpp.o"
  "CMakeFiles/acn_net.dir/net_stats.cpp.o.d"
  "libacn_net.a"
  "libacn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
