file(REMOVE_RECURSE
  "libacn_net.a"
)
