# Empty compiler generated dependencies file for acn_net.
# This may be replaced when dependencies are built.
