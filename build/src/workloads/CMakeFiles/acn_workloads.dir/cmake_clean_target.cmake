file(REMOVE_RECURSE
  "libacn_workloads.a"
)
