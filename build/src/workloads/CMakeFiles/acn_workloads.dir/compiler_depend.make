# Empty compiler generated dependencies file for acn_workloads.
# This may be replaced when dependencies are built.
