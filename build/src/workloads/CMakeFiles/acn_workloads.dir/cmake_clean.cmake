file(REMOVE_RECURSE
  "CMakeFiles/acn_workloads.dir/bank.cpp.o"
  "CMakeFiles/acn_workloads.dir/bank.cpp.o.d"
  "CMakeFiles/acn_workloads.dir/tpcc.cpp.o"
  "CMakeFiles/acn_workloads.dir/tpcc.cpp.o.d"
  "CMakeFiles/acn_workloads.dir/vacation.cpp.o"
  "CMakeFiles/acn_workloads.dir/vacation.cpp.o.d"
  "CMakeFiles/acn_workloads.dir/workload.cpp.o"
  "CMakeFiles/acn_workloads.dir/workload.cpp.o.d"
  "libacn_workloads.a"
  "libacn_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
