file(REMOVE_RECURSE
  "CMakeFiles/acn_nesting.dir/history.cpp.o"
  "CMakeFiles/acn_nesting.dir/history.cpp.o.d"
  "CMakeFiles/acn_nesting.dir/transaction.cpp.o"
  "CMakeFiles/acn_nesting.dir/transaction.cpp.o.d"
  "libacn_nesting.a"
  "libacn_nesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_nesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
