# Empty compiler generated dependencies file for acn_nesting.
# This may be replaced when dependencies are built.
