
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nesting/history.cpp" "src/nesting/CMakeFiles/acn_nesting.dir/history.cpp.o" "gcc" "src/nesting/CMakeFiles/acn_nesting.dir/history.cpp.o.d"
  "/root/repo/src/nesting/transaction.cpp" "src/nesting/CMakeFiles/acn_nesting.dir/transaction.cpp.o" "gcc" "src/nesting/CMakeFiles/acn_nesting.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtm/CMakeFiles/acn_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/acn_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/acn_store.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
