file(REMOVE_RECURSE
  "libacn_nesting.a"
)
