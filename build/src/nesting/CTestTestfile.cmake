# CMake generated Testfile for 
# Source directory: /root/repo/src/nesting
# Build directory: /root/repo/build/src/nesting
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
