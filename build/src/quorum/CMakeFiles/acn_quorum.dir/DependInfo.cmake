
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quorum/level_quorum.cpp" "src/quorum/CMakeFiles/acn_quorum.dir/level_quorum.cpp.o" "gcc" "src/quorum/CMakeFiles/acn_quorum.dir/level_quorum.cpp.o.d"
  "/root/repo/src/quorum/rowa_quorum.cpp" "src/quorum/CMakeFiles/acn_quorum.dir/rowa_quorum.cpp.o" "gcc" "src/quorum/CMakeFiles/acn_quorum.dir/rowa_quorum.cpp.o.d"
  "/root/repo/src/quorum/tree_quorum.cpp" "src/quorum/CMakeFiles/acn_quorum.dir/tree_quorum.cpp.o" "gcc" "src/quorum/CMakeFiles/acn_quorum.dir/tree_quorum.cpp.o.d"
  "/root/repo/src/quorum/tree_topology.cpp" "src/quorum/CMakeFiles/acn_quorum.dir/tree_topology.cpp.o" "gcc" "src/quorum/CMakeFiles/acn_quorum.dir/tree_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
