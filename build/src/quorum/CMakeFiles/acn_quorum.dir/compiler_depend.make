# Empty compiler generated dependencies file for acn_quorum.
# This may be replaced when dependencies are built.
