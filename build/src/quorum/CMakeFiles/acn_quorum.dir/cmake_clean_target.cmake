file(REMOVE_RECURSE
  "libacn_quorum.a"
)
