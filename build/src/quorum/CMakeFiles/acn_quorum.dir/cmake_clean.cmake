file(REMOVE_RECURSE
  "CMakeFiles/acn_quorum.dir/level_quorum.cpp.o"
  "CMakeFiles/acn_quorum.dir/level_quorum.cpp.o.d"
  "CMakeFiles/acn_quorum.dir/rowa_quorum.cpp.o"
  "CMakeFiles/acn_quorum.dir/rowa_quorum.cpp.o.d"
  "CMakeFiles/acn_quorum.dir/tree_quorum.cpp.o"
  "CMakeFiles/acn_quorum.dir/tree_quorum.cpp.o.d"
  "CMakeFiles/acn_quorum.dir/tree_topology.cpp.o"
  "CMakeFiles/acn_quorum.dir/tree_topology.cpp.o.d"
  "libacn_quorum.a"
  "libacn_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
