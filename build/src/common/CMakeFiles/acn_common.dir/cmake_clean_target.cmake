file(REMOVE_RECURSE
  "libacn_common.a"
)
