file(REMOVE_RECURSE
  "CMakeFiles/acn_common.dir/latency_model.cpp.o"
  "CMakeFiles/acn_common.dir/latency_model.cpp.o.d"
  "CMakeFiles/acn_common.dir/rng.cpp.o"
  "CMakeFiles/acn_common.dir/rng.cpp.o.d"
  "CMakeFiles/acn_common.dir/stats.cpp.o"
  "CMakeFiles/acn_common.dir/stats.cpp.o.d"
  "libacn_common.a"
  "libacn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
