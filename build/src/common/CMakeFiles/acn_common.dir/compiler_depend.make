# Empty compiler generated dependencies file for acn_common.
# This may be replaced when dependencies are built.
