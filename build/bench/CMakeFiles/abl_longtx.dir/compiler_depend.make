# Empty compiler generated dependencies file for abl_longtx.
# This may be replaced when dependencies are built.
