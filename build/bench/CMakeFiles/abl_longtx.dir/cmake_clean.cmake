file(REMOVE_RECURSE
  "CMakeFiles/abl_longtx.dir/abl_longtx.cpp.o"
  "CMakeFiles/abl_longtx.dir/abl_longtx.cpp.o.d"
  "abl_longtx"
  "abl_longtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_longtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
