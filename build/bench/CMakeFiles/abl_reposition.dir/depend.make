# Empty dependencies file for abl_reposition.
# This may be replaced when dependencies are built.
