file(REMOVE_RECURSE
  "CMakeFiles/abl_reposition.dir/abl_reposition.cpp.o"
  "CMakeFiles/abl_reposition.dir/abl_reposition.cpp.o.d"
  "abl_reposition"
  "abl_reposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
