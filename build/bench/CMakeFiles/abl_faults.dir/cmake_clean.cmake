file(REMOVE_RECURSE
  "CMakeFiles/abl_faults.dir/abl_faults.cpp.o"
  "CMakeFiles/abl_faults.dir/abl_faults.cpp.o.d"
  "abl_faults"
  "abl_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
