file(REMOVE_RECURSE
  "CMakeFiles/abl_checkpoint.dir/abl_checkpoint.cpp.o"
  "CMakeFiles/abl_checkpoint.dir/abl_checkpoint.cpp.o.d"
  "abl_checkpoint"
  "abl_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
