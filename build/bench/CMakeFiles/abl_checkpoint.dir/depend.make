# Empty dependencies file for abl_checkpoint.
# This may be replaced when dependencies are built.
