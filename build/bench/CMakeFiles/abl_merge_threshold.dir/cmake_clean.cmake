file(REMOVE_RECURSE
  "CMakeFiles/abl_merge_threshold.dir/abl_merge_threshold.cpp.o"
  "CMakeFiles/abl_merge_threshold.dir/abl_merge_threshold.cpp.o.d"
  "abl_merge_threshold"
  "abl_merge_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_merge_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
