file(REMOVE_RECURSE
  "CMakeFiles/fig4c_tpcc_mixed.dir/fig4c_tpcc_mixed.cpp.o"
  "CMakeFiles/fig4c_tpcc_mixed.dir/fig4c_tpcc_mixed.cpp.o.d"
  "fig4c_tpcc_mixed"
  "fig4c_tpcc_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_tpcc_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
