# Empty dependencies file for fig4c_tpcc_mixed.
# This may be replaced when dependencies are built.
