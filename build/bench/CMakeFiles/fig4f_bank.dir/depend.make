# Empty dependencies file for fig4f_bank.
# This may be replaced when dependencies are built.
