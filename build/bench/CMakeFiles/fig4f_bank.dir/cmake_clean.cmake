file(REMOVE_RECURSE
  "CMakeFiles/fig4f_bank.dir/fig4f_bank.cpp.o"
  "CMakeFiles/fig4f_bank.dir/fig4f_bank.cpp.o.d"
  "fig4f_bank"
  "fig4f_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4f_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
