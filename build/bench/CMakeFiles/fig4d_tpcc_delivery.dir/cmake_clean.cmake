file(REMOVE_RECURSE
  "CMakeFiles/fig4d_tpcc_delivery.dir/fig4d_tpcc_delivery.cpp.o"
  "CMakeFiles/fig4d_tpcc_delivery.dir/fig4d_tpcc_delivery.cpp.o.d"
  "fig4d_tpcc_delivery"
  "fig4d_tpcc_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_tpcc_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
