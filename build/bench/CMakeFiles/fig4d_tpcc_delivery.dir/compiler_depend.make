# Empty compiler generated dependencies file for fig4d_tpcc_delivery.
# This may be replaced when dependencies are built.
