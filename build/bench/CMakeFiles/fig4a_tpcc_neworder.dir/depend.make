# Empty dependencies file for fig4a_tpcc_neworder.
# This may be replaced when dependencies are built.
