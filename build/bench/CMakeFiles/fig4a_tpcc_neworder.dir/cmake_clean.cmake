file(REMOVE_RECURSE
  "CMakeFiles/fig4a_tpcc_neworder.dir/fig4a_tpcc_neworder.cpp.o"
  "CMakeFiles/fig4a_tpcc_neworder.dir/fig4a_tpcc_neworder.cpp.o.d"
  "fig4a_tpcc_neworder"
  "fig4a_tpcc_neworder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_tpcc_neworder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
