# Empty dependencies file for abl_quorum.
# This may be replaced when dependencies are built.
