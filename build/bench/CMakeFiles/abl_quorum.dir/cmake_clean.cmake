file(REMOVE_RECURSE
  "CMakeFiles/abl_quorum.dir/abl_quorum.cpp.o"
  "CMakeFiles/abl_quorum.dir/abl_quorum.cpp.o.d"
  "abl_quorum"
  "abl_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
