# Empty dependencies file for fig4e_vacation.
# This may be replaced when dependencies are built.
