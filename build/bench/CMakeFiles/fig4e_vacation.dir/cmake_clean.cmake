file(REMOVE_RECURSE
  "CMakeFiles/fig4e_vacation.dir/fig4e_vacation.cpp.o"
  "CMakeFiles/fig4e_vacation.dir/fig4e_vacation.cpp.o.d"
  "fig4e_vacation"
  "fig4e_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4e_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
