# Empty compiler generated dependencies file for abl_piggyback.
# This may be replaced when dependencies are built.
