file(REMOVE_RECURSE
  "CMakeFiles/abl_piggyback.dir/abl_piggyback.cpp.o"
  "CMakeFiles/abl_piggyback.dir/abl_piggyback.cpp.o.d"
  "abl_piggyback"
  "abl_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
