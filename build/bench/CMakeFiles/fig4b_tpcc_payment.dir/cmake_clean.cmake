file(REMOVE_RECURSE
  "CMakeFiles/fig4b_tpcc_payment.dir/fig4b_tpcc_payment.cpp.o"
  "CMakeFiles/fig4b_tpcc_payment.dir/fig4b_tpcc_payment.cpp.o.d"
  "fig4b_tpcc_payment"
  "fig4b_tpcc_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_tpcc_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
