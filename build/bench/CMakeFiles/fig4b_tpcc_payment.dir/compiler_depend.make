# Empty compiler generated dependencies file for fig4b_tpcc_payment.
# This may be replaced when dependencies are built.
