# Empty compiler generated dependencies file for custom_contention_model.
# This may be replaced when dependencies are built.
