file(REMOVE_RECURSE
  "CMakeFiles/custom_contention_model.dir/custom_contention_model.cpp.o"
  "CMakeFiles/custom_contention_model.dir/custom_contention_model.cpp.o.d"
  "custom_contention_model"
  "custom_contention_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_contention_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
