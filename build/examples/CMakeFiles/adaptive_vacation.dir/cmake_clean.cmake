file(REMOVE_RECURSE
  "CMakeFiles/adaptive_vacation.dir/adaptive_vacation.cpp.o"
  "CMakeFiles/adaptive_vacation.dir/adaptive_vacation.cpp.o.d"
  "adaptive_vacation"
  "adaptive_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
