# Empty dependencies file for adaptive_vacation.
# This may be replaced when dependencies are built.
