# Empty dependencies file for bank_decomposition.
# This may be replaced when dependencies are built.
