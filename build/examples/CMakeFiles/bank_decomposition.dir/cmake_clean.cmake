file(REMOVE_RECURSE
  "CMakeFiles/bank_decomposition.dir/bank_decomposition.cpp.o"
  "CMakeFiles/bank_decomposition.dir/bank_decomposition.cpp.o.d"
  "bank_decomposition"
  "bank_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
