
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/test_property.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/test_property.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/acn_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/acn_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/acn/CMakeFiles/acn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nesting/CMakeFiles/acn_nesting.dir/DependInfo.cmake"
  "/root/repo/build/src/dtm/CMakeFiles/acn_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/acn_store.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/acn_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/acn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
