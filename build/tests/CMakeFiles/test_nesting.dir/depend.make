# Empty dependencies file for test_nesting.
# This may be replaced when dependencies are built.
