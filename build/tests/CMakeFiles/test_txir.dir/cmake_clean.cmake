file(REMOVE_RECURSE
  "CMakeFiles/test_txir.dir/test_txir.cpp.o"
  "CMakeFiles/test_txir.dir/test_txir.cpp.o.d"
  "test_txir"
  "test_txir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
