# Empty dependencies file for test_txir.
# This may be replaced when dependencies are built.
