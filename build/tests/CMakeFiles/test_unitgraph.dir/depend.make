# Empty dependencies file for test_unitgraph.
# This may be replaced when dependencies are built.
