file(REMOVE_RECURSE
  "CMakeFiles/test_unitgraph.dir/test_unitgraph.cpp.o"
  "CMakeFiles/test_unitgraph.dir/test_unitgraph.cpp.o.d"
  "test_unitgraph"
  "test_unitgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unitgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
