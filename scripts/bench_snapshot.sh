#!/usr/bin/env bash
# Run the release gate benches and fold their metrics snapshots into one
# BENCH_9.json, so every release carries a comparable perf trajectory point.
#
# Gates (each exits non-zero on a regression, failing the script):
#   abl_scheduler       contention-aware scheduling beats optimistic racing
#                       (plain, --durability=wal, and --chaos-burst variants)
#   abl_partition       partition-and-heal: lease expiry + catch-up
#   abl_recovery        durable recovery: log replay vs peer catch-up
#   micro_batching      batched quorum reads save read rounds
#   abl_shardscale      sharding: 1->8 group scale-out curve (>= 0.8x
#                       linear), cross-shard 2PC correctness, coordinator
#                       crash leaves no orphaned prepare in any group, and
#                       TPC-C through shard::Client (fast-path-pure scale
#                       curve + remote-warehouse mix state-equal to an
#                       unsharded reference)
#   shardscale_tpcc     the same binary at a heavier remote-warehouse mix
#                       (25% of order lines foreign) — stresses the 2PC
#                       path and escalation accounting harder
#   indoubt             cross-shard atomicity under 2PC phase-boundary
#                       chaos: coordinator crash, prepared-group
#                       isolation and phase-2 drop bursts must all end
#                       with zero breaches, zero torn transactions and
#                       nothing left in-doubt
#   queue               queue-oriented epoch executor: on 95%-skew Bank,
#                       --exec=queue commits at least as much as
#                       --exec=acn --sched=both with near-zero full
#                       aborts, --exec=hybrid ends state-equal to a pure
#                       ACN reference, and a mid-epoch crash leaves no
#                       orphaned prepares
#
# Usage: scripts/bench_snapshot.sh [build-dir] [output.json]
#   BUILD_DIR defaults to "build", output to "BENCH_9.json".
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_9.json}"
BENCH="$BUILD_DIR/bench"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Pinned configuration: the scheduler gate compares two runs under an
# identical seed/regime, so the numbers are comparable release to release.
SCHED_ARGS=(--intervals=6 --clients=16 --latency-us=100 --seed=13)

declare -A GATES=(
  [scheduler]="$BENCH/abl_scheduler ${SCHED_ARGS[*]}"
  [scheduler_wal]="$BENCH/abl_scheduler ${SCHED_ARGS[*]} --durability=wal"
  [scheduler_chaos]="$BENCH/abl_scheduler ${SCHED_ARGS[*]} --chaos-burst"
  [partition]="$BENCH/abl_partition --clients=4 --interval-ms=120"
  [recovery]="$BENCH/abl_recovery --clients=4 --intervals=6 --interval-ms=150"
  [batching]="$BENCH/micro_batching --txs=500"
  [shardscale]="$BENCH/abl_shardscale --shards=8 --txs=200 --seed=13"
  [shardscale_tpcc]="$BENCH/abl_shardscale --shards=8 --txs=200 --seed=13 --remote-wh=0.25"
  [indoubt]="$BENCH/abl_indoubt --seed=13"
  [queue]="$BENCH/abl_queue ${SCHED_ARGS[*]}"
)
# Deterministic run order (associative arrays iterate arbitrarily).
ORDER=(scheduler scheduler_wal scheduler_chaos partition recovery batching
       shardscale shardscale_tpcc indoubt queue)

for name in "${ORDER[@]}"; do
  echo "=== gate: $name ==="
  # shellcheck disable=SC2086  # intentional word splitting of the command
  ${GATES[$name]} --metrics-json "$WORK/$name.json"
done

python3 - "$OUT" "$WORK" "${ORDER[@]}" <<'EOF'
import json, subprocess, sys

out, work, names = sys.argv[1], sys.argv[2], sys.argv[3:]
rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                     capture_output=True, text=True).stdout.strip() or None
snapshot = {"git": rev, "gates": {}}
for name in names:
    with open(f"{work}/{name}.json") as f:
        snapshot["gates"][name] = json.load(f)
with open(out, "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
print(f"wrote {out} ({len(names)} gates)")
EOF
