// Unit tests for the durability subsystem (src/wal): record framing and
// CRC scanning, snapshot encode/decode, group commit, log-replay recovery,
// snapshot compaction, torn-tail truncation, and the server/cluster
// integration — re-arming unresolved prepares as leased protections and
// turning peer catch-up into a delta pass.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "src/dtm/server.hpp"
#include "src/harness/cluster.hpp"
#include "src/wal/format.hpp"
#include "src/wal/persistence.hpp"
#include "src/workloads/workload.hpp"

namespace acn::wal {
namespace {

using namespace std::chrono_literals;
using store::ObjectKey;
using store::Record;

const ObjectKey kA{1, 1};
const ObjectKey kB{1, 2};
const ObjectKey kC{2, 1};

/// Self-cleaning data directory under the test binary's CWD.
struct TempDir {
  explicit TempDir(const std::string& name) : path("wal-test-" + name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

WalConfig test_config(const std::string& dir) {
  WalConfig config;
  config.dir = dir;
  config.flush_interval_ns = -1;  // flush only when the test says so
  config.snapshot_every_bytes = 0;
  config.fsync = false;
  return config;
}

dtm::CommitRequest commit_of(dtm::TxId tx, ObjectKey key, store::Field value,
                             store::Version version) {
  return dtm::CommitRequest{tx, {key}, {Record{value}}, {version}};
}

dtm::PrepareRequest prepare_of(dtm::TxId tx, std::vector<ObjectKey> keys) {
  dtm::PrepareRequest prepare;
  prepare.tx = tx;
  prepare.write_keys = std::move(keys);
  return prepare;
}

const store::VersionedRecord* find_object(const RecoveredState& state,
                                          ObjectKey key) {
  for (const auto& [k, rec] : state.objects)
    if (k == key) return &rec;
  return nullptr;
}

void append_raw(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  ASSERT_NE(file, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
}

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;
  std::fseek(file, 0, SEEK_END);
  bytes.resize(static_cast<std::size_t>(std::ftell(file)));
  std::fseek(file, 0, SEEK_SET);
  bytes.resize(std::fread(bytes.data(), 1, bytes.size(), file));
  std::fclose(file);
  return bytes;
}

void overwrite(const std::filesystem::path& path,
               const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
}

TEST(Crc32, MatchesKnownVectorAndDetectsFlips) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);  // the classic IEEE test vector
  EXPECT_EQ(crc32({}), 0u);

  std::vector<std::uint8_t> bytes(check, check + sizeof(check));
  const auto clean = crc32(bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x01;
    EXPECT_NE(crc32(bytes), clean) << "flip at byte " << i;
    bytes[i] ^= 0x01;
  }
}

TEST(Framing, RoundTripsMultipleRecords) {
  std::vector<std::uint8_t> segment;
  const std::vector<std::vector<std::uint8_t>> payloads = {
      {1, 2, 3}, {}, {0xFF, 0x00, 0xAB, 0xCD, 9, 9, 9}};
  for (const auto& payload : payloads) frame_record(segment, payload);

  const auto scan = parse_segment(segment);
  EXPECT_EQ(scan.records, payloads);
  EXPECT_EQ(scan.valid_bytes, segment.size());
  EXPECT_FALSE(scan.torn);

  const auto empty = parse_segment({});
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.torn);  // a zero-length segment is clean, not torn
}

TEST(Framing, TornTailStopsScanCleanly) {
  std::vector<std::uint8_t> segment;
  frame_record(segment, std::vector<std::uint8_t>{1, 2, 3});
  const std::size_t first_size = segment.size();
  frame_record(segment, std::vector<std::uint8_t>{4, 5, 6, 7});

  // A crash can land anywhere in the second frame: short header, short
  // payload — every cut must yield exactly the first record, torn.
  for (std::size_t cut = first_size + 1; cut < segment.size(); ++cut) {
    const auto scan = parse_segment(
        std::span<const std::uint8_t>(segment.data(), cut));
    ASSERT_EQ(scan.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(scan.records[0], (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(scan.valid_bytes, first_size);
    EXPECT_TRUE(scan.torn);
  }
}

TEST(Framing, CrcMismatchStopsScan) {
  std::vector<std::uint8_t> segment;
  frame_record(segment, std::vector<std::uint8_t>{1, 2, 3});
  const std::size_t first_size = segment.size();
  frame_record(segment, std::vector<std::uint8_t>{4, 5, 6, 7});

  auto corrupt = segment;
  corrupt[first_size + kFrameHeaderBytes] ^= 0x80;  // second payload's 1st byte
  const auto scan = parse_segment(corrupt);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, first_size);
  EXPECT_TRUE(scan.torn);
}

TEST(SnapshotFormat, RoundTripsObjectsAndOpenPrepares) {
  SnapshotContents contents;
  contents.objects = {{kA, {Record{1, 2, 3}, 7}}, {kB, {Record{}, 1}}};
  contents.open_prepares = {{42, {kA, kC}}, {43, {}}};

  const auto bytes = encode_snapshot(contents);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->objects, contents.objects);
  ASSERT_EQ(decoded->open_prepares.size(), 2u);
  EXPECT_EQ(decoded->open_prepares[0].tx, 42u);
  EXPECT_EQ(decoded->open_prepares[0].keys, (std::vector<ObjectKey>{kA, kC}));
  EXPECT_EQ(decoded->open_prepares[1].tx, 43u);
}

TEST(SnapshotFormat, CorruptionAndTruncationRejected) {
  SnapshotContents contents;
  contents.objects = {{kA, {Record{9}, 3}}};
  const auto bytes = encode_snapshot(contents);

  EXPECT_FALSE(decode_snapshot({}).has_value());
  auto truncated = bytes;
  truncated.pop_back();  // missing CRC tail byte
  EXPECT_FALSE(decode_snapshot(truncated).has_value());
  for (const std::size_t at : {std::size_t{0}, bytes.size() / 2,
                               bytes.size() - 1}) {
    auto corrupt = bytes;
    corrupt[at] ^= 0x40;
    EXPECT_FALSE(decode_snapshot(corrupt).has_value()) << "flip at " << at;
  }
}

TEST(FileNames, RoundTripAndRejectForeignNames) {
  EXPECT_EQ(segment_file_name(42), "wal-000042.log");
  EXPECT_EQ(snapshot_file_name(7), "snap-000007.snap");
  EXPECT_EQ(parse_segment_name("wal-000042.log"), 42u);
  EXPECT_EQ(parse_snapshot_name("snap-000007.snap"), 7u);
  EXPECT_FALSE(parse_segment_name("snap-000007.snap").has_value());
  EXPECT_FALSE(parse_snapshot_name("wal-000042.log").has_value());
  EXPECT_FALSE(parse_segment_name("wal-xyz.log").has_value());
  EXPECT_FALSE(parse_segment_name("snap-inflight.tmp").has_value());
  EXPECT_FALSE(parse_snapshot_name("snap-inflight.tmp").has_value());
}

TEST(Persistence, GroupCommitBufferIsLostFlushedRecordsSurvive) {
  TempDir dir("group-commit");
  ReplicaPersistence wal(test_config(dir.path));

  wal.log_prepare(prepare_of(1, {kA}));
  wal.log_commit(commit_of(1, kA, 7, 2));
  EXPECT_GT(wal.buffered_bytes(), 0u);
  EXPECT_EQ(wal.buffered_bytes(), wal.appended_bytes());
  EXPECT_TRUE(wal.segment_seqs().empty());  // nothing reached the disk

  // Crash before any flush: the whole window is gone — by design.
  const auto lost = wal.recover();
  EXPECT_EQ(lost.replayed_records, 0u);
  EXPECT_TRUE(lost.objects.empty());
  EXPECT_TRUE(lost.open_prepares.empty());

  wal.log_prepare(prepare_of(2, {kB}));
  wal.log_commit(commit_of(2, kB, 9, 5));
  wal.flush();
  EXPECT_EQ(wal.buffered_bytes(), 0u);

  const auto kept = wal.recover();
  EXPECT_EQ(kept.replayed_records, 2u);
  const auto* rec = find_object(kept, kB);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->value, Record{9});
  EXPECT_EQ(rec->version, 5u);
  EXPECT_TRUE(kept.open_prepares.empty());  // the commit resolved tx 2
}

TEST(Persistence, FlushIntervalBoundsFsyncRate) {
  TempDir batched_dir("fsync-batched");
  TempDir eager_dir("fsync-eager");
  auto batched_config = test_config(batched_dir.path);
  batched_config.fsync = true;
  batched_config.flush_interval_ns = 3'600'000'000'000;  // an hour: never
  auto eager_config = test_config(eager_dir.path);
  eager_config.fsync = true;
  eager_config.flush_interval_ns = 0;  // every append

  ReplicaPersistence batched(batched_config);
  ReplicaPersistence eager(eager_config);
  for (dtm::TxId tx = 1; tx <= 20; ++tx) {
    batched.log_commit(commit_of(tx, kA, 1, tx));
    eager.log_commit(commit_of(tx, kA, 1, tx));
  }
  // Group commit: 20 appends, zero fsyncs until the explicit flush.
  EXPECT_EQ(batched.fsync_count(), 0u);
  batched.flush();
  EXPECT_EQ(batched.fsync_count(), 1u);
  EXPECT_EQ(eager.fsync_count(), 20u);
  // Both directions persist identical state.
  EXPECT_EQ(batched.recover().replayed_records, 20u);
  EXPECT_EQ(eager.recover().replayed_records, 20u);
}

TEST(Persistence, RecoverReplaysCommitsAbortsAndOpenPrepares) {
  TempDir dir("replay");
  ReplicaPersistence wal(test_config(dir.path));

  wal.log_prepare(prepare_of(1, {kA}));
  wal.log_commit(commit_of(1, kA, 7, 2));  // resolved: committed
  wal.log_prepare(prepare_of(2, {kB}));
  wal.log_abort(2, {kB});                  // resolved: aborted
  wal.log_prepare(prepare_of(3, {kC}));                // unresolved at the "crash"
  wal.log_commit(commit_of(4, kA, 99, 1)); // stale: version guard must hold
  wal.flush();

  const auto state = wal.recover();
  EXPECT_EQ(state.replayed_records, 6u);
  EXPECT_EQ(state.snapshot_objects, 0u);
  EXPECT_FALSE(state.log_torn);

  const auto* a = find_object(state, kA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, Record{7});  // not the stale 99
  EXPECT_EQ(a->version, 2u);
  EXPECT_EQ(find_object(state, kB), nullptr);  // aborted, never installed
  ASSERT_EQ(state.open_prepares.size(), 1u);
  EXPECT_EQ(state.open_prepares[0].tx, 3u);
  EXPECT_EQ(state.open_prepares[0].keys, (std::vector<ObjectKey>{kC}));
}

TEST(Persistence, TornSegmentTailIsTruncatedOnDisk) {
  TempDir dir("torn");
  ReplicaPersistence wal(test_config(dir.path));
  wal.log_commit(commit_of(1, kA, 1, 2));
  wal.log_commit(commit_of(2, kB, 2, 2));
  wal.flush();
  const auto seqs = wal.segment_seqs();
  ASSERT_EQ(seqs.size(), 1u);
  const auto path =
      std::filesystem::path(dir.path) / segment_file_name(seqs[0]);
  const auto clean_size = std::filesystem::file_size(path);
  append_raw(path, {0xDE, 0xAD, 0xBE});  // a crash mid-frame

  const auto first = wal.recover();
  EXPECT_TRUE(first.log_torn);
  EXPECT_EQ(first.replayed_records, 2u);
  EXPECT_EQ(std::filesystem::file_size(path), clean_size);

  // The tail was removed in place: a second restart sees a clean log.
  const auto second = wal.recover();
  EXPECT_FALSE(second.log_torn);
  EXPECT_EQ(second.replayed_records, 2u);
}

TEST(Persistence, CrcCorruptionOnDiskStopsReplayAtTheBadRecord) {
  TempDir dir("crc");
  ReplicaPersistence wal(test_config(dir.path));
  wal.log_commit(commit_of(1, kA, 1, 2));
  wal.log_commit(commit_of(2, kB, 2, 2));
  wal.flush();
  const auto path =
      std::filesystem::path(dir.path) / segment_file_name(wal.segment_seqs()[0]);

  auto bytes = slurp(path);
  const auto scan = parse_segment(bytes);
  ASSERT_EQ(scan.records.size(), 2u);
  const std::size_t second_payload =
      kFrameHeaderBytes + scan.records[0].size() + kFrameHeaderBytes;
  bytes[second_payload] ^= 0x01;
  overwrite(path, bytes);

  const auto state = wal.recover();
  EXPECT_TRUE(state.log_torn);
  EXPECT_EQ(state.replayed_records, 1u);  // only the intact first record
  ASSERT_NE(find_object(state, kA), nullptr);
  EXPECT_EQ(find_object(state, kB), nullptr);
}

TEST(Persistence, SnapshotCompactsCoveredSegmentsAndKeepsTwo) {
  TempDir dir("compaction");
  auto config = test_config(dir.path);
  config.snapshot_every_bytes = 1;  // every commit claims a snapshot
  ReplicaPersistence wal(config);

  wal.log_prepare(prepare_of(1, {kA}));
  EXPECT_TRUE(wal.log_commit(commit_of(1, kA, 7, 2)));
  // Claimed: nobody else is told to snapshot until this one lands.
  EXPECT_FALSE(wal.log_commit(commit_of(2, kB, 8, 2)));
  wal.write_snapshot([] {
    return dtm::SnapshotData{
        {{kA, {Record{7}, 2}}, {kB, {Record{8}, 2}}}, {}};
  });
  EXPECT_TRUE(wal.segment_seqs().empty());  // the log was compacted away
  ASSERT_EQ(wal.snapshot_seqs().size(), 1u);

  // Post-snapshot appends land in a fresh segment and are replayed on top.
  EXPECT_TRUE(wal.log_commit(commit_of(3, kC, 9, 4)));
  wal.flush();
  EXPECT_EQ(wal.segment_seqs().size(), 1u);
  auto state = wal.recover();
  EXPECT_EQ(state.snapshot_objects, 2u);
  EXPECT_EQ(state.replayed_records, 1u);
  EXPECT_EQ(state.objects.size(), 3u);
  ASSERT_NE(find_object(state, kC), nullptr);
  EXPECT_EQ(find_object(state, kC)->version, 4u);

  // Two more snapshot cycles: only the newest two files are retained.
  for (store::Version v = 5; v <= 6; ++v) {
    wal.log_commit(commit_of(v, kC, 1, v));
    wal.flush();
    wal.write_snapshot(
        [v] { return dtm::SnapshotData{{{kC, {Record{1}, v}}}, {}}; });
  }
  EXPECT_EQ(wal.snapshot_seqs().size(), 2u);
  EXPECT_TRUE(wal.segment_seqs().empty());
}

TEST(Persistence, SnapshotCarriesOpenPreparesThroughCompaction) {
  TempDir dir("open-prepares");
  ReplicaPersistence wal(test_config(dir.path));
  wal.log_prepare(prepare_of(7, {kA, kB}));
  wal.write_snapshot([] {
    return dtm::SnapshotData{{}, {{7, {kA, kB}}}};
  });
  // Compaction deleted the prepare's log record; only the snapshot
  // remembers it now.
  EXPECT_TRUE(wal.segment_seqs().empty());

  const auto state = wal.recover();
  EXPECT_EQ(state.replayed_records, 0u);
  ASSERT_EQ(state.open_prepares.size(), 1u);
  EXPECT_EQ(state.open_prepares[0].tx, 7u);
  EXPECT_EQ(state.open_prepares[0].keys, (std::vector<ObjectKey>{kA, kB}));
}

TEST(Persistence, CorruptNewestSnapshotFallsBackToTheOlderOne) {
  TempDir dir("fallback");
  ReplicaPersistence wal(test_config(dir.path));
  wal.write_snapshot(
      [] { return dtm::SnapshotData{{{kA, {Record{1}, 1}}}, {}}; });
  wal.log_commit(commit_of(1, kA, 2, 2));
  wal.flush();
  wal.write_snapshot([] {
    return dtm::SnapshotData{{{kA, {Record{2}, 2}}, {kB, {Record{5}, 1}}}, {}};
  });
  const auto seqs = wal.snapshot_seqs();
  ASSERT_EQ(seqs.size(), 2u);

  // Rot the newest snapshot; recovery must fall back, not fail.
  const auto newest =
      std::filesystem::path(dir.path) / snapshot_file_name(seqs.back());
  auto bytes = slurp(newest);
  bytes[bytes.size() / 2] ^= 0x10;
  overwrite(newest, bytes);

  const auto state = wal.recover();
  EXPECT_EQ(state.snapshot_objects, 1u);  // the older snapshot's content
  const auto* a = find_object(state, kA);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->version, 1u);
  EXPECT_EQ(find_object(state, kB), nullptr);
}

TEST(Persistence, WipeLeavesAnEmptyUsableDirectory) {
  TempDir dir("wipe");
  ReplicaPersistence wal(test_config(dir.path));
  wal.log_commit(commit_of(1, kA, 1, 2));
  wal.flush();
  wal.write_snapshot(
      [] { return dtm::SnapshotData{{{kA, {Record{1}, 2}}}, {}}; });

  wal.wipe();
  EXPECT_TRUE(wal.segment_seqs().empty());
  EXPECT_TRUE(wal.snapshot_seqs().empty());
  auto state = wal.recover();
  EXPECT_TRUE(state.objects.empty());
  EXPECT_EQ(state.replayed_records + state.snapshot_objects, 0u);

  // The instance keeps working after the wipe.
  wal.log_commit(commit_of(2, kB, 3, 4));
  wal.flush();
  state = wal.recover();
  EXPECT_EQ(state.replayed_records, 1u);
  ASSERT_NE(find_object(state, kB), nullptr);
}

TEST(ServerRecovery, ReplayReArmsPrepareAndLeaseExpiryResolvesIt) {
  TempDir dir("server");
  ReplicaPersistence wal(test_config(dir.path));
  {
    dtm::Server server(0, 0, /*prepare_lease_ns=*/5'000'000);
    server.set_durability(&wal);
    server.store().seed(kA, Record{1}, 1);

    dtm::Request request;
    request.payload = dtm::PrepareRequest{1, {}, {kA}};
    auto response = server.handle(100, request);
    ASSERT_EQ(std::get<dtm::PrepareResponse>(response.payload).code,
              dtm::PrepareCode::kOk);
    request.payload = dtm::CommitRequest{1, {kA}, {Record{5}}, {2}};
    server.handle(100, request);

    // The orphan: prepared, never resolved, crash.
    request.payload = dtm::PrepareRequest{2, {}, {kB}};
    response = server.handle(100, request);
    ASSERT_EQ(std::get<dtm::PrepareResponse>(response.payload).code,
              dtm::PrepareCode::kOk);
    wal.flush();
  }

  dtm::Server reborn(0, 0, /*prepare_lease_ns=*/5'000'000);
  const auto recovered = wal.recover();
  EXPECT_EQ(recovered.replayed_records, 3u);
  reborn.install_recovered(recovered.objects, recovered.open_prepares);

  // The committed write survived the reboot…
  const auto read = reborn.store().read(kA);
  ASSERT_EQ(read.status, store::ReadStatus::kOk);
  EXPECT_EQ(read.record.value, Record{5});
  EXPECT_EQ(read.record.version, 2u);
  // …and the orphan is protected again, under a fresh lease.
  EXPECT_EQ(reborn.store().read(kB).status, store::ReadStatus::kProtected);
  EXPECT_EQ(reborn.open_lease_count(), 1u);

  // Presumed abort decides its fate, exactly as if the server never died.
  std::this_thread::sleep_for(15ms);
  EXPECT_GT(reborn.expire_stale_leases(), 0u);
  EXPECT_EQ(reborn.store().read(kB).status, store::ReadStatus::kMissing);
  EXPECT_EQ(reborn.store().protected_count(), 0u);

  // A late phase two for the orphan is refused, nothing installed.
  dtm::Request late;
  late.payload = dtm::CommitRequest{2, {kB}, {Record{9}}, {1}};
  const auto verdict = reborn.handle(100, late);
  EXPECT_EQ(std::get<dtm::CommitResponse>(verdict.payload).code,
            dtm::CommitCode::kExpired);
  EXPECT_EQ(reborn.store().read(kB).status, store::ReadStatus::kMissing);
}

TEST(ClusterRecovery, LogReplayShrinksCatchUpAndDiskLossRebuildsFully) {
  TempDir dir("cluster");
  harness::ClusterConfig config;
  config.n_servers = 10;
  config.base_latency = std::chrono::nanoseconds{0};
  config.stub.max_quorum_retries = 16;
  config.stub.retry.base = std::chrono::nanoseconds{1000};
  config.durability.mode = harness::DurabilityMode::kWal;
  config.durability.data_dir = dir.path;
  config.durability.flush_interval_ns = 0;  // durable on every append
  config.durability.fsync = false;
  harness::Cluster cluster(config);

  constexpr std::uint64_t kKeys = 50;
  for (std::uint64_t id = 0; id < kKeys; ++id)
    workloads::seed_all(cluster.servers(), ObjectKey{1, id}, Record{1});
  cluster.checkpoint_all();  // seeding bypassed the WAL

  const ObjectKey hot{1, 0};
  auto stub = cluster.make_stub(0);
  auto bump = [&](dtm::TxId tx) {
    const auto out = stub.read(tx, hot, {});
    stub.commit(stub.prepare(tx, {{hot, out.record.version}}, {hot},
                             {out.record.version}),
                {Record{out.record.value[0] + 1}});
  };
  for (dtm::TxId tx = 1; tx <= 3; ++tx) bump(tx);
  cluster.crash_node(9);
  for (dtm::TxId tx = 4; tx <= 8; ++tx) bump(tx);

  // Node 9's disk holds the seed snapshot plus the first three commits;
  // replay restores them, so the peer sync only refetches the one key
  // that moved while it was down.
  const std::size_t delta = cluster.restart_node(9);
  EXPECT_EQ(delta, 1u);
  auto local = cluster.server(9).store().read(hot);
  ASSERT_EQ(local.status, store::ReadStatus::kOk);
  EXPECT_EQ(local.record.version, 9u);
  EXPECT_EQ(local.record.value, Record{9});  // seeded 1 + eight bumps
  EXPECT_EQ(cluster.server(9).store().object_count(), kKeys);

  // Disk loss degrades to the full PR 3 catch-up: every key refetched.
  cluster.crash_node(9, /*lose_disk=*/true);
  ASSERT_NE(cluster.persistence(9), nullptr);
  EXPECT_TRUE(cluster.persistence(9)->segment_seqs().empty());
  EXPECT_TRUE(cluster.persistence(9)->snapshot_seqs().empty());
  const std::size_t rebuilt =
      cluster.restart_node(9, harness::CatchUpScope::kAllReplicas);
  EXPECT_EQ(rebuilt, kKeys);
  local = cluster.server(9).store().read(hot);
  ASSERT_EQ(local.status, store::ReadStatus::kOk);
  EXPECT_EQ(local.record.version, 9u);
}

}  // namespace
}  // namespace acn::wal
