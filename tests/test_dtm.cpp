// QR-DTM protocol tests: quorum reads with version reconciliation,
// incremental validation, two-phase commit, protection conflicts, fault
// injection and contention plumbing — at the stub/server level.
#include <gtest/gtest.h>

#include "src/harness/cluster.hpp"
#include "src/workloads/workload.hpp"

namespace acn::dtm {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using store::ObjectKey;
using store::Record;

ClusterConfig fast_config(std::size_t n_servers = 10) {
  ClusterConfig config;
  config.n_servers = n_servers;
  config.base_latency = std::chrono::nanoseconds{0};  // no sleeping in tests
  config.stub.retry.max_retries = 2;
  config.stub.retry.base = std::chrono::nanoseconds{1000};
  return config;
}

const ObjectKey kA{1, 1};
const ObjectKey kB{1, 2};

TEST(QuorumStub, ReadReturnsSeededValue) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{7});
  auto stub = cluster.make_stub(0);
  const auto out = stub.read(1, kA, {});
  EXPECT_EQ(out.record.value, Record{7});
  EXPECT_EQ(out.record.version, 1u);
}

TEST(QuorumStub, ReadPicksNewestReplica) {
  // Two-node tree; with root_read_bias=0 the read quorum is exactly the
  // leaf {1}; seed the leaf with the newer version.
  auto config = fast_config(2);
  config.root_read_bias = 0.0;
  Cluster cluster(config);
  cluster.server(0).store().seed(kA, Record{10}, 1);
  cluster.server(1).store().seed(kA, Record{50}, 5);
  auto stub = cluster.make_stub(0);
  const auto out = stub.read(1, kA, {});
  EXPECT_EQ(out.record.version, 5u);
  EXPECT_EQ(out.record.value, Record{50});
}

TEST(QuorumStub, MissingObjectThrows) {
  Cluster cluster(fast_config());
  auto stub = cluster.make_stub(0);
  EXPECT_THROW(stub.read(1, ObjectKey{9, 9}, {}), ObjectMissing);
}

TEST(QuorumStub, CommitInstallsNewVersionVisibleToOthers) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{7});
  auto writer = cluster.make_stub(0);
  auto reader = cluster.make_stub(1);

  const auto before = writer.read(1, kA, {});
  const auto ticket = writer.prepare(1, {{kA, before.record.version}}, {kA},
                                     {before.record.version});
  EXPECT_EQ(ticket.new_versions, (std::vector<Version>{2}));
  writer.commit(ticket, {Record{8}});

  const auto after = reader.read(2, kA, {});
  EXPECT_EQ(after.record.value, Record{8});
  EXPECT_EQ(after.record.version, 2u);
}

TEST(QuorumStub, IncrementalValidationDetectsConcurrentCommit) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  workloads::seed_all(cluster.servers(), kB, Record{2});
  auto t1 = cluster.make_stub(0);
  auto t2 = cluster.make_stub(1);

  const auto a = t1.read(1, kA, {});  // T1 reads A@1

  // T2 commits a new A.
  const auto a2 = t2.read(2, kA, {});
  const auto ticket =
      t2.prepare(2, {{kA, a2.record.version}}, {kA}, {a2.record.version});
  t2.commit(ticket, {Record{100}});

  // T1's next read carries {A@1} for incremental validation -> abort.
  try {
    t1.read(1, kB, {{kA, a.record.version}});
    FAIL() << "expected TxAbort";
  } catch (const TxAbort& abort) {
    EXPECT_EQ(abort.kind(), AbortKind::kValidation);
    ASSERT_EQ(abort.invalid().size(), 1u);
    EXPECT_EQ(abort.invalid()[0], kA);
  }
}

TEST(QuorumStub, PrepareRejectsStaleReadSet) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto t1 = cluster.make_stub(0);
  auto t2 = cluster.make_stub(1);

  const auto a1 = t1.read(1, kA, {});

  const auto a2 = t2.read(2, kA, {});
  t2.commit(t2.prepare(2, {{kA, a2.record.version}}, {kA}, {a2.record.version}),
            {Record{5}});

  EXPECT_THROW(
      t1.prepare(1, {{kA, a1.record.version}}, {kA}, {a1.record.version}),
      TxAbort);
}

TEST(QuorumStub, ReadBusyOnProtectedObject) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  for (auto* server : cluster.servers())
    ASSERT_TRUE(server->store().try_protect(kA, 999));
  auto stub = cluster.make_stub(0);
  try {
    stub.read(1, kA, {});
    FAIL() << "expected TxAbort";
  } catch (const TxAbort& abort) {
    EXPECT_EQ(abort.kind(), AbortKind::kBusy);
  }
}

TEST(QuorumStub, PrepareBusyOnProtectedObject) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  for (auto* server : cluster.servers())
    ASSERT_TRUE(server->store().try_protect(kA, 999));
  auto stub = cluster.make_stub(0);
  try {
    stub.prepare(1, {}, {kA}, {1});
    FAIL() << "expected TxAbort";
  } catch (const TxAbort& abort) {
    EXPECT_EQ(abort.kind(), AbortKind::kBusy);
  }
}

TEST(QuorumStub, FailedPrepareLeavesNothingProtected) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  workloads::seed_all(cluster.servers(), kB, Record{1});
  // Protect kB everywhere so prepare over {kA, kB} fails after kA.
  for (auto* server : cluster.servers())
    ASSERT_TRUE(server->store().try_protect(kB, 999));
  auto stub = cluster.make_stub(0);
  EXPECT_THROW(stub.prepare(1, {}, {kA, kB}, {1, 1}), TxAbort);
  // kA must have been released on every replica.
  for (auto* server : cluster.servers())
    EXPECT_NE(server->store().read(kA).status, store::ReadStatus::kProtected);
}

TEST(QuorumStub, AbortReleasesPreparedObjects) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);
  const auto ticket = stub.prepare(1, {}, {kA}, {1});
  stub.abort(ticket);
  const auto out = stub.read(2, kA, {});
  EXPECT_EQ(out.record.value, Record{1});  // unchanged and readable
}

TEST(QuorumStub, ValidatePassesWhenUnchangedAndFailsAfterCommit) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto t1 = cluster.make_stub(0);
  auto t2 = cluster.make_stub(1);

  const auto a = t1.read(1, kA, {});
  EXPECT_NO_THROW(t1.validate(1, {{kA, a.record.version}}));

  const auto a2 = t2.read(2, kA, {});
  t2.commit(t2.prepare(2, {{kA, a2.record.version}}, {kA}, {a2.record.version}),
            {Record{3}});
  EXPECT_THROW(t1.validate(1, {{kA, a.record.version}}), TxAbort);
}

TEST(QuorumStub, ContentionLevelsReflectCommittedWrites) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);

  for (int i = 0; i < 3; ++i) {
    const auto a = stub.read(10 + i, kA, {});
    const auto ticket = stub.prepare(10 + i, {{kA, a.record.version}}, {kA},
                                     {a.record.version});
    stub.commit(ticket, {Record{i}});
  }
  cluster.roll_contention_windows();
  const auto levels = stub.contention_levels({kA.cls, 77});
  EXPECT_EQ(levels[0], 3u);
  EXPECT_EQ(levels[1], 0u);
}

TEST(QuorumStub, PiggybackedContentionOnRead) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);
  const auto a = stub.read(1, kA, {});
  stub.commit(
      stub.prepare(1, {{kA, a.record.version}}, {kA}, {a.record.version}),
      {Record{2}});
  cluster.roll_contention_windows();
  const auto out = stub.read(2, kA, {}, {kA.cls});
  ASSERT_EQ(out.contention.size(), 1u);
  EXPECT_EQ(out.contention[0], 1u);
}

TEST(QuorumStub, ReadSurvivesNonRootNodeDown) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{4});
  cluster.network().set_node_down(5, true);
  auto stub = cluster.make_stub(0);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(stub.read(1, kA, {}).record.value, Record{4});
}

TEST(QuorumStub, WritesRequireTheRoot) {
  // The tree quorum's known property: every write quorum contains the root.
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{4});
  cluster.network().set_node_down(0, true);
  auto stub = cluster.make_stub(0);
  try {
    stub.prepare(1, {}, {kA}, {1});
    FAIL() << "expected TxAbort";
  } catch (const TxAbort& abort) {
    EXPECT_EQ(abort.kind(), AbortKind::kUnavailable);
  }
}

TEST(QuorumStub, PrepareSurvivesNonRootNodeDown) {
  // A partly-down write quorum must re-select around the down node — the
  // same ladder read() climbs — not give up on the first attempt.  Node 9
  // is a leaf of the 10-node ternary tree, so write quorums avoiding it
  // exist; a few re-selections always find one.
  auto config = fast_config();
  config.stub.max_quorum_retries = 16;
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{4});
  cluster.network().set_node_down(9, true);
  auto stub = cluster.make_stub(0);
  for (int i = 0; i < 10; ++i) {
    const auto a = stub.read(1 + i, kA, {});
    const auto ticket = stub.prepare(1 + i, {{kA, a.record.version}}, {kA},
                                     {a.record.version});
    stub.commit(ticket, {Record{a.record.value[0] + 1}});
  }
  EXPECT_EQ(stub.read(100, kA, {}).record.value, Record{14});
}

TEST(QuorumStub, ValidateRetriesUnreachableQuorums) {
  // An unreachable read quorum must not pass validation by silence.
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{4});
  cluster.network().set_drop_probability(1.0);
  auto stub = cluster.make_stub(0);
  try {
    stub.validate(1, {{kA, 1}});
    FAIL() << "expected TxAbort";
  } catch (const TxAbort& abort) {
    EXPECT_EQ(abort.kind(), AbortKind::kUnavailable);
  }
}

TEST(QuorumStub, TotalPacketLossIsUnavailable) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{4});
  cluster.network().set_drop_probability(1.0);
  auto stub = cluster.make_stub(0);
  try {
    stub.read(1, kA, {});
    FAIL() << "expected TxAbort";
  } catch (const TxAbort& abort) {
    EXPECT_EQ(abort.kind(), AbortKind::kUnavailable);
  }
}

TEST(QuorumStub, CommitReplayIsIdempotent) {
  // A client that never saw its commit acks re-sends phase two; every
  // member acks kDuplicate and the store is untouched (version guard).
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);
  const auto a = stub.read(1, kA, {});
  const auto ticket =
      stub.prepare(1, {{kA, a.record.version}}, {kA}, {a.record.version});
  stub.commit(ticket, {Record{2}});
  EXPECT_NO_THROW(stub.commit(ticket, {Record{2}}));  // full replay

  EXPECT_EQ(stub.read(2, kA, {}).record.version, 2u);
  EXPECT_EQ(stub.read(2, kA, {}).record.value, Record{2});
  std::uint64_t replays = 0;
  for (auto* server : cluster.servers())
    replays += server->stats().commit_replays.load();
  EXPECT_GT(replays, 0u);
}

TEST(QuorumStub, CommitRetriesThroughResponseDrops) {
  // Lossy ack legs from the root: the client replays phase two until every
  // member acked, so the commit still lands on the full write quorum.
  auto config = fast_config();
  config.stub.max_commit_replays = 64;
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);
  const auto a = stub.read(1, kA, {});
  const auto ticket =
      stub.prepare(1, {{kA, a.record.version}}, {kA}, {a.record.version});
  // Drop 70% of root->client responses only: requests keep arriving.
  cluster.network().set_link_fault(0, stub.client_node(),
                                   net::LinkFault{0.7, {}});
  EXPECT_NO_THROW(stub.commit(ticket, {Record{5}}));
  cluster.network().clear_link_faults();
  EXPECT_EQ(stub.read(2, kA, {}).record.value, Record{5});
  EXPECT_EQ(cluster.server(0).store().read(kA).record.version, 2u);
}

TEST(Server, StatsCountRequests) {
  Cluster cluster(fast_config(1));
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);
  stub.read(1, kA, {});
  const auto a = stub.read(1, kA, {});
  stub.commit(
      stub.prepare(1, {{kA, a.record.version}}, {kA}, {a.record.version}),
      {Record{2}});
  const auto& stats = cluster.server(0).stats();
  EXPECT_GE(stats.reads.load(), 2u);
  EXPECT_EQ(stats.prepares.load(), 1u);
  EXPECT_EQ(stats.commits.load(), 1u);
}

TEST(Messages, ApproxSizesScaleWithPayload) {
  ReadRequest small{1, kA, {}, {}};
  ReadRequest big{1, kA, std::vector<VersionCheck>(10), {}};
  EXPECT_GT(big.approx_size(), small.approx_size());

  CommitRequest commit{1, {kA}, {Record{1, 2, 3}}, {2}};
  EXPECT_GT(commit.approx_size(), 24u);

  Request request;
  request.payload = small;
  EXPECT_EQ(request.approx_size(), small.approx_size());
}

}  // namespace
}  // namespace acn::dtm
