// Serializability-checker tests: hand-crafted histories (accepted and
// rejected) plus end-to-end verification that concurrent executions of the
// real protocol produce conflict-serializable histories.
#include <gtest/gtest.h>

#include <thread>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/nesting/history.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/vacation.hpp"

namespace acn::nesting {
namespace {

using store::ObjectKey;

const ObjectKey kX{1, 1};
const ObjectKey kY{1, 2};

CommittedTxn txn(std::uint64_t id,
                 std::vector<std::pair<ObjectKey, store::Version>> reads,
                 std::vector<std::pair<ObjectKey, store::Version>> writes) {
  return {id, std::move(reads), std::move(writes)};
}

TEST(HistoryChecker, EmptyAndSingleHistoriesPass) {
  EXPECT_TRUE(check_serializable({}));
  EXPECT_TRUE(check_serializable({txn(1, {{kX, 1}}, {{kX, 2}})}));
}

TEST(HistoryChecker, SequentialChainPasses) {
  const std::vector<CommittedTxn> history{
      txn(1, {{kX, 1}}, {{kX, 2}}),
      txn(2, {{kX, 2}}, {{kX, 3}}),
      txn(3, {{kX, 3}, {kY, 1}}, {{kY, 2}}),
  };
  EXPECT_TRUE(check_serializable(history));
}

TEST(HistoryChecker, ReadOnlySnapshotsPass) {
  const std::vector<CommittedTxn> history{
      txn(1, {{kX, 1}}, {{kX, 2}}),
      txn(2, {{kX, 2}, {kY, 1}}, {}),  // read-only
      txn(3, {{kY, 1}}, {{kY, 2}}),
  };
  EXPECT_TRUE(check_serializable(history));
}

TEST(HistoryChecker, DuplicateInstallRejected) {
  const std::vector<CommittedTxn> history{
      txn(1, {}, {{kX, 2}}),
      txn(2, {}, {{kX, 2}}),  // same version installed twice = lost update
  };
  const auto report = check_serializable(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("duplicate install"), std::string::npos);
}

TEST(HistoryChecker, PhantomVersionRejected) {
  const std::vector<CommittedTxn> history{
      txn(1, {{kX, 7}}, {}),  // nobody installed v7 and the seed is v1
  };
  const auto report = check_serializable(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("nobody installed"), std::string::npos);
}

TEST(HistoryChecker, WriteSkewCycleRejected) {
  // Classic write skew: T1 reads X@1,Y@1 writes X@2; T2 reads X@1,Y@1
  // writes Y@2.  rw edges both ways -> cycle.
  const std::vector<CommittedTxn> history{
      txn(1, {{kX, 1}, {kY, 1}}, {{kX, 2}}),
      txn(2, {{kX, 1}, {kY, 1}}, {{kY, 2}}),
  };
  const auto report = check_serializable(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("cycle"), std::string::npos);
}

TEST(HistoryChecker, StaleReadAfterOverwriteRejected) {
  // T2 read X@1 but committed X-dependent state after T1 installed X@2 and
  // T2 also read T1's Y -> wr (1->2) plus rw (2->1): cycle.
  const std::vector<CommittedTxn> history{
      txn(1, {{kX, 1}, {kY, 1}}, {{kX, 2}, {kY, 2}}),
      txn(2, {{kX, 1}, {kY, 2}}, {{kY, 3}}),
  };
  const auto report = check_serializable(history);
  EXPECT_FALSE(report.ok);
}

TEST(HistoryLogTest, RecordsAndClears) {
  HistoryLog log;
  log.record(txn(1, {}, {{kX, 2}}));
  log.record(txn(2, {{kX, 2}}, {}));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.snapshot()[1].tx, 2u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

// ---- cross-shard atomicity checker -------------------------------------

CrossShardTxn cross_txn(std::uint64_t id,
                        std::vector<std::pair<ObjectKey, store::Version>> w,
                        std::optional<bool> committed = std::nullopt) {
  return {id, std::move(w), committed};
}

TEST(CrossShardChecker, EmptyAndFullyInstalledPass) {
  EXPECT_TRUE(check_cross_shard_atomicity({}, {}, {}));
  // Both writes at or below the key's final version: all-or-nothing held.
  const auto report = check_cross_shard_atomicity(
      {}, {cross_txn(1, {{kX, 2}, {kY, 2}}, true)}, {{kX, 3}, {kY, 2}});
  EXPECT_TRUE(report.ok);
  // Fully uninstalled with a matching abort verdict is equally fine.
  EXPECT_TRUE(check_cross_shard_atomicity(
      {}, {cross_txn(2, {{kX, 9}, {kY, 9}}, false)}, {{kX, 3}, {kY, 2}}));
}

TEST(CrossShardChecker, TornTransactionRejected) {
  // kX@2 made it to its group's final state, kY@2 never did: half a
  // transaction installed — the exact breach the in-doubt machinery exists
  // to prevent.
  const auto report = check_cross_shard_atomicity(
      {}, {cross_txn(7, {{kX, 2}, {kY, 2}})}, {{kX, 2}, {kY, 1}});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("torn cross-shard tx 7"), std::string::npos);
}

TEST(CrossShardChecker, OutcomeMismatchRejected) {
  // Decided commit but nothing installed anywhere.
  const auto commit_lost = check_cross_shard_atomicity(
      {}, {cross_txn(3, {{kX, 5}, {kY, 5}}, true)}, {{kX, 2}, {kY, 2}});
  EXPECT_FALSE(commit_lost.ok);
  EXPECT_NE(commit_lost.violation.find("reported committed"),
            std::string::npos);
  // Decided abort but every write installed.
  const auto abort_leaked = check_cross_shard_atomicity(
      {}, {cross_txn(4, {{kX, 2}, {kY, 2}}, false)}, {{kX, 2}, {kY, 2}});
  EXPECT_FALSE(abort_leaked.ok);
  EXPECT_NE(abort_leaked.violation.find("reported aborted"),
            std::string::npos);
}

TEST(CrossShardChecker, ReaderOfUninstalledProposalRejected) {
  // Some committed transaction read kX@5 — a version only cross-shard tx 9
  // ever proposed, and tx 9 never installed: a prepared value leaked.
  const std::vector<CommittedTxn> history{txn(1, {{kX, 5}}, {})};
  const auto report = check_cross_shard_atomicity(
      history, {cross_txn(9, {{kX, 5}, {kY, 5}})}, {{kX, 2}, {kY, 2}});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("never installed"), std::string::npos);
}

TEST(CrossShardLogTest, RecordsAndClears) {
  CrossShardLog log;
  log.record(cross_txn(1, {{kX, 2}}, true));
  log.record(cross_txn(2, {{kY, 2}}, false));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.snapshot()[1].tx, 2u);
  EXPECT_FALSE(log.snapshot()[1].committed.value());
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

// ---- end-to-end: the protocol's concurrent histories are serializable ----

harness::ClusterConfig contended_cluster() {
  harness::ClusterConfig config;
  config.n_servers = 7;
  config.base_latency = std::chrono::microseconds{2};
  config.stub.retry.base = std::chrono::microseconds{5};
  return config;
}

void run_concurrent(workloads::Workload& workload, harness::Cluster& cluster,
                    HistoryLog& log, bool use_blocks) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto stub = cluster.make_stub(t);
      ExecutorConfig config;
      config.backoff_base = std::chrono::microseconds{5};
      config.history = &log;
      Executor executor(stub, config, 100 + t);
      Rng rng(200 + t);
      ExecStats stats;
      for (int i = 0; i < 60; ++i) {
        const std::size_t p = workloads::pick_profile(workload.profiles(), rng);
        const auto& profile = workload.profiles()[p];
        const auto params = profile.make_params(rng, i % 2);
        if (use_blocks)
          executor.run(Protocol::kManualCN,
                       with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
                       params, stats);
        else
          executor.run(Protocol::kFlat, with_program(*profile.program), params,
                       stats);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(HistoryChecker, ConcurrentFlatBankHistoryIsSerializable) {
  harness::Cluster cluster(contended_cluster());
  workloads::Bank bank({.n_branches = 4, .n_accounts = 16});
  bank.seed(cluster.servers());
  HistoryLog log;
  run_concurrent(bank, cluster, log, /*use_blocks=*/false);
  EXPECT_EQ(log.size(), 240u);
  const auto report = check_serializable(log.snapshot());
  EXPECT_TRUE(report.ok) << report.violation;
  bank.check_invariants(cluster.servers());
}

TEST(HistoryChecker, ConcurrentNestedBankHistoryIsSerializable) {
  harness::Cluster cluster(contended_cluster());
  workloads::Bank bank({.n_branches = 4, .n_accounts = 16});
  bank.seed(cluster.servers());
  HistoryLog log;
  run_concurrent(bank, cluster, log, /*use_blocks=*/true);
  const auto report = check_serializable(log.snapshot());
  EXPECT_TRUE(report.ok) << report.violation;
  bank.check_invariants(cluster.servers());
}

TEST(HistoryChecker, ConcurrentVacationHistoryIsSerializable) {
  harness::Cluster cluster(contended_cluster());
  workloads::Vacation vacation({.n_items = 8, .n_customers = 16});
  vacation.seed(cluster.servers());
  HistoryLog log;
  run_concurrent(vacation, cluster, log, /*use_blocks=*/true);
  const auto report = check_serializable(log.snapshot());
  EXPECT_TRUE(report.ok) << report.violation;
  vacation.check_invariants(cluster.servers());
}

TEST(HistoryChecker, CheckpointedExecutionHistoryIsSerializable) {
  harness::Cluster cluster(contended_cluster());
  workloads::Bank bank({.n_branches = 4, .n_accounts = 16});
  bank.seed(cluster.servers());
  HistoryLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto stub = cluster.make_stub(t);
      ExecutorConfig config;
      config.backoff_base = std::chrono::microseconds{5};
      config.history = &log;
      Executor executor(stub, config, 300 + t);
      Rng rng(400 + t);
      ExecStats stats;
      for (int i = 0; i < 60; ++i) {
        const auto& profile = bank.profiles()[0];
        executor.run(Protocol::kCheckpoint, with_program(*profile.program),
                     profile.make_params(rng, 0), stats);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto report = check_serializable(log.snapshot());
  EXPECT_TRUE(report.ok) << report.violation;
  bank.check_invariants(cluster.servers());
}

}  // namespace
}  // namespace acn::nesting
