// Unit tests for src/common: RNG, samplers, statistics, latency models.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/common/clock.hpp"
#include "src/common/latency_model.hpp"
#include "src/common/rng.hpp"
#include "src/common/stats.hpp"

namespace acn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[rng.uniform(0, 7)];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [value, count] : counts) EXPECT_GT(count, 800);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // Child must not replay the parent's stream.
  Rng parent2(5);
  (void)parent2();  // same draw the split consumed
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (child() == parent2()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(1);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  for (const auto& [value, count] : counts)
    EXPECT_NEAR(count / 50000.0, 0.1, 0.02);
}

TEST(Zipf, HighThetaConcentratesOnHead) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(2);
  int head = 0;
  for (int i = 0; i < 10000; ++i)
    if (zipf(rng) < 5) ++head;
  EXPECT_GT(head, 5000);
}

TEST(Zipf, RejectsBadArgs) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Nurand, StaysInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const auto v = nurand(rng, 255, 100, 300, 57);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 300u);
  }
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, a, b;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform01() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(LatencyHistogram, PercentilesBracketValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.percentile(0.0), 2u);
  EXPECT_GE(h.percentile(1.0), 512u);
  const auto p50 = h.percentile(0.5);
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 1024u);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(IntervalSeries, CountsPerSlotAndIgnoresOutOfRange) {
  IntervalSeries s(3);
  s.add(0);
  s.add(1, 5);
  s.add(2);
  s.add(7);  // ignored
  EXPECT_EQ(s.at(0), 1u);
  EXPECT_EQ(s.at(1), 5u);
  EXPECT_EQ(s.at(2), 1u);
  EXPECT_EQ(s.at(7), 0u);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[1], 5u);
}

TEST(PercentileOf, InterpolatesExactly) {
  EXPECT_DOUBLE_EQ(percentile_of({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of({1, 2, 3, 4}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
}

TEST(LatencyModel, ZeroAndLoopback) {
  ZeroLatency zero;
  EXPECT_EQ(zero.delay(0, 1, 100).count(), 0);
  FixedLatency fixed(Nanos{1000}, Nanos{10});
  EXPECT_EQ(fixed.delay(2, 2, 100).count(), 0);  // loopback free
  EXPECT_EQ(fixed.delay(0, 1, 0).count(), 1000);
  EXPECT_EQ(fixed.delay(0, 1, 2048).count(), 1020);
}

TEST(LatencyModel, JitterBounded) {
  JitterLatency jitter(Nanos{1000}, Nanos{500}, 7);
  for (int i = 0; i < 200; ++i) {
    const auto d = jitter.delay(0, 1, 64).count();
    EXPECT_GE(d, 1000);
    EXPECT_LE(d, 1500);
  }
}

TEST(Clock, StopwatchAdvances) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds{2});
  EXPECT_GT(watch.elapsed_ns(), 1'000'000u);
}

}  // namespace
}  // namespace acn
