// Observability subsystem tests: histogram bucket math, per-thread shard
// merging, snapshot deltas, JSON well-formedness, the tracer under a
// multi-threaded hammer, and the end-to-end abort-reason counters the
// paper's Figure 4 discussion leans on (partial aborts under closed
// nesting, none under flat).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/driver.hpp"
#include "src/obs/obs.hpp"
#include "src/workloads/bank.hpp"

namespace acn::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON syntax checker (no external deps): validates that `text`
// is one complete JSON value.  Good enough to catch unbalanced braces,
// unescaped quotes, and trailing commas in our exporters.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool json_valid(const std::string& text) { return JsonChecker(text).valid(); }

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size()))
    ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  auto c = registry.counter("tx.commit");
  c.add();
  c.add(41);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("tx.commit"), 42u);
  EXPECT_EQ(snap.counter("missing"), 0u);
}

TEST(Metrics, SameNameSameCell) {
  MetricsRegistry registry;
  auto a = registry.counter("dup");
  auto b = registry.counter("dup");
  a.add(1);
  b.add(2);
  EXPECT_EQ(registry.snapshot().counter("dup"), 3u);
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x", {1, 2}), std::logic_error);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  auto g = registry.gauge("plan.blocks");
  g.set(7);
  EXPECT_EQ(registry.snapshot().gauge("plan.blocks"), 7);
  g.add(-3);
  EXPECT_EQ(registry.snapshot().gauge("plan.blocks"), 4);
}

TEST(Metrics, HistogramBucketMath) {
  MetricsRegistry registry;
  auto h = registry.histogram("lat", {10, 100, 1000});
  // One per bucket: <=10, <=100, <=1000, overflow.
  h.observe(10);
  h.observe(11);
  h.observe(1000);
  h.observe(5000);
  const auto snap = registry.snapshot();
  const HistogramData* data = snap.histogram("lat");
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->counts.size(), 4u);
  EXPECT_EQ(data->counts[0], 1u);
  EXPECT_EQ(data->counts[1], 1u);
  EXPECT_EQ(data->counts[2], 1u);
  EXPECT_EQ(data->counts[3], 1u);
  EXPECT_EQ(data->count(), 4u);
  EXPECT_EQ(data->sum, 10u + 11u + 1000u + 5000u);
  EXPECT_DOUBLE_EQ(data->mean(), (10.0 + 11 + 1000 + 5000) / 4.0);
}

TEST(Metrics, HistogramPercentiles) {
  MetricsRegistry registry;
  auto h = registry.histogram("p", {10, 100, 1000});
  for (int i = 0; i < 90; ++i) h.observe(5);     // bucket <=10
  for (int i = 0; i < 9; ++i) h.observe(50);     // bucket <=100
  h.observe(999);                                // bucket <=1000
  const auto snap = registry.snapshot();
  const HistogramData* data = snap.histogram("p");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->percentile(0.5), 10u);
  EXPECT_EQ(data->percentile(0.95), 100u);
  EXPECT_EQ(data->percentile(1.0), 1000u);
}

TEST(Metrics, HistogramOverflowReportsLastBound) {
  MetricsRegistry registry;
  auto h = registry.histogram("o", {10, 100});
  h.observe(100000);
  const auto snap = registry.snapshot();
  const HistogramData* data = snap.histogram("o");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->percentile(0.5), 100u);  // clamped to last finite bound
}

TEST(Metrics, EmptyHistogramPercentileIsZero) {
  HistogramData data;
  data.bounds = {10, 100};
  data.counts = {0, 0, 0};
  EXPECT_EQ(data.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(data.mean(), 0.0);
}

TEST(Metrics, ExponentialBounds) {
  const auto bounds = MetricsRegistry::exponential_bounds(100, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], 100u);
  EXPECT_EQ(bounds[1], 200u);
  EXPECT_EQ(bounds[2], 400u);
  EXPECT_EQ(bounds[3], 800u);
}

TEST(Metrics, ShardsMergeAcrossThreads) {
  MetricsRegistry registry;
  auto c = registry.counter("hits");
  auto h = registry.histogram("vals", {10, 100});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<std::uint64_t>(i % 2 ? 5 : 50));
      }
    });
  for (auto& thread : threads) thread.join();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("hits"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramData* data = snap.histogram("vals");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(data->counts[0], data->counts[1]);
}

TEST(Metrics, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  auto c = registry.counter("c");
  registry.set_enabled(false);
  c.add(100);
  EXPECT_EQ(registry.snapshot().counter("c"), 0u);
  registry.set_enabled(true);
  c.add(1);
  EXPECT_EQ(registry.snapshot().counter("c"), 1u);
}

TEST(Metrics, DefaultConstructedHandlesAreNoops) {
  MetricsRegistry::Counter c;
  MetricsRegistry::Gauge g;
  MetricsRegistry::Histogram h;
  c.add();      // must not crash
  g.set(1);
  h.observe(1);
}

TEST(Metrics, TlsCacheSurvivesRegistryRecreation) {
  // Same thread, registry destroyed and a new one created (possibly at the
  // same address): the thread-local shard cache must not serve stale state.
  {
    MetricsRegistry first;
    first.counter("n").add(5);
    EXPECT_EQ(first.snapshot().counter("n"), 5u);
  }
  MetricsRegistry second;
  auto c = second.counter("n");
  c.add(1);
  EXPECT_EQ(second.snapshot().counter("n"), 1u);
}

TEST(Metrics, SnapshotSinceSubtracts) {
  MetricsRegistry registry;
  auto c = registry.counter("c");
  auto h = registry.histogram("h", {10});
  c.add(10);
  h.observe(5);
  const auto before = registry.snapshot();
  c.add(7);
  h.observe(5);
  h.observe(50);
  const auto delta = registry.snapshot().since(before);
  EXPECT_EQ(delta.counter("c"), 7u);
  const HistogramData* data = delta.histogram("h");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count(), 2u);
  EXPECT_EQ(data->counts[0], 1u);
  EXPECT_EQ(data->counts[1], 1u);
}

TEST(Metrics, SnapshotJsonAndCsvWellFormed) {
  MetricsRegistry registry;
  registry.counter("tx.commit").add(3);
  registry.gauge("plan.blocks").set(2);
  auto h = registry.histogram("lat", {10, 100});
  h.observe(5);
  h.observe(500);
  const auto snap = registry.snapshot();
  const std::string json = snap.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"tx.commit\""), std::string::npos);
  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("name,kind,stat,value"), std::string::npos);
  EXPECT_NE(csv.find("tx.commit,counter,value,3"), std::string::npos);
}

TEST(Metrics, CellBudgetExhaustionThrows) {
  MetricsRegistry registry(/*max_cells=*/4);
  registry.counter("a");
  registry.counter("b");
  registry.counter("c");
  registry.counter("d");
  EXPECT_THROW(registry.counter("e"), std::length_error);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Trace, SpanBalancesBeginEnd) {
  Tracer tracer;
  {
    Tracer::Span span(&tracer, "tx", "tx", 1, "attempt", 0);
    tracer.instant("abort.partial", "abort", 1);
  }
  const auto threads = tracer.events();
  ASSERT_EQ(threads.size(), 1u);
  const auto& events = threads[0].events;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  tracer.instant("x", "y");
  { Tracer::Span span(&tracer, "tx", "tx"); }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_TRUE(json_valid(tracer.chrome_json()));
}

TEST(Trace, RestartEndsCurrentSpanBeforeNewBegin) {
  // The loop re-arm pattern: end must precede the next begin so B/E stay
  // strictly nested per thread.
  Tracer tracer;
  {
    Tracer::Span span;
    span.restart(&tracer, "a", "c");
    span.restart(&tracer, "b", "c");
  }
  const auto threads = tracer.events();
  ASSERT_EQ(threads.size(), 1u);
  const auto& events = threads[0].events;
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[1].name, "a");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kEnd);
  EXPECT_STREQ(events[2].name, "b");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kBegin);
  EXPECT_STREQ(events[3].name, "b");
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
}

TEST(Trace, FinishIsIdempotent) {
  Tracer tracer;
  Tracer::Span span(&tracer, "a", "c");
  span.finish();
  span.finish();  // second call must be a no-op
  const auto threads = tracer.events();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 2u);
}

TEST(Trace, MultiThreadHammerMonotonePerThread) {
  Tracer tracer;
  constexpr int kThreads = 6;
  constexpr int kSpans = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      tracer.set_thread_name("hammer-" + std::to_string(t));
      for (int i = 0; i < kSpans; ++i) {
        Tracer::Span span(&tracer, "tx", "tx", static_cast<std::uint64_t>(i));
        tracer.instant("block", "block", static_cast<std::uint64_t>(i),
                       "position", i % 4);
      }
    });
  for (auto& thread : threads) thread.join();

  const auto per_thread = tracer.events();
  ASSERT_EQ(per_thread.size(), static_cast<std::size_t>(kThreads));
  for (const auto& te : per_thread) {
    ASSERT_FALSE(te.events.empty());
    std::uint64_t last_ts = 0;
    int depth = 0;
    for (const auto& event : te.events) {
      EXPECT_GE(event.ts_ns, last_ts) << "timestamps regress in tid "
                                      << te.tid;
      last_ts = event.ts_ns;
      if (event.phase == TraceEvent::Phase::kBegin) ++depth;
      if (event.phase == TraceEvent::Phase::kEnd) --depth;
      EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0) << "unbalanced spans in tid " << te.tid;
  }

  const std::string json = tracer.chrome_json();
  ASSERT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Exported B/E counts must balance exactly.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

TEST(Trace, RingOverflowDropsOldestButExportStaysValid) {
  Tracer tracer(/*ring_capacity=*/64);
  for (int i = 0; i < 1000; ++i)
    tracer.instant("tick", "test", static_cast<std::uint64_t>(i));
  EXPECT_GT(tracer.dropped(), 0u);
  const auto threads = tracer.events();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].events.size(), 64u);
  // Oldest retained event is the first after the drop horizon.
  EXPECT_EQ(threads[0].events.front().tx, 1000u - 64u);
  EXPECT_TRUE(json_valid(tracer.chrome_json()));
}

TEST(Trace, ProcessAndThreadMetadataExported) {
  Tracer tracer;
  tracer.set_process(3, "QR-ACN");
  tracer.set_thread_name("client-0");
  tracer.instant("tx", "tx");
  const std::string json = tracer.chrome_json();
  ASSERT_TRUE(json_valid(json));
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("QR-ACN"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("client-0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: abort-reason counters through the driver

harness::ClusterConfig obs_cluster() {
  harness::ClusterConfig config;
  config.n_servers = 7;
  config.base_latency = std::chrono::microseconds{3};
  config.stub.retry.base = std::chrono::microseconds{5};
  return config;
}

harness::DriverConfig obs_driver(Observability* obs) {
  harness::DriverConfig config;
  config.n_clients = 4;
  config.intervals = 2;
  config.interval = std::chrono::milliseconds{150};
  config.executor.backoff_base = std::chrono::microseconds{5};
  config.obs = obs;
  return config;
}

TEST(ObsIntegration, FlatVsAcnAbortReasonCounters) {
  ObsConfig obs_config;
  obs_config.trace_enabled = true;
  Observability obs(obs_config);

  // High contention: few branches, few accounts, closed-loop clients.
  const workloads::BankConfig bank_config{.n_branches = 2, .n_accounts = 32};

  harness::Cluster flat_cluster(obs_cluster());
  workloads::Bank flat_bank(bank_config);
  flat_bank.seed(flat_cluster.servers());
  const auto flat = harness::run(flat_cluster, flat_bank,
                                 harness::Protocol::kFlat, obs_driver(&obs));

  harness::Cluster acn_cluster(obs_cluster());
  workloads::Bank acn_bank(bank_config);
  acn_bank.seed(acn_cluster.servers());
  const auto acn = harness::run(acn_cluster, acn_bank,
                                harness::Protocol::kAcn, obs_driver(&obs));

  // Per-run deltas must agree with the executor's own stats.
  EXPECT_EQ(flat.metrics.counter("tx.commit"), flat.stats.commits);
  EXPECT_EQ(flat.metrics.counter("tx.abort.full"), flat.stats.full_aborts);
  EXPECT_EQ(flat.metrics.counter("tx.abort.partial"), 0u);
  EXPECT_EQ(flat.metrics.counter("block.executed"), 0u);

  EXPECT_EQ(acn.metrics.counter("tx.commit"), acn.stats.commits);
  EXPECT_EQ(acn.metrics.counter("tx.abort.partial"), acn.stats.partial_aborts);
  EXPECT_GT(acn.metrics.counter("block.executed"), 0u);
  EXPECT_GT(acn.metrics.counter("tx.abort.partial"), 0u)
      << "high-contention bank under QR-ACN should partially abort";

  // Reason split sums back to the totals.
  for (const auto* scope : {"full", "partial"}) {
    const std::string base = std::string("tx.abort.") + scope;
    std::uint64_t sum = 0;
    for (int r = 0; r < kReasonCount; ++r)
      sum += acn.metrics.counter(base + "." + abort_reason_name(r));
    EXPECT_EQ(sum, acn.metrics.counter(base)) << base;
  }

  // RPC instrumentation fired, and latency histograms saw every read.
  EXPECT_GT(acn.metrics.counter("rpc.read"), 0u);
  EXPECT_GT(acn.metrics.counter("rpc.commit"), 0u);
  const HistogramData* read_ns = acn.metrics.histogram("rpc.read_ns");
  ASSERT_NE(read_ns, nullptr);
  EXPECT_EQ(read_ns->count(), acn.metrics.counter("rpc.read"));

  // ACN machinery reported through obs as well.
  EXPECT_GT(acn.metrics.counter("acn.adaptations"), 0u);
  EXPECT_EQ(acn.metrics.counter("acn.adaptations"), acn.adaptations);

  // The shared trace carries tx, block, and RPC spans and valid JSON.
  const std::string json = obs.tracer.chrome_json();
  ASSERT_TRUE(json_valid(json));
  EXPECT_GT(count_occurrences(json, "\"name\":\"tx\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"block\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"rpc.read\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

}  // namespace
}  // namespace acn::obs
