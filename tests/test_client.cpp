// shard::Client — the unified submission API over a sharded cluster.
// Covers: single-shard fast-path purity (no other group hears anything),
// misprediction escalation (fast-path ObjectMissing on a foreign-owned key
// re-runs cross-shard and commits; a genuinely absent key stays a workload
// bug), admission gating of the cross-shard path (the same
// admit / on_full_abort / finish conversation the Executor has, with 2PC
// aborts classified through the shared acn::outcome_of), manual-CN block
// execution across shards, and ClientFleet building a custom/replicated
// ShardMap from a workload's placement.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/acn/unitgraph.hpp"
#include "src/chaos/chaos.hpp"
#include "src/dtm/abort.hpp"
#include "src/harness/cluster.hpp"
#include "src/shard/client.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard_map.hpp"
#include "src/workloads/tpcc.hpp"

namespace acn::shard {
namespace {

using ir::ProgramBuilder;
using ir::TxEnv;
using ir::VarId;
using store::ObjectKey;
using store::Record;

harness::ClusterConfig fast_cluster(std::size_t groups,
                                    std::size_t per_group = 3) {
  harness::ClusterConfig config;
  config.n_servers = per_group;
  config.n_groups = groups;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

/// Blocks of 100 ids round-robin across groups: id 5 is group 0, id 105
/// group 1 (same deterministic placement test_shard.cpp uses).
ShardMap range_map(std::uint32_t n_shards) {
  ShardMapConfig config;
  config.n_shards = n_shards;
  config.partitioning = Partitioning::kRange;
  config.range_block = 100;
  return ShardMap(config);
}

acn::ExecutorConfig fast_executor() {
  acn::ExecutorConfig config;
  config.backoff_base = std::chrono::microseconds{1};
  return config;
}

/// [read key(param 0) for-write] -> [increment field 0].  The whole
/// footprint is param-predictable, so the route plan is exact.
ir::TxProgram increment_program() {
  ProgramBuilder b("client.inc", 1);
  const VarId p = b.param(0);
  const VarId v = b.remote_read(
      1, {p},
      [p](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p))};
      },
      "read", /*for_write=*/true);
  b.local({v}, {v},
          [v](TxEnv& e) {
            Record r = e.get(v);
            r[0] += 1;
            e.write_object(v, std::move(r));
          },
          "increment");
  return b.build();
}

/// Unconditional transfer between two param-keyed accounts; `hook` (when
/// set) runs inside the final local op, before the writes are buffered —
/// the seam the admission-gate test uses to inject a conflicting rival.
ir::TxProgram transfer_program(std::function<void()> hook = {}) {
  ProgramBuilder b("client.transfer", 2);
  const VarId p_src = b.param(0);
  const VarId p_dst = b.param(1);
  const VarId src = b.remote_read(
      1, {p_src},
      [p_src](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p_src))};
      },
      "read src", /*for_write=*/true);
  const VarId dst = b.remote_read(
      1, {p_dst},
      [p_dst](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p_dst))};
      },
      "read dst", /*for_write=*/true);
  b.local({src, dst}, {src, dst},
          [src, dst, hook](TxEnv& e) {
            if (hook) hook();
            Record a = e.get(src);
            Record d = e.get(dst);
            a[0] -= 75;
            d[0] += 75;
            e.write_object(src, std::move(a));
            e.write_object(dst, std::move(d));
          },
          "transfer");
  return b.build();
}

/// A pointer chase: the second key comes from a value the first read
/// produced, so the predicted footprint sees only the home key and the
/// router plans single-shard — the misprediction shape.
ir::TxProgram chase_program() {
  ProgramBuilder b("client.chase", 1);
  const VarId p = b.param(0);
  const VarId home = b.remote_read(
      1, {p},
      [p](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p))};
      },
      "read home", /*for_write=*/true);
  const VarId ptr = b.fresh_var();
  b.local({home}, {ptr},
          [home, ptr](TxEnv& e) { e.seti(ptr, e.get(home)[1]); }, "deref");
  const VarId away = b.remote_read(
      1, {ptr},
      [ptr](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(ptr))};
      },
      "read away", /*for_write=*/true);
  b.local({home, away}, {home, away},
          [home, away](TxEnv& e) {
            Record h = e.get(home);
            Record a = e.get(away);
            h[0] -= 5;
            a[0] += 5;
            e.write_object(home, std::move(h));
            e.write_object(away, std::move(a));
          },
          "transfer");
  return b.build();
}

class FakeGate final : public acn::SchedulerGate {
 public:
  void admit(const KeyFootprint& footprint) override {
    ++admits;
    admitted = footprint;
  }
  void on_full_abort(acn::TxOutcome kind,
                     const std::vector<ir::ObjectKey>& conflict) override {
    ++full_aborts;
    abort_kinds.push_back(kind);
    conflicts.insert(conflicts.end(), conflict.begin(), conflict.end());
  }
  void finish(acn::TxOutcome outcome) override {
    ++finishes;
    last_outcome = outcome;
  }

  int admits = 0;
  int full_aborts = 0;
  int finishes = 0;
  KeyFootprint admitted;
  std::vector<acn::TxOutcome> abort_kinds;
  std::vector<ir::ObjectKey> conflicts;
  acn::TxOutcome last_outcome = acn::TxOutcome::kBusy;
};

TEST(Client, SingleShardFastPathNeverTouchesOtherGroups) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 0});

  ClientStats stats;
  Client client(cluster, router, stats, /*client_ordinal=*/0, fast_executor(),
                /*seed=*/7);
  const auto program = increment_program();
  acn::ExecStats es;
  client.run(harness::Protocol::kFlat, acn::with_program(program),
             {Record{5}}, es);

  EXPECT_EQ(es.commits, 1u);
  EXPECT_EQ(stats.fast_path.load(), 1u);
  EXPECT_EQ(stats.cross_shard.load(), 0u);
  EXPECT_EQ(stats.escalations.load(), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 101);
  // The fast-path invariant: group 1 heard NOTHING.
  for (dtm::Server* server : cluster.group_servers(1)) {
    EXPECT_EQ(server->stats().reads.load(), 0u);
    EXPECT_EQ(server->stats().prepares.load(), 0u);
    EXPECT_EQ(server->stats().commits.load(), 0u);
  }
}

TEST(Client, MispredictionEscalatesToCrossShardAndCommits) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  // Home record's field 1 points at id 105 — a key group 1 owns that the
  // static prediction cannot see.
  seed_sharded(cluster, map, {1, 5}, Record{50, 105});
  seed_sharded(cluster, map, {1, 105}, Record{50, 0});

  ClientStats stats;
  Client client(cluster, router, stats, 0, fast_executor(), 11);
  const auto program = chase_program();
  acn::ExecStats es;
  client.run(harness::Protocol::kFlat, acn::with_program(program),
             {Record{5}}, es);

  // Planned single-shard, surfaced ObjectMissing on the foreign key,
  // re-ran cross-shard, committed by 2PC on both groups.
  EXPECT_EQ(es.commits, 1u);
  EXPECT_EQ(stats.fast_path.load(), 1u);
  EXPECT_EQ(stats.escalations.load(), 1u);
  EXPECT_EQ(stats.cross_shard.load(), 1u);
  EXPECT_EQ(stats.cross_commits.load(), 1u);
  EXPECT_EQ(router.stats().mispredicted, 1u);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 45);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 105}).value.fields[0], 55);
  // Nothing half-done: no open lease or protected key anywhere.
  for (dtm::Server* server : cluster.servers()) {
    EXPECT_EQ(server->open_lease_count(), 0u);
    EXPECT_EQ(server->store().protected_count(), 0u);
  }
}

TEST(Client, GenuinelyMissingKeyIsNotAnEscalation) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  // Nothing seeded: id 7 is group 0's own key, so its absence on the home
  // group is a workload bug, not a routing miss.
  ClientStats stats;
  Client client(cluster, router, stats, 0, fast_executor(), 13);
  const auto program = increment_program();
  acn::ExecStats es;
  EXPECT_THROW(client.run(harness::Protocol::kFlat,
                          acn::with_program(program), {Record{7}}, es),
               dtm::ObjectMissing);
  EXPECT_EQ(stats.escalations.load(), 0u);
  EXPECT_EQ(stats.cross_shard.load(), 0u);
}

TEST(Client, CrossShardPathIsAdmissionGatedAndClassifiesAborts) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};
  seed_sharded(cluster, map, src, Record{500});
  seed_sharded(cluster, map, dst, Record{500});

  // On the first attempt only, a rival commits a new version of dst after
  // this transaction read it — the 2PC prepare must fail validation, the
  // gate must hear the abort as kValidation naming dst, and the retry must
  // commit against the rival's value.
  CrossShardCoordinator rival(cluster, router, /*client_ordinal=*/9);
  bool rival_fired = false;
  const auto program = transfer_program([&] {
    if (rival_fired) return;
    rival_fired = true;
    KeyFootprint footprint;
    footprint.push_back({dst, true});
    ShardTx tx = rival.begin(footprint);
    tx.write(dst, Record{999});
    tx.commit();
  });

  ClientStats stats;
  Client client(cluster, router, stats, 0, fast_executor(), 17);
  FakeGate gate;
  acn::RunOptions options = acn::with_program(program);
  options.scheduler = &gate;
  acn::ExecStats es;
  client.run(harness::Protocol::kFlat, options, {Record{5}, Record{105}}, es);

  EXPECT_EQ(es.commits, 1u);
  EXPECT_EQ(es.full_aborts, 1u);
  EXPECT_EQ(es.aborts_at_commit, 1u);
  EXPECT_EQ(stats.cross_shard.load(), 1u);
  EXPECT_EQ(stats.cross_commits.load(), 1u);

  // One admit (with the full predicted footprint), one classified abort,
  // one finish(kCommitted) — the Executor's exact gate conversation.
  EXPECT_EQ(gate.admits, 1);
  ASSERT_EQ(gate.admitted.size(), 2u);
  EXPECT_EQ(gate.admitted[0].key, src);
  EXPECT_EQ(gate.admitted[1].key, dst);
  ASSERT_EQ(gate.full_aborts, 1);
  EXPECT_EQ(gate.abort_kinds.front(), acn::TxOutcome::kValidation);
  ASSERT_FALSE(gate.conflicts.empty());
  EXPECT_EQ(gate.conflicts.front(), dst);
  EXPECT_EQ(gate.finishes, 1);
  EXPECT_EQ(gate.last_outcome, acn::TxOutcome::kCommitted);

  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 425);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 999 + 75);
}

TEST(Client, OutcomeOfClassifies2pcAbortsForTheScheduler) {
  using dtm::AbortDetail;
  using dtm::AbortKind;
  using dtm::TxAbort;
  EXPECT_EQ(acn::outcome_of(TxAbort(AbortKind::kValidation, {{1, 5}})),
            acn::TxOutcome::kValidation);
  EXPECT_EQ(acn::outcome_of(TxAbort(AbortKind::kBusy, {})),
            acn::TxOutcome::kBusy);
  EXPECT_EQ(acn::outcome_of(
                TxAbort(AbortKind::kBusy, {}, AbortDetail::kLeaseExpired)),
            acn::TxOutcome::kLeaseExpired);
  EXPECT_EQ(acn::outcome_of(TxAbort(AbortKind::kUnavailable, {})),
            acn::TxOutcome::kUnavailable);
}

TEST(Client, ManualCnBlocksExecuteAcrossShards) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{500});
  seed_sharded(cluster, map, {1, 105}, Record{500});

  const auto program = transfer_program();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  const auto sequence = initial_sequence(model);
  ASSERT_GT(sequence.size(), 1u);

  ClientStats stats;
  Client client(cluster, router, stats, 0, fast_executor(), 19);
  acn::ExecStats es;
  client.run(harness::Protocol::kManualCN,
             acn::with_blocks(program, model, sequence),
             {Record{5}, Record{105}}, es);

  EXPECT_EQ(es.commits, 1u);
  EXPECT_GE(es.blocks_executed, sequence.size());
  EXPECT_EQ(stats.cross_commits.load(), 1u);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 425);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 105}).value.fields[0], 575);
}

TEST(Client, AbandonedCommitResolvesBeforeChaosStopDeclaresHealed) {
  // The satellite scenario end to end at the client layer: a coordinator
  // prepares both groups, delivers phase 2 to group 0 only, and abandons
  // the transaction.  ChaosController::stop() must not declare the cluster
  // healed until cooperative termination finished the transfer, and a
  // normal client afterwards observes the COMMITTED state on both groups
  // with the atomicity-breach invariant intact.
  auto config = fast_cluster(2);
  config.prepare_lease_ns = 40'000'000;  // 40 ms
  harness::Cluster cluster(config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};  // groups 0 and 1
  seed_sharded(cluster, map, src, Record{500});
  seed_sharded(cluster, map, dst, Record{500});

  CrossShardCoordinator coordinator(cluster, router, /*client_ordinal=*/9);
  {
    KeyFootprint footprint;
    footprint.push_back({src, true});
    footprint.push_back({dst, true});
    ShardTx tx = coordinator.begin(footprint);
    const Record a = tx.read(src);
    const Record b = tx.read(dst);
    tx.write(src, Record{a.fields[0] - 75});
    tx.write(dst, Record{b.fields[0] + 75});
    ASSERT_EQ(tx.prepare_all(), 2u);
    // Group 1 unreachable for phase 2: its push is an in-doubt handoff.
    cluster.network().set_partition({{}, cluster.group_members(1)});
    tx.commit_prepared();
  }  // handle abandoned — nobody left to retry group 1's push
  EXPECT_EQ(coordinator.stats().indoubt_handoffs.load(), 1u);
  EXPECT_EQ(coordinator.stats().atomicity_breaches.load(), 0u);

  // Group 1's lease runs out behind the partition; stop() heals, parks the
  // overdue lease and resolves it from the decision record.
  std::this_thread::sleep_for(std::chrono::milliseconds{60});
  chaos::ChaosController chaos(cluster, chaos::FaultPlan{}, nullptr,
                               /*verbose=*/false);
  chaos.start();
  chaos.stop();
  EXPECT_EQ(chaos.indoubt_report().resolved_commit, 1u);
  EXPECT_EQ(chaos.indoubt_report().unresolved, 0u);

  ClientStats stats;
  acn::ExecStats es;
  {
    Client client(cluster, router, stats, 0, fast_executor(), 23);
    client.run(harness::Protocol::kFlat, acn::with_program(increment_program()),
               {Record{105}}, es);
  }
  EXPECT_EQ(es.commits, 1u);
  EXPECT_EQ(stats.atomicity_breaches.load(), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 425);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 576);
}

TEST(ClientFleet, BuildsCustomMapFromWorkloadPlacement) {
  workloads::TpccConfig config;
  config.n_warehouses = 4;
  workloads::Tpcc tpcc(config);
  ClientFleet fleet(tpcc, /*n_shards=*/4);

  // Warehouse-per-group, with the read-only item table replicated.
  EXPECT_EQ(fleet.map().config().partitioning, Partitioning::kCustom);
  EXPECT_TRUE(fleet.map().replicated(workloads::Tpcc::kItem));
  for (store::Field w = 0; w < 4; ++w) {
    const auto group = static_cast<std::uint32_t>(w);
    EXPECT_EQ(fleet.map().shard_of(tpcc.warehouse_key(w)), group);
    EXPECT_EQ(fleet.map().shard_of(tpcc.district_key(w, 3)), group);
    EXPECT_EQ(fleet.map().shard_of(tpcc.customer_key(w, 9, 17)), group);
    EXPECT_EQ(fleet.map().shard_of(tpcc.stock_key(w, 123)), group);
    EXPECT_EQ(fleet.map().shard_of(tpcc.order_key(w, 2, 77)), group);
    EXPECT_EQ(fleet.map().shard_of(
                  tpcc.history_key(workloads::Tpcc::history_id(w, 12345))),
              group);
  }
  // shard_of() (the driver's hotness partitioner) agrees with the map.
  const auto partition = fleet.shard_of();
  EXPECT_EQ(partition(tpcc.district_key(2, 0)), 2u);
}

TEST(ClientFleet, SeedsOwnerScopedAndFactoryBuildsWorkingClients) {
  harness::Cluster cluster(fast_cluster(2));
  workloads::TpccConfig config;
  config.n_warehouses = 2;
  workloads::Tpcc tpcc(config);
  ClientFleet fleet(tpcc, 2);
  fleet.seed(cluster, tpcc);

  // Owner-scoped: warehouse 1's district rows live only on group 1; the
  // replicated item table is present on both groups.
  const ObjectKey d1 = tpcc.district_key(1, 0);
  for (dtm::Server* server : cluster.group_servers(0))
    EXPECT_EQ(server->store().read(d1).status, store::ReadStatus::kMissing);
  bool group1_has = false;
  for (dtm::Server* server : cluster.group_servers(1))
    group1_has |= server->store().read(d1).status == store::ReadStatus::kOk;
  EXPECT_TRUE(group1_has);
  for (std::size_t g = 0; g < 2; ++g) {
    bool has_item = false;
    for (dtm::Server* server : cluster.group_servers(g))
      has_item |=
          server->store().read(tpcc.item_key(0)).status == store::ReadStatus::kOk;
    EXPECT_TRUE(has_item);
  }

  // A factory-built Client runs a pinned NewOrder on the fast path.
  auto submitter = fleet.factory()(cluster, 0, fast_executor(), 23);
  const auto& profile = tpcc.profiles()[0];
  const std::size_t lines = workloads::Tpcc::kOrderLines;
  ir::Record items(lines), qtys(lines, 1), supply(lines, 1);
  for (std::size_t l = 0; l < lines; ++l)
    items[l] = static_cast<store::Field>(l);
  acn::ExecStats es;
  submitter->run(harness::Protocol::kFlat, acn::with_program(*profile.program),
                 {Record{1}, Record{0}, Record{0}, items, qtys, supply}, es);
  EXPECT_EQ(es.commits, 1u);
  EXPECT_EQ(fleet.stats().fast_path.load(), 1u);
  EXPECT_EQ(fleet.stats().cross_shard.load(), 0u);
}

}  // namespace
}  // namespace acn::shard
