// Fault-injection and recovery tests: prepare leases (presumed abort),
// idempotent phase two, retry-ladder deadlines, crash/rejoin catch-up, and
// the declarative ChaosController schedule — the subsystem behind
// bench/abl_faults and bench/abl_partition.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "src/chaos/chaos.hpp"
#include "src/common/clock.hpp"
#include "src/harness/driver.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/workload.hpp"

namespace acn::chaos {
namespace {

using namespace std::chrono_literals;
using harness::CatchUpScope;
using harness::Cluster;
using harness::ClusterConfig;
using store::ObjectKey;
using store::Record;

ClusterConfig fast_config(std::size_t n_servers = 10) {
  ClusterConfig config;
  config.n_servers = n_servers;
  config.base_latency = std::chrono::nanoseconds{0};
  config.stub.retry.max_retries = 2;
  config.stub.retry.base = std::chrono::nanoseconds{1000};
  return config;
}

const ObjectKey kA{1, 1};

void expire_everywhere(Cluster& cluster) {
  for (auto* server : cluster.servers()) server->expire_stale_leases();
}

std::size_t protected_everywhere(Cluster& cluster) {
  std::size_t total = 0;
  for (auto* server : cluster.servers())
    total += server->store().protected_count();
  return total;
}

TEST(LeafVictims, DerivedFromTopologyNeverTheRoot) {
  Cluster ten(fast_config(10));  // ternary tree: leaves are 4..9
  EXPECT_EQ(ChaosController::leaf_victims(ten, 3),
            (std::vector<net::NodeId>{9, 8, 7}));
  EXPECT_EQ(ChaosController::leaf_victims(ten, 4),
            (std::vector<net::NodeId>{9, 8, 7, 6}));

  Cluster four(fast_config(4));  // root 0 with leaves 1..3
  const auto victims = ChaosController::leaf_victims(four, 8);
  EXPECT_EQ(victims, (std::vector<net::NodeId>{3, 2, 1}));
  for (const auto id : victims) EXPECT_NE(id, 0);
}

TEST(Leases, ExpiryReleasesOrphanedPrepare) {
  auto config = fast_config();
  config.prepare_lease_ns = 2'000'000;  // 2ms
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{7});

  // Prepare and walk away — the crashed-client scenario.
  auto doomed = cluster.make_stub(0);
  doomed.prepare(1, {}, {kA}, {1});
  EXPECT_GT(protected_everywhere(cluster), 0u);

  std::this_thread::sleep_for(10ms);
  expire_everywhere(cluster);  // the sweep normally runs inside handle()

  EXPECT_EQ(protected_everywhere(cluster), 0u);
  std::uint64_t expired = 0;
  std::size_t open = 0;
  for (auto* server : cluster.servers()) {
    expired += server->stats().leases_expired.load();
    open += server->open_lease_count();
  }
  EXPECT_GT(expired, 0u);
  EXPECT_EQ(open, 0u);

  // The key is usable again: another transaction commits through it.
  auto stub = cluster.make_stub(1);
  const auto out = stub.read(2, kA, {});
  stub.commit(
      stub.prepare(2, {{kA, out.record.version}}, {kA}, {out.record.version}),
      {Record{8}});
  EXPECT_EQ(stub.read(3, kA, {}).record.value, Record{8});
}

TEST(Leases, LateCommitAfterExpiryIsRefused) {
  auto config = fast_config();
  config.prepare_lease_ns = 2'000'000;  // 2ms
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{7});

  auto stub = cluster.make_stub(0);
  const auto ticket = stub.prepare(1, {}, {kA}, {1});
  std::this_thread::sleep_for(10ms);
  expire_everywhere(cluster);  // presumed abort

  try {
    stub.commit(ticket, {Record{9}});
    FAIL() << "expected TxAbort";
  } catch (const dtm::TxAbort& abort) {
    EXPECT_EQ(abort.kind(), dtm::AbortKind::kBusy);
  }
  // The write must not have taken effect anywhere.
  EXPECT_EQ(stub.read(2, kA, {}).record.value, Record{7});
  EXPECT_EQ(stub.read(2, kA, {}).record.version, 1u);
  std::uint64_t rejected = 0;
  for (auto* server : cluster.servers())
    rejected += server->stats().commits_rejected.load();
  EXPECT_GT(rejected, 0u);
}

TEST(Leases, FreshPrepareSupersedesPresumedAbort) {
  // A transaction whose first prepare expired may legitimately retry from
  // scratch; the re-prepare must clear the presumed-abort verdict so its
  // second commit is accepted.
  auto config = fast_config();
  config.prepare_lease_ns = 2'000'000;
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{7});

  auto stub = cluster.make_stub(0);
  stub.prepare(5, {}, {kA}, {1});
  std::this_thread::sleep_for(10ms);
  expire_everywhere(cluster);

  const auto ticket = stub.prepare(5, {}, {kA}, {1});
  EXPECT_NO_THROW(stub.commit(ticket, {Record{11}}));
  EXPECT_EQ(stub.read(6, kA, {}).record.value, Record{11});
}

TEST(RetryLadder, DeadlineBoundsBusyRetries) {
  auto config = fast_config();
  config.stub.retry.max_retries = 1 << 20;  // retries alone would spin ~forever
  config.stub.retry.base = std::chrono::microseconds{10};
  config.stub.op_deadline = std::chrono::milliseconds{5};
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{1});
  for (auto* server : cluster.servers())
    ASSERT_TRUE(server->store().try_protect(kA, 999));

  auto stub = cluster.make_stub(0);
  Stopwatch watch;
  try {
    stub.read(1, kA, {});
    FAIL() << "expected TxAbort";
  } catch (const dtm::TxAbort& abort) {
    EXPECT_EQ(abort.kind(), dtm::AbortKind::kBusy);
  }
  // The deadline, not the (astronomical) retry cap, ended the ladder.
  EXPECT_LT(watch.elapsed_ns(), 2'000'000'000u);
}

TEST(RetryLadder, DeadlineBoundsUnreachableRetries) {
  auto config = fast_config();
  config.stub.max_quorum_retries = 1 << 20;
  config.stub.retry.base = std::chrono::microseconds{10};
  config.stub.op_deadline = std::chrono::milliseconds{5};
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{1});
  cluster.network().set_drop_probability(1.0);

  auto stub = cluster.make_stub(0);
  Stopwatch watch;
  try {
    stub.read(1, kA, {});
    FAIL() << "expected TxAbort";
  } catch (const dtm::TxAbort& abort) {
    EXPECT_EQ(abort.kind(), dtm::AbortKind::kUnavailable);
  }
  EXPECT_LT(watch.elapsed_ns(), 2'000'000'000u);
}

TEST(Recovery, CrashRejoinCatchesUpFromReadQuorum) {
  auto config = fast_config();
  config.stub.max_quorum_retries = 16;  // re-select around the crashed leaf
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{0});

  cluster.crash_node(9);
  EXPECT_TRUE(cluster.network().node_down(9));

  auto stub = cluster.make_stub(0);
  for (int i = 0; i < 10; ++i) {
    const auto a = stub.read(1 + i, kA, {});
    stub.commit(
        stub.prepare(1 + i, {{kA, a.record.version}}, {kA}, {a.record.version}),
        {Record{a.record.value[0] + 1}});
  }

  const std::size_t caught_up = cluster.restart_node(9);
  EXPECT_FALSE(cluster.network().node_down(9));
  EXPECT_GE(caught_up, 1u);
  // The rejoined replica holds the newest version of the hot key — read
  // quorums intersect write quorums, so the sync source had it.
  const auto local = cluster.server(9).store().read(kA);
  EXPECT_EQ(local.status, store::ReadStatus::kOk);
  EXPECT_EQ(local.record.version, 11u);
  EXPECT_EQ(local.record.value, Record{10});
  // An exhaustive re-sync finds nothing the quorum sync missed.
  cluster.crash_node(9);
  EXPECT_EQ(cluster.restart_node(9, CatchUpScope::kAllReplicas), 0u);
}

TEST(Recovery, RestartUnknownNodeThrows) {
  Cluster cluster(fast_config(4));
  EXPECT_THROW(cluster.restart_node(99), std::invalid_argument);
}

TEST(Controller, FiresScheduleAndStopHeals) {
  Cluster cluster(fast_config(4));
  workloads::seed_all(cluster.servers(), kA, Record{1});

  FaultPlan plan;
  plan.drop_burst(0ms, 0.5, 10ms);
  plan.latency_spike(0ms, std::chrono::microseconds{100}, 10ms);
  plan.crash(5ms, {3});                 // no restart: stop() must rejoin it
  plan.isolate(5ms, {2});               // no heal: stop() must clear it
  ASSERT_EQ(plan.events().size(), 6u);  // burst+restore, spike+restore, 2

  ChaosController chaos(cluster, plan, nullptr, /*verbose=*/false);
  chaos.start();
  chaos.stop();  // waits for the tail of the schedule, then heals

  EXPECT_EQ(chaos.events_fired(), plan.events().size());
  auto& net = cluster.network();
  EXPECT_EQ(net.drop_probability(), 0.0);
  EXPECT_EQ(net.extra_latency(), std::chrono::nanoseconds{0});
  EXPECT_FALSE(net.partitioned());
  for (std::size_t i = 0; i < cluster.size(); ++i)
    EXPECT_FALSE(net.node_down(static_cast<net::NodeId>(i)));
  // stop() is idempotent.
  EXPECT_NO_THROW(chaos.stop());
}

TEST(Controller, CrashLoseDiskWipesTheVictimBeforeRejoin) {
  auto config = fast_config(4);
  config.durability.mode = harness::DurabilityMode::kWal;
  config.durability.data_dir = "wal-test-chaos-losedisk";
  config.durability.flush_interval_ns = 0;
  config.durability.fsync = false;
  std::filesystem::remove_all(config.durability.data_dir);
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{7});
  cluster.checkpoint_all();
  ASSERT_NE(cluster.persistence(3), nullptr);
  ASSERT_FALSE(cluster.persistence(3)->snapshot_seqs().empty());

  FaultPlan plan;
  plan.crash_lose_disk(0ms, {3});  // no restart: stop() must rejoin it
  ASSERT_EQ(plan.events().size(), 1u);
  ChaosController chaos(cluster, plan, nullptr, /*verbose=*/false);
  chaos.start();
  // Wait for the event, then observe the wiped disk while still down.
  while (!cluster.network().node_down(3)) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(cluster.persistence(3)->snapshot_seqs().empty());
  EXPECT_TRUE(cluster.persistence(3)->segment_seqs().empty());
  chaos.stop();

  EXPECT_EQ(chaos.events_fired(), 1u);
  EXPECT_FALSE(cluster.network().node_down(3));
  // Recovery found an empty disk; the peer sync rebuilt the replica.
  const auto local = cluster.server(3).store().read(kA);
  ASSERT_EQ(local.status, store::ReadStatus::kOk);
  EXPECT_EQ(local.record.value, Record{7});
  std::filesystem::remove_all(config.durability.data_dir);
}

TEST(Controller, PartitionThenHealKeepsBankInvariant) {
  auto config = fast_config();
  config.prepare_lease_ns = 50'000'000;  // 50ms
  config.stub.retry.max_retries = 10;
  config.stub.max_quorum_retries = 16;
  config.stub.op_deadline = std::chrono::milliseconds{200};
  Cluster cluster(config);
  workloads::Bank bank;
  bank.seed(cluster.servers());

  const auto victims = ChaosController::leaf_victims(cluster, 2);
  FaultPlan plan;
  plan.drop_burst(20ms, 0.05, 120ms);
  plan.isolate(40ms, victims, /*heal_after=*/80ms);

  ChaosController chaos(cluster, plan, nullptr, /*verbose=*/false);

  harness::DriverConfig driver;
  driver.n_clients = 3;
  driver.intervals = 4;
  driver.interval = std::chrono::milliseconds{50};
  driver.check_invariants = true;  // run() throws if the Bank sum drifts

  chaos.start();
  const auto result =
      harness::run(cluster, bank, harness::Protocol::kAcn, driver);
  chaos.stop();

  EXPECT_GT(result.stats.commits, 0u);
  // Any prepare orphaned by the partition holds a 50ms lease at most.
  std::this_thread::sleep_for(60ms);
  expire_everywhere(cluster);
  EXPECT_EQ(protected_everywhere(cluster), 0u);
}

}  // namespace
}  // namespace acn::chaos
