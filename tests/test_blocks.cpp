// Block / BlockSequence tests: construction, validity, op ordering.
#include <gtest/gtest.h>

#include "src/acn/blocks.hpp"

namespace acn {
namespace {

using ir::ProgramBuilder;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::ObjectKey;

/// A -> B (B's key depends on A), C independent.
struct Chain {
  TxProgram program;
  DependencyModel model;

  Chain() {
    ProgramBuilder b("chain", 0);
    const VarId a = b.remote_read(
        1, {}, [](const TxEnv&) { return ObjectKey{1, 0}; }, "A");
    b.remote_read(2, {a}, [](const TxEnv&) { return ObjectKey{2, 0}; }, "B[A]");
    b.remote_read(3, {}, [](const TxEnv&) { return ObjectKey{3, 0}; }, "C");
    program = b.build();
    model = build_dependency_model(program, AttachPolicy::kLatestProducer);
  }
};

TEST(Blocks, InitialSequenceIsOneUnitPerBlock) {
  Chain chain;
  const auto seq = initial_sequence(chain.model);
  ASSERT_EQ(seq.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(seq[i].units, std::vector<std::size_t>{i});
  EXPECT_TRUE(sequence_valid(seq, chain.model));
}

TEST(Blocks, SingleBlockCoversEverything) {
  Chain chain;
  const auto seq = single_block(chain.model);
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0].units.size(), 3u);
  EXPECT_TRUE(sequence_valid(seq, chain.model));
}

TEST(Blocks, ValidityRejectsBackwardDependency) {
  Chain chain;
  // B's unit before A's unit violates A -> B.
  const std::size_t ua = chain.model.unit_of_op[0];
  const std::size_t ub = chain.model.unit_of_op[1];
  const std::size_t uc = chain.model.unit_of_op[2];
  BlockSequence bad{{{ub}}, {{ua}}, {{uc}}};
  EXPECT_FALSE(sequence_valid(bad, chain.model));
  BlockSequence good{{{uc}}, {{ua}}, {{ub}}};
  EXPECT_TRUE(sequence_valid(good, chain.model));
}

TEST(Blocks, ValidityAllowsDependentUnitsInSameBlock) {
  Chain chain;
  const std::size_t ua = chain.model.unit_of_op[0];
  const std::size_t ub = chain.model.unit_of_op[1];
  const std::size_t uc = chain.model.unit_of_op[2];
  BlockSequence merged{{{ua, ub}}, {{uc}}};
  EXPECT_TRUE(sequence_valid(merged, chain.model));
}

TEST(Blocks, ValidityRejectsMissingOrDuplicateUnits) {
  Chain chain;
  EXPECT_FALSE(sequence_valid({{{0}}, {{1}}}, chain.model));          // missing 2
  EXPECT_FALSE(sequence_valid({{{0}}, {{1}}, {{1, 2}}}, chain.model));  // dup 1
  EXPECT_FALSE(sequence_valid({{{0}}, {{1}}, {{2, 9}}}, chain.model));  // bogus
}

TEST(Blocks, BlockOpsSortedAcrossUnits) {
  Chain chain;
  const Block both{{chain.model.unit_of_op[1], chain.model.unit_of_op[0]}};
  const auto ops = block_ops(both, chain.model);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_LT(ops[0], ops[1]);
  EXPECT_EQ(ops[0], 0u);
}

TEST(Blocks, DependentDetection) {
  Chain chain;
  const Block a{{chain.model.unit_of_op[0]}};
  const Block bb{{chain.model.unit_of_op[1]}};
  const Block c{{chain.model.unit_of_op[2]}};
  EXPECT_TRUE(blocks_dependent(a, bb, chain.model));
  EXPECT_TRUE(blocks_dependent(bb, a, chain.model));  // either direction
  EXPECT_FALSE(blocks_dependent(a, c, chain.model));
}

TEST(Blocks, DescribeListsBlocksAndOps) {
  Chain chain;
  const auto text = describe_sequence(initial_sequence(chain.model), chain.model);
  EXPECT_NE(text.find("B0"), std::string::npos);
  EXPECT_NE(text.find("B2"), std::string::npos);
  EXPECT_NE(text.find("B[A]"), std::string::npos);
}

}  // namespace
}  // namespace acn
