// Workload tests: program shapes, parameter generators (phase behaviour),
// seeding, single-client execution effects, and invariant checkers for
// Bank, Vacation and TPC-C.
#include <gtest/gtest.h>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"
#include "src/workloads/vacation.hpp"

namespace acn::workloads {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using ir::Record;
using store::Field;

ClusterConfig fast_config(std::size_t n = 5) {
  ClusterConfig config;
  config.n_servers = n;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

ExecutorConfig fast_executor() {
  ExecutorConfig config;
  config.backoff_base = std::chrono::nanoseconds{100};
  return config;
}

// ---------------- Bank -----------------------------------------------------

TEST(Bank, ProfilesAndWeights) {
  Bank bank;
  ASSERT_EQ(bank.profiles().size(), 2u);
  EXPECT_DOUBLE_EQ(bank.profiles()[0].weight, 0.9);
  EXPECT_DOUBLE_EQ(bank.profiles()[1].weight, 0.1);
  EXPECT_EQ(bank.profiles()[0].program->name, "bank.transfer");
  EXPECT_EQ(bank.profiles()[0].program->remote_op_count(), 4u);
  EXPECT_TRUE(sequence_valid(bank.profiles()[0].manual_sequence,
                             bank.profiles()[0].static_model));
  EXPECT_EQ(bank.profiles()[0].static_model.forced_merges, 0u);
}

TEST(Bank, TransferModelHasFourIndependentUnits) {
  Bank bank;
  const auto& model = bank.profiles()[0].static_model;
  ASSERT_EQ(model.units.size(), 4u);
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_EQ(model.units[u].ops.size(), 2u);  // access + its write-back
    EXPECT_TRUE(model.preds[u].empty());
    EXPECT_TRUE(model.succs[u].empty());
  }
}

TEST(Bank, ManualSequenceIsFigure2) {
  Bank bank;
  const auto& profile = bank.profiles()[0];
  ASSERT_EQ(profile.manual_sequence.size(), 2u);
  for (std::size_t u : profile.manual_sequence[0].units)
    EXPECT_EQ(profile.static_model.units[u].classes.front(), Bank::kAccount);
  for (std::size_t u : profile.manual_sequence[1].units)
    EXPECT_EQ(profile.static_model.units[u].classes.front(), Bank::kBranch);
}

TEST(Bank, PhaseControlsHotClass) {
  Bank bank;
  Rng rng(5);
  int hot_branches_phase0 = 0, hot_accounts_phase1 = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const auto p0 = bank.profiles()[0].make_params(rng, 0);
    if (p0[2][0] < static_cast<Field>(bank.config().hot_branches) &&
        p0[3][0] < static_cast<Field>(bank.config().hot_branches))
      ++hot_branches_phase0;
    const auto p1 = bank.profiles()[0].make_params(rng, 1);
    if (p1[0][0] < static_cast<Field>(bank.config().hot_accounts) &&
        p1[1][0] < static_cast<Field>(bank.config().hot_accounts))
      ++hot_accounts_phase1;
  }
  EXPECT_GT(hot_branches_phase0, kTrials / 2);
  EXPECT_GT(hot_accounts_phase1, kTrials / 2);
}

TEST(Bank, ParamsAreDistinctAndInRange) {
  Bank bank({.n_branches = 2, .n_accounts = 2});
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const auto p = bank.profiles()[0].make_params(rng, i % 2);
    EXPECT_NE(p[0][0], p[1][0]);
    EXPECT_NE(p[2][0], p[3][0]);
    EXPECT_LT(p[0][0], 2);
    EXPECT_LT(p[2][0], 2);
    EXPECT_GE(p[4][0], 1);
  }
}

TEST(Bank, InvariantHoldsAfterMixedLoad) {
  Cluster cluster(fast_config());
  Bank bank({.n_branches = 8, .n_accounts = 32});
  bank.seed(cluster.servers());
  bank.check_invariants(cluster.servers());  // holds at seed time

  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 3);
  Rng rng(3);
  ExecStats stats;
  for (int i = 0; i < 60; ++i) {
    const std::size_t p = pick_profile(bank.profiles(), rng);
    executor.run(Protocol::kFlat, with_program(*bank.profiles()[p].program),
                 bank.profiles()[p].make_params(rng, i % 2), stats);
  }
  EXPECT_EQ(stats.commits, 60u);
  bank.check_invariants(cluster.servers());
}

TEST(Bank, RejectsDegenerateConfig) {
  EXPECT_THROW(Bank({.n_branches = 1}), std::invalid_argument);
}

// ---------------- Vacation -------------------------------------------------

TEST(Vacation, ProgramShape) {
  Vacation vacation;
  ASSERT_EQ(vacation.profiles().size(), 2u);
  const auto& reserve = vacation.profiles()[0];
  EXPECT_EQ(reserve.program->name, "vacation.make_reservation");
  EXPECT_EQ(reserve.program->remote_op_count(), 4u);
  EXPECT_TRUE(sequence_valid(reserve.manual_sequence, reserve.static_model));
  // The customer-charge op depends on all three item units.
  const auto& model = reserve.static_model;
  ASSERT_EQ(model.units.size(), 4u);
}

TEST(Vacation, ReservationUpdatesItemsAndCustomer) {
  Cluster cluster(fast_config());
  Vacation vacation({.n_items = 8, .n_customers = 4});
  vacation.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 2);
  ExecStats stats;
  // customer 1 books car 2, flight 3, room 4.
  executor.run(Protocol::kFlat, with_program(*vacation.profiles()[0].program),
               {Record{1}, Record{2}, Record{3}, Record{4}}, stats);
  const auto servers = cluster.servers();
  const auto car = latest_value(servers, Vacation::item_key(Vacation::kCar, 2));
  EXPECT_EQ(car.value[0], vacation.config().capacity - 1);
  EXPECT_EQ(car.value[1], 1);
  const auto cust = latest_value(servers, Vacation::customer_key(1));
  EXPECT_EQ(cust.value[1], 3);  // three bookings
  EXPECT_GT(cust.value[0], 0);  // spent something
  vacation.check_invariants(servers);
}

TEST(Vacation, PhaseRotatesHotTable) {
  Vacation vacation;
  Rng rng(4);
  for (int phase = 0; phase < 3; ++phase) {
    int hot = 0;
    const int kTrials = 1000;
    for (int i = 0; i < kTrials; ++i) {
      const auto p = vacation.profiles()[0].make_params(rng, phase);
      // param index 1+t holds table t's item id.
      if (p[1 + static_cast<std::size_t>(phase)][0] <
          static_cast<Field>(vacation.config().hot_items))
        ++hot;
    }
    EXPECT_GT(hot, kTrials * 3 / 5) << "phase " << phase;
  }
}

TEST(Vacation, InvariantHoldsAfterMixedLoad) {
  Cluster cluster(fast_config());
  Vacation vacation({.n_items = 8, .n_customers = 8});
  vacation.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 5);
  Rng rng(6);
  ExecStats stats;
  for (int i = 0; i < 60; ++i) {
    const std::size_t p = pick_profile(vacation.profiles(), rng);
    const auto& profile = vacation.profiles()[p];
    executor.run(Protocol::kManualCN,
                 with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
                 profile.make_params(rng, i % 3), stats);
  }
  EXPECT_EQ(stats.commits, 60u);
  vacation.check_invariants(cluster.servers());
}

// ---------------- TPC-C ----------------------------------------------------

TpccConfig small_tpcc() {
  TpccConfig config;
  config.n_warehouses = 2;
  config.districts_per_warehouse = 3;
  config.customers_per_district = 5;
  config.n_items = 20;
  config.order_ring = 8;
  return config;
}

TEST(Tpcc, MixSelectsProfiles) {
  auto config = small_tpcc();
  config.w_neworder = 1.0;
  config.w_payment = 0.0;
  config.w_delivery = 0.0;
  Tpcc neworder_only(config);
  ASSERT_EQ(neworder_only.profiles().size(), 1u);
  EXPECT_EQ(neworder_only.profiles()[0].program->name, "tpcc.neworder.5");

  config.w_payment = 1.0;
  config.w_delivery = 1.0;
  Tpcc all(config);
  EXPECT_EQ(all.profiles().size(), 3u);

  config.w_neworder = config.w_payment = config.w_delivery = 0.0;
  EXPECT_THROW(Tpcc{config}, std::invalid_argument);
}

TEST(Tpcc, KeySchemeIsInjectiveAcrossClasses) {
  Tpcc tpcc(small_tpcc());
  std::set<std::pair<ir::ClassId, std::uint64_t>> seen;
  auto add = [&](const store::ObjectKey& key) {
    EXPECT_TRUE(seen.insert({key.cls, key.id}).second)
        << store::to_string(key);
  };
  for (Field w = 0; w < 2; ++w) {
    add(tpcc.warehouse_key(w));
    for (Field d = 0; d < 3; ++d) {
      add(tpcc.district_key(w, d));
      add(tpcc.cursor_key(w, d));
      for (Field c = 0; c < 5; ++c) add(tpcc.customer_key(w, d, c));
      for (Field o = 0; o < 8; ++o) {
        add(tpcc.order_key(w, d, o));
        for (std::size_t l = 0; l < Tpcc::kOrderLines; ++l)
          add(tpcc.order_line_key(w, d, o, l));
      }
    }
    for (Field i = 0; i < 20; ++i) add(tpcc.stock_key(w, i));
  }
  // The ring wraps: o and o + ring share a slot by design.
  EXPECT_EQ(tpcc.order_key(0, 0, 1), tpcc.order_key(0, 0, 9));
}

TEST(Tpcc, NewOrderAdvancesDistrictAndInsertsOrder) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 7);
  ExecStats stats;

  Record items(Tpcc::kOrderLines), qtys(Tpcc::kOrderLines);
  for (std::size_t l = 0; l < Tpcc::kOrderLines; ++l) {
    items[l] = static_cast<Field>(l);
    qtys[l] = 2;
  }
  executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
               {Record{1}, Record{2}, Record{3}, items, qtys,
                Record(Tpcc::kOrderLines, 1)},
               stats);

  const auto servers = cluster.servers();
  const auto district = latest_value(servers, tpcc.district_key(1, 2));
  const auto ring = static_cast<Field>(config.order_ring);
  EXPECT_EQ(district.value[0], ring + 1);  // next_o_id advanced
  const auto order = latest_value(servers, tpcc.order_key(1, 2, ring));
  EXPECT_EQ(order.value[0], 3);  // c_id
  const auto line = latest_value(servers, tpcc.order_line_key(1, 2, ring, 0));
  EXPECT_EQ(line.value[0], 0);  // item id
  EXPECT_EQ(line.value[1], 2);  // qty
  tpcc.check_invariants(servers);
}

TEST(Tpcc, StockRestockRuleKeepsQuantityPositive) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 1.0;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 9);
  ExecStats stats;
  Record items(Tpcc::kOrderLines, 0), qtys(Tpcc::kOrderLines, 10);
  for (int i = 0; i < 30; ++i)  // hammer item 0's stock with max quantity
    executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
                 {Record{0}, Record{0}, Record{0}, items, qtys,
                  Record(Tpcc::kOrderLines, 0)},
                 stats);
  tpcc.check_invariants(cluster.servers());
}

TEST(Tpcc, PaymentConservesCustomerBalance) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.0;
  config.w_payment = 1.0;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 11);
  ExecStats stats;
  executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
               {Record{0}, Record{1}, Record{2}, Record{150}, Record{777},
                Record{0}},
               stats);
  const auto servers = cluster.servers();
  const auto wh = latest_value(servers, tpcc.warehouse_key(0));
  EXPECT_EQ(wh.value[0], 150);  // ytd
  const auto cust = latest_value(servers, tpcc.customer_key(0, 1, 2));
  EXPECT_EQ(cust.value[0], tpcc.config().initial_customer_balance - 150);
  EXPECT_EQ(cust.value[1], 150);
  const auto hist = latest_value(servers, tpcc.history_key(777));
  EXPECT_EQ(hist.value[1], 150);
  tpcc.check_invariants(servers);
}

TEST(Tpcc, DeliveryCreditsTheOrdersCustomer) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.0;
  config.w_delivery = 1.0;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 13);
  ExecStats stats;
  executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
               {Record{0}, Record{0}, Record{4}}, stats);
  const auto servers = cluster.servers();
  const auto cursor = latest_value(servers, tpcc.cursor_key(0, 0));
  EXPECT_EQ(cursor.value[0], 1);
  const auto order = latest_value(servers, tpcc.order_key(0, 0, 0));
  EXPECT_EQ(order.value[1], 4);  // carrier stamped
  // Seeded order 0 belongs to customer 0; its first line was credited.
  const auto line = latest_value(servers, tpcc.order_line_key(0, 0, 0, 0));
  EXPECT_EQ(line.value[3], 1);  // delivered flag
  const auto cust = latest_value(servers, tpcc.customer_key(0, 0, 0));
  EXPECT_EQ(cust.value[0],
            tpcc.config().initial_customer_balance + line.value[2]);
  EXPECT_EQ(cust.value[4], 1);  // delivery count
  tpcc.check_invariants(servers);
}

TEST(Tpcc, FullSpecDeliveryProcessesEveryDistrict) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.0;
  config.w_delivery = 1.0;
  config.delivery_all_districts = true;
  Tpcc tpcc(config);
  ASSERT_EQ(tpcc.profiles().size(), 1u);
  const auto& profile = tpcc.profiles()[0];
  EXPECT_EQ(profile.program->name, "tpcc.delivery_all");
  // 4 remote accesses per district.
  EXPECT_EQ(profile.program->remote_op_count(),
            4 * config.districts_per_warehouse);
  EXPECT_TRUE(sequence_valid(profile.manual_sequence, profile.static_model));
  EXPECT_EQ(profile.manual_sequence.size(), config.districts_per_warehouse);

  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 47);
  ExecStats stats;
  executor.run(Protocol::kManualCN,
               with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
               {Record{1}, Record{6}}, stats);
  EXPECT_EQ(stats.commits, 1u);
  const auto servers = cluster.servers();
  for (Field d = 0; d < static_cast<Field>(config.districts_per_warehouse);
       ++d) {
    EXPECT_EQ(latest_value(servers, tpcc.cursor_key(1, d)).value[0], 1)
        << "district " << d;
    EXPECT_EQ(latest_value(servers, tpcc.order_key(1, d, 0)).value[1], 6);
  }
  tpcc.check_invariants(servers);
}

TEST(Tpcc, MixedLoadKeepsInvariants) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.5;
  config.w_payment = 0.3;
  config.w_delivery = 0.2;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 17);
  Rng rng(17);
  ExecStats stats;
  for (int i = 0; i < 60; ++i) {
    const std::size_t p = pick_profile(tpcc.profiles(), rng);
    const auto& profile = tpcc.profiles()[p];
    executor.run(Protocol::kManualCN,
                 with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
                 profile.make_params(rng, 0), stats);
  }
  EXPECT_EQ(stats.commits, 60u);
  tpcc.check_invariants(cluster.servers());
}

TEST(Tpcc, VariableOrderLineRangeBuildsOneProfilePerCount) {
  auto config = small_tpcc();
  config.min_order_lines = 5;
  config.max_order_lines = 15;
  config.n_items = 32;
  Tpcc tpcc(config);
  ASSERT_EQ(tpcc.profiles().size(), 11u);
  double total_weight = 0.0;
  for (const auto& profile : tpcc.profiles()) total_weight += profile.weight;
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
  EXPECT_EQ(tpcc.profiles().front().program->name, "tpcc.neworder.5");
  EXPECT_EQ(tpcc.profiles().back().program->name, "tpcc.neworder.15");
}

TEST(Tpcc, FifteenLineNewOrderExecutesAndKeepsInvariants) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.min_order_lines = 15;
  config.max_order_lines = 15;
  config.n_items = 32;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 43);
  ExecStats stats;
  Record items(15), qtys(15);
  for (std::size_t l = 0; l < 15; ++l) {
    items[l] = static_cast<Field>(l * 2);
    qtys[l] = 3;
  }
  executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
               {Record{0}, Record{1}, Record{2}, items, qtys, Record(15, 0)},
               stats);
  const auto servers = cluster.servers();
  const auto ring = static_cast<Field>(config.order_ring);
  const auto order = latest_value(servers, tpcc.order_key(0, 1, ring));
  EXPECT_EQ(order.value[2], 15);  // ol_cnt
  const auto line14 = latest_value(servers, tpcc.order_line_key(0, 1, ring, 14));
  EXPECT_EQ(line14.value[0], 28);  // item id of the 15th line
  tpcc.check_invariants(servers);
}

TEST(Tpcc, RejectsBadOrderLineRange) {
  auto config = small_tpcc();
  config.min_order_lines = 0;
  EXPECT_THROW(Tpcc{config}, std::invalid_argument);
  config.min_order_lines = 6;
  config.max_order_lines = 5;
  EXPECT_THROW(Tpcc{config}, std::invalid_argument);
  config.min_order_lines = 5;
  config.max_order_lines = Tpcc::kLineSlots;  // overflows the key stride
  EXPECT_THROW(Tpcc{config}, std::invalid_argument);
}

TEST(Tpcc, OrderStatusIsReadOnlyAndConsistent) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.0;
  config.w_orderstatus = 1.0;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 19);
  ExecStats stats;
  executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
               {Record{0}, Record{1}, Record{2}}, stats);
  EXPECT_EQ(stats.commits, 1u);
  // Read-only: no server-side version advanced.
  EXPECT_EQ(latest_value(cluster.servers(), tpcc.district_key(0, 1)).version,
            1u);
}

TEST(Tpcc, StockLevelReadsStockOfLatestOrderLine) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.0;
  config.w_stocklevel = 1.0;
  Tpcc tpcc(config);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 23);
  ExecStats stats;
  executor.run(Protocol::kFlat, with_program(*tpcc.profiles()[0].program),
               {Record{0}, Record{0}, Record{15}}, stats);
  EXPECT_EQ(stats.commits, 1u);
  tpcc.check_invariants(cluster.servers());
}

TEST(Tpcc, ReadOnlyProfilesUnderWriteLoadKeepInvariants) {
  Cluster cluster(fast_config());
  auto config = small_tpcc();
  config.w_neworder = 0.4;
  config.w_payment = 0.2;
  config.w_orderstatus = 0.2;
  config.w_stocklevel = 0.2;
  Tpcc tpcc(config);
  ASSERT_EQ(tpcc.profiles().size(), 4u);
  tpcc.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 29);
  Rng rng(29);
  ExecStats stats;
  for (int i = 0; i < 80; ++i) {
    const std::size_t p = pick_profile(tpcc.profiles(), rng);
    const auto& profile = tpcc.profiles()[p];
    executor.run(Protocol::kManualCN,
                 with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
                 profile.make_params(rng, 0), stats);
  }
  EXPECT_EQ(stats.commits, 80u);
  tpcc.check_invariants(cluster.servers());
}

TEST(Vacation, CancelReturnsSeatAndRefundsCustomer) {
  Cluster cluster(fast_config());
  VacationConfig config;
  config.n_items = 8;
  config.n_customers = 4;
  config.cancel_fraction = 0.3;
  Vacation vacation(config);
  ASSERT_EQ(vacation.profiles().size(), 3u);
  vacation.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 31);
  ExecStats stats;
  // Reserve (customer 1: car 2, flight 3, room 4), then cancel the flight.
  executor.run(Protocol::kFlat, with_program(*vacation.profiles()[0].program),
               {Record{1}, Record{2}, Record{3}, Record{4}}, stats);
  executor.run(Protocol::kFlat, with_program(*vacation.profiles()[1].program),
               {Record{1}, Record{1}, Record{3}}, stats);
  const auto servers = cluster.servers();
  const auto flight =
      latest_value(servers, Vacation::item_key(Vacation::kFlight, 3));
  EXPECT_EQ(flight.value[0], vacation.config().capacity);  // seat returned
  EXPECT_EQ(flight.value[1], 0);
  const auto cust = latest_value(servers, Vacation::customer_key(1));
  EXPECT_EQ(cust.value[1], 2);  // two bookings left
  vacation.check_invariants(servers);
}

TEST(Vacation, CancelOnUnreservedItemIsANoop) {
  Cluster cluster(fast_config());
  VacationConfig config;
  config.n_items = 8;
  config.n_customers = 4;
  config.cancel_fraction = 0.3;
  Vacation vacation(config);
  vacation.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 37);
  ExecStats stats;
  executor.run(Protocol::kFlat, with_program(*vacation.profiles()[1].program),
               {Record{0}, Record{0}, Record{5}}, stats);
  const auto item =
      latest_value(cluster.servers(), Vacation::item_key(Vacation::kCar, 5));
  EXPECT_EQ(item.value[1], 0);  // nothing went negative
  vacation.check_invariants(cluster.servers());
}

TEST(Vacation, MixedLoadWithCancelsKeepsInvariants) {
  Cluster cluster(fast_config());
  VacationConfig config;
  config.n_items = 8;
  config.n_customers = 8;
  config.cancel_fraction = 0.3;
  Vacation vacation(config);
  vacation.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 41);
  Rng rng(41);
  ExecStats stats;
  for (int i = 0; i < 80; ++i) {
    const std::size_t p = pick_profile(vacation.profiles(), rng);
    const auto& profile = vacation.profiles()[p];
    executor.run(Protocol::kFlat, with_program(*profile.program),
                 profile.make_params(rng, i % 3), stats);
  }
  EXPECT_EQ(stats.commits, 80u);
  vacation.check_invariants(cluster.servers());
}

TEST(Tpcc, ManualSequencesAreValid) {
  auto config = small_tpcc();
  config.w_neworder = config.w_payment = config.w_delivery = 1.0;
  Tpcc tpcc(config);
  for (const auto& profile : tpcc.profiles()) {
    EXPECT_TRUE(sequence_valid(profile.manual_sequence, profile.static_model))
        << profile.program->name;
    EXPECT_EQ(profile.static_model.forced_merges, 0u)
        << profile.program->name;
  }
}

TEST(PickProfile, RespectsWeights) {
  Bank bank;  // 0.9 / 0.1
  Rng rng(21);
  int first = 0;
  for (int i = 0; i < 5000; ++i)
    if (pick_profile(bank.profiles(), rng) == 0) ++first;
  EXPECT_NEAR(first / 5000.0, 0.9, 0.03);
}

}  // namespace
}  // namespace acn::workloads
