// Quorum-system tests: construction shapes plus the intersection properties
// QR-DTM's correctness rests on, property-tested across tree sizes and many
// random selections (parameterized suites).
#include <gtest/gtest.h>

#include <set>

#include "src/quorum/level_quorum.hpp"
#include "src/quorum/rowa_quorum.hpp"
#include "src/quorum/tree_quorum.hpp"

namespace acn::quorum {
namespace {

TEST(TreeTopology, TernaryShape) {
  TreeTopology t(13, 3);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.children(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{4, 5, 6}));
  EXPECT_EQ(t.parent(4), 1);
  EXPECT_EQ(t.parent(0), -1);
  EXPECT_EQ(t.level_of(0), 0);
  EXPECT_EQ(t.level_of(3), 1);
  EXPECT_EQ(t.level_of(12), 2);
  EXPECT_EQ(t.depth(), 3);
}

TEST(TreeTopology, PartialLastLevel) {
  TreeTopology t(6, 3);
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{4, 5}));
  EXPECT_TRUE(t.is_leaf(5));
  EXPECT_EQ(t.level(1), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(t.level(2), (std::vector<NodeId>{4, 5}));
}

TEST(TreeTopology, SingleNode) {
  TreeTopology t(1, 3);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.depth(), 1);
}

TEST(TreeTopology, RejectsBadArgs) {
  EXPECT_THROW(TreeTopology(0, 3), std::invalid_argument);
  EXPECT_THROW(TreeTopology(5, 1), std::invalid_argument);
}

TEST(Intersects, SortedIntersection) {
  EXPECT_TRUE(intersects({1, 3, 5}, {2, 3}));
  EXPECT_FALSE(intersects({1, 3, 5}, {2, 4, 6}));
  EXPECT_FALSE(intersects({}, {1}));
}

bool sorted_unique(const std::vector<NodeId>& q) {
  for (std::size_t i = 1; i < q.size(); ++i)
    if (q[i - 1] >= q[i]) return false;
  return true;
}

// ---- property tests over tree sizes --------------------------------------

class TreeQuorumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeQuorumProperty, QuorumsAreWellFormed) {
  const std::size_t n = GetParam();
  TreeQuorumSystem qs{TreeTopology(n, 3)};
  Rng rng(n * 17 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    for (const auto& q : {qs.read_quorum(rng), qs.write_quorum(rng)}) {
      EXPECT_FALSE(q.empty());
      EXPECT_TRUE(sorted_unique(q));
      for (NodeId id : q) {
        EXPECT_GE(id, 0);
        EXPECT_LT(static_cast<std::size_t>(id), n);
      }
    }
  }
}

TEST_P(TreeQuorumProperty, ReadIntersectsWrite) {
  const std::size_t n = GetParam();
  TreeQuorumSystem qs{TreeTopology(n, 3)};
  Rng rng(n * 31 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto read = qs.read_quorum(rng);
    const auto write = qs.write_quorum(rng);
    EXPECT_TRUE(intersects(read, write))
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(TreeQuorumProperty, WriteIntersectsWrite) {
  const std::size_t n = GetParam();
  TreeQuorumSystem qs{TreeTopology(n, 3)};
  Rng rng(n * 53 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto w1 = qs.write_quorum(rng);
    const auto w2 = qs.write_quorum(rng);
    EXPECT_TRUE(intersects(w1, w2)) << "n=" << n << " trial=" << trial;
  }
}

TEST_P(TreeQuorumProperty, WriteAlwaysContainsRoot) {
  const std::size_t n = GetParam();
  TreeQuorumSystem qs{TreeTopology(n, 3)};
  Rng rng(n + 2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto w = qs.write_quorum(rng);
    EXPECT_EQ(w.front(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeQuorumProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 10, 13, 20, 27,
                                           30, 40));

class LevelQuorumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelQuorumProperty, ReadIntersectsWrite) {
  const std::size_t n = GetParam();
  LevelMajorityQuorumSystem qs{TreeTopology(n, 3)};
  Rng rng(n * 13 + 5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto read = qs.read_quorum(rng);
    const auto write = qs.write_quorum(rng);
    EXPECT_FALSE(read.empty());
    EXPECT_TRUE(intersects(read, write)) << "n=" << n << " trial=" << trial;
  }
}

TEST_P(LevelQuorumProperty, WriteIntersectsWrite) {
  const std::size_t n = GetParam();
  LevelMajorityQuorumSystem qs{TreeTopology(n, 3)};
  Rng rng(n * 19 + 11);
  for (int trial = 0; trial < 200; ++trial) {
    EXPECT_TRUE(intersects(qs.write_quorum(rng), qs.write_quorum(rng)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LevelQuorumProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 10, 13, 20, 27,
                                           30, 40));

class RowaQuorumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RowaQuorumProperty, SingleReaderIntersectsFullWrite) {
  const std::size_t n = GetParam();
  RowaQuorumSystem qs(n);
  Rng rng(n * 7 + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto read = qs.read_quorum(rng);
    const auto write = qs.write_quorum(rng);
    ASSERT_EQ(read.size(), 1u);
    EXPECT_EQ(write.size(), n);
    EXPECT_TRUE(intersects(read, write));
    EXPECT_TRUE(sorted_unique(write));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RowaQuorumProperty,
                         ::testing::Values(1, 2, 5, 10, 30));

TEST(RowaQuorum, RejectsZeroNodes) {
  EXPECT_THROW(RowaQuorumSystem(0), std::invalid_argument);
}

TEST(TreeQuorum, RootBiasOneReadsRootOnly) {
  TreeQuorumSystem qs{TreeTopology(13, 3), /*root_read_bias=*/1.0};
  Rng rng(1);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(qs.read_quorum(rng), (std::vector<NodeId>{0}));
}

TEST(TreeQuorum, RootBiasZeroReadsLeaves) {
  TreeQuorumSystem qs{TreeTopology(13, 3), /*root_read_bias=*/0.0};
  TreeTopology topo(13, 3);
  Rng rng(1);
  for (int i = 0; i < 20; ++i)
    for (NodeId id : qs.read_quorum(rng)) EXPECT_TRUE(topo.is_leaf(id));
}

TEST(QuorumSystem, DesignatedQuorumsAreDeterministic) {
  TreeQuorumSystem qs{TreeTopology(13, 3)};
  EXPECT_EQ(qs.designated_read_quorum(4), qs.designated_read_quorum(4));
  EXPECT_EQ(qs.designated_write_quorum(4), qs.designated_write_quorum(4));
  EXPECT_TRUE(intersects(qs.designated_read_quorum(1),
                         qs.designated_write_quorum(2)));
}

}  // namespace
}  // namespace acn::quorum
