// Contention-aware scheduler tests (src/sched): footprint prediction, the
// AIMD admission window, hot-key detection (abort blame + contention-class
// refinement), conflict-queue serialization with its service window,
// wait-budget fallback and abandoned-ticket skip, anti-starvation aging,
// and an end-to-end QR-ACN run with the scheduler engaged.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/harness/driver.hpp"
#include "src/obs/obs.hpp"
#include "src/sched/scheduler.hpp"
#include "src/workloads/bank.hpp"

namespace acn::sched {
namespace {

using ir::ObjectKey;
using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::VarId;

const ObjectKey kHot{1, 7};
const ObjectKey kHot2{1, 8};
const ObjectKey kCold{2, 9};

KeyFootprint writes(std::vector<ObjectKey> keys) {
  std::sort(keys.begin(), keys.end());
  KeyFootprint footprint;
  for (const auto& key : keys) footprint.push_back({key, true});
  return footprint;
}

SchedulerConfig base_config(SchedulerPolicy policy) {
  SchedulerConfig config;
  config.policy = policy;
  config.class_hot_level = 0;  // abort-blame hotness only (deterministic)
  return config;
}

/// Make `key` hot through the public interface: three blamed aborts reach
/// the default hot_score of 3.0.
void heat(TxScheduler& scheduler, std::size_t session, const ObjectKey& key) {
  auto& gate = scheduler.session(session);
  gate.admit({});
  for (int i = 0; i < 3; ++i)
    gate.on_full_abort(TxOutcome::kValidation, {key});
  gate.finish(TxOutcome::kValidation);
}

TEST(SchedPolicy, ParseAndNameRoundTrip) {
  for (const auto policy :
       {SchedulerPolicy::kNone, SchedulerPolicy::kQueue, SchedulerPolicy::kAdmit,
        SchedulerPolicy::kBoth}) {
    const auto parsed = parse_policy(policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_policy("bogus").has_value());
  EXPECT_FALSE(parse_policy("").has_value());
}

TEST(SchedFootprint, PredictsParamOnlyKeysWithWriteIntent) {
  ProgramBuilder b("footprint", /*n_params=*/1);
  // Param-only read: predictable.
  const VarId a = b.remote_read(
      1, {b.param(0)}, [](const TxEnv&) { return ObjectKey{1, 5}; }, "read a");
  // Read-modify-write: the local op below writes this op's out var.
  const VarId c = b.remote_read(
      2, {}, [](const TxEnv&) { return ObjectKey{2, 9}; }, "read c");
  // Key depends on a produced var: invisible to the prediction.
  b.remote_read(
      3, {a}, [](const TxEnv&) { return ObjectKey{3, 1}; }, "chase");
  // Same key read twice, once for_write: deduplicates, write sticky.
  b.remote_read(
      1, {}, [](const TxEnv&) { return ObjectKey{1, 6}; }, "read e");
  b.remote_read(
      1, {}, [](const TxEnv&) { return ObjectKey{1, 6}; }, "write e",
      /*for_write=*/true);
  b.local({c}, {c}, [](TxEnv&) {}, "rmw c");
  const auto program = b.build();

  const KeyFootprint footprint =
      predicted_footprint(program, {Record{42}});
  ASSERT_EQ(footprint.size(), 3u);
  EXPECT_EQ(footprint[0].key, (ObjectKey{1, 5}));
  EXPECT_FALSE(footprint[0].for_write);
  EXPECT_EQ(footprint[1].key, (ObjectKey{1, 6}));
  EXPECT_TRUE(footprint[1].for_write);  // sticky across the dedup
  EXPECT_EQ(footprint[2].key, (ObjectKey{2, 9}));
  EXPECT_TRUE(footprint[2].for_write);  // derived from the local write
}

TEST(SchedAimd, WindowGrowsOnCommitShrinksOnAbort) {
  TxScheduler scheduler(base_config(SchedulerPolicy::kAdmit), 1);
  auto& gate = scheduler.session(0);
  const auto& config = scheduler.config();
  EXPECT_DOUBLE_EQ(gate.window(), config.initial_window);

  gate.admit({});
  gate.on_full_abort(TxOutcome::kValidation, {});
  EXPECT_NEAR(gate.window(),
              config.initial_window * config.multiplicative_decrease, 1e-9);
  gate.finish(TxOutcome::kCommitted);
  EXPECT_NEAR(gate.window(),
              config.initial_window * config.multiplicative_decrease +
                  config.additive_increase,
              1e-9);
}

TEST(SchedAimd, WindowClampsToConfiguredRange) {
  TxScheduler scheduler(base_config(SchedulerPolicy::kAdmit), 1);
  auto& gate = scheduler.session(0);
  const auto& config = scheduler.config();

  gate.admit({});
  for (int i = 0; i < 200; ++i) gate.on_full_abort(TxOutcome::kBusy, {});
  EXPECT_DOUBLE_EQ(gate.window(), config.min_window);
  gate.finish(TxOutcome::kValidation);

  for (int i = 0; i < 200; ++i) {
    gate.admit({});
    gate.finish(TxOutcome::kCommitted);
  }
  EXPECT_DOUBLE_EQ(gate.window(), config.max_window);
}

TEST(SchedAimd, LeaseExpiredShrinksTwiceAsHard) {
  TxScheduler scheduler(base_config(SchedulerPolicy::kAdmit), 1);
  auto& gate = scheduler.session(0);
  const auto& config = scheduler.config();
  gate.admit({});
  gate.on_full_abort(TxOutcome::kLeaseExpired, {});
  EXPECT_NEAR(gate.window(),
              config.initial_window * config.multiplicative_decrease *
                  config.multiplicative_decrease,
              1e-9);
  gate.finish(TxOutcome::kValidation);
}

TEST(SchedHotKeys, BlameAccumulatesAndDecays) {
  TxScheduler scheduler(base_config(SchedulerPolicy::kQueue), 2);
  EXPECT_FALSE(scheduler.is_hot(kHot));
  heat(scheduler, 0, kHot);
  EXPECT_TRUE(scheduler.is_hot(kHot));
  EXPECT_FALSE(scheduler.is_hot(kCold));
  EXPECT_TRUE(scheduler.any_hot(writes({kCold, kHot})));
  EXPECT_FALSE(scheduler.any_hot(writes({kCold})));

  scheduler.tick();  // 3.0 -> 1.5: below hot_score
  EXPECT_FALSE(scheduler.is_hot(kHot));
  for (int i = 0; i < 4; ++i) scheduler.tick();  // decays to eviction

  heat(scheduler, 1, kHot);  // re-blame after eviction works
  EXPECT_TRUE(scheduler.is_hot(kHot));
}

TEST(SchedHotKeys, ClassSnapshotRefinementToleratesStaleData) {
  auto config = base_config(SchedulerPolicy::kQueue);
  config.class_hot_level = 48;
  TxScheduler scheduler(config, 1);

  scheduler.note_class_levels({1, 2}, {48, 47});
  EXPECT_TRUE(scheduler.is_hot(kHot));    // class 1 at the threshold
  EXPECT_FALSE(scheduler.is_hot(kCold));  // class 2 below it

  // A stale/misaligned snapshot (more classes than levels) degrades the
  // refinement to the common prefix; it must never crash.
  scheduler.note_class_levels({1, 2, 3}, {50});
  EXPECT_TRUE(scheduler.is_hot(kHot));
  EXPECT_FALSE(scheduler.is_hot(kCold));

  scheduler.note_class_levels({}, {});  // next snapshot clears it
  EXPECT_FALSE(scheduler.is_hot(kHot));
}

/// Blame `key` exactly `n` times through the public interface (heat() is
/// the n == 3 special case that reaches the default hot_score).
void blame_n(TxScheduler& scheduler, std::size_t session, const ObjectKey& key,
             int n) {
  auto& gate = scheduler.session(session);
  gate.admit({});
  for (int i = 0; i < n; ++i) gate.on_full_abort(TxOutcome::kValidation, {key});
  gate.finish(TxOutcome::kValidation);
}

TEST(SchedHotKeys, HotKeysListsExactlyTheHotTrackedKeys) {
  TxScheduler scheduler(base_config(SchedulerPolicy::kQueue), 1);
  EXPECT_TRUE(scheduler.hot_keys().empty());

  // Score exactly at hot_score (3 blames x 1.0 vs the default 3.0) IS hot
  // — the threshold is inclusive; one blame short of it is not.
  blame_n(scheduler, 0, kHot, 3);
  blame_n(scheduler, 0, kCold, 2);
  EXPECT_EQ(scheduler.hot_keys(), std::vector<ObjectKey>{kHot});

  // A second hot key joins; the listing is sorted ascending.
  blame_n(scheduler, 0, kHot2, 3);
  EXPECT_EQ(scheduler.hot_keys(), (std::vector<ObjectKey>{kHot, kHot2}));
}

TEST(SchedHotKeys, HotKeysTracksDecayAcrossTheThresholdBoundary) {
  TxScheduler scheduler(base_config(SchedulerPolicy::kQueue), 1);

  // 4.0 decays to 2.0: below the 3.0 threshold after one tick.
  blame_n(scheduler, 0, kHot, 4);
  // 6.0 decays to exactly 3.0: still hot after one tick (inclusive bound).
  blame_n(scheduler, 0, kHot2, 6);
  EXPECT_EQ(scheduler.hot_keys(), (std::vector<ObjectKey>{kHot, kHot2}));

  scheduler.tick();
  EXPECT_EQ(scheduler.hot_keys(), std::vector<ObjectKey>{kHot2});

  // The cooled key is still tracked (2.0 >= the 0.25 eviction floor), so
  // fresh blame stacks on the decayed score: 2.0 + 1.0 = 3.0 -> hot again.
  blame_n(scheduler, 0, kHot, 1);
  EXPECT_EQ(scheduler.hot_keys(), (std::vector<ObjectKey>{kHot, kHot2}));
}

TEST(SchedHotKeys, HotKeysListsOnlyTrackedKeysOfHotClasses) {
  auto config = base_config(SchedulerPolicy::kQueue);
  config.class_hot_level = 48;
  TxScheduler scheduler(config, 1);

  // kHot is tracked (blamed once, far below hot_score); kCold's class was
  // never blamed at all.
  blame_n(scheduler, 0, kHot, 1);
  EXPECT_TRUE(scheduler.hot_keys().empty());

  // The snapshot marks both classes hot: is_hot answers true for any key
  // of either class, but hot_keys lists only keys the scheduler *tracks* —
  // the documented contract (untracked keys of a hot class are invisible).
  scheduler.note_class_levels({kHot.cls, kCold.cls}, {50, 50});
  EXPECT_TRUE(scheduler.is_hot(kHot));
  EXPECT_TRUE(scheduler.is_hot(kCold));
  EXPECT_EQ(scheduler.hot_keys(), std::vector<ObjectKey>{kHot});

  // Stale snapshot (more classes than levels): the common prefix governs,
  // so class 1 stays hot and the listing is unchanged.
  scheduler.note_class_levels({kHot.cls, kCold.cls}, {50});
  EXPECT_EQ(scheduler.hot_keys(), std::vector<ObjectKey>{kHot});
  EXPECT_FALSE(scheduler.is_hot(kCold));
}

TEST(SchedQueue, WidthOneSerializesHotWriters) {
  auto config = base_config(SchedulerPolicy::kQueue);
  config.queue_width = 1;
  config.queue_wait_budget = std::chrono::seconds{5};
  const std::size_t kThreads = 4;
  TxScheduler scheduler(config, kThreads + 1);
  heat(scheduler, kThreads, kHot);
  heat(scheduler, kThreads, kHot2);

  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      auto& gate = scheduler.session(t);
      for (int i = 0; i < 25; ++i) {
        gate.admit(writes({kHot, kHot2}));  // both hot: canonical-order tickets
        const int now = in_section.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
        }
        in_section.fetch_sub(1);
        gate.finish(TxOutcome::kCommitted);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(max_seen.load(), 1);  // strict mutual exclusion on the hot pair
  EXPECT_EQ(scheduler.active(), 0u);
}

TEST(SchedQueue, ServiceWindowBoundsConcurrentHolders) {
  auto config = base_config(SchedulerPolicy::kQueue);
  config.queue_width = 3;
  config.queue_wait_budget = std::chrono::seconds{5};
  const std::size_t kThreads = 6;
  TxScheduler scheduler(config, kThreads + 1);
  heat(scheduler, kThreads, kHot);

  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      auto& gate = scheduler.session(t);
      for (int i = 0; i < 25; ++i) {
        gate.admit(writes({kHot}));
        const int now = in_section.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
        }
        std::this_thread::yield();
        in_section.fetch_sub(1);
        gate.finish(TxOutcome::kCommitted);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_LE(max_seen.load(), 3);
}

TEST(SchedQueue, TicketsStartInFifoOrder) {
  auto config = base_config(SchedulerPolicy::kQueue);
  config.queue_width = 1;
  config.queue_wait_budget = std::chrono::seconds{5};
  TxScheduler scheduler(config, 4);
  heat(scheduler, 3, kHot);

  auto& first = scheduler.session(0);
  first.admit(writes({kHot}));  // holds the hot key

  std::mutex mutex;
  std::vector<int> order;
  const auto queuer = [&](std::size_t session, int id) {
    auto& gate = scheduler.session(session);
    gate.admit(writes({kHot}));
    {
      std::lock_guard lock(mutex);
      order.push_back(id);
    }
    gate.finish(TxOutcome::kCommitted);
  };
  std::thread second(queuer, 1, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  std::thread third(queuer, 2, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds{50});

  first.finish(TxOutcome::kCommitted);
  second.join();
  third.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // ticket order, not luck
}

TEST(SchedQueue, WaitBudgetFallsBackAndAbandonedTicketIsSkipped) {
  obs::Observability obs;
  auto config = base_config(SchedulerPolicy::kQueue);
  config.queue_width = 1;
  config.queue_wait_budget = std::chrono::milliseconds{20};
  TxScheduler scheduler(config, 4, /*seed=*/1, &obs);
  heat(scheduler, 3, kHot);

  auto& first = scheduler.session(0);
  first.admit(writes({kHot}));  // holds the hot key and stalls

  // The second queuer blows its wait budget and falls back to optimistic
  // execution without the holder ever releasing.
  std::thread second([&] {
    auto& gate = scheduler.session(1);
    gate.admit(writes({kHot}));
    gate.finish(TxOutcome::kValidation);
  });
  second.join();
  EXPECT_GE(obs.metrics.snapshot().counter("sched.queue.timeouts"), 1u);

  // Its abandoned ticket must not wedge the queue: once the holder leaves,
  // a later ticket dispatches straight past it.
  std::thread third([&] {
    auto& gate = scheduler.session(2);
    gate.admit(writes({kHot}));
    gate.finish(TxOutcome::kCommitted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  first.finish(TxOutcome::kCommitted);
  third.join();  // completing at all is the assertion (no deadlock)
}

TEST(SchedAimd, AgingAdmitsGatedWaiter) {
  obs::Observability obs;
  auto config = base_config(SchedulerPolicy::kAdmit);
  config.class_hot_level = 48;
  config.initial_window = 0.5;  // admits one, gates the second
  config.min_window = 0.5;
  config.aging_budget = std::chrono::milliseconds{10};
  TxScheduler scheduler(config, 2, /*seed=*/1, &obs);
  scheduler.note_class_levels({kHot.cls}, {48});

  auto& first = scheduler.session(0);
  first.admit(writes({kHot}));
  EXPECT_EQ(scheduler.active(), 1u);

  const auto start = std::chrono::steady_clock::now();
  auto& second = scheduler.session(1);
  second.admit(writes({kHot}));  // gated; aging must admit it anyway
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(obs.metrics.snapshot().counter("sched.admit.aged"), 1u);
  EXPECT_LT(waited, std::chrono::seconds{5});
  EXPECT_EQ(scheduler.active(), 2u);

  second.finish(TxOutcome::kCommitted);
  first.finish(TxOutcome::kCommitted);
  EXPECT_EQ(scheduler.active(), 0u);
}

TEST(SchedAimd, ColdTrafficIsNeverGated) {
  auto config = base_config(SchedulerPolicy::kBoth);
  config.initial_window = 0.5;  // would gate everything if applied
  config.min_window = 0.5;
  TxScheduler scheduler(config, 3);
  heat(scheduler, 2, kHot);

  // Cold footprints bypass admission entirely: no slot taken, no wait.
  auto& first = scheduler.session(0);
  auto& second = scheduler.session(1);
  first.admit(writes({kCold}));
  second.admit(writes({kCold}));
  EXPECT_EQ(scheduler.active(), 0u);
  first.finish(TxOutcome::kCommitted);
  second.finish(TxOutcome::kCommitted);
}

TEST(SchedEndToEnd, AcnRunCommitsUnderBothPolicy) {
  harness::ClusterConfig cluster_config;
  cluster_config.n_servers = 5;
  cluster_config.base_latency = std::chrono::nanoseconds{0};
  cluster_config.stub.retry.base = std::chrono::nanoseconds{100};
  harness::Cluster cluster(cluster_config);
  workloads::Bank bank({.n_branches = 4, .n_accounts = 16,
                        .hot_branches = 2, .hot_probability = 0.9});
  bank.seed(cluster.servers());

  harness::DriverConfig driver;
  driver.n_clients = 4;
  driver.intervals = 2;
  driver.interval = std::chrono::milliseconds{100};
  driver.seed = 3;
  driver.executor.backoff_base = std::chrono::nanoseconds{100};
  driver.scheduler.policy = SchedulerPolicy::kBoth;

  const auto result =
      harness::run(cluster, bank, harness::Protocol::kAcn, driver);
  EXPECT_GT(result.stats.commits, 0u);  // invariants checked by the driver
}

}  // namespace
}  // namespace acn::sched
