// Unit tests for the simulated message-passing network.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "src/common/clock.hpp"
#include "src/net/network.hpp"

namespace acn::net {
namespace {

struct Ping {
  int value = 0;
  std::size_t bytes = 32;
  std::size_t approx_size() const noexcept { return bytes; }
};

struct Pong {
  int value = 0;
  int handled_by = -1;
  std::size_t approx_size() const noexcept { return 48; }
};

using TestNet = Network<Ping, Pong>;

std::unique_ptr<TestNet> make_net(std::size_t n,
                                  std::shared_ptr<const LatencyModel> latency =
                                      std::make_shared<ZeroLatency>()) {
  auto net = std::make_unique<TestNet>(std::move(latency));
  for (std::size_t i = 0; i < n; ++i)
    net->register_node(static_cast<NodeId>(i),
                       [i](NodeId, const Ping& p) {
                         return Pong{p.value + 1, static_cast<int>(i)};
                       });
  return net;
}

TEST(Network, CallReachesHandler) {
  auto net = make_net(3);
  const auto result = net->call(10, 1, Ping{41});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response.value, 42);
  EXPECT_EQ(result.response.handled_by, 1);
}

TEST(Network, AccountsMessagesAndBytes) {
  auto net = make_net(2);
  net->call(10, 0, Ping{1, 100});
  EXPECT_EQ(net->stats().messages(), 2u);  // request + response
  EXPECT_EQ(net->stats().bytes(), 100u + 48u);
}

TEST(Network, NodeDownIsRefused) {
  auto net = make_net(2);
  net->set_node_down(1, true);
  const auto result = net->call(10, 1, Ping{1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, NetErrorCode::kNodeDown);
  EXPECT_EQ(net->stats().refused(), 1u);
  net->set_node_down(1, false);
  EXPECT_TRUE(net->call(10, 1, Ping{1}).ok());
}

TEST(Network, UnregisteredNodeIsRefused) {
  auto net = make_net(2);
  EXPECT_EQ(net->call(10, 7, Ping{1}).error, NetErrorCode::kNodeDown);
}

TEST(Network, MulticallAlignsWithTargets) {
  auto net = make_net(4);
  const std::vector<NodeId> targets{2, 0, 3};
  const auto results =
      net->multicall(10, targets, [](NodeId to) { return Ping{to * 10}; });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].response.handled_by, 2);
  EXPECT_EQ(results[0].response.value, 21);
  EXPECT_EQ(results[1].response.handled_by, 0);
  EXPECT_EQ(results[2].response.handled_by, 3);
}

TEST(Network, MulticallSkipsDownNodesOnly) {
  auto net = make_net(3);
  net->set_node_down(1, true);
  const auto results = net->multicall(10, {0, 1, 2},
                                     [](NodeId) { return Ping{1}; });
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(Network, DropProbabilityOneDropsEverything) {
  auto net = make_net(2);
  net->set_drop_probability(1.0);
  const auto result = net->call(10, 0, Ping{1});
  EXPECT_EQ(result.error, NetErrorCode::kDropped);
  EXPECT_GE(net->stats().drops(), 1u);
  net->set_drop_probability(0.0);
  EXPECT_TRUE(net->call(10, 0, Ping{1}).ok());
}

TEST(Network, SetNodeDownUnknownIdThrows) {
  auto net = make_net(2);
  EXPECT_THROW(net->set_node_down(7, true), std::invalid_argument);
  EXPECT_THROW(net->set_node_down(-1, true), std::invalid_argument);
  EXPECT_THROW(net->node_down(99), std::invalid_argument);
  // Known ids still work after the failed calls.
  EXPECT_NO_THROW(net->set_node_down(1, true));
  EXPECT_TRUE(net->node_down(1));
}

TEST(Network, ResponseLegDropSurfacesAsDrop) {
  auto net = make_net(2);
  std::atomic<int> handled{0};
  net->register_node(5, [&handled](NodeId, const Ping& p) {
    handled.fetch_add(1);
    return Pong{p.value, 5};
  });
  // Only the server->client leg is lossy: the request is delivered and
  // handled, but the caller never sees the ack — the lost-ack 2PC hazard.
  net->set_link_fault(5, 10, LinkFault{1.0, Nanos{0}});
  const auto result = net->call(10, 5, Ping{1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, NetErrorCode::kDropped);
  EXPECT_EQ(handled.load(), 1);
  EXPECT_EQ(net->stats().response_drops(), 1u);
  // Other directions are unaffected.
  net->clear_link_faults();
  EXPECT_TRUE(net->call(10, 5, Ping{1}).ok());
}

TEST(Network, RequestLegLinkFaultSkipsHandler) {
  auto net = make_net(2);
  std::atomic<int> handled{0};
  net->register_node(5, [&handled](NodeId, const Ping& p) {
    handled.fetch_add(1);
    return Pong{p.value, 5};
  });
  net->set_link_fault(10, 5, LinkFault{1.0, Nanos{0}});
  EXPECT_EQ(net->call(10, 5, Ping{1}).error, NetErrorCode::kDropped);
  EXPECT_EQ(handled.load(), 0);
  net->clear_link_fault(10, 5);
  EXPECT_TRUE(net->call(10, 5, Ping{1}).ok());
}

TEST(Network, PartitionBlocksCrossGroupTraffic) {
  auto net = make_net(3);
  // Unlisted callers (the client, id 10) belong to group 0.
  net->set_partition({{0, 1}, {2}});
  EXPECT_TRUE(net->partitioned());
  EXPECT_TRUE(net->call(10, 1, Ping{1}).ok());
  const auto blocked = net->call(10, 2, Ping{1});
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.error, NetErrorCode::kPartitioned);
  EXPECT_GE(net->stats().partitioned(), 1u);

  const auto results =
      net->multicall(10, {0, 1, 2}, [](NodeId) { return Ping{1}; });
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[2].error, NetErrorCode::kPartitioned);

  net->clear_partition();
  EXPECT_FALSE(net->partitioned());
  EXPECT_TRUE(net->call(10, 2, Ping{1}).ok());
}

TEST(Network, PerLinkExtraLatencyIsApplied) {
  using namespace std::chrono_literals;
  auto net = make_net(2);
  net->set_link_fault(10, 0, LinkFault{0.0, Nanos{2ms}});
  Stopwatch watch;
  ASSERT_TRUE(net->call(10, 0, Ping{1}).ok());
  EXPECT_GE(watch.elapsed_ns(), 2'000'000u);  // request leg pays the fault
  // The other node's links are untouched: no 2ms floor there.
  EXPECT_TRUE(net->call(10, 1, Ping{1}).ok());
}

TEST(Network, GlobalExtraLatencyIsApplied) {
  using namespace std::chrono_literals;
  auto net = make_net(2);
  net->set_extra_latency(Nanos{1ms});
  EXPECT_EQ(net->extra_latency(), Nanos{1ms});
  Stopwatch watch;
  ASSERT_TRUE(net->call(10, 0, Ping{1}).ok());
  EXPECT_GE(watch.elapsed_ns(), 2'000'000u);  // both legs pay the spike
  net->set_extra_latency(Nanos{0});
}

TEST(Network, LatencyIsApplied) {
  using namespace std::chrono_literals;
  auto net = make_net(2, std::make_shared<FixedLatency>(Nanos{2ms}));
  Stopwatch watch;
  net->call(10, 0, Ping{1});
  EXPECT_GE(watch.elapsed_ns(), 4'000'000u);  // request + response leg
}

TEST(Network, MulticallPaysWorstRoundTripOnce) {
  using namespace std::chrono_literals;
  auto net = make_net(4, std::make_shared<FixedLatency>(Nanos{2ms}));
  Stopwatch watch;
  net->multicall(10, {0, 1, 2, 3}, [](NodeId) { return Ping{1}; });
  const auto elapsed = watch.elapsed_ns();
  EXPECT_GE(elapsed, 4'000'000u);
  // Four sequential calls would cost >= 16ms; a quorum multicall must not.
  EXPECT_LT(elapsed, 12'000'000u);
}

TEST(Mailbox, ProcessesInOrderAndCounts) {
  std::vector<int> seen;
  Mailbox<Ping, Pong> box([&seen](int, const Ping& p) {
    seen.push_back(p.value);
    return Pong{p.value * 2, 0};
  });
  auto f1 = box.submit(1, Ping{10});
  auto f2 = box.submit(1, Ping{20});
  EXPECT_EQ(f1.get().value, 20);
  EXPECT_EQ(f2.get().value, 40);
  EXPECT_EQ(seen, (std::vector<int>{10, 20}));
  EXPECT_EQ(box.processed(), 2u);
  EXPECT_GE(box.peak_depth(), 1u);
}

TEST(Mailbox, HandlerExceptionReachesWaiter) {
  Mailbox<Ping, Pong> box([](int, const Ping&) -> Pong {
    throw std::runtime_error("boom");
  });
  auto future = box.submit(1, Ping{1});
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Mailbox, DrainsQueueBeforeShutdown) {
  std::atomic<int> handled{0};
  std::vector<std::future<Pong>> futures;
  {
    Mailbox<Ping, Pong> box([&handled](int, const Ping& p) {
      handled.fetch_add(1);
      return Pong{p.value, 0};
    });
    for (int i = 0; i < 50; ++i) futures.push_back(box.submit(0, Ping{i}));
    // Destructor runs here with items possibly still queued.
  }
  int fulfilled = 0;
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds{0}) == std::future_status::ready)
      ++fulfilled;
  }
  EXPECT_EQ(fulfilled, handled.load());
  EXPECT_EQ(handled.load(), 50);  // stop only after the queue drained
}

TEST(Network, AsyncNodeServesCallsAndMulticalls) {
  TestNet net;
  for (std::size_t i = 0; i < 3; ++i)
    net.register_node_async(static_cast<NodeId>(i),
                            [i](NodeId, const Ping& p) {
                              return Pong{p.value + 1, static_cast<int>(i)};
                            });
  EXPECT_TRUE(net.node_is_async(1));
  const auto single = net.call(10, 1, Ping{41});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.response.value, 42);

  const auto results =
      net.multicall(10, {0, 1, 2}, [](NodeId to) { return Ping{to}; });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].ok());
    EXPECT_EQ(results[static_cast<std::size_t>(i)].response.handled_by, i);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].response.value, i + 1);
  }
}

TEST(Network, MixedInlineAndAsyncNodes) {
  TestNet net;
  net.register_node(0, [](NodeId, const Ping& p) { return Pong{p.value, 0}; });
  net.register_node_async(1,
                          [](NodeId, const Ping& p) { return Pong{p.value, 1}; });
  EXPECT_FALSE(net.node_is_async(0));
  EXPECT_TRUE(net.node_is_async(1));
  const auto results =
      net.multicall(9, {0, 1}, [](NodeId) { return Ping{5}; });
  EXPECT_EQ(results[0].response.handled_by, 0);
  EXPECT_EQ(results[1].response.handled_by, 1);
}

TEST(Network, AsyncMulticallOverlapsSlowHandlers) {
  using namespace std::chrono_literals;
  TestNet net;
  for (std::size_t i = 0; i < 4; ++i)
    net.register_node_async(static_cast<NodeId>(i), [](NodeId, const Ping& p) {
      std::this_thread::sleep_for(10ms);
      return Pong{p.value, 0};
    });
  acn::Stopwatch watch;
  net.multicall(10, {0, 1, 2, 3}, [](NodeId) { return Ping{1}; });
  // Serial execution would take >= 40ms; the bound leaves ~25ms of
  // scheduling slack so a loaded CI runner (parallel ctest, sanitizers)
  // cannot produce a false failure.
  EXPECT_LT(watch.elapsed_ns(), 35'000'000u);
}

TEST(NetStats, ResetClears) {
  auto net = make_net(1);
  net->call(5, 0, Ping{1});
  net->stats().reset();
  EXPECT_EQ(net->stats().messages(), 0u);
  EXPECT_EQ(net->stats().bytes(), 0u);
}

TEST(NetStats, SummaryMentionsCounters) {
  NetStats stats;
  stats.on_message(10);
  const auto text = stats.summary();
  EXPECT_NE(text.find("messages=1"), std::string::npos);
  EXPECT_NE(text.find("bytes=10"), std::string::npos);
}

TEST(Network, NestedCallFromHandlerThrows) {
  // A handler that calls back into the network would deadlock a real
  // transport's event loop; the sim must reject it the same way so tests
  // written against sim stay honest about what TCP can honor.
  auto net = std::make_unique<TestNet>(std::make_shared<ZeroLatency>());
  net->register_node(0, [&](NodeId, const Ping& p) {
    if (p.value == 99) net->call(0, 1, Ping{1});  // nested RPC: forbidden
    return Pong{p.value, 0};
  });
  net->register_node(1,
                     [](NodeId, const Ping& p) { return Pong{p.value, 1}; });
  EXPECT_TRUE(net->call(10, 0, Ping{1}).ok());  // plain call still fine
  EXPECT_THROW(net->call(10, 0, Ping{99}), std::logic_error);
  // The guard is RAII: after the throw unwinds, the depth is back to zero
  // and top-level calls keep working.
  EXPECT_TRUE(net->call(10, 0, Ping{1}).ok());
  EXPECT_TRUE(net->call(10, 1, Ping{2}).ok());
}

TEST(Network, NestedMulticallFromHandlerThrows) {
  auto net = std::make_unique<TestNet>(std::make_shared<ZeroLatency>());
  net->register_node(0, [&](NodeId, const Ping& p) {
    net->multicall(0, {1}, [](NodeId) { return Ping{1}; });
    return Pong{p.value, 0};
  });
  net->register_node(1,
                     [](NodeId, const Ping& p) { return Pong{p.value, 1}; });
  EXPECT_THROW(net->call(10, 0, Ping{1}), std::logic_error);
}

}  // namespace
}  // namespace acn::net
