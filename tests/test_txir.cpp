// Transaction-IR tests: builder wiring, env variable slots, object binding,
// snapshots, and transactional write-through.
#include <gtest/gtest.h>

#include "src/acn/txir.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/workload.hpp"

namespace acn::ir {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using store::ObjectKey;

ClusterConfig fast_config() {
  ClusterConfig config;
  config.n_servers = 4;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

const ObjectKey kA{1, 1};

TxProgram simple_program() {
  // read A; A[0] += p0  (one remote access, one dependent local op)
  ProgramBuilder b("simple", 1);
  const VarId p0 = b.param(0);
  const VarId a = b.remote_read(
      1, {p0}, [](const TxEnv&) { return kA; }, "read A");
  b.local({a, p0}, {a},
          [a, p0](TxEnv& e) {
            Record r = e.get(a);
            r[0] += e.geti(p0);
            e.write_object(a, std::move(r));
          },
          "bump A");
  return b.build();
}

TEST(ProgramBuilder, BuildsExpectedShape) {
  const TxProgram p = simple_program();
  EXPECT_EQ(p.name, "simple");
  EXPECT_EQ(p.n_params, 1u);
  EXPECT_EQ(p.n_vars, 2u);
  ASSERT_EQ(p.ops.size(), 2u);
  EXPECT_TRUE(p.ops[0].is_remote());
  EXPECT_FALSE(p.ops[1].is_remote());
  EXPECT_EQ(p.remote_op_count(), 1u);
  EXPECT_EQ(p.ops[0].writes(), std::vector<VarId>{1});
  EXPECT_EQ(p.ops[1].reads(), (std::vector<VarId>{1, 0}));
}

TEST(ProgramBuilder, ParamOutOfRangeThrows) {
  ProgramBuilder b("x", 2);
  EXPECT_NO_THROW(b.param(1));
  EXPECT_THROW(b.param(2), std::out_of_range);
}

TEST(ProgramBuilder, DoubleBuildThrows) {
  ProgramBuilder b("x", 0);
  b.remote_read(1, {}, [](const TxEnv&) { return kA; }, "r");
  b.build();
  EXPECT_THROW(b.build(), std::logic_error);
}

class TxEnvTest : public ::testing::Test {
 protected:
  TxEnvTest() : cluster_(fast_config()) {
    workloads::seed_all(cluster_.servers(), kA, Record{100});
  }
  Cluster cluster_;
};

TEST_F(TxEnvTest, ParamCountMustMatch) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  EXPECT_THROW(TxEnv(txn, p, {}), std::invalid_argument);
  EXPECT_NO_THROW(TxEnv(txn, p, {Record{1}}));
}

TEST_F(TxEnvTest, GetUnsetVarThrows) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{1}});
  EXPECT_EQ(env.geti(0), 1);
  EXPECT_FALSE(env.is_set(1));
  EXPECT_THROW(env.get(1), std::logic_error);
}

TEST_F(TxEnvTest, RemoteReadBindsKeyAndValue) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{5}});
  env.run_remote(p.ops[0].remote);
  EXPECT_TRUE(env.is_set(1));
  EXPECT_EQ(env.get(1), Record{100});
  EXPECT_EQ(env.key_of(1), kA);
}

TEST_F(TxEnvTest, WriteObjectRequiresBinding) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{5}});
  EXPECT_THROW(env.write_object(1, Record{1}), std::logic_error);
  EXPECT_THROW(env.key_of(1), std::logic_error);
}

TEST_F(TxEnvTest, FullExecutionWritesThrough) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{5}});
  env.run_remote(p.ops[0].remote);
  p.ops[1].local.fn(env);
  EXPECT_EQ(env.get(1), Record{105});
  txn.commit();
  EXPECT_EQ(workloads::latest_value(cluster_.servers(), kA).value, Record{105});
}

TEST_F(TxEnvTest, SnapshotRestoreUndoesVarMutations) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{5}});
  env.run_remote(p.ops[0].remote);
  const auto snapshot = env.snapshot();
  p.ops[1].local.fn(env);
  EXPECT_EQ(env.get(1), Record{105});
  env.restore(snapshot);
  EXPECT_EQ(env.get(1), Record{100});
  EXPECT_EQ(env.key_of(1), kA);  // binding preserved by the snapshot
}

TEST_F(TxEnvTest, InsertObjectGoesThroughTransaction) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{5}});
  env.insert_object({7, 7}, Record{1, 2});
  EXPECT_TRUE(txn.has_written({7, 7}));
}

TEST_F(TxEnvTest, SetiAndGetiRoundTrip) {
  const TxProgram p = simple_program();
  auto stub = cluster_.make_stub(0);
  nesting::Transaction txn(stub, nesting::next_tx_id());
  TxEnv env(txn, p, {Record{5}});
  env.seti(1, 42);
  EXPECT_EQ(env.geti(1), 42);
  env.set(1, Record{1, 2, 3});
  EXPECT_EQ(env.geti(1, 2), 3);
}

}  // namespace
}  // namespace acn::ir
