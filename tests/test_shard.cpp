// Sharding subsystem tests (src/shard + the group-aware harness): keyspace
// partitioning, footprint-based routing with mispredict escalation, the
// single-shard fast path's no-cross-group-traffic invariant, cross-shard
// 2PC atomicity, in-doubt parking + cooperative termination after a
// coordinator crash (abort via sealed presumed abort, commit via the
// decision record, parked while the coordinator node is down), a partition
// isolating a participant group, WAL recovery of an in-flight cross-shard
// prepare, group-scoped rejoin catch-up, and the per-group chaos victim
// derivation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/chaos/chaos.hpp"
#include "src/dtm/abort.hpp"
#include "src/harness/cluster.hpp"
#include "src/harness/indoubt.hpp"
#include "src/shard/coordinator.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard_map.hpp"

namespace acn::shard {
namespace {

using store::ObjectKey;
using store::Record;

harness::ClusterConfig fast_cluster(std::size_t groups,
                                    std::size_t per_group = 3) {
  harness::ClusterConfig config;
  config.n_servers = per_group;
  config.n_groups = groups;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

/// Deterministic group targeting without chasing hash placements: blocks of
/// 100 ids round-robin across groups, so id 5 is group 0, id 105 group 1...
ShardMap range_map(std::uint32_t n_shards) {
  ShardMapConfig config;
  config.n_shards = n_shards;
  config.partitioning = Partitioning::kRange;
  config.range_block = 100;
  return ShardMap(config);
}

KeyFootprint write_footprint(std::vector<ObjectKey> keys) {
  std::sort(keys.begin(), keys.end());
  KeyFootprint footprint;
  for (const auto& key : keys) footprint.push_back({key, true});
  return footprint;
}

std::size_t total_protected(harness::Cluster& cluster) {
  std::size_t count = 0;
  for (dtm::Server* server : cluster.servers())
    count += server->store().protected_count();
  return count;
}

std::size_t total_open_leases(harness::Cluster& cluster) {
  std::size_t count = 0;
  for (dtm::Server* server : cluster.servers())
    count += server->open_lease_count();
  return count;
}

TEST(ShardMap, HashIsDeterministicAndCoversEveryShard) {
  ShardMap map(ShardMapConfig{.n_shards = 8});
  std::vector<std::size_t> per_shard(8, 0);
  for (std::uint64_t id = 0; id < 4096; ++id) {
    const ObjectKey key{2, id};
    const std::uint32_t shard = map.shard_of(key);
    ASSERT_LT(shard, 8u);
    EXPECT_EQ(shard, map.shard_of(key));  // pure function of the key
    ++per_shard[shard];
  }
  // A balanced hash leaves no shard empty (or starved) over 4096 keys.
  for (const std::size_t n : per_shard) EXPECT_GT(n, 4096u / 16);
}

TEST(ShardMap, RangeBlocksRoundRobinAcrossShards) {
  const ShardMap map = range_map(3);
  EXPECT_EQ(map.shard_of({1, 0}), 0u);
  EXPECT_EQ(map.shard_of({1, 99}), 0u);
  EXPECT_EQ(map.shard_of({1, 100}), 1u);
  EXPECT_EQ(map.shard_of({1, 250}), 2u);
  EXPECT_EQ(map.shard_of({1, 300}), 0u);  // wraps round-robin
}

TEST(ShardMap, DegenerateAndInvalidConfigs) {
  ShardMap one(ShardMapConfig{.n_shards = 1});
  for (std::uint64_t id = 0; id < 64; ++id)
    EXPECT_EQ(one.shard_of({7, id}), 0u);
  EXPECT_THROW(ShardMap(ShardMapConfig{.n_shards = 0}), std::invalid_argument);
  EXPECT_THROW(ShardMap(ShardMapConfig{.n_shards = 2,
                                       .partitioning = Partitioning::kRange,
                                       .range_block = 0}),
               std::invalid_argument);
}

TEST(ShardMap, ReplicatedClassesAreInvisibleToRoutePlanning) {
  ShardMapConfig config;
  config.n_shards = 2;
  config.partitioning = Partitioning::kRange;
  config.range_block = 100;
  config.replicated_classes = {4};
  const ShardMap map(config);
  EXPECT_TRUE(map.replicated(4));
  EXPECT_FALSE(map.replicated(1));

  // A footprint spanning a replicated key and a home key stays single
  // shard: the replicated class contributes no group.
  const KeyFootprint footprint = write_footprint({{1, 5}, {4, 9999}});
  EXPECT_EQ(map.shards_touched(footprint),
            (std::vector<std::uint32_t>{0}));
}

TEST(ShardMap, CustomPlacementReducesNaturalIdsModuloShards) {
  ShardMapConfig config;
  config.n_shards = 3;
  config.partitioning = Partitioning::kCustom;
  // The workload returns a natural placement id (here: the raw key id, as
  // a branch-per-group bank would); the map owns the modulo.
  config.custom = [](const ObjectKey& key) {
    return static_cast<std::uint32_t>(key.id);
  };
  const ShardMap map(config);
  EXPECT_EQ(map.shard_of({1, 0}), 0u);
  EXPECT_EQ(map.shard_of({1, 4}), 1u);
  EXPECT_EQ(map.shard_of({1, 5}), 2u);
}

TEST(Coordinator, ReplicatedClassReadsServeFromHomeAndWritesAreRefused) {
  harness::Cluster cluster(fast_cluster(2));
  ShardMapConfig map_config;
  map_config.n_shards = 2;
  map_config.partitioning = Partitioning::kRange;
  map_config.range_block = 100;
  map_config.replicated_classes = {4};
  const ShardMap map(map_config);
  ShardRouter router(map);
  const ObjectKey home{1, 105};      // group 1
  const ObjectKey reference{4, 42};  // replicated: seeded on BOTH groups
  seed_sharded(cluster, map, home, Record{10});
  seed_sharded(cluster, map, reference, Record{77});

  CrossShardCoordinator coordinator(cluster, router, 0);
  KeyFootprint footprint = write_footprint({home});
  footprint.push_back({reference, false});
  std::sort(footprint.begin(), footprint.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  ShardTx tx = coordinator.begin(footprint);
  // The plan is single-shard on group 1; the replicated read is served
  // there without widening the plan.
  EXPECT_TRUE(tx.predicted().single_shard());
  EXPECT_EQ(tx.predicted().home(), 1u);
  EXPECT_EQ(tx.read(reference).fields[0], 77);
  const auto h = tx.read(home);
  tx.write(home, Record{h.fields[0] + 1});
  // Writing a replicated class would silently diverge the groups' copies.
  EXPECT_THROW(tx.write(reference, Record{0}), std::logic_error);
  tx.commit();
  EXPECT_EQ(latest_sharded(cluster, map, home).value.fields[0], 11);
}

TEST(ShardsTouched, SortedDeduplicatedUnderAnyPartitioning) {
  const KeyFootprint footprint = write_footprint(
      {{1, 205}, {1, 5}, {2, 110}, {1, 107}});
  // The acn helper is generic over the partitioning callable.
  const auto shards = acn::shards_touched(
      footprint, [](const ir::ObjectKey& key) {
        return static_cast<std::uint32_t>((key.id / 100) % 3);
      });
  EXPECT_EQ(shards, (std::vector<std::uint32_t>{0, 1, 2}));
  // And ShardMap binds it to the real map.
  const ShardMap map = range_map(3);
  EXPECT_EQ(map.shards_touched(footprint),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_TRUE(map.shards_touched({}).empty());
}

TEST(ShardsTouched, PredictedFootprintRoutesAProgram) {
  // The same static analysis that feeds the scheduler feeds the router: a
  // program whose param-only keys span two range blocks plans multi-shard.
  ir::ProgramBuilder b("cross", /*n_params=*/1);
  b.remote_read(
      1, {b.param(0)}, [](const ir::TxEnv&) { return ObjectKey{1, 5}; },
      "read home", /*for_write=*/true);
  b.remote_read(
      1, {b.param(0)}, [](const ir::TxEnv&) { return ObjectKey{1, 105}; },
      "read away", /*for_write=*/true);
  const auto program = b.build();
  const auto footprint = predicted_footprint(program, {ir::Record{1}});
  ASSERT_EQ(footprint.size(), 2u);

  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const RoutePlan plan = router.plan(footprint);
  EXPECT_FALSE(plan.single_shard());
  EXPECT_EQ(plan.groups, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Router, ReclassifyEscalatesMispredictionsNeverTrustsThePlan) {
  const ShardMap map = range_map(2);
  ShardRouter router(map);

  const RoutePlan predicted = router.plan(write_footprint({{1, 5}}));
  EXPECT_TRUE(predicted.single_shard());
  EXPECT_EQ(predicted.home(), 0u);

  // The transaction actually touched a key on group 1 the prediction never
  // saw: the authoritative plan spans both groups and the escape is
  // counted.  Committing this single-shard would drop the group-1 write.
  const RoutePlan actual =
      router.reclassify(predicted, {{1, 5}, {1, 105}});
  EXPECT_EQ(actual.groups, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(router.stats().mispredicted, 1u);

  // Over-prediction (a planned group never touched) narrows the plan and is
  // NOT a mispredict — nothing can be lost by touching less than planned.
  const RoutePlan narrowed =
      router.reclassify(RoutePlan{{0, 1}}, {{1, 5}});
  EXPECT_EQ(narrowed.groups, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(router.stats().mispredicted, 1u);

  // An empty plan routes to group 0 rather than nowhere.
  EXPECT_EQ(router.plan({}).groups, (std::vector<std::uint32_t>{0}));
}

TEST(Server, RefusesWrongGroupPrepareAndCommit) {
  harness::Cluster cluster(fast_cluster(2));
  dtm::Server& g1_server = cluster.server(cluster.config().n_servers);
  ASSERT_EQ(g1_server.group(), 1u);

  dtm::Request prepare;
  prepare.payload = dtm::PrepareRequest{77, {}, {{1, 5}}, /*group=*/0};
  const auto prepare_res = g1_server.handle(100, prepare);
  EXPECT_EQ(std::get<dtm::PrepareResponse>(prepare_res.payload).code,
            dtm::PrepareCode::kWrongGroup);
  EXPECT_EQ(g1_server.store().protected_count(), 0u);

  dtm::Request commit;
  commit.payload = dtm::CommitRequest{77, {{1, 5}}, {Record{1}}, {1},
                                      /*group=*/0};
  const auto commit_res = g1_server.handle(100, commit);
  EXPECT_EQ(std::get<dtm::CommitResponse>(commit_res.payload).code,
            dtm::CommitCode::kExpired);
  EXPECT_EQ(g1_server.stats().wrong_group.load(), 2u);
  EXPECT_EQ(g1_server.store().read({1, 5}).status, store::ReadStatus::kMissing);
}

TEST(Coordinator, SingleShardCommitNeverTouchesOtherGroups) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey home{1, 5};  // group 0
  seed_sharded(cluster, map, home, Record{100});

  CrossShardCoordinator coordinator(cluster, router, /*client_ordinal=*/0);
  ShardTx tx = coordinator.begin(write_footprint({home}));
  EXPECT_TRUE(tx.predicted().single_shard());
  const Record before = tx.read(home);
  EXPECT_EQ(before.fields[0], 100);
  tx.write(home, Record{before.fields[0] + 1});
  tx.commit();

  EXPECT_EQ(latest_sharded(cluster, map, home).value.fields[0], 101);
  EXPECT_EQ(coordinator.stats().single_shard_commits.load(), 1u);
  EXPECT_EQ(coordinator.stats().cross_shard_commits.load(), 0u);
  EXPECT_TRUE(tx.committed_plan().single_shard());

  // The fast-path invariant: group 1 heard NOTHING about this transaction.
  for (dtm::Server* server : cluster.group_servers(1)) {
    EXPECT_EQ(server->stats().reads.load(), 0u);
    EXPECT_EQ(server->stats().prepares.load(), 0u);
    EXPECT_EQ(server->stats().commits.load(), 0u);
    EXPECT_EQ(server->stats().aborts.load(), 0u);
  }
}

TEST(Coordinator, CrossShardTransferCommitsAtomically) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};  // groups 0 and 1
  seed_sharded(cluster, map, src, Record{1000});
  seed_sharded(cluster, map, dst, Record{1000});

  CrossShardCoordinator coordinator(cluster, router, 0);
  ShardTx tx = coordinator.begin(write_footprint({src, dst}));
  EXPECT_FALSE(tx.predicted().single_shard());
  const auto a = tx.read(src), b = tx.read(dst);
  tx.write(src, Record{a.fields[0] - 75});
  tx.write(dst, Record{b.fields[0] + 75});
  tx.commit();

  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 925);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 1075);
  EXPECT_EQ(coordinator.stats().cross_shard_commits.load(), 1u);
  EXPECT_EQ(coordinator.stats().atomicity_breaches.load(), 0u);
  EXPECT_EQ(total_protected(cluster), 0u);
  EXPECT_EQ(total_open_leases(cluster), 0u);
}

TEST(Coordinator, ValidationConflictAbortsAndReleasesEveryGroup) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};
  seed_sharded(cluster, map, src, Record{500});
  seed_sharded(cluster, map, dst, Record{500});

  CrossShardCoordinator loser(cluster, router, 0);
  CrossShardCoordinator winner(cluster, router, 1);

  ShardTx tx = loser.begin(write_footprint({src, dst}));
  tx.read(src);
  tx.read(dst);

  // A rival commits a new version of dst between the read and the commit.
  ShardTx rival = winner.begin(write_footprint({dst}));
  rival.write(dst, Record{999});
  rival.commit();

  tx.write(src, Record{1});
  tx.write(dst, Record{2});
  EXPECT_THROW(tx.commit(), dtm::TxAbort);

  // The abort released group 0's prepare; dst keeps the rival's value.
  EXPECT_EQ(total_protected(cluster), 0u);
  EXPECT_EQ(total_open_leases(cluster), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 500);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 999);
  EXPECT_EQ(loser.stats().aborts.load(), 1u);
}

TEST(Coordinator, CrashBetweenPreparesParksInDoubtThenResolvesToAbort) {
  auto config = fast_cluster(2);
  config.prepare_lease_ns = 50'000'000;  // 50 ms
  harness::Cluster cluster(config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};
  seed_sharded(cluster, map, src, Record{300});
  seed_sharded(cluster, map, dst, Record{300});

  CrossShardCoordinator doomed(cluster, router, 0);
  ShardTx tx = doomed.begin(write_footprint({src, dst}));
  tx.read(src);
  tx.read(dst);
  tx.write(src, Record{0});
  tx.write(dst, Record{0});
  ASSERT_EQ(tx.prepare_all(), 2u);  // both groups hold a prepare
  EXPECT_GT(total_open_leases(cluster), 0u);

  // "Crash": the coordinator never sends phase 2.  The expired leases do
  // NOT release — a sibling group may have been told to commit, so both
  // groups park in-doubt with their protections held.
  std::this_thread::sleep_for(std::chrono::milliseconds{80});
  for (dtm::Server* server : cluster.servers()) server->expire_stale_leases();
  EXPECT_GT(total_open_leases(cluster), 0u);
  EXPECT_GT(total_protected(cluster), 0u);
  std::size_t parked = 0;
  for (dtm::Server* server : cluster.servers()) parked += server->indoubt_count();
  EXPECT_GT(parked, 0u);

  // Cooperative termination: the coordinator NODE is reachable and its
  // decision log has no record, so presumed abort is authoritative — both
  // groups release.
  const auto report = harness::resolve_indoubt(cluster);
  EXPECT_EQ(report.resolved_commit, 0u);
  EXPECT_EQ(report.resolved_abort, 2u);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_EQ(total_open_leases(cluster), 0u);
  EXPECT_EQ(total_protected(cluster), 0u);

  // The keys are free: a live coordinator transfers across them at once.
  CrossShardCoordinator alive(cluster, router, 1);
  ShardTx retry = alive.begin(write_footprint({src, dst}));
  const auto a = retry.read(src), b = retry.read(dst);
  retry.write(src, Record{a.fields[0] - 10});
  retry.write(dst, Record{b.fields[0] + 10});
  retry.commit();
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 290);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 310);

  // The zombie coordinator waking up cannot decide commit: serving the
  // resolver presumed abort sealed the outcome in its own decision log, so
  // commit_prepared aborts instead of pushing phase 2 — no partial state,
  // no resurrected values, no breach.
  EXPECT_THROW(tx.commit_prepared(), dtm::TxAbort);
  EXPECT_EQ(doomed.stats().atomicity_breaches.load(), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 290);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 310);
}

TEST(Coordinator, InDoubtGroupResolvesToCommitFromDecisionRecord) {
  // One group installs phase 2, the second group's push is lost and its
  // lease expires: the satellite scenario — the second group must resolve
  // to COMMIT via the coordinator's decision record, never abort.
  auto config = fast_cluster(2);
  config.prepare_lease_ns = 40'000'000;  // 40 ms
  harness::Cluster cluster(config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};  // groups 0 and 1
  seed_sharded(cluster, map, src, Record{600});
  seed_sharded(cluster, map, dst, Record{600});

  CrossShardCoordinator coordinator(cluster, router, 0);
  ShardTx tx = coordinator.begin(write_footprint({src, dst}));
  const auto a = tx.read(src), b = tx.read(dst);
  tx.write(src, Record{a.fields[0] - 50});
  tx.write(dst, Record{b.fields[0] + 50});
  ASSERT_EQ(tx.prepare_all(), 2u);

  // Partition group 1 away, then push phase 2: group 0 installs, group 1
  // is unreachable — an in-doubt handoff, and the client still commits.
  cluster.network().set_partition({{}, cluster.group_members(1)});
  tx.commit_prepared();
  EXPECT_EQ(coordinator.stats().indoubt_handoffs.load(), 1u);
  EXPECT_EQ(coordinator.stats().atomicity_breaches.load(), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 550);
  // dst is still protected by group 1's undelivered prepare — unreadable
  // until cooperative termination installs or releases it.

  // Group 1's lease runs out behind the partition: parked in-doubt.
  std::this_thread::sleep_for(std::chrono::milliseconds{60});
  cluster.network().clear_partition();
  for (dtm::Server* server : cluster.servers()) server->expire_stale_leases();
  std::size_t parked = 0;
  for (dtm::Server* server : cluster.servers()) parked += server->indoubt_count();
  EXPECT_GT(parked, 0u);

  // Cooperative termination reads the decision record and installs group
  // 1's exact push — the transfer completes, atomically after all.
  const auto report = harness::resolve_indoubt(cluster);
  EXPECT_EQ(report.resolved_commit, 1u);
  EXPECT_EQ(report.resolved_abort, 0u);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 650);
  EXPECT_EQ(total_open_leases(cluster), 0u);
  EXPECT_EQ(total_protected(cluster), 0u);
}

TEST(Coordinator, InDoubtStaysParkedWhileCoordinatorNodeIsDown) {
  // Coordinator crash AFTER recording commit, before any push: with the
  // coordinator node down no participant may presume abort (the record may
  // say commit) — the prepare stays parked until the node heals, then
  // resolves to commit.
  auto config = fast_cluster(2);
  config.prepare_lease_ns = 40'000'000;
  harness::Cluster cluster(config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};
  seed_sharded(cluster, map, src, Record{800});
  seed_sharded(cluster, map, dst, Record{800});

  CrossShardCoordinator coordinator(cluster, router, 0);
  ShardTx tx = coordinator.begin(write_footprint({src, dst}));
  const auto a = tx.read(src), b = tx.read(dst);
  tx.write(src, Record{a.fields[0] + 1});
  tx.write(dst, Record{b.fields[0] + 1});
  ASSERT_EQ(tx.prepare_all(), 2u);
  // Record the decision exactly as commit_prepared would, then "crash":
  // the node goes down before any phase-two message.
  {
    std::vector<dtm::CommitRequest> pushes;
    for (const auto& [key, version] :
         std::vector<std::pair<ObjectKey, store::Version>>{{src, 2}, {dst, 2}})
      pushes.push_back({tx.id(), {key}, {Record{801}}, {version},
                        map.shard_of(key)});
    ASSERT_TRUE(coordinator.decisions().record_commit(tx.id(), pushes));
  }
  cluster.network().set_node_down(coordinator.client_node(), true);

  std::this_thread::sleep_for(std::chrono::milliseconds{60});
  for (dtm::Server* server : cluster.servers()) server->expire_stale_leases();

  // No coordinator, no sibling with a memory: everything stays parked.
  const auto parked_report = harness::resolve_indoubt(cluster);
  EXPECT_EQ(parked_report.resolved_commit, 0u);
  EXPECT_EQ(parked_report.resolved_abort, 0u);
  EXPECT_EQ(parked_report.unresolved, 2u);
  EXPECT_GT(total_protected(cluster), 0u);

  // Node heals: the record is reachable again and both groups install.
  cluster.network().set_node_down(coordinator.client_node(), false);
  const auto report = harness::resolve_indoubt(cluster);
  EXPECT_EQ(report.resolved_commit, 2u);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 801);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 801);
  EXPECT_EQ(total_open_leases(cluster), 0u);
  EXPECT_EQ(total_protected(cluster), 0u);
}

TEST(Coordinator, PartitionIsolatingAParticipantGroupAbortsCleanly) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};
  seed_sharded(cluster, map, src, Record{700});
  seed_sharded(cluster, map, dst, Record{700});

  // Cut group 1 off from everyone (clients included, like chaos isolate()).
  cluster.network().set_partition({{}, cluster.group_members(1)});

  CrossShardCoordinator coordinator(cluster, router, 0);
  ShardTx tx = coordinator.begin(write_footprint({src, dst}));
  const auto a = tx.read(src);  // group 0 is reachable
  tx.write(src, Record{a.fields[0] - 1});
  tx.write(dst, Record{1});
  EXPECT_THROW(tx.commit(), dtm::TxAbort);

  cluster.network().clear_partition();
  // Group 0's prepare was released by the coordinator's phase-1 unwind —
  // not stranded until lease expiry — and group 1 never prepared at all.
  EXPECT_EQ(total_protected(cluster), 0u);
  EXPECT_EQ(total_open_leases(cluster), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 700);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 700);
}

TEST(Coordinator, WalRecoveryRearmsInflightCrossShardPrepare) {
  const std::string data_dir =
      testing::TempDir() + "acn-shard-wal-recovery";
  std::filesystem::remove_all(data_dir);

  auto config = fast_cluster(2);
  config.prepare_lease_ns = 60'000'000'000;  // park: expiry not under test
  config.durability.mode = harness::DurabilityMode::kWal;
  config.durability.data_dir = data_dir;
  config.durability.flush_interval_ns = 0;  // every append reaches the disk
  harness::Cluster cluster(config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey src{1, 5}, dst{1, 105};
  seed_sharded(cluster, map, src, Record{40});
  seed_sharded(cluster, map, dst, Record{40});
  cluster.checkpoint_all();  // seeding bypasses the WAL

  CrossShardCoordinator coordinator(cluster, router, 0);
  ShardTx tx = coordinator.begin(write_footprint({src, dst}));
  tx.write(src, Record{41});
  tx.write(dst, Record{41});
  ASSERT_EQ(tx.prepare_all(), 2u);

  // Crash a group-1 replica that holds the in-flight prepare; its log has
  // the prepare record, so recovery must re-arm the protection.
  net::NodeId victim = -1;
  for (const net::NodeId id : cluster.group_members(1))
    if (cluster.server(static_cast<std::size_t>(id)).open_lease_count() > 0) {
      victim = id;
      break;
    }
  ASSERT_NE(victim, -1);
  cluster.crash_node(victim);
  cluster.restart_node(victim);
  dtm::Server& rejoined = cluster.server(static_cast<std::size_t>(victim));
  EXPECT_EQ(rejoined.open_lease_count(), 1u);
  EXPECT_GT(rejoined.store().protected_count(), 0u);

  // Phase 2 completes against the rejoined replica — the recovered
  // protection belongs to THIS transaction, so the commit lands.
  tx.commit_prepared();
  EXPECT_EQ(coordinator.stats().atomicity_breaches.load(), 0u);
  EXPECT_EQ(latest_sharded(cluster, map, src).value.fields[0], 41);
  EXPECT_EQ(latest_sharded(cluster, map, dst).value.fields[0], 41);
  EXPECT_EQ(total_open_leases(cluster), 0u);

  std::filesystem::remove_all(data_dir);
}

TEST(Cluster, RejoinCatchUpStaysInsideTheGroup) {
  // Four replicas per group: the tree (root + 3 leaves) keeps its write
  // quorum constructible with one leaf down.  Quorum selection is random,
  // so give the stub enough re-picks to dodge the crashed leaf.
  auto config = fast_cluster(2, /*per_group=*/4);
  config.stub.max_quorum_retries = 16;
  harness::Cluster cluster(config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey k0{1, 5}, k1{1, 105};
  seed_sharded(cluster, map, k0, Record{10});
  seed_sharded(cluster, map, k1, Record{10});

  const net::NodeId victim = cluster.group_members(1).back();
  cluster.crash_node(victim);

  // Advance both keys while the group-1 replica is down.
  CrossShardCoordinator coordinator(cluster, router, 0);
  ShardTx tx = coordinator.begin(write_footprint({k0, k1}));
  const auto a = tx.read(k0), b = tx.read(k1);
  tx.write(k0, Record{a.fields[0] + 1});
  tx.write(k1, Record{b.fields[0] + 2});
  tx.commit();

  cluster.restart_node(victim, harness::CatchUpScope::kAllReplicas);
  dtm::Server& rejoined = cluster.server(static_cast<std::size_t>(victim));
  // Caught up on its own group's key...
  EXPECT_EQ(rejoined.store().read(k1).record.value.fields[0], 12);
  // ...and did NOT import the other group's keyspace.
  EXPECT_EQ(rejoined.store().read(k0).status, store::ReadStatus::kMissing);
}

TEST(Chaos, LeafVictimsAndPartitionGroupsArePerGroup) {
  harness::Cluster cluster(fast_cluster(2, /*per_group=*/7));

  // Group 0's tree over local ids 0..6 (arity 3): leaves are 2..6.
  EXPECT_EQ(chaos::ChaosController::leaf_victims(cluster, 3, 0),
            (std::vector<net::NodeId>{6, 5, 4}));
  // Group 1: same tree relocated to ids 7..13 — never group 1's root (7).
  EXPECT_EQ(chaos::ChaosController::leaf_victims(cluster, 3, 1),
            (std::vector<net::NodeId>{13, 12, 11}));
  const auto all = chaos::ChaosController::leaf_victims(cluster, 6, 1);
  for (const net::NodeId id : all) {
    EXPECT_GE(id, 8);  // neither the root nor a group-0 node
    EXPECT_LT(id, 14);
  }

  const auto groups = chaos::ChaosController::shard_partition_groups(cluster);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], cluster.group_members(0));
  EXPECT_EQ(groups[1], cluster.group_members(1));
}

TEST(Coordinator, MispredictedFootprintFallsBackToCrossShard2pc) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  const ObjectKey home{1, 5}, surprise{1, 105};
  seed_sharded(cluster, map, home, Record{50});
  seed_sharded(cluster, map, surprise, Record{50});

  CrossShardCoordinator coordinator(cluster, router, 0);
  // The prediction only saw the home key (the surprise key is the model of
  // a mid-transaction pointer chase the static analysis cannot see).
  ShardTx tx = coordinator.begin(write_footprint({home}));
  EXPECT_TRUE(tx.predicted().single_shard());
  const auto a = tx.read(home);
  const auto b = tx.read(surprise);
  tx.write(home, Record{a.fields[0] - 5});
  tx.write(surprise, Record{b.fields[0] + 5});
  tx.commit();

  // The commit escalated to 2PC on the groups actually touched — never a
  // silent single-shard commit that drops the group-1 write.
  EXPECT_EQ(tx.committed_plan().groups, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(coordinator.stats().cross_shard_commits.load(), 1u);
  EXPECT_EQ(coordinator.stats().single_shard_commits.load(), 0u);
  EXPECT_EQ(router.stats().mispredicted, 1u);
  EXPECT_EQ(latest_sharded(cluster, map, home).value.fields[0], 45);
  EXPECT_EQ(latest_sharded(cluster, map, surprise).value.fields[0], 55);
}

}  // namespace
}  // namespace acn::shard
