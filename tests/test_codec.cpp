// Wire-codec tests: round-trip fidelity for every message type, edge
// cases, corruption handling, randomized fuzz, and end-to-end coverage by
// running a real cluster with StubConfig::verify_codec enabled.
#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "src/dtm/codec.hpp"
#include "src/transport/frame.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/bank.hpp"
#include "src/acn/executor.hpp"

namespace acn::dtm {
namespace {

const ObjectKey kA{3, 77};
const ObjectKey kB{4, 123456789012345ULL};

template <class Payload>
Request req(Payload payload) {
  Request r;
  r.payload = std::move(payload);
  return r;
}

template <class Payload>
Response res(Payload payload) {
  Response r;
  r.payload = std::move(payload);
  return r;
}

TEST(Codec, ReadRequestRoundTrip) {
  const auto original = req(ReadRequest{
      42, kA, {{kB, 7}, {kA, 1}}, {1, 2, 3}});
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, ReadRequestEmptyListsRoundTrip) {
  const auto original = req(ReadRequest{1, kA, {}, {}});
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, ValidateRequestRoundTrip) {
  const auto original = req(ValidateRequest{9, {{kA, 3}}});
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, PrepareRequestRoundTrip) {
  const auto original = req(PrepareRequest{5, {{kA, 2}}, {kA, kB}, 3});
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, PrepareRequestCrossShardMetadataRoundTrips) {
  PrepareRequest prepare{5, {{kA, 2}}, {kA, kB}, 3};
  prepare.participants = {1, 3, 6};
  prepare.coordinator = 42;
  prepare.values = {Record{7, -8}, Record{}};
  const auto original = req(std::move(prepare));
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, DecisionQueryAndReplyRoundTrip) {
  const auto query = req(DecisionQuery{99, 4});
  EXPECT_EQ(roundtrip(query), query);
  for (const auto code : {DecisionCode::kUnknown, DecisionCode::kInDoubt,
                          DecisionCode::kCommitted, DecisionCode::kAborted})
    EXPECT_EQ(roundtrip(res(DecisionReply{code})), res(DecisionReply{code}));
  const auto full = res(DecisionReply{
      DecisionCode::kCommitted, {kA, kB}, {Record{1}, Record{2, 3}}, {8, 9}});
  EXPECT_EQ(roundtrip(full), full);
}

TEST(Codec, CommitRequestRoundTrip) {
  const auto original = req(CommitRequest{
      7, {kA, kB}, {Record{1, -2, 3}, Record{}}, {10, 11}, 2});
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, AbortAndContentionRequestRoundTrip) {
  EXPECT_EQ(roundtrip(req(AbortRequest{3, {kA}})), req(AbortRequest{3, {kA}}));
  EXPECT_EQ(roundtrip(req(ContentionRequest{{5, 6}})),
            req(ContentionRequest{{5, 6}}));
}

TEST(Codec, NegativeFieldsSurvive) {
  const auto original = req(CommitRequest{
      1, {kA}, {Record{-9'000'000'000'000LL, 0, 42}}, {2}});
  EXPECT_EQ(roundtrip(original), original);
}

TEST(Codec, AllResponseKindsRoundTrip) {
  EXPECT_EQ(roundtrip(Response{}), Response{});
  const auto read = res(ReadResponse{
      ReadCode::kInvalid, {Record{1, 2}, 9}, {kA, kB}, {4, 5}});
  EXPECT_EQ(roundtrip(read), read);
  const auto validate = res(ValidateResponse{{kB}, true});
  EXPECT_EQ(roundtrip(validate), validate);
  const auto prepare = res(PrepareResponse{PrepareCode::kBusy, {kA}, {1, 2}});
  EXPECT_EQ(roundtrip(prepare), prepare);
  for (const auto code : {CommitCode::kApplied, CommitCode::kDuplicate,
                          CommitCode::kExpired})
    EXPECT_EQ(roundtrip(res(CommitResponse{code})), res(CommitResponse{code}));
  EXPECT_EQ(roundtrip(res(AbortResponse{})), res(AbortResponse{}));
  const auto contention = res(ContentionResponse{{0, 18'446'744'073ULL}});
  EXPECT_EQ(roundtrip(contention), contention);
}

TEST(Codec, TruncatedBufferThrows) {
  auto bytes = encode(req(ReadRequest{42, kA, {{kB, 7}}, {}}));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::uint8_t> slice(bytes.data(), cut);
    EXPECT_THROW(decode_request(slice), CodecError) << "cut at " << cut;
  }
}

TEST(Codec, TrailingGarbageThrows) {
  auto bytes = encode(req(AbortRequest{1, {}}));
  bytes.push_back(0xff);
  EXPECT_THROW(decode_request(bytes), CodecError);
}

TEST(Codec, UnknownTagThrows) {
  const std::vector<std::uint8_t> bogus{0x7f, 0, 0, 0};
  EXPECT_THROW(decode_request(bogus), CodecError);
  EXPECT_THROW(decode_response(bogus), CodecError);
}

TEST(Codec, CorruptListCountRejected) {
  auto bytes = encode(req(ValidateRequest{1, {{kA, 2}}}));
  // The list count sits right after tag(1) + tx(8): blow it up.
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  EXPECT_THROW(decode_request(bytes), CodecError);
}

TEST(Codec, FuzzRandomRequestsRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    Request original;
    const auto kind = rng.uniform(0, 5);
    auto random_key = [&] {
      return ObjectKey{static_cast<ClassId>(rng.uniform(0, 9)),
                       rng.uniform(0, ~0ULL >> 1)};
    };
    auto random_checks = [&] {
      std::vector<VersionCheck> checks(rng.uniform(0, 6));
      for (auto& c : checks) c = {random_key(), rng.uniform(0, 1000)};
      return checks;
    };
    auto random_keys = [&] {
      std::vector<ObjectKey> keys(rng.uniform(0, 6));
      for (auto& k : keys) k = random_key();
      return keys;
    };
    switch (kind) {
      case 0:
        original.payload = ReadRequest{rng.uniform(0, 99), random_key(),
                                       random_checks(), {}};
        break;
      case 1:
        original.payload = ValidateRequest{rng.uniform(0, 99), random_checks()};
        break;
      case 2:
        original.payload =
            PrepareRequest{rng.uniform(0, 99), random_checks(), random_keys(),
                           static_cast<std::uint32_t>(rng.uniform(0, 7))};
        break;
      case 3: {
        CommitRequest commit;
        commit.tx = rng.uniform(0, 99);
        commit.keys = random_keys();
        for (std::size_t i = 0; i < commit.keys.size(); ++i) {
          Record r(rng.uniform(0, 4));
          for (auto& f : r.fields)
            f = static_cast<store::Field>(rng.uniform(0, 1 << 20)) - (1 << 19);
          commit.values.push_back(std::move(r));
          commit.versions.push_back(rng.uniform(0, 1000));
        }
        commit.group = static_cast<std::uint32_t>(rng.uniform(0, 7));
        original.payload = std::move(commit);
        break;
      }
      case 4:
        original.payload = AbortRequest{rng.uniform(0, 99), random_keys()};
        break;
      default: {
        ContentionRequest contention;
        contention.classes.resize(rng.uniform(0, 8));
        for (auto& c : contention.classes)
          c = static_cast<ClassId>(rng.uniform(0, 30));
        original.payload = std::move(contention);
        break;
      }
    }
    EXPECT_EQ(roundtrip(original), original) << "trial " << trial;
  }
}

TEST(Codec, EncodedSizeTracksApproxSize) {
  // approx_size() feeds the latency model; it should be the same order of
  // magnitude as the real encoding.
  const auto request = req(CommitRequest{
      7, {kA, kB}, {Record{1, 2, 3}, Record{4}}, {10, 11}});
  const auto exact = encode(request).size();
  const auto approx = request.approx_size();
  EXPECT_GT(approx, exact / 4);
  EXPECT_LT(approx, exact * 4);
}

TEST(Codec, EndToEndTrafficVerifiesCleanly) {
  // Run a real contended workload with verify_codec on: every RPC's
  // request and response round-trips through the wire format.
  harness::ClusterConfig config;
  config.n_servers = 7;
  config.base_latency = std::chrono::nanoseconds{0};
  config.stub.verify_codec = true;
  harness::Cluster cluster(config);
  workloads::Bank bank({.n_branches = 4, .n_accounts = 16});
  bank.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  ExecutorConfig exec_config;
  exec_config.backoff_base = std::chrono::nanoseconds{100};
  Executor executor(stub, exec_config, 3);
  Rng rng(3);
  ExecStats stats;
  for (int i = 0; i < 40; ++i) {
    const std::size_t p = workloads::pick_profile(bank.profiles(), rng);
    const auto& profile = bank.profiles()[p];
    executor.run(Protocol::kManualCN,
                 with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
                 profile.make_params(rng, 0), stats);
  }
  EXPECT_EQ(stats.commits, 40u);
  bank.check_invariants(cluster.servers());
}

// Every message type in the protocol — all eight request kinds and all
// nine response kinds (the empty response included) — fuzzed with one
// fixed-seed generator.  This is the corpus the WAL rides on too: a record
// that round-trips on the wire round-trips on disk.
TEST(Codec, FuzzEveryMessageTypeRoundTrips) {
  Rng rng(0xC0DECULL);
  auto random_key = [&] {
    return ObjectKey{static_cast<ClassId>(rng.uniform(0, 9)),
                     rng.uniform(0, ~0ULL >> 1)};
  };
  auto random_keys = [&] {
    std::vector<ObjectKey> keys(rng.uniform(0, 6));
    for (auto& k : keys) k = random_key();
    return keys;
  };
  auto random_checks = [&] {
    std::vector<VersionCheck> checks(rng.uniform(0, 6));
    for (auto& c : checks) c = {random_key(), rng.uniform(0, 1000)};
    return checks;
  };
  auto random_classes = [&] {
    std::vector<ClassId> classes(rng.uniform(0, 8));
    for (auto& c : classes) c = static_cast<ClassId>(rng.uniform(0, 30));
    return classes;
  };
  auto random_record = [&] {
    Record r(rng.uniform(0, 4));
    for (auto& f : r.fields)
      f = static_cast<store::Field>(rng.uniform(0, 1 << 20)) - (1 << 19);
    return r;
  };
  auto random_versioned = [&] {
    return VersionedRecord{random_record(), rng.uniform(0, 1000)};
  };
  auto random_levels = [&] {
    std::vector<std::uint64_t> levels(rng.uniform(0, 8));
    for (auto& l : levels) l = rng.uniform(0, ~0ULL >> 1);
    return levels;
  };
  auto random_read_code = [&] {
    return static_cast<ReadCode>(rng.uniform(0, 3));
  };

  constexpr int kRequestKinds = 8;
  constexpr int kResponseKinds = 9;
  for (int trial = 0; trial < 1000; ++trial) {
    Request request;
    switch (trial % kRequestKinds) {
      case 0:
        request.payload = ReadRequest{rng.uniform(0, 99), random_key(),
                                      random_checks(), random_classes()};
        break;
      case 1:
        request.payload = ValidateRequest{rng.uniform(0, 99), random_checks()};
        break;
      case 2: {
        PrepareRequest prepare{rng.uniform(0, 99), random_checks(),
                               random_keys(),
                               static_cast<std::uint32_t>(rng.uniform(0, 7))};
        // Half the prepares carry cross-shard metadata, half stay plain
        // single-group (defaults must survive too).
        if (rng.uniform(0, 1) == 1) {
          prepare.participants.resize(rng.uniform(2, 5));
          for (auto& p : prepare.participants)
            p = static_cast<std::uint32_t>(rng.uniform(0, 7));
          prepare.coordinator = static_cast<std::int64_t>(rng.uniform(0, 99));
          for (std::size_t i = 0; i < prepare.write_keys.size(); ++i)
            prepare.values.push_back(random_record());
        }
        request.payload = std::move(prepare);
        break;
      }
      case 3: {
        CommitRequest commit;
        commit.tx = rng.uniform(0, 99);
        commit.keys = random_keys();
        for (std::size_t i = 0; i < commit.keys.size(); ++i) {
          commit.values.push_back(random_record());
          commit.versions.push_back(rng.uniform(0, 1000));
        }
        commit.group = static_cast<std::uint32_t>(rng.uniform(0, 7));
        request.payload = std::move(commit);
        break;
      }
      case 4:
        request.payload = AbortRequest{rng.uniform(0, 99), random_keys()};
        break;
      case 5:
        request.payload = ContentionRequest{random_classes()};
        break;
      case 6:
        request.payload = BatchedReadRequest{rng.uniform(0, 99), random_keys(),
                                             random_checks(), random_classes()};
        break;
      default:
        request.payload = DecisionQuery{
            rng.uniform(0, 99), static_cast<std::uint32_t>(rng.uniform(0, 7))};
        break;
    }
    EXPECT_EQ(roundtrip(request), request) << "request trial " << trial;

    Response response;
    switch (trial % kResponseKinds) {
      case 0:
        break;  // std::monostate — the empty response
      case 1:
        response.payload = ReadResponse{random_read_code(), random_versioned(),
                                        random_keys(), random_levels()};
        break;
      case 2:
        response.payload =
            ValidateResponse{random_keys(), rng.uniform(0, 1) == 1};
        break;
      case 3: {
        PrepareResponse prepare;
        prepare.code = static_cast<PrepareCode>(rng.uniform(0, 3));
        prepare.invalid = random_keys();
        prepare.current_versions.resize(rng.uniform(0, 6));
        for (auto& v : prepare.current_versions) v = rng.uniform(0, 1000);
        response.payload = std::move(prepare);
        break;
      }
      case 4:
        response.payload =
            CommitResponse{static_cast<CommitCode>(rng.uniform(0, 2))};
        break;
      case 5:
        response.payload = AbortResponse{};
        break;
      case 6:
        response.payload = ContentionResponse{random_levels()};
        break;
      case 7: {
        BatchedReadResponse batched;
        const std::size_t n = rng.uniform(0, 6);
        batched.codes.resize(n);
        batched.records.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          batched.codes[i] = random_read_code();
          batched.records[i] = random_versioned();
        }
        batched.invalid = random_keys();
        batched.contention = random_levels();
        response.payload = std::move(batched);
        break;
      }
      default: {
        DecisionReply decision;
        decision.code = static_cast<DecisionCode>(rng.uniform(0, 3));
        decision.keys = random_keys();
        for (std::size_t i = 0; i < decision.keys.size(); ++i) {
          decision.values.push_back(random_record());
          decision.versions.push_back(rng.uniform(0, 1000));
        }
        response.payload = std::move(decision);
        break;
      }
    }
    EXPECT_EQ(roundtrip(response), response) << "response trial " << trial;
  }
}

// ---- TCP frame header (length prefix + CRC, src/transport/frame.hpp) -----
//
// The stream reader guards the wire the way parse_segment guards the log:
// every malformed prefix must be rejected without reading past the bytes it
// was handed, and a poisoned stream must never surface another frame.

std::vector<std::uint8_t> frame_bytes(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  transport::append_frame(out, payload);
  return out;
}

TEST(Frame, RoundTripsThroughArbitraryChunking) {
  Rng rng(0xF4A3E);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<std::uint8_t> stream;
    const int n = static_cast<int>(rng.uniform(1, 6));
    for (int i = 0; i < n; ++i) {
      std::vector<std::uint8_t> payload(rng.uniform(0, 300));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
      transport::append_frame(stream, payload);
      payloads.push_back(std::move(payload));
    }
    transport::FrameReader reader;
    std::vector<std::vector<std::uint8_t>> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(rng.uniform(1, 40), stream.size() - off);
      ASSERT_TRUE(reader.feed(std::span(stream).subspan(off, chunk)));
      off += chunk;
      for (auto& p : reader.take()) got.push_back(std::move(p));
    }
    EXPECT_EQ(got, payloads) << "trial " << trial;
    EXPECT_FALSE(reader.poisoned());
  }
}

TEST(Frame, TruncatedFrameSurfacesNothingAndStaysHealthy) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const auto framed = frame_bytes(payload);
  // Every proper prefix: incomplete — no frame, no poison, no overread.
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    transport::FrameReader reader;
    EXPECT_TRUE(reader.feed(std::span(framed).first(cut)));
    EXPECT_TRUE(reader.take().empty()) << "cut at " << cut;
    EXPECT_FALSE(reader.poisoned());
  }
}

TEST(Frame, CorruptedCrcPoisonsTheStream) {
  const std::vector<std::uint8_t> payload{9, 8, 7, 6};
  auto framed = frame_bytes(payload);
  framed[4] ^= 0x01;  // flip one CRC bit
  // A healthy frame queued behind the corrupt one must never surface.
  transport::append_frame(framed, payload);
  transport::FrameReader reader;
  EXPECT_FALSE(reader.feed(framed));
  EXPECT_TRUE(reader.poisoned());
  EXPECT_EQ(reader.corrupt_frames(), 1u);
  EXPECT_TRUE(reader.take().empty());
  EXPECT_FALSE(reader.feed(frame_bytes(payload)));  // stays dead
  EXPECT_TRUE(reader.take().empty());
}

TEST(Frame, PayloadCorruptionPoisonsTheStream) {
  std::vector<std::uint8_t> payload(64, 0xAB);
  auto framed = frame_bytes(payload);
  framed[8 + 20] ^= 0x40;
  transport::FrameReader reader;
  EXPECT_FALSE(reader.feed(framed));
  EXPECT_TRUE(reader.poisoned());
}

TEST(Frame, OversizedLengthRejectedWithoutReadingPast) {
  // A length prefix beyond the cap must poison immediately — from the
  // header alone, no matter how few payload bytes followed it.
  std::vector<std::uint8_t> header(8, 0);
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(header.data(), &huge, sizeof huge);
  transport::FrameReader reader;
  EXPECT_FALSE(reader.feed(header));
  EXPECT_TRUE(reader.poisoned());

  // Just over a small explicit cap: same fate.
  transport::FrameReader capped(/*max_payload=*/16);
  const auto framed = frame_bytes(std::vector<std::uint8_t>(17, 1));
  EXPECT_FALSE(capped.feed(framed));
  EXPECT_TRUE(capped.poisoned());
  // At the cap: fine.
  transport::FrameReader at_cap(/*max_payload=*/16);
  EXPECT_TRUE(at_cap.feed(frame_bytes(std::vector<std::uint8_t>(16, 1))));
  EXPECT_EQ(at_cap.take().size(), 1u);
}

TEST(Frame, FuzzRandomGarbageNeverCrashesOrOverreads) {
  Rng rng(0xBADF00D);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform(0, 200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    transport::FrameReader reader;
    std::size_t off = 0;
    while (off < garbage.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(rng.uniform(1, 32), garbage.size() - off);
      if (!reader.feed(std::span(garbage).subspan(off, chunk))) break;
      off += chunk;
    }
    // Whatever happened, surfaced frames must individually be well-formed
    // (their length matched and CRC verified) — here just that nothing
    // exploded and the poison flag is consistent with feed's verdict.
    if (reader.poisoned()) EXPECT_EQ(reader.corrupt_frames(), 1u);
  }
}

}  // namespace
}  // namespace acn::dtm
