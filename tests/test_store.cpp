// Unit tests for the versioned store and the windowed contention tracker.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>
#include <thread>

#include "src/store/contention_tracker.hpp"
#include "src/store/versioned_store.hpp"

namespace acn::store {
namespace {

const ObjectKey kA{1, 10};
const ObjectKey kB{1, 11};
const ObjectKey kC{2, 10};

TEST(VersionedStore, SeedAndRead) {
  VersionedStore s;
  s.seed(kA, Record{7}, 3);
  const auto r = s.read(kA);
  ASSERT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.record.value, Record{7});
  EXPECT_EQ(r.record.version, 3u);
  EXPECT_EQ(s.version_of(kA), 3u);
}

TEST(VersionedStore, MissingObject) {
  VersionedStore s;
  EXPECT_EQ(s.read(kA).status, ReadStatus::kMissing);
  EXPECT_FALSE(s.version_of(kA).has_value());
}

TEST(VersionedStore, ProtectBlocksReadersAndOtherWriters) {
  VersionedStore s;
  s.seed(kA, Record{1});
  EXPECT_TRUE(s.try_protect(kA, 100));
  EXPECT_EQ(s.read(kA).status, ReadStatus::kProtected);
  EXPECT_FALSE(s.try_protect(kA, 200));
  EXPECT_TRUE(s.try_protect(kA, 100));  // re-entrant for the holder
  s.unprotect(kA, 100);
  EXPECT_EQ(s.read(kA).status, ReadStatus::kOk);
}

TEST(VersionedStore, UnprotectByNonHolderIsNoop) {
  VersionedStore s;
  s.seed(kA, Record{1});
  ASSERT_TRUE(s.try_protect(kA, 100));
  s.unprotect(kA, 999);
  EXPECT_EQ(s.read(kA).status, ReadStatus::kProtected);
  s.unprotect(kA, 100);
}

TEST(VersionedStore, ReadValidatingSeesOwnProtection) {
  VersionedStore s;
  s.seed(kA, Record{5}, 2);
  ASSERT_TRUE(s.try_protect(kA, 100));
  EXPECT_EQ(s.read_validating(kA, 100).status, ReadStatus::kOk);
  EXPECT_EQ(s.read_validating(kA, 100).record.version, 2u);
  EXPECT_EQ(s.read_validating(kA, 200).status, ReadStatus::kProtected);
}

TEST(VersionedStore, ApplyInstallsAndReleases) {
  VersionedStore s;
  s.seed(kA, Record{1}, 1);
  ASSERT_TRUE(s.try_protect(kA, 100));
  s.apply(kA, Record{2}, 2, 100);
  const auto r = s.read(kA);
  ASSERT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.record.value, Record{2});
  EXPECT_EQ(r.record.version, 2u);
}

TEST(VersionedStore, ApplyNeverRegressesVersions) {
  VersionedStore s;
  s.seed(kA, Record{5}, 5);
  s.apply(kA, Record{1}, 3, kNoTx);  // stale install ignored
  EXPECT_EQ(s.read(kA).record.value, Record{5});
  EXPECT_EQ(s.version_of(kA), 5u);
}

TEST(VersionedStore, ProtectOnFreshKeyCreatesGuardedPlaceholder) {
  VersionedStore s;
  EXPECT_TRUE(s.try_protect(kA, 100));
  // A placeholder is "busy", not missing, to concurrent readers.
  EXPECT_EQ(s.read(kA).status, ReadStatus::kProtected);
  // Aborting erases the placeholder entirely.
  s.unprotect(kA, 100);
  EXPECT_EQ(s.read(kA).status, ReadStatus::kMissing);
  EXPECT_EQ(s.object_count(), 0u);
}

TEST(VersionedStore, FreshInsertThroughProtectApply) {
  VersionedStore s;
  ASSERT_TRUE(s.try_protect(kA, 100));
  s.apply(kA, Record{9}, 1, 100);
  const auto r = s.read(kA);
  ASSERT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.record.value, Record{9});
}

TEST(VersionedStore, ConcurrentProtectExactlyOneWins) {
  VersionedStore s;
  s.seed(kA, Record{0});
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t)
    threads.emplace_back([&, t] {
      if (s.try_protect(kA, static_cast<TxId>(t))) winners.fetch_add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(ContentionTracker, LevelsComeFromLastCompletedWindow) {
  ContentionTracker tracker;
  tracker.on_write(kA, 0);
  tracker.on_write(kA, 0);
  tracker.on_write(kB, 0);
  EXPECT_EQ(tracker.level(kA), 0u);  // window not rolled yet
  tracker.roll();
  EXPECT_EQ(tracker.level(kA), 2u);
  EXPECT_EQ(tracker.level(kB), 1u);
  EXPECT_EQ(tracker.level(kC), 0u);
  tracker.roll();
  EXPECT_EQ(tracker.level(kA), 0u);  // stale window expired
}

TEST(ContentionTracker, ClassLevelIsHottestObject) {
  ContentionTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.on_write(kA, 0);
  tracker.on_write(kB, 0);   // same class as kA
  tracker.on_write(kC, 0);   // different class
  tracker.roll();
  EXPECT_EQ(tracker.class_level(1), 5u);  // max, not 6 (the sum)
  EXPECT_EQ(tracker.class_level(2), 1u);
  EXPECT_EQ(tracker.class_level(3), 0u);
}

TEST(ContentionTracker, BatchClassLevels) {
  ContentionTracker tracker;
  tracker.on_write(kA, 0);
  tracker.on_write(kC, 0);
  tracker.roll();
  const auto levels = tracker.class_levels({2, 1, 9});
  EXPECT_EQ(levels, (std::vector<std::uint64_t>{1, 1, 0}));
}

TEST(ContentionTracker, TimeBasedRolling) {
  ContentionTracker tracker(/*window_ns=*/1000);
  tracker.on_write(kA, 100);
  tracker.on_write(kA, 200);
  tracker.maybe_roll(500);  // window not elapsed
  EXPECT_EQ(tracker.level(kA), 0u);
  tracker.maybe_roll(1200);  // rolls
  EXPECT_EQ(tracker.level(kA), 2u);
}

TEST(ContentionTracker, RollsExactlyAtTheBoundaryTick) {
  ContentionTracker tracker(/*window_ns=*/1000);
  tracker.on_write(kA, 5000);  // first event anchors the window at 5000
  tracker.on_write(kA, 5999);  // one tick before the boundary: same window
  tracker.maybe_roll(5999);
  EXPECT_EQ(tracker.level(kA), 0u);  // nothing completed yet
  tracker.maybe_roll(6000);  // elapsed == width: the boundary tick rolls
  EXPECT_EQ(tracker.level(kA), 2u);
  // The new window is anchored at the roll time, not the old start.
  tracker.on_write(kA, 6999);
  tracker.maybe_roll(6999);
  EXPECT_EQ(tracker.level(kA), 2u);  // still the previous window's count
  tracker.maybe_roll(7000);
  EXPECT_EQ(tracker.level(kA), 1u);
}

TEST(ContentionTracker, ZeroWidthIsManualAndNegativeWidthIsRejected) {
  ContentionTracker manual(/*window_ns=*/0);
  manual.on_write(kA, 0);
  manual.maybe_roll(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(manual.level(kA), 0u);  // zero width never auto-rolls
  manual.roll();
  EXPECT_EQ(manual.level(kA), 1u);

  EXPECT_THROW(ContentionTracker(-1), std::invalid_argument);
  EXPECT_THROW(ContentionTracker(std::numeric_limits<std::int64_t>::min()),
               std::invalid_argument);
}

TEST(ContentionTracker, OnWriteRollsWindowItself) {
  ContentionTracker tracker(/*window_ns=*/1000);
  tracker.on_write(kA, 100);
  tracker.on_write(kA, 1500);  // crosses the boundary: rolls, then counts
  EXPECT_EQ(tracker.level(kA), 1u);
}

TEST(ContentionTracker, ConcurrentBumpsAreCounted) {
  ContentionTracker tracker;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) tracker.on_write(kA, 0);
    });
  for (auto& th : threads) th.join();
  tracker.roll();
  EXPECT_EQ(tracker.level(kA), 4000u);
  EXPECT_EQ(tracker.class_level(kA.cls), 4000u);
}

TEST(VersionedStore, ClearDropsEverything) {
  VersionedStore s;
  s.seed(kA, Record{7}, 3);
  s.seed(kB, Record{8}, 1);
  ASSERT_TRUE(s.try_protect(kC, 9));
  s.clear();
  EXPECT_EQ(s.object_count(), 0u);
  EXPECT_EQ(s.protected_count(), 0u);
  EXPECT_EQ(s.read(kA).status, ReadStatus::kMissing);
  // The store is fully usable again after a clear.
  s.seed(kA, Record{1}, 1);
  EXPECT_EQ(s.read(kA).status, ReadStatus::kOk);
}

TEST(VersionedStore, ShardSnapshotsCoverTheStoreExactly) {
  VersionedStore s;
  for (std::uint64_t id = 0; id < 200; ++id)
    s.seed(ObjectKey{static_cast<ClassId>(id % 5), id}, Record{1}, id + 1);
  ASSERT_TRUE(s.try_protect(ObjectKey{9, 999}, 7));  // version-0 placeholder

  std::vector<std::pair<ObjectKey, VersionedRecord>> via_shards;
  for (std::size_t shard = 0; shard < VersionedStore::shard_count(); ++shard) {
    const auto cut = s.shard_snapshot(shard);
    via_shards.insert(via_shards.end(), cut.begin(), cut.end());
  }
  auto whole = s.snapshot();
  auto by_key = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(via_shards.begin(), via_shards.end(), by_key);
  std::sort(whole.begin(), whole.end(), by_key);
  EXPECT_EQ(via_shards, whole);
  EXPECT_EQ(whole.size(), 200u);  // the placeholder is skipped
}

// Snapshot consistency under concurrent writers.  Writers install records
// whose field always equals the version ({v, v}); any snapshot that
// observed a torn record — or a record going backwards between snapshots —
// would break the WAL's compaction contract (snapshot covers the log
// prefix).  Each per-shard cut is taken under that shard's lock, so every
// returned record must be internally consistent and monotone.
TEST(VersionedStore, SnapshotUnderConcurrentWritersIsNeverTorn) {
  VersionedStore s;
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t id = 0; id < kKeys; ++id)
    s.seed(ObjectKey{1, id}, Record{1, 1}, 1);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&, t] {
      std::uint64_t version = 2 + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::uint64_t id = 0; id < kKeys; ++id) {
          const auto v = static_cast<Field>(version);
          s.apply(ObjectKey{1, id}, Record{v, v}, version, kNoTx);
        }
        version += 4;  // writers interleave distinct versions
      }
    });

  std::vector<std::uint64_t> last_seen(kKeys, 0);
  for (int round = 0; round < 200; ++round) {
    for (std::size_t shard = 0; shard < VersionedStore::shard_count();
         ++shard) {
      for (const auto& [key, rec] : s.shard_snapshot(shard)) {
        ASSERT_EQ(rec.value.size(), 2u);
        // Not torn: both fields and the version were written together.
        EXPECT_EQ(rec.value[0], static_cast<Field>(rec.version));
        EXPECT_EQ(rec.value[1], static_cast<Field>(rec.version));
        // Monotone across snapshots: versions only move forward.
        EXPECT_GE(rec.version, last_seen[key.id]);
        last_seen[key.id] = rec.version;
      }
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(ObjectKey, OrderingAndHash) {
  EXPECT_LT((ObjectKey{1, 5}), (ObjectKey{2, 0}));
  EXPECT_LT((ObjectKey{1, 5}), (ObjectKey{1, 6}));
  EXPECT_EQ((ObjectKey{3, 3}), (ObjectKey{3, 3}));
  EXPECT_NE(ObjectKeyHash{}(ObjectKey{1, 2}), ObjectKeyHash{}(ObjectKey{2, 1}));
  EXPECT_EQ(to_string(ObjectKey{4, 7}), "4:7");
}

TEST(Record, ApproxSizeAndEquality) {
  Record r{1, 2, 3};
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.approx_size(), 3 * sizeof(Field) + sizeof(std::uint32_t));
  EXPECT_EQ(r, (Record{1, 2, 3}));
  EXPECT_NE(r, (Record{1, 2}));
}

}  // namespace
}  // namespace acn::store
