// Algorithm Module tests: contention models, the three adaptation steps,
// their ablation switches, and the paper's Bank example end-to-end
// (Figure 1 flat code -> Figure 3 Block arrangement).
#include <gtest/gtest.h>

#include "src/acn/algorithm_module.hpp"
#include "src/acn/monitor.hpp"
#include "src/workloads/bank.hpp"

namespace acn {
namespace {

using ir::ProgramBuilder;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::ObjectKey;

TEST(ContentionModels, WriteRateIsIdentityAndAdditive) {
  WriteRateModel m;
  EXPECT_DOUBLE_EQ(m.object_level(7), 7.0);
  EXPECT_DOUBLE_EQ(m.combine({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(m.combine({}), 0.0);
}

TEST(ContentionModels, AbortProbabilitySaturates) {
  AbortProbabilityModel m(16.0);
  EXPECT_DOUBLE_EQ(m.object_level(0), 0.0);
  EXPECT_DOUBLE_EQ(m.object_level(16), 0.5);
  EXPECT_LT(m.object_level(1000), 1.0);
  EXPECT_GT(m.object_level(1000), 0.95);
  // Block of two 50% objects aborts 75% of the time.
  EXPECT_DOUBLE_EQ(m.combine({0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(m.combine({}), 0.0);
}

TEST(ContentionModels, DefaultModelExists) {
  EXPECT_NE(default_contention_model(), nullptr);
}

/// Three independent accesses of classes 1, 2, 3.
TxProgram independent3() {
  ProgramBuilder b("indep3", 0);
  for (ir::ClassId cls : {1u, 2u, 3u})
    b.remote_read(cls, {},
                  [cls](const TxEnv&) { return ObjectKey{cls, 0}; },
                  "read " + std::to_string(cls));
  return b.build();
}

/// Chain: read A (class 1), read B keyed by A (class 2).
TxProgram chain2() {
  ProgramBuilder b("chain2", 0);
  const VarId a = b.remote_read(
      1, {}, [](const TxEnv&) { return ObjectKey{1, 0}; }, "A");
  b.remote_read(2, {a}, [](const TxEnv&) { return ObjectKey{2, 0}; }, "B[A]");
  return b.build();
}

AlgorithmModule module_for(const TxProgram& p, AlgorithmConfig config = {}) {
  return AlgorithmModule(p, config, std::make_shared<WriteRateModel>());
}

TEST(AlgorithmModule, InitialPlanIsStaticOrder) {
  const auto p = independent3();
  const auto mod = module_for(p);
  const auto plan = mod.initial();
  EXPECT_EQ(plan.sequence.size(), 3u);
  EXPECT_TRUE(sequence_valid(plan.sequence, plan.model));
  EXPECT_EQ(plan.model.units[plan.sequence[0].units[0]].classes.front(), 1u);
}

TEST(AlgorithmModule, ReorderPutsHottestLast) {
  const auto p = independent3();
  const auto mod = module_for(p);
  const auto plan = mod.recompute({{1, 90}, {2, 5}, {3, 30}});
  ASSERT_EQ(plan.sequence.size(), 3u);
  EXPECT_TRUE(sequence_valid(plan.sequence, plan.model));
  // Ascending contention: class 2 (5), class 3 (30), class 1 (90).
  EXPECT_EQ(plan.model.units[plan.sequence[0].units[0]].classes.front(), 2u);
  EXPECT_EQ(plan.model.units[plan.sequence[1].units[0]].classes.front(), 3u);
  EXPECT_EQ(plan.model.units[plan.sequence[2].units[0]].classes.front(), 1u);
}

TEST(AlgorithmModule, StaleSnapshotYieldsPlanNotCrash) {
  // A stale or malformed piggybacked contention snapshot — misaligned
  // vectors, classes the program never touches, classes missing entirely —
  // must never crash the composition; the worst case is a suboptimal plan.
  const auto p = independent3();
  const auto mod = module_for(p);

  ContentionMonitor monitor({1, 2, 3});
  monitor.observe({1, 2, 3}, {40});      // misaligned: only class 1 lands
  monitor.observe({99, 1000}, {7, 9});   // classes the program doesn't touch
  monitor.observe({}, {1, 2, 3});        // levels with no classes: ignored
  const auto plan = mod.recompute(monitor.raw());
  EXPECT_TRUE(sequence_valid(plan.sequence, plan.model));
  std::size_t units = 0;
  for (const auto& block : plan.sequence) units += block.units.size();
  EXPECT_EQ(units, 3u);  // every unit still scheduled exactly once
  // Class 1 is the only class with an observed level, so it sorts last
  // (hottest); the two cold classes may have merged into one block.
  const auto& last = plan.sequence.back();
  EXPECT_EQ(plan.model.units[last.units.front()].classes.front(), 1u);

  // An empty view (nothing piggybacked yet, or reset after adaptation)
  // recomposes from all-zero levels — likely one fully merged block.
  monitor.reset();
  const auto cold = mod.recompute(monitor.raw());
  EXPECT_TRUE(sequence_valid(cold.sequence, cold.model));
  units = 0;
  for (const auto& block : cold.sequence) units += block.units.size();
  EXPECT_EQ(units, 3u);
}

TEST(AlgorithmModule, ReorderPreservesDependencies) {
  const auto p = chain2();
  const auto mod = module_for(p);
  // A is much hotter, but B depends on A: A must stay first.
  const auto plan = mod.recompute({{1, 100}, {2, 1}});
  EXPECT_TRUE(sequence_valid(plan.sequence, plan.model));
  if (plan.sequence.size() == 2) {
    EXPECT_EQ(plan.model.units[plan.sequence[0].units[0]].classes.front(), 1u);
  } else {
    // Similar-contention merge may have collapsed the chain to one block —
    // also valid; ordering constraint then vanishes.
    EXPECT_EQ(plan.sequence.size(), 1u);
  }
}

TEST(AlgorithmModule, MergeJoinsSimilarNeighbours) {
  const auto p = independent3();
  AlgorithmConfig config;
  config.merge_threshold = 0.5;
  const auto mod = module_for(p, config);
  const auto plan = mod.recompute({{1, 100}, {2, 100}, {3, 100}});
  EXPECT_EQ(plan.sequence.size(), 1u);  // all similar -> one block
  EXPECT_TRUE(sequence_valid(plan.sequence, plan.model));
}

TEST(AlgorithmModule, MergeRespectsThreshold) {
  const auto p = independent3();
  AlgorithmConfig config;
  config.merge_threshold = 0.1;
  const auto mod = module_for(p, config);
  const auto plan = mod.recompute({{1, 100}, {2, 10}, {3, 1}});
  EXPECT_EQ(plan.sequence.size(), 3u);  // all dissimilar -> no merges
}

TEST(AlgorithmModule, StrictDependencyMergeSkipsIndependentBlocks) {
  const auto p = independent3();
  AlgorithmConfig config;
  config.merge_requires_dependency = true;
  const auto mod = module_for(p, config);
  const auto plan = mod.recompute({{1, 100}, {2, 100}, {3, 100}});
  EXPECT_EQ(plan.sequence.size(), 3u);  // similar but independent
}

TEST(AlgorithmModule, StrictDependencyMergeJoinsChains) {
  const auto p = chain2();
  AlgorithmConfig config;
  config.merge_requires_dependency = true;
  const auto mod = module_for(p, config);
  const auto plan = mod.recompute({{1, 50}, {2, 50}});
  EXPECT_EQ(plan.sequence.size(), 1u);
}

TEST(AlgorithmModule, DisableMergeKeepsUnitBlocks) {
  const auto p = independent3();
  AlgorithmConfig config;
  config.enable_merge = false;
  const auto mod = module_for(p, config);
  const auto plan = mod.recompute({{1, 100}, {2, 100}, {3, 100}});
  EXPECT_EQ(plan.sequence.size(), 3u);
}

TEST(AlgorithmModule, DisableReorderKeepsStaticOrder) {
  const auto p = independent3();
  AlgorithmConfig config;
  config.enable_reorder = false;
  config.enable_merge = false;
  const auto mod = module_for(p, config);
  const auto plan = mod.recompute({{1, 90}, {2, 5}, {3, 30}});
  EXPECT_EQ(plan.model.units[plan.sequence[0].units[0]].classes.front(), 1u);
  EXPECT_EQ(plan.model.units[plan.sequence[2].units[0]].classes.front(), 3u);
}

TEST(AlgorithmModule, BlockLevelUsesCombinator) {
  const auto p = independent3();
  const auto mod = module_for(p);
  const auto plan = mod.initial();
  const ClassLevels levels{{1, 10.0}, {2, 20.0}, {3, 30.0}};
  Block all;
  for (std::size_t u = 0; u < plan.model.units.size(); ++u)
    all.units.push_back(u);
  EXPECT_DOUBLE_EQ(mod.block_level(all, plan.model, levels), 60.0);
  EXPECT_DOUBLE_EQ(mod.unit_level(plan.model.units[0], levels), 10.0);
}

TEST(AlgorithmModule, NullModelRejected) {
  const auto p = independent3();
  EXPECT_THROW(AlgorithmModule(p, {}, nullptr), std::invalid_argument);
}

TEST(AlgorithmModule, MergeDoesNotCascadeColdBlocksIntoTheHotOne) {
  // cust(4) + two warm tables vs one hot table: the cold/warm blocks merge
  // with each other but must NOT swallow the hot block, even though their
  // combined abort probability approaches the hot one's.
  ProgramBuilder b("vac-like", 0);
  for (ir::ClassId cls : {4u, 1u, 2u, 3u})
    b.remote_read(cls, {},
                  [cls](const TxEnv&) { return ObjectKey{cls, 0}; },
                  "read " + std::to_string(cls));
  const auto p = b.build();
  AlgorithmModule mod(p, {}, std::make_shared<AbortProbabilityModel>());
  const auto plan = mod.recompute({{4, 5}, {1, 400}, {2, 6}, {3, 7}});
  ASSERT_EQ(plan.sequence.size(), 2u)
      << describe_sequence(plan.sequence, plan.model);
  EXPECT_EQ(plan.sequence[0].units.size(), 3u);  // cold merged
  EXPECT_EQ(plan.model.units[plan.sequence[1].units[0]].classes.front(), 1u);
}

TEST(AlgorithmModule, SecondMergePassGroupsBlocksSortingMadeAdjacent) {
  // Interleaved hot/cold accesses (TPC-C item/stock pattern): cold, hot,
  // cold, hot.  In source order the hot units are never adjacent; after
  // Step 3 sorts them together the second merge pass must group them.
  ProgramBuilder b("interleaved", 0);
  for (ir::ClassId cls : {1u, 2u, 3u, 2u})  // class 2 hot, twice
    b.remote_read(cls, {},
                  [cls](const TxEnv&) { return ObjectKey{cls, 0}; }, "r");
  const auto p = b.build();
  AlgorithmModule mod(p, {}, std::make_shared<WriteRateModel>());
  const auto plan = mod.recompute({{1, 2}, {2, 300}, {3, 3}});
  ASSERT_EQ(plan.sequence.size(), 2u)
      << describe_sequence(plan.sequence, plan.model);
  // Last block holds BOTH hot units.
  EXPECT_EQ(plan.sequence[1].units.size(), 2u);
  for (std::size_t u : plan.sequence[1].units)
    EXPECT_EQ(plan.model.units[u].classes.front(), 2u);
}

TEST(ContentionMonitor, ObserveMergesMaxAndResetClears) {
  ContentionMonitor monitor({1, 2});
  monitor.observe({1, 2}, {5, 7});
  monitor.observe({1, 2}, {9, 3});
  EXPECT_EQ(monitor.level(1), 9u);
  EXPECT_EQ(monitor.level(2), 7u);
  monitor.reset();
  EXPECT_EQ(monitor.level(1), 0u);
  EXPECT_TRUE(monitor.raw().empty());
}

TEST(ContentionMonitor, ClassesDeduplicated) {
  ContentionMonitor monitor({3, 1, 3, 2, 1});
  EXPECT_EQ(monitor.classes(), (std::vector<ir::ClassId>{1, 2, 3}));
}

// --- the paper's Bank example, Figure 1 -> Figure 3 ------------------------

TEST(AlgorithmModule, BankBranchesHotYieldsFigure3Arrangement) {
  workloads::Bank bank;
  const auto& transfer = bank.profiles().front();
  AlgorithmModule mod(*transfer.program, {},
                      std::make_shared<AbortProbabilityModel>());

  // Branches hot, accounts cold (phase 0 of the benchmark).
  const auto plan = mod.recompute(
      {{workloads::Bank::kBranch, 200}, {workloads::Bank::kAccount, 2}});
  ASSERT_EQ(plan.sequence.size(), 2u) << describe_sequence(plan.sequence,
                                                           plan.model);
  EXPECT_TRUE(sequence_valid(plan.sequence, plan.model));
  // First block: both account UnitBlocks; last block: both branch ones.
  for (std::size_t u : plan.sequence[0].units)
    EXPECT_EQ(plan.model.units[u].classes.front(), workloads::Bank::kAccount);
  for (std::size_t u : plan.sequence[1].units)
    EXPECT_EQ(plan.model.units[u].classes.front(), workloads::Bank::kBranch);
}

TEST(AlgorithmModule, BankAccountsHotFlipsTheArrangement) {
  workloads::Bank bank;
  const auto& transfer = bank.profiles().front();
  AlgorithmModule mod(*transfer.program, {},
                      std::make_shared<AbortProbabilityModel>());
  const auto plan = mod.recompute(
      {{workloads::Bank::kBranch, 2}, {workloads::Bank::kAccount, 200}});
  ASSERT_EQ(plan.sequence.size(), 2u);
  for (std::size_t u : plan.sequence[0].units)
    EXPECT_EQ(plan.model.units[u].classes.front(), workloads::Bank::kBranch);
  for (std::size_t u : plan.sequence[1].units)
    EXPECT_EQ(plan.model.units[u].classes.front(), workloads::Bank::kAccount);
}

TEST(AlgorithmModule, BankUniformContentionCollapsesToOneBlock) {
  workloads::Bank bank;
  const auto& transfer = bank.profiles().front();
  AlgorithmModule mod(*transfer.program, {},
                      std::make_shared<AbortProbabilityModel>());
  const auto plan = mod.recompute(
      {{workloads::Bank::kBranch, 50}, {workloads::Bank::kAccount, 50}});
  EXPECT_EQ(plan.sequence.size(), 1u);  // flat-equivalent, minimal overhead
}

}  // namespace
}  // namespace acn
