// Batched quorum reads and the speculative prefetch pipeline: codec
// round-trips for the BatchedRead message pair, read_many equivalence with
// N sequential reads (values, versions and abort behaviour), the executor's
// batched/prefetch block execution behind the unified run() API, and the
// shared retry ladder under packet loss.
#include <gtest/gtest.h>

#include <memory>

#include "src/acn/executor.hpp"
#include "src/dtm/codec.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/bank.hpp"

namespace acn {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::ObjectKey;

ClusterConfig fast_config(std::size_t n = 10) {
  ClusterConfig config;
  config.n_servers = n;
  config.base_latency = std::chrono::nanoseconds{0};
  config.stub.retry.base = std::chrono::nanoseconds{100};
  // All batched traffic in this suite doubles as codec coverage.
  config.stub.verify_codec = true;
  return config;
}

ExecutorConfig fast_executor() {
  ExecutorConfig config;
  config.backoff_base = std::chrono::nanoseconds{100};
  return config;
}

const ObjectKey kA{1, 0};
const ObjectKey kB{2, 0};
const ObjectKey kC{3, 0};

TEST(BatchedCodec, RequestRoundTrips) {
  dtm::BatchedReadRequest req;
  req.tx = 42;
  req.keys = {kA, kB, kC};
  req.validate = {{kA, 3}, {kB, 9}};
  req.want_contention = {1, 2, 7};
  dtm::Request wire;
  wire.payload = req;
  EXPECT_EQ(dtm::roundtrip(wire), wire);
}

TEST(BatchedCodec, ResponseRoundTrips) {
  dtm::BatchedReadResponse res;
  res.codes = {dtm::ReadCode::kOk, dtm::ReadCode::kMissing,
               dtm::ReadCode::kBusy, dtm::ReadCode::kInvalid};
  res.records.resize(4);
  res.records[0] = {Record{10, 20}, 5};
  res.invalid = {kB};
  res.contention = {7, 0, 3};
  dtm::Response wire;
  wire.payload = res;
  EXPECT_EQ(dtm::roundtrip(wire), wire);
}

TEST(BatchedCodec, ApproxSizesScaleWithPayload) {
  dtm::BatchedReadRequest small{1, {kA}, {}, {}};
  dtm::BatchedReadRequest big{1, {kA, kB, kC}, {{kA, 1}, {kB, 2}}, {1, 2}};
  EXPECT_GT(big.approx_size(), small.approx_size());

  dtm::BatchedReadResponse empty;
  dtm::BatchedReadResponse loaded;
  loaded.codes = {dtm::ReadCode::kOk, dtm::ReadCode::kOk};
  loaded.records = {{Record{1, 2, 3}, 4}, {Record{5}, 6}};
  EXPECT_GT(loaded.approx_size(), empty.approx_size());
}

TEST(ReadMany, MatchesSequentialReads) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{100});
  workloads::seed_all(cluster.servers(), kB, Record{200});
  workloads::seed_all(cluster.servers(), kC, Record{300});
  auto stub = cluster.make_stub(0);
  // Advance kB so versions differ across the batch.
  {
    const auto b = stub.read(1, kB, {});
    stub.commit(
        stub.prepare(1, {{kB, b.record.version}}, {kB}, {b.record.version}),
        {Record{222}});
  }

  const auto batched = stub.read_many(2, {kA, kB, kC}, {});
  ASSERT_EQ(batched.records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const ObjectKey key = (i == 0) ? kA : (i == 1) ? kB : kC;
    const auto single = stub.read(2, key, {});
    EXPECT_EQ(batched.records[i].value, single.record.value);
    EXPECT_EQ(batched.records[i].version, single.record.version);
  }
}

TEST(ReadMany, SharesTheValidationAbortWithRead) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  workloads::seed_all(cluster.servers(), kB, Record{2});
  auto t1 = cluster.make_stub(0);
  auto t2 = cluster.make_stub(1);

  const auto a = t1.read(1, kA, {});
  const auto a2 = t2.read(2, kA, {});
  t2.commit(
      t2.prepare(2, {{kA, a2.record.version}}, {kA}, {a2.record.version}),
      {Record{50}});

  // The stale {kA} check poisons the whole batch, exactly like read().
  try {
    t1.read_many(1, {kB, kA}, {{kA, a.record.version}});
    FAIL() << "expected TxAbort";
  } catch (const dtm::TxAbort& abort) {
    EXPECT_EQ(abort.kind(), dtm::AbortKind::kValidation);
    ASSERT_EQ(abort.invalid().size(), 1u);
    EXPECT_EQ(abort.invalid()[0], kA);
  }
}

TEST(ReadMany, MissingKeyThrowsLikeRead) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  auto stub = cluster.make_stub(0);
  EXPECT_THROW(stub.read_many(1, {kA, ObjectKey{9, 9}}, {}),
               dtm::ObjectMissing);
}

TEST(ReadMany, PiggybacksContentionLevels) {
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{1});
  workloads::seed_all(cluster.servers(), kB, Record{2});
  auto stub = cluster.make_stub(0);
  const auto a = stub.read(1, kA, {});
  stub.commit(
      stub.prepare(1, {{kA, a.record.version}}, {kA}, {a.record.version}),
      {Record{5}});
  cluster.roll_contention_windows();
  // The commit hit a write quorum; every read quorum intersects it, so the
  // max-merged piggybacked level for kA's class must see that write.
  const auto out = stub.read_many(2, {kA, kB}, {}, {kA.cls});
  ASSERT_EQ(out.contention.size(), 1u);
  EXPECT_GE(out.contention[0], 1u);
}

TEST(ReadMany, RetryLadderSurvivesPacketLoss) {
  auto config = fast_config();
  config.stub.max_quorum_retries = 32;
  Cluster cluster(config);
  workloads::seed_all(cluster.servers(), kA, Record{100});
  workloads::seed_all(cluster.servers(), kB, Record{200});
  workloads::seed_all(cluster.servers(), kC, Record{300});
  cluster.network().set_drop_probability(0.3);
  auto stub = cluster.make_stub(0);
  for (int i = 0; i < 20; ++i) {
    const auto out = stub.read_many(1 + i, {kA, kB, kC}, {});
    ASSERT_EQ(out.records.size(), 3u);
    EXPECT_EQ(out.records[0].value, Record{100});
    EXPECT_EQ(out.records[1].value, Record{200});
    EXPECT_EQ(out.records[2].value, Record{300});
  }
}

TEST(BatchedExecution, MatchesUnbatchedFinalState) {
  // Same params: a batched (and prefetching) block run must commit the same
  // final state as the plain block run, in fewer quorum rounds.
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  const auto& profile = bank.profiles()[0];
  const std::vector<Record> params{Record{1}, Record{2}, Record{0}, Record{3},
                                   Record{7}};
  const std::vector<ObjectKey> touched{
      workloads::Bank::account_key(1), workloads::Bank::account_key(2),
      workloads::Bank::branch_key(0), workloads::Bank::branch_key(3)};

  std::vector<store::Record> expected;
  ExecStats plain_stats;
  {
    Cluster cluster(fast_config());
    bank.seed(cluster.servers());
    auto stub = cluster.make_stub(0);
    Executor executor(stub, fast_executor(), 1);
    executor.run(Protocol::kManualCN,
                 with_blocks(*profile.program, profile.static_model, profile.manual_sequence),
                 params, plain_stats);
    for (const auto& key : touched)
      expected.push_back(workloads::latest_value(cluster.servers(), key).value);
  }

  obs::Observability obs;
  Cluster cluster(fast_config());
  cluster.set_obs(&obs);
  bank.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  auto exec_config = fast_executor();
  exec_config.obs = &obs;
  Executor executor(stub, exec_config, 1);
  ExecStats stats;
  RunOptions options;
  options.program = profile.program.get();
  options.model = &profile.static_model;
  options.sequence = &profile.manual_sequence;
  options.batch_reads = true;
  options.prefetch = true;
  executor.run(Protocol::kManualCN, options, params, stats);

  EXPECT_EQ(stats.commits, plain_stats.commits);
  EXPECT_EQ(stats.full_aborts, 0u);
  std::size_t i = 0;
  for (const auto& key : touched)
    EXPECT_EQ(workloads::latest_value(cluster.servers(), key).value,
              expected[i++]);
  // The batched path must actually have saved quorum rounds.
  const auto snapshot = obs.metrics.snapshot();
  EXPECT_GT(snapshot.counter("rpc.read.saved"), 0u);
  bank.check_invariants(cluster.servers());
}

/// Two-block program where the second block's read of B is prefetchable
/// during the first block, and a saboteur commits a new B in between:
///   block 0: read A, sabotage (fires AFTER the batched fetch speculated B)
///   block 1: read B, derive a selector from B, read C (keyed on the
///            selector, so C is never prefetchable)
/// The stale adopted B is caught by read C's incremental validation; because
/// the adopted read lives in block 1's own frame, the abort stays partial.
/// With `sabotage_after_read_b` the saboteur instead runs inside block 1
/// right after read B — the classic mid-block conflict, used to observe
/// per-run config overrides (no batching involved).
struct PrefetchRig {
  Cluster cluster{fast_config()};
  std::unique_ptr<dtm::QuorumStub> saboteur_stub;
  std::shared_ptr<int> fires = std::make_shared<int>(0);
  TxProgram program;
  DependencyModel model;
  BlockSequence sequence;

  explicit PrefetchRig(int n_fires, bool sabotage_after_read_b = false) {
    workloads::seed_all(cluster.servers(), kA, Record{100});
    workloads::seed_all(cluster.servers(), kB, Record{200});
    workloads::seed_all(cluster.servers(), kC, Record{300});
    saboteur_stub = std::make_unique<dtm::QuorumStub>(cluster.make_stub(9));
    *fires = n_fires;

    ProgramBuilder b("prefetched", 0);
    const VarId a = b.remote_read(
        1, {}, [](const TxEnv&) { return kA; }, "read A");
    auto* stub = saboteur_stub.get();
    auto counter = fires;
    const auto sabotage = [stub, counter](TxEnv&) {
      if (*counter <= 0) return;
      --*counter;
      nesting::Transaction txn(*stub, nesting::next_tx_id());
      const Record v = txn.read(kB);
      txn.write(kB, Record{v[0] + 1});
      txn.commit();
    };
    if (!sabotage_after_read_b) b.local({a}, {}, sabotage, "sabotage B");
    const VarId bb = b.remote_read(
        2, {}, [](const TxEnv&) { return kB; }, "read B");
    if (sabotage_after_read_b) b.local({bb}, {}, sabotage, "sabotage B");
    const VarId sel = b.fresh_var();
    b.local({bb}, {sel},
            [bb, sel](TxEnv& e) { e.seti(sel, e.geti(bb) * 0); },
            "derive C selector");
    b.remote_read(3, {sel}, [](const TxEnv&) { return kC; }, "read C");
    program = b.build();
    model = build_dependency_model(program, AttachPolicy::kLatestProducer);
    if (model.units.size() != 3u)
      throw std::logic_error("PrefetchRig: unexpected unit count");
    sequence = {Block{{0}}, Block{{1, 2}}};
    if (!sequence_valid(sequence, model))
      throw std::logic_error("PrefetchRig: invalid sequence");
  }

  RunOptions options(bool batch) const {
    RunOptions opts;
    opts.program = &program;
    opts.model = &model;
    opts.sequence = &sequence;
    opts.batch_reads = batch;
    opts.prefetch = batch;
    return opts;
  }
};

TEST(Prefetch, StaleSpeculationCostsOnlyAPartialRetry) {
  PrefetchRig rig(/*n_fires=*/1);
  obs::Observability obs;
  rig.cluster.set_obs(&obs);
  auto stub = rig.cluster.make_stub(0);
  auto config = fast_executor();
  config.obs = &obs;
  Executor executor(stub, config, 1);
  ExecStats stats;
  executor.run(Protocol::kManualCN, rig.options(/*batch=*/true), {}, stats);

  // The stale prefetched B costs exactly one partial retry of block 1 —
  // never a full restart: speculation lands in the consuming block's frame.
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.full_aborts, 0u);
  EXPECT_EQ(stats.partial_aborts, 1u);
  const auto snapshot = obs.metrics.snapshot();
  EXPECT_GE(snapshot.counter("exec.prefetch.hit"), 1u);
  // The committed re-read of B observed the sabotaged version.
  EXPECT_EQ(workloads::latest_value(rig.cluster.servers(), kB).value,
            Record{201});
}

TEST(Prefetch, CleanRunAdoptsSpeculationWithoutWaste) {
  PrefetchRig rig(/*n_fires=*/0);
  obs::Observability obs;
  rig.cluster.set_obs(&obs);
  auto stub = rig.cluster.make_stub(0);
  auto config = fast_executor();
  config.obs = &obs;
  Executor executor(stub, config, 1);
  ExecStats stats;
  executor.run(Protocol::kManualCN, rig.options(/*batch=*/true), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.partial_aborts, 0u);
  EXPECT_EQ(stats.full_aborts, 0u);
  const auto snapshot = obs.metrics.snapshot();
  EXPECT_EQ(snapshot.counter("exec.prefetch.hit"), 1u);  // B adopted
  EXPECT_EQ(snapshot.counter("exec.prefetch.waste"), 0u);
}

TEST(Prefetch, AbortBeforeAdoptionCountsWaste) {
  // Three blocks: block 1 speculatively fetches block 2's independent read
  // C, then aborts at a mid-block dependent read before block 2 ever
  // starts — the pending speculation must be discarded and counted.
  Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{100});
  workloads::seed_all(cluster.servers(), kB, Record{200});
  workloads::seed_all(cluster.servers(), kC, Record{300});
  const ObjectKey kD{4, 0};
  workloads::seed_all(cluster.servers(), kD, Record{400});
  auto saboteur_stub =
      std::make_unique<dtm::QuorumStub>(cluster.make_stub(9));
  auto fires = std::make_shared<int>(1);

  ProgramBuilder b("wasteful", 0);
  b.remote_read(1, {}, [](const TxEnv&) { return kA; }, "read A");
  const VarId bb = b.remote_read(
      2, {}, [](const TxEnv&) { return kB; }, "read B");
  auto* stub_ptr = saboteur_stub.get();
  b.local({bb}, {},
          [stub_ptr, fires](TxEnv&) {
            if (*fires <= 0) return;
            --*fires;
            nesting::Transaction txn(*stub_ptr, nesting::next_tx_id());
            const Record v = txn.read(kA);
            txn.write(kA, Record{v[0] + 1});
            txn.commit();
          },
          "sabotage A");
  const VarId sel = b.fresh_var();
  b.local({bb}, {sel},
          [bb, sel](TxEnv& e) { e.seti(sel, e.geti(bb) * 0); },
          "derive D selector");
  b.remote_read(4, {sel}, [kD](const TxEnv&) { return kD; }, "read D");
  b.remote_read(3, {}, [](const TxEnv&) { return kC; }, "read C");
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  ASSERT_EQ(model.units.size(), 4u);
  const BlockSequence sequence{Block{{0}}, Block{{1, 2}}, Block{{3}}};
  ASSERT_TRUE(sequence_valid(sequence, model));

  obs::Observability obs;
  cluster.set_obs(&obs);
  auto stub = cluster.make_stub(0);
  auto config = fast_executor();
  config.obs = &obs;
  Executor executor(stub, config, 1);
  ExecStats stats;
  RunOptions options;
  options.program = &program;
  options.model = &model;
  options.sequence = &sequence;
  options.batch_reads = true;
  options.prefetch = true;
  executor.run(Protocol::kManualCN, options, {}, stats);

  // Read D's validation sees the sabotaged A — merged history, so the
  // abort is full — while C's speculation is still un-adopted.
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.full_aborts, 1u);
  const auto snapshot = obs.metrics.snapshot();
  EXPECT_GE(snapshot.counter("exec.prefetch.waste"), 1u);
  // The clean restart still adopts its own speculation of C.
  EXPECT_GE(snapshot.counter("exec.prefetch.hit"), 1u);
}

TEST(RunApi, MissingInputsAreRejected) {
  Cluster cluster(fast_config());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  EXPECT_THROW(executor.run(Protocol::kFlat, {}, {}, stats),
               std::invalid_argument);
  EXPECT_THROW(executor.run(Protocol::kManualCN, {}, {}, stats),
               std::invalid_argument);
  EXPECT_THROW(executor.run(Protocol::kAcn, {}, {}, stats),
               std::invalid_argument);
}

TEST(RunApi, ConfigOverrideAppliesForOneRunOnly) {
  // A mid-block conflict normally costs one *partial* retry.  Overriding
  // max_partial_retries to 0 for a single run must turn it into a full
  // restart — and the very next run must see the constructor config again.
  PrefetchRig rig(/*n_fires=*/1, /*sabotage_after_read_b=*/true);
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);

  ExecutorConfig strict = fast_executor();
  strict.max_partial_retries = 0;
  RunOptions options = rig.options(/*batch=*/false);
  options.config_override = &strict;

  ExecStats stats;
  executor.run(Protocol::kManualCN, options, {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.partial_aborts, 0u);
  EXPECT_EQ(stats.full_aborts, 1u);

  // Re-arm the saboteur; the default config absorbs it as a partial retry.
  *rig.fires = 1;
  executor.run(Protocol::kManualCN, rig.options(/*batch=*/false), {}, stats);
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_EQ(stats.partial_aborts, 1u);
  EXPECT_EQ(stats.full_aborts, 1u);
}

}  // namespace
}  // namespace acn
