// Reporting-layer tests: CSV export, improvement arithmetic and the DOT
// exporter (smoke-level: format, not pixels).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/harness/report.hpp"
#include "src/workloads/bank.hpp"

namespace acn::harness {
namespace {

RunResult sample(Protocol protocol, std::vector<double> tps) {
  RunResult result;
  result.protocol = protocol;
  result.throughput = std::move(tps);
  result.abort_rate.assign(result.throughput.size(), 10.0);
  return result;
}

TEST(Report, WriteCsvEmitsOneRowPerProtocolInterval) {
  DriverConfig config;
  config.intervals = 2;
  config.interval = std::chrono::milliseconds{250};
  const std::vector<RunResult> results{
      sample(Protocol::kFlat, {100, 200}),
      sample(Protocol::kAcn, {150, 300}),
  };
  const std::string path = "/tmp/acn_test_report.csv";
  ASSERT_TRUE(write_csv(path, results, config));

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);  // header + 2x2 rows
  EXPECT_EQ(lines[0],
            "protocol,interval,t_seconds,throughput_tps,abort_rate_per_s");
  EXPECT_EQ(lines[1], "QR-DTM,0,0.250,100.0,10.0");
  EXPECT_EQ(lines[4], "QR-ACN,1,0.500,300.0,10.0");
  std::remove(path.c_str());
}

TEST(Report, WriteCsvFailsGracefullyOnBadPath) {
  DriverConfig config;
  EXPECT_FALSE(write_csv("/nonexistent-dir/x.csv", {}, config));
}

TEST(Report, MeanThroughputWindows) {
  const auto result = sample(Protocol::kFlat, {100, 200, 300});
  EXPECT_DOUBLE_EQ(result.mean_throughput(0), 200.0);
  EXPECT_DOUBLE_EQ(result.mean_throughput(1), 250.0);
  EXPECT_DOUBLE_EQ(result.mean_throughput(2), 300.0);
  EXPECT_DOUBLE_EQ(result.mean_throughput(9), 0.0);
}

TEST(Report, DotExportIsWellFormedGraphviz) {
  workloads::Bank bank;
  const auto& model = bank.profiles()[0].static_model;
  const auto dot = model.to_dot("bank");
  EXPECT_EQ(dot.rfind("digraph bank {", 0), 0u);
  EXPECT_NE(dot.find("U0"), std::string::npos);
  EXPECT_NE(dot.find("read branch1"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Report, DotExportRendersDependencyEdges) {
  // A -> B chain must produce an edge line.
  ir::ProgramBuilder b("chain", 0);
  const auto a = b.remote_read(
      1, {}, [](const ir::TxEnv&) { return store::ObjectKey{1, 0}; }, "A");
  b.remote_read(2, {a},
                [](const ir::TxEnv&) { return store::ObjectKey{2, 0}; },
                "B");
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  EXPECT_NE(model.to_dot().find("U0 -> U1;"), std::string::npos);
}

}  // namespace
}  // namespace acn::harness
