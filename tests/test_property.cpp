// Randomized property tests over the whole ACN pipeline.
//
// A generator builds random-but-well-formed transaction programs (random
// remote accesses over random classes, local ops with random var
// dependencies, read-modify-write and blind-insert patterns).  For each
// generated program we assert structural invariants of the static
// analysis, validity of every produced Block Sequence, and semantic
// equivalence: executing under any valid sequence, under the Algorithm
// Module's plan for random contention levels, and under checkpointing all
// commit the same final object state as flat execution.
#include <gtest/gtest.h>

#include <numeric>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/workload.hpp"

namespace acn {
namespace {

using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::Field;
using store::ObjectKey;

constexpr std::size_t kClasses = 5;
constexpr std::size_t kObjectsPerClass = 8;

ObjectKey object(std::size_t cls, Field id) {
  return {static_cast<ir::ClassId>(cls + 1),
          static_cast<std::uint64_t>(id) % kObjectsPerClass};
}

/// Deterministic mixing of whatever fields feed a computation.
Field mix(Field a, Field b) { return a * 31 + b + 7; }

/// A random program: params feed keys; remote reads bind objects; local
/// ops combine live vars, sometimes writing an object back.
TxProgram random_program(Rng& rng, std::size_t n_remote, std::size_t n_local) {
  ProgramBuilder b("prop", 2);
  std::vector<VarId> object_vars;  // vars bound to objects
  std::vector<VarId> all_vars{b.param(0), b.param(1)};

  std::size_t remote_left = n_remote;
  std::size_t local_left = n_local;
  while (remote_left + local_left > 0) {
    const bool do_remote =
        remote_left > 0 &&
        (local_left == 0 || rng.bernoulli(static_cast<double>(remote_left) /
                                          static_cast<double>(remote_left +
                                                              local_left)));
    if (do_remote) {
      --remote_left;
      const std::size_t cls = rng.uniform(0, kClasses - 1);
      // Key depends on a random live var so dependency chains form.
      const VarId dep = all_vars[rng.uniform(0, all_vars.size() - 1)];
      const VarId out = b.remote_read(
          static_cast<ir::ClassId>(cls + 1), {dep},
          [cls, dep](const TxEnv& e) { return object(cls, e.geti(dep)); },
          "read");
      object_vars.push_back(out);
      all_vars.push_back(out);
    } else {
      --local_left;
      // Local op: read 1-3 vars, write either a fresh var or an object.
      std::vector<VarId> reads;
      const std::size_t n_reads = rng.uniform(1, 3);
      for (std::size_t r = 0; r < n_reads; ++r)
        reads.push_back(all_vars[rng.uniform(0, all_vars.size() - 1)]);
      const bool write_object = !object_vars.empty() && rng.bernoulli(0.5);
      if (write_object) {
        const VarId target =
            object_vars[rng.uniform(0, object_vars.size() - 1)];
        if (std::find(reads.begin(), reads.end(), target) == reads.end())
          reads.push_back(target);
        b.local(reads, {target},
                [reads, target](TxEnv& e) {
                  Field acc = 0;
                  for (const VarId v : reads) acc = mix(acc, e.geti(v));
                  Record r = e.get(target);
                  r[0] = acc % 100'000;
                  e.write_object(target, std::move(r));
                },
                "rmw");
      } else {
        const VarId out = b.fresh_var();
        b.local(reads, {out},
                [reads, out](TxEnv& e) {
                  Field acc = 1;
                  for (const VarId v : reads) acc = mix(acc, e.geti(v));
                  e.seti(out, acc % 100'000);
                },
                "calc");
        all_vars.push_back(out);
      }
    }
  }
  return b.build();
}

harness::ClusterConfig fast_config() {
  harness::ClusterConfig config;
  config.n_servers = 4;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

void seed_objects(harness::Cluster& cluster) {
  for (std::size_t cls = 0; cls < kClasses; ++cls)
    for (std::size_t id = 0; id < kObjectsPerClass; ++id)
      workloads::seed_all(cluster.servers(),
                          object(cls, static_cast<Field>(id)),
                          Record{static_cast<Field>(cls * 100 + id)});
}

std::vector<Record> final_state(harness::Cluster& cluster) {
  std::vector<Record> out;
  for (std::size_t cls = 0; cls < kClasses; ++cls)
    for (std::size_t id = 0; id < kObjectsPerClass; ++id)
      out.push_back(workloads::latest_value(
                        cluster.servers(), object(cls, static_cast<Field>(id)))
                        .value);
  return out;
}

BlockSequence random_sequence(const DependencyModel& model, Rng& rng) {
  std::vector<std::size_t> indegree(model.units.size(), 0);
  for (std::size_t u = 0; u < model.units.size(); ++u)
    for (std::size_t v : model.succs[u]) ++indegree[v];
  std::vector<std::size_t> ready;
  for (std::size_t u = 0; u < model.units.size(); ++u)
    if (indegree[u] == 0) ready.push_back(u);
  BlockSequence seq;
  while (!ready.empty()) {
    const std::size_t pick = rng.uniform(0, ready.size() - 1);
    const std::size_t u = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    if (!seq.empty() && rng.bernoulli(0.35))
      seq.back().units.push_back(u);
    else
      seq.push_back({{u}});
    for (std::size_t v : model.succs[u])
      if (--indegree[v] == 0) ready.push_back(v);
  }
  return seq;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, StaticAnalysisInvariants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const auto program =
        random_program(rng, rng.uniform(1, 6), rng.uniform(0, 8));
    for (const AttachPolicy policy :
         {AttachPolicy::kLatestProducer, AttachPolicy::kMostContended}) {
      ClassLevels levels;
      for (std::size_t cls = 0; cls < kClasses; ++cls)
        levels[static_cast<ir::ClassId>(cls + 1)] = rng.uniform01();
      const auto model = build_dependency_model(program, policy, levels);

      // Every op appears in exactly one unit.
      std::vector<int> seen(program.ops.size(), 0);
      for (const auto& unit : model.units) {
        EXPECT_FALSE(unit.remote_ops.empty());
        for (std::size_t op : unit.ops) ++seen[op];
      }
      for (std::size_t op = 0; op < program.ops.size(); ++op)
        EXPECT_EQ(seen[op], 1) << "op " << op;

      // unit_of_op agrees with unit membership.
      for (std::size_t u = 0; u < model.units.size(); ++u)
        for (std::size_t op : model.units[u].ops)
          EXPECT_EQ(model.unit_of_op[op], u);

      // Canonical order is a valid topological order.
      std::vector<std::size_t> identity(model.units.size());
      std::iota(identity.begin(), identity.end(), 0);
      EXPECT_TRUE(model.order_valid(identity));

      // Derived sequences are valid.
      EXPECT_TRUE(sequence_valid(initial_sequence(model), model));
      EXPECT_TRUE(sequence_valid(single_block(model), model));
    }
  }
}

TEST_P(PipelineProperty, AnyValidSequenceCommitsFlatEquivalentState) {
  Rng rng(GetParam() ^ 0xabcdULL);
  for (int trial = 0; trial < 4; ++trial) {
    const auto program =
        random_program(rng, rng.uniform(2, 5), rng.uniform(1, 6));
    const std::vector<Record> params{
        Record{static_cast<Field>(rng.uniform(0, 7))},
        Record{static_cast<Field>(rng.uniform(0, 7))}};

    std::vector<Record> expected;
    {
      harness::Cluster cluster(fast_config());
      seed_objects(cluster);
      auto stub = cluster.make_stub(0);
      Executor executor(stub, {}, 1);
      ExecStats stats;
      executor.run(Protocol::kFlat, with_program(program), params, stats);
      expected = final_state(cluster);
    }

    const auto model =
        build_dependency_model(program, AttachPolicy::kLatestProducer);
    for (int round = 0; round < 3; ++round) {
      const auto sequence = random_sequence(model, rng);
      ASSERT_TRUE(sequence_valid(sequence, model));
      harness::Cluster cluster(fast_config());
      seed_objects(cluster);
      auto stub = cluster.make_stub(0);
      Executor executor(stub, {}, 1);
      ExecStats stats;
      executor.run(Protocol::kManualCN, with_blocks(program, model, sequence),
                   params, stats);
      EXPECT_EQ(final_state(cluster), expected)
          << "trial " << trial << " round " << round;
    }
  }
}

TEST_P(PipelineProperty, AlgorithmPlansCommitFlatEquivalentState) {
  Rng rng(GetParam() ^ 0x5151ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const auto program =
        random_program(rng, rng.uniform(2, 5), rng.uniform(1, 6));
    const std::vector<Record> params{
        Record{static_cast<Field>(rng.uniform(0, 7))},
        Record{static_cast<Field>(rng.uniform(0, 7))}};

    std::vector<Record> expected;
    {
      harness::Cluster cluster(fast_config());
      seed_objects(cluster);
      auto stub = cluster.make_stub(0);
      Executor executor(stub, {}, 1);
      ExecStats stats;
      executor.run(Protocol::kFlat, with_program(program), params, stats);
      expected = final_state(cluster);
    }

    AlgorithmModule algorithm(program, {}, default_contention_model());
    for (int round = 0; round < 3; ++round) {
      RawLevels raw;
      for (std::size_t cls = 0; cls < kClasses; ++cls)
        raw[static_cast<ir::ClassId>(cls + 1)] = rng.uniform(0, 500);
      const auto plan = algorithm.recompute(raw);
      ASSERT_TRUE(sequence_valid(plan.sequence, plan.model))
          << describe_sequence(plan.sequence, plan.model);
      harness::Cluster cluster(fast_config());
      seed_objects(cluster);
      auto stub = cluster.make_stub(0);
      Executor executor(stub, {}, 1);
      ExecStats stats;
      executor.run(Protocol::kManualCN,
                   with_blocks(program, plan.model, plan.sequence), params,
                   stats);
      EXPECT_EQ(final_state(cluster), expected)
          << "trial " << trial << " round " << round << "\n"
          << describe_sequence(plan.sequence, plan.model);
    }
  }
}

TEST_P(PipelineProperty, CheckpointedExecutionIsFlatEquivalent) {
  Rng rng(GetParam() ^ 0x9e9eULL);
  for (int trial = 0; trial < 4; ++trial) {
    const auto program =
        random_program(rng, rng.uniform(2, 5), rng.uniform(1, 6));
    const std::vector<Record> params{
        Record{static_cast<Field>(rng.uniform(0, 7))},
        Record{static_cast<Field>(rng.uniform(0, 7))}};

    std::vector<Record> expected;
    {
      harness::Cluster cluster(fast_config());
      seed_objects(cluster);
      auto stub = cluster.make_stub(0);
      Executor executor(stub, {}, 1);
      ExecStats stats;
      executor.run(Protocol::kFlat, with_program(program), params, stats);
      expected = final_state(cluster);
    }

    harness::Cluster cluster(fast_config());
    seed_objects(cluster);
    auto stub = cluster.make_stub(0);
    Executor executor(stub, {}, 1);
    ExecStats stats;
    executor.run(Protocol::kCheckpoint, with_program(program), params, stats);
    EXPECT_EQ(final_state(cluster), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace acn
