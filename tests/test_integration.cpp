// Integration tests: full cluster, concurrent clients, all three protocols
// end-to-end through the benchmark driver, with invariant checks and
// adaptation behaviour.
#include <gtest/gtest.h>

#include "src/harness/driver.hpp"
#include "src/harness/report.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"
#include "src/workloads/vacation.hpp"

namespace acn::harness {
namespace {

ClusterConfig quick_cluster() {
  ClusterConfig config;
  config.n_servers = 7;
  config.base_latency = std::chrono::microseconds{3};
  config.stub.retry.base = std::chrono::microseconds{5};
  return config;
}

DriverConfig quick_driver() {
  DriverConfig config;
  config.n_clients = 4;
  config.intervals = 3;
  config.interval = std::chrono::milliseconds{120};
  config.executor.backoff_base = std::chrono::microseconds{5};
  return config;
}

TEST(Integration, BankAllProtocolsCommitAndKeepInvariants) {
  const auto results = run_all_protocols(
      quick_cluster(),
      [] {
        return std::make_unique<workloads::Bank>(
            workloads::BankConfig{.n_branches = 16, .n_accounts = 256});
      },
      quick_driver());
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    EXPECT_GT(result.stats.commits, 0u) << protocol_name(result.protocol);
    for (double tps : result.throughput)
      EXPECT_GT(tps, 0.0) << protocol_name(result.protocol);
  }
  // Closed-nesting protocols execute blocks; flat never partially aborts.
  EXPECT_EQ(results[0].stats.partial_aborts, 0u);
  EXPECT_EQ(results[0].stats.blocks_executed, 0u);
  EXPECT_GT(results[1].stats.blocks_executed, 0u);
  EXPECT_GT(results[2].stats.blocks_executed, 0u);
  EXPECT_GT(results[2].adaptations, 0u);
}

TEST(Integration, VacationWithPhaseChanges) {
  auto driver = quick_driver();
  driver.phase_changes = {{1, 1}, {2, 2}};
  const auto results = run_all_protocols(
      quick_cluster(),
      [] {
        return std::make_unique<workloads::Vacation>(
            workloads::VacationConfig{.n_items = 32, .n_customers = 64});
      },
      driver);
  for (const auto& result : results)
    EXPECT_GT(result.stats.commits, 0u) << protocol_name(result.protocol);
}

TEST(Integration, TpccMixedProfile) {
  workloads::TpccConfig tpcc;
  tpcc.n_warehouses = 2;
  tpcc.districts_per_warehouse = 4;
  tpcc.customers_per_district = 10;
  tpcc.n_items = 32;
  tpcc.order_ring = 16;
  tpcc.w_neworder = 0.5;
  tpcc.w_payment = 0.5;
  const auto results = run_all_protocols(
      quick_cluster(),
      [tpcc] { return std::make_unique<workloads::Tpcc>(tpcc); },
      quick_driver());
  for (const auto& result : results)
    EXPECT_GT(result.stats.commits, 0u) << protocol_name(result.protocol);
}

TEST(Integration, AcnAdaptsBankPlanToHotBranches) {
  // Drive contention by hand: heavy branch traffic, then ask the controller
  // to adapt; the published plan must become the Figure 3 arrangement.
  Cluster cluster(quick_cluster());
  workloads::Bank bank({.n_branches = 8, .n_accounts = 64});
  bank.seed(cluster.servers());

  AdaptiveController controller(*bank.profiles()[0].program, {},
                                default_contention_model());
  ContentionMonitor monitor(controller.touched_classes());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, {}, 5);
  Rng rng(5);

  ExecStats stats;
  for (int i = 0; i < 40; ++i) {
    // Phase 0 params: branches hot.
    executor.run(Protocol::kAcn, with_controller(controller),
                 bank.profiles()[0].make_params(rng, 0), stats);
  }
  cluster.roll_contention_windows();
  controller.adapt_from(monitor, stub);

  const auto plan = controller.plan();
  ASSERT_FALSE(plan->sequence.empty());
  // The hottest block (branches) must be the last one.
  const auto& mod = controller.algorithm();
  const double last = mod.block_level(plan->sequence.back(), plan->model,
                                      plan->levels_used);
  for (const auto& block : plan->sequence)
    EXPECT_LE(mod.block_level(block, plan->model, plan->levels_used), last);
  EXPECT_GT(monitor.level(workloads::Bank::kBranch),
            monitor.level(workloads::Bank::kAccount));
}

TEST(Integration, DriverCountsIntervalsAndStats) {
  Cluster cluster(quick_cluster());
  workloads::Bank bank({.n_branches = 16, .n_accounts = 128});
  bank.seed(cluster.servers());
  auto config = quick_driver();
  config.intervals = 2;
  const auto result = run(cluster, bank, Protocol::kFlat, config);
  EXPECT_EQ(result.throughput.size(), 2u);
  EXPECT_GT(result.mean_throughput(), 0.0);
  EXPECT_EQ(result.protocol, Protocol::kFlat);
}

TEST(Integration, ImprovementPctComputes) {
  RunResult a, b;
  a.throughput = {0, 150};
  b.throughput = {0, 100};
  EXPECT_DOUBLE_EQ(improvement_pct(a, b, 1), 50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(b, b, 1), 0.0);
  RunResult zero;
  zero.throughput = {0, 0};
  EXPECT_DOUBLE_EQ(improvement_pct(a, zero, 1), 0.0);
}

TEST(Integration, ProtocolNames) {
  EXPECT_STREQ(protocol_name(Protocol::kFlat), "QR-DTM");
  EXPECT_STREQ(protocol_name(Protocol::kManualCN), "QR-CN");
  EXPECT_STREQ(protocol_name(Protocol::kAcn), "QR-ACN");
}

TEST(Integration, PiggybackContentionFeedAdaptsToo) {
  Cluster cluster(quick_cluster());
  workloads::Bank bank({.n_branches = 16, .n_accounts = 128});
  bank.seed(cluster.servers());
  auto config = quick_driver();
  config.piggyback_contention = true;
  const auto result = run(cluster, bank, Protocol::kAcn, config);
  EXPECT_GT(result.stats.commits, 0u);
  EXPECT_GT(result.adaptations, 0u);
}

TEST(Integration, CheckpointProtocolThroughDriver) {
  Cluster cluster(quick_cluster());
  workloads::Bank bank({.n_branches = 16, .n_accounts = 128});
  bank.seed(cluster.servers());
  auto config = quick_driver();
  config.intervals = 2;
  const auto result = run(cluster, bank, Protocol::kCheckpoint, config);
  EXPECT_GT(result.stats.commits, 0u);
  EXPECT_GT(result.stats.checkpoints_taken, result.stats.commits);
  EXPECT_EQ(result.stats.partial_aborts, 0u);  // restores instead
}

TEST(Integration, AsyncMailboxClusterKeepsInvariants) {
  auto cluster_config = quick_cluster();
  cluster_config.async_servers = true;
  Cluster cluster(cluster_config);
  workloads::Bank bank({.n_branches = 16, .n_accounts = 128});
  bank.seed(cluster.servers());
  auto config = quick_driver();
  config.intervals = 2;
  const auto result = run(cluster, bank, Protocol::kAcn, config);
  EXPECT_GT(result.stats.commits, 0u);
}

TEST(Integration, LevelMajorityQuorumClusterWorks) {
  auto cluster_config = quick_cluster();
  cluster_config.quorum_policy = QuorumPolicy::kLevelMajority;
  Cluster cluster(cluster_config);
  workloads::Bank bank({.n_branches = 16, .n_accounts = 128});
  bank.seed(cluster.servers());
  auto config = quick_driver();
  config.intervals = 2;
  const auto result = run(cluster, bank, Protocol::kAcn, config);
  EXPECT_GT(result.stats.commits, 0u);
}

TEST(Integration, NetworkFaultToleranceUnderLoad) {
  // A non-root server going down mid-run must not stop progress (reads
  // re-select quorums around it; writes keep their quorums root-anchored).
  Cluster cluster(quick_cluster());
  workloads::Bank bank({.n_branches = 16, .n_accounts = 128});
  bank.seed(cluster.servers());
  cluster.network().set_node_down(5, true);
  auto config = quick_driver();
  config.intervals = 2;
  const auto result = run(cluster, bank, Protocol::kManualCN, config);
  EXPECT_GT(result.stats.commits, 0u);
}

}  // namespace
}  // namespace acn::harness
