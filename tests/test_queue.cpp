// Queue-oriented deterministic epoch executor tests (src/queue): epoch
// planning (canonical key order, arrival priority, dependency dedup),
// speculative execution over a Workspace (read-from-earlier-in-epoch,
// misprediction demotion without publishing), the EpochService end to end
// (batched submissions commit in one epoch decision, honest stats), epoch
// atomicity under a mid-epoch crash_node (no orphaned prepares, the
// transfer sum invariant holds), and the shard::Client lane dispatch
// (--exec=queue routes everything predictable, --exec=hybrid routes by
// scheduler hotness, demotion falls through to the optimistic path).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/harness/cluster.hpp"
#include "src/queue/epoch.hpp"
#include "src/queue/executor.hpp"
#include "src/queue/service.hpp"
#include "src/sched/scheduler.hpp"
#include "src/shard/client.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard_map.hpp"

namespace acn::queue {
namespace {

using ir::ProgramBuilder;
using ir::TxEnv;
using ir::VarId;
using shard::Partitioning;
using shard::ShardMap;
using shard::ShardMapConfig;
using shard::ShardRouter;
using store::ObjectKey;
using store::Record;
using store::VersionedRecord;

harness::ClusterConfig fast_cluster(std::size_t groups,
                                    std::size_t per_group = 3) {
  harness::ClusterConfig config;
  config.n_servers = per_group;
  config.n_groups = groups;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

/// Blocks of 100 ids round-robin across groups (the deterministic placement
/// test_shard.cpp / test_client.cpp use): id 5 is group 0, id 105 group 1.
ShardMap range_map(std::uint32_t n_shards) {
  ShardMapConfig config;
  config.n_shards = n_shards;
  config.partitioning = Partitioning::kRange;
  config.range_block = 100;
  return ShardMap(config);
}

/// Canonical footprint from (key, for_write) pairs given in ascending order.
KeyFootprint footprint(std::vector<FootprintEntry> entries) {
  return KeyFootprint(entries.begin(), entries.end());
}

/// [read key(param 0) for-write] -> [increment field 0].
ir::TxProgram increment_program() {
  ProgramBuilder b("queue.inc", 1);
  const VarId p = b.param(0);
  const VarId v = b.remote_read(
      1, {p},
      [p](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p))};
      },
      "read", /*for_write=*/true);
  b.local({v}, {v},
          [v](TxEnv& e) {
            Record r = e.get(v);
            r[0] += 1;
            e.write_object(v, std::move(r));
          },
          "increment");
  return b.build();
}

/// Move 1 unit from account(param 0) to account(param 1); the sum over both
/// accounts is invariant no matter how many of these commit.
ir::TxProgram transfer_program() {
  ProgramBuilder b("queue.transfer", 2);
  const VarId p_src = b.param(0);
  const VarId p_dst = b.param(1);
  const VarId src = b.remote_read(
      1, {p_src},
      [p_src](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p_src))};
      },
      "read src", /*for_write=*/true);
  const VarId dst = b.remote_read(
      1, {p_dst},
      [p_dst](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p_dst))};
      },
      "read dst", /*for_write=*/true);
  b.local({src, dst}, {src, dst},
          [src, dst](TxEnv& e) {
            Record a = e.get(src);
            Record d = e.get(dst);
            a[0] -= 1;
            d[0] += 1;
            e.write_object(src, std::move(a));
            e.write_object(dst, std::move(d));
          },
          "transfer");
  return b.build();
}

/// A pointer chase: the second key comes from the first read's value, so
/// the predicted footprint sees only the home key — the misprediction
/// shape the speculative backend must demote on.
ir::TxProgram chase_program() {
  ProgramBuilder b("queue.chase", 1);
  const VarId p = b.param(0);
  const VarId home = b.remote_read(
      1, {p},
      [p](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p))};
      },
      "read home", /*for_write=*/true);
  const VarId ptr = b.fresh_var();
  b.local({home}, {ptr},
          [home, ptr](TxEnv& e) { e.seti(ptr, e.get(home)[1]); }, "deref");
  const VarId away = b.remote_read(
      1, {ptr},
      [ptr](const TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(ptr))};
      },
      "read away", /*for_write=*/true);
  b.local({home, away}, {home, away},
          [home, away](TxEnv& e) {
            Record h = e.get(home);
            Record a = e.get(away);
            h[0] -= 5;
            a[0] += 5;
            e.write_object(home, std::move(h));
            e.write_object(away, std::move(a));
          },
          "transfer");
  return b.build();
}

// ---------------------------------------------------------------------------
// Epoch planning (pure — no cluster, no threads).

TEST(EpochPlan, QueuesAreCanonicalKeyOrderAndArrivalPriority) {
  const ObjectKey a{1, 5}, b{1, 9}, c{2, 1};
  const KeyFootprint f0 = footprint({{a, true}, {b, false}});
  const KeyFootprint f1 = footprint({{b, true}});
  const KeyFootprint f2 = footprint({{a, false}, {c, true}});
  const EpochPlan plan = plan_epoch({&f0, &f1, &f2});

  // Keys iterate ascending; each queue lists entries in arrival order.
  std::vector<ObjectKey> keys;
  for (const auto& [key, queue] : plan.key_queues) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<ObjectKey>{a, b, c}));
  EXPECT_EQ(plan.key_queues.at(a), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan.key_queues.at(b), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.key_queues.at(c), (std::vector<std::size_t>{2}));

  // Entry 0 roots the epoch; 1 and 2 each wait on it via one shared key.
  EXPECT_EQ(plan.roots(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(plan.deps, (std::vector<std::size_t>{0, 1, 1}));
  EXPECT_EQ(plan.dependents[0], (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(plan.dependents[1].empty());
  EXPECT_TRUE(plan.dependents[2].empty());

  // Union footprint: ascending, deduped, for_write OR-ed across entries.
  ASSERT_EQ(plan.footprint.size(), 3u);
  EXPECT_EQ(plan.footprint[0].key, a);
  EXPECT_TRUE(plan.footprint[0].for_write);  // f0 wrote a
  EXPECT_EQ(plan.footprint[1].key, b);
  EXPECT_TRUE(plan.footprint[1].for_write);  // f1 wrote b
  EXPECT_EQ(plan.footprint[2].key, c);
  EXPECT_TRUE(plan.footprint[2].for_write);
}

TEST(EpochPlan, SharedKeysProduceOneDependencyNotTwo) {
  const ObjectKey a{1, 5}, b{1, 9};
  const KeyFootprint f0 = footprint({{a, true}, {b, true}});
  const KeyFootprint f1 = footprint({{a, true}, {b, true}});
  const EpochPlan plan = plan_epoch({&f0, &f1});

  // Entry 1 follows entry 0 on BOTH keys, but the dependency counts once —
  // otherwise one completion could never drain both increments.
  EXPECT_EQ(plan.deps, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.dependents[0], (std::vector<std::size_t>{1}));
}

TEST(EpochPlan, DisjointEntriesAreAllRoots) {
  const KeyFootprint f0 = footprint({{ObjectKey{1, 1}, true}});
  const KeyFootprint f1 = footprint({{ObjectKey{1, 2}, true}});
  const KeyFootprint f2 = footprint({{ObjectKey{1, 3}, true}});
  const EpochPlan plan = plan_epoch({&f0, &f1, &f2});
  EXPECT_EQ(plan.roots(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(plan.deps, (std::vector<std::size_t>{0, 0, 0}));
}

// ---------------------------------------------------------------------------
// Speculative execution over a Workspace (pure — no cluster).

TEST(Speculation, SecondEntryReadsFirstEntrysPublishedWrite) {
  Workspace ws;
  const ObjectKey key{1, 5};
  ws.cache[key] = VersionedRecord{Record{100, 0}, 7};
  const KeyFootprint planned = footprint({{key, true}});
  const auto program = increment_program();
  const std::vector<Record> params{Record{5}};

  const EntryOutcome first = run_entry(program, params, planned, ws);
  EXPECT_TRUE(first.committed);
  EXPECT_EQ(first.spec_reads, 0u);  // read the prefetched version
  EXPECT_EQ(ws.written.at(key)[0], 101);
  ASSERT_EQ(ws.reads_used.count(key), 1u);
  EXPECT_EQ(ws.reads_used.at(key).version, 7u);

  const EntryOutcome second = run_entry(program, params, planned, ws);
  EXPECT_TRUE(second.committed);
  EXPECT_EQ(second.spec_reads, 1u);  // read first's write, not the store
  EXPECT_EQ(ws.written.at(key)[0], 102);
  // The epoch's read set stays the prefetched version: the speculative
  // read consumed in-epoch state, which the epoch commit itself installs.
  EXPECT_EQ(ws.reads_used.size(), 1u);
  EXPECT_EQ(ws.reads_used.at(key).version, 7u);
}

TEST(Speculation, UnplannedAccessDemotesWithoutPublishing) {
  Workspace ws;
  const ObjectKey home{1, 5};
  // Field 1 points at id 105 — a key outside the planned footprint.
  ws.cache[home] = VersionedRecord{Record{50, 105}, 3};
  const KeyFootprint planned = footprint({{home, true}});

  const EntryOutcome out =
      run_entry(chase_program(), {Record{5}}, planned, ws);
  EXPECT_FALSE(out.committed);
  ASSERT_TRUE(out.mispredicted.has_value());
  EXPECT_EQ(*out.mispredicted, (ObjectKey{1, 105}));
  // Nothing published: dependents read pre-epoch state, the epoch commit
  // carries no trace of the demoted entry.
  EXPECT_TRUE(ws.written.empty());
  EXPECT_TRUE(ws.reads_used.empty());
}

TEST(Speculation, AbsentPlannedKeyDemotes) {
  Workspace ws;
  const ObjectKey key{1, 5};
  ws.absent.insert(key);
  const KeyFootprint planned = footprint({{key, true}});
  const EntryOutcome out =
      run_entry(increment_program(), {Record{5}}, planned, ws);
  EXPECT_FALSE(out.committed);
  ASSERT_TRUE(out.mispredicted.has_value());
  EXPECT_EQ(*out.mispredicted, key);
  EXPECT_TRUE(ws.written.empty());
}

// ---------------------------------------------------------------------------
// EpochService end to end.

TEST(EpochService, ConcurrentSubmissionsCommitThroughEpochs) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 0});
  seed_sharded(cluster, map, {1, 105}, Record{100, 0});

  QueueConfig config;
  config.epoch_wait = std::chrono::milliseconds{5};
  config.epoch_max = 8;
  config.n_executors = 2;
  EpochService service(cluster, router, config);

  const auto inc = increment_program();
  const auto xfer = transfer_program();
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      // Two incrementers on the group-0 key, two cross-group transfers —
      // the transfers force multi-group epochs (one 2PC decision each).
      const bool transfer = t >= 2;
      const ir::TxProgram& program = transfer ? xfer : inc;
      const std::vector<Record> params =
          transfer ? std::vector<Record>{Record{5}, Record{105}}
                   : std::vector<Record>{Record{5}};
      const KeyFootprint predicted = predicted_footprint(program, params);
      ASSERT_FALSE(predicted.empty());
      acn::ExecStats es;
      if (service.submit(program, params, predicted, es) ==
          shard::LaneOutcome::kCommitted) {
        ++committed;
        EXPECT_EQ(es.commits, 1u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Deterministic replanning retries every validation race away, so all
  // four commit (max_epoch_retries is far above any race this test sees).
  EXPECT_EQ(committed.load(), 4);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.submitted.load(), 4u);
  EXPECT_EQ(stats.committed.load(), 4u);
  EXPECT_EQ(stats.demoted.load(), 0u);
  EXPECT_GE(stats.epochs.load(), 1u);
  EXPECT_LE(stats.epochs.load(), 4u);
  EXPECT_EQ(stats.epoch_commits.load(), stats.epochs.load());

  // Two increments + two transfers out of key 5, two transfers into 105.
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 100);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 105}).value.fields[0], 102);
  for (dtm::Server* server : cluster.servers()) {
    EXPECT_EQ(server->open_lease_count(), 0u);
    EXPECT_EQ(server->store().protected_count(), 0u);
  }
}

TEST(EpochService, SameKeyBatchSpeculatesInsideOneEpoch) {
  harness::Cluster cluster(fast_cluster(1));
  const ShardMap map = range_map(1);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{0, 0});

  // One executor, long fill window: hold the epoch open until all four
  // submissions are pending, so they land in ONE epoch and the later
  // entries read the earlier entries' speculative writes.
  QueueConfig config;
  config.epoch_wait = std::chrono::milliseconds{200};
  config.epoch_max = 4;
  config.n_executors = 1;
  EpochService service(cluster, router, config);

  const auto program = increment_program();
  const std::vector<Record> params{Record{5}};
  const KeyFootprint predicted = predicted_footprint(program, params);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      acn::ExecStats es;
      EXPECT_EQ(service.submit(program, params, predicted, es),
                shard::LaneOutcome::kCommitted);
    });
  }
  for (std::thread& t : threads) t.join();

  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.committed.load(), 4u);
  EXPECT_EQ(stats.epochs.load(), 1u);
  EXPECT_EQ(stats.epoch_commits.load(), 1u);
  // Entries 2..4 each read their predecessor's published write.
  EXPECT_EQ(stats.spec_reads.load(), 3u);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 4);
}

TEST(EpochService, MispredictionDemotesAndEpochStillCommitsTheRest) {
  harness::Cluster cluster(fast_cluster(1));
  const ShardMap map = range_map(1);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 42});  // points at id 42
  seed_sharded(cluster, map, {1, 6}, Record{100, 0});
  seed_sharded(cluster, map, {1, 42}, Record{100, 0});

  QueueConfig config;
  config.epoch_wait = std::chrono::milliseconds{200};
  config.epoch_max = 2;
  config.n_executors = 1;
  EpochService service(cluster, router, config);

  const auto chase = chase_program();
  const auto inc = increment_program();
  std::atomic<int> demoted{0};
  std::thread chaser([&] {
    const std::vector<Record> params{Record{5}};
    acn::ExecStats es;
    if (service.submit(chase, params, predicted_footprint(chase, params),
                       es) == shard::LaneOutcome::kDemoted) {
      ++demoted;
      EXPECT_EQ(es.commits, 0u);  // a demotion folds nothing into stats
    }
  });
  std::thread inccer([&] {
    const std::vector<Record> params{Record{6}};
    acn::ExecStats es;
    EXPECT_EQ(service.submit(inc, params, predicted_footprint(inc, params), es),
              shard::LaneOutcome::kCommitted);
  });
  chaser.join();
  inccer.join();

  EXPECT_EQ(demoted.load(), 1);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.demoted.load(), 1u);
  EXPECT_EQ(stats.mispredicted.load(), 1u);
  EXPECT_EQ(stats.committed.load(), 1u);
  // The demoted chase published nothing: its keys are untouched.
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 100);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 42}).value.fields[0], 100);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 6}).value.fields[0], 101);
}

TEST(EpochService, MidEpochCrashLeavesNoOrphanedPrepares) {
  // Four replicas per group: the tree keeps its write quorum constructible
  // with one leaf down; extra quorum re-picks dodge the crashed node.
  auto cluster_config = fast_cluster(2, /*per_group=*/4);
  cluster_config.stub.max_quorum_retries = 16;
  harness::Cluster cluster(cluster_config);
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{1000, 0});
  seed_sharded(cluster, map, {1, 105}, Record{1000, 0});

  QueueConfig config;
  config.epoch_wait = std::chrono::microseconds{200};
  config.epoch_max = 4;
  config.n_executors = 2;
  EpochService service(cluster, router, config);

  const auto program = transfer_program();
  const std::vector<Record> params{Record{5}, Record{105}};
  const KeyFootprint predicted = predicted_footprint(program, params);
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        acn::ExecStats es;
        if (service.submit(program, params, predicted, es) ==
            shard::LaneOutcome::kCommitted)
          ++committed;
      }
    });
  }

  // Crash a group-1 leaf while epochs are in flight, restart it shortly
  // after — the epoch retry loop must absorb the fault window.
  std::this_thread::sleep_for(std::chrono::milliseconds{2});
  const net::NodeId victim = cluster.group_members(1).back();
  cluster.crash_node(victim);
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  cluster.restart_node(victim, harness::CatchUpScope::kAllReplicas);
  for (std::thread& t : threads) t.join();

  // Every epoch decision was atomic: the transfer sum is invariant and the
  // per-key deltas match the committed count exactly.
  const std::int64_t src =
      latest_sharded(cluster, map, {1, 5}).value.fields[0];
  const std::int64_t dst =
      latest_sharded(cluster, map, {1, 105}).value.fields[0];
  EXPECT_EQ(src + dst, 2000);
  EXPECT_EQ(src, 1000 - committed.load());
  EXPECT_EQ(dst, 1000 + committed.load());
  EXPECT_EQ(service.coordinator_stats().atomicity_breaches.load(), 0u);
  // Zero orphaned prepares: no lease or protected key survives anywhere,
  // including on the crashed-and-rejoined replica.
  for (dtm::Server* server : cluster.servers()) {
    EXPECT_EQ(server->open_lease_count(), 0u);
    EXPECT_EQ(server->store().protected_count(), 0u);
  }
}

// ---------------------------------------------------------------------------
// shard::Client lane dispatch (--exec=queue / --exec=hybrid).

/// A Lane double that records submissions and answers as told.
class RecordingLane final : public shard::Lane {
 public:
  explicit RecordingLane(shard::LaneOutcome answer) : answer_(answer) {}

  shard::LaneOutcome submit(const ir::TxProgram&,
                            const std::vector<ir::Record>&,
                            const KeyFootprint& predicted,
                            acn::ExecStats& stats) override {
    ++submits;
    last_footprint = predicted;
    if (answer_ == shard::LaneOutcome::kCommitted) ++stats.commits;
    return answer_;
  }

  int submits = 0;
  KeyFootprint last_footprint;

 private:
  const shard::LaneOutcome answer_;
};

acn::ExecutorConfig fast_executor() {
  acn::ExecutorConfig config;
  config.backoff_base = std::chrono::microseconds{1};
  return config;
}

TEST(ClientLane, QueueModeRoutesPredictableTransactionsToTheLane) {
  harness::Cluster cluster(fast_cluster(1));
  const ShardMap map = range_map(1);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 0});

  auto lane = std::make_shared<RecordingLane>(shard::LaneOutcome::kCommitted);
  shard::ClientStats stats;
  shard::Client client(cluster, router, stats, 0, fast_executor(), 7,
                       shard::ExecMode::kQueue, lane);
  const auto program = increment_program();
  acn::ExecStats es;
  client.run(harness::Protocol::kFlat, acn::with_program(program),
             {Record{5}}, es);

  EXPECT_EQ(lane->submits, 1);
  EXPECT_EQ(stats.lane_submits.load(), 1u);
  EXPECT_EQ(stats.lane_commits.load(), 1u);
  EXPECT_EQ(es.commits, 1u);
  // The lane owned the transaction: the optimistic paths never ran.
  EXPECT_EQ(stats.fast_path.load(), 0u);
  EXPECT_EQ(stats.cross_shard.load(), 0u);
}

TEST(ClientLane, LaneDemotionFallsThroughToTheOptimisticPath) {
  harness::Cluster cluster(fast_cluster(1));
  const ShardMap map = range_map(1);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 0});

  auto lane = std::make_shared<RecordingLane>(shard::LaneOutcome::kDemoted);
  shard::ClientStats stats;
  shard::Client client(cluster, router, stats, 0, fast_executor(), 7,
                       shard::ExecMode::kQueue, lane);
  const auto program = increment_program();
  acn::ExecStats es;
  client.run(harness::Protocol::kFlat, acn::with_program(program),
             {Record{5}}, es);

  // Demoted by the lane, re-run optimistically, committed for real.
  EXPECT_EQ(lane->submits, 1);
  EXPECT_EQ(stats.lane_demotions.load(), 1u);
  EXPECT_EQ(stats.fast_path.load(), 1u);
  EXPECT_EQ(es.commits, 1u);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 101);
}

TEST(ClientLane, HybridRoutesBySchedulerHotness) {
  harness::Cluster cluster(fast_cluster(1));
  const ShardMap map = range_map(1);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 0});
  seed_sharded(cluster, map, {1, 7}, Record{100, 0});

  sched::SchedulerConfig sched_config;
  sched_config.policy = sched::SchedulerPolicy::kQueue;
  sched_config.class_hot_level = 0;  // abort-blame hotness only
  sched::TxScheduler scheduler(sched_config, 1);
  // Heat key {1,5} through the public interface: three blamed aborts
  // reach the default hot_score of 3.0.
  auto& gate = scheduler.session(0);
  gate.admit({});
  for (int i = 0; i < 3; ++i)
    gate.on_full_abort(TxOutcome::kValidation, {ObjectKey{1, 5}});
  gate.finish(TxOutcome::kValidation);
  ASSERT_TRUE(scheduler.is_hot(ObjectKey{1, 5}));

  auto lane = std::make_shared<RecordingLane>(shard::LaneOutcome::kCommitted);
  shard::ClientStats stats;
  shard::Client client(cluster, router, stats, 0, fast_executor(), 7,
                       shard::ExecMode::kHybrid, lane);
  const auto program = increment_program();
  acn::RunOptions options = acn::with_program(program);
  options.scheduler = &gate;

  // Cold key: stays optimistic.
  acn::ExecStats cold;
  client.run(harness::Protocol::kFlat, options, {Record{7}}, cold);
  EXPECT_EQ(lane->submits, 0);
  EXPECT_EQ(stats.fast_path.load(), 1u);
  EXPECT_EQ(cold.commits, 1u);

  // Hot key: routed to the deterministic lane.
  acn::ExecStats hot;
  client.run(harness::Protocol::kFlat, options, {Record{5}}, hot);
  EXPECT_EQ(lane->submits, 1);
  EXPECT_EQ(stats.lane_submits.load(), 1u);
  EXPECT_EQ(hot.commits, 1u);

  // Without a scheduler gate hybrid has no hotness signal: optimistic.
  acn::ExecStats ungated;
  client.run(harness::Protocol::kFlat, acn::with_program(program),
             {Record{5}}, ungated);
  EXPECT_EQ(lane->submits, 1);
  EXPECT_EQ(stats.fast_path.load(), 2u);
}

TEST(ClientLane, RealEpochLaneBehindQueueModeClient) {
  harness::Cluster cluster(fast_cluster(2));
  const ShardMap map = range_map(2);
  ShardRouter router(map);
  seed_sharded(cluster, map, {1, 5}, Record{100, 0});
  seed_sharded(cluster, map, {1, 105}, Record{100, 0});

  QueueConfig config;
  config.epoch_wait = std::chrono::microseconds{100};
  auto lane = std::make_shared<EpochService>(cluster, router, config);
  shard::ClientStats stats;
  shard::Client client(cluster, router, stats, 0, fast_executor(), 7,
                       shard::ExecMode::kQueue,
                       std::static_pointer_cast<shard::Lane>(lane));
  const auto program = transfer_program();
  acn::ExecStats es;
  for (int i = 0; i < 3; ++i)
    client.run(harness::Protocol::kFlat, acn::with_program(program),
               {Record{5}, Record{105}}, es);

  EXPECT_EQ(es.commits, 3u);
  EXPECT_EQ(stats.lane_commits.load(), 3u);
  EXPECT_EQ(lane->stats().committed.load(), 3u);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 5}).value.fields[0], 97);
  EXPECT_EQ(latest_sharded(cluster, map, {1, 105}).value.fields[0], 103);
}

}  // namespace
}  // namespace acn::queue
