// Executor Engine tests: flat vs block execution equivalence (property test
// over random valid Block Sequences), deterministic partial-rollback and
// full-abort paths (with an in-program saboteur committing conflicting
// writes), escalation limits, and adaptive plan switching.
#include <gtest/gtest.h>

#include <memory>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/bank.hpp"

namespace acn {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::ObjectKey;

ClusterConfig fast_config(std::size_t n = 5) {
  ClusterConfig config;
  config.n_servers = n;
  config.base_latency = std::chrono::nanoseconds{0};
  config.stub.retry.base = std::chrono::nanoseconds{100};
  return config;
}

ExecutorConfig fast_executor() {
  ExecutorConfig config;
  config.backoff_base = std::chrono::nanoseconds{100};
  return config;
}

const ObjectKey kA{1, 0};
const ObjectKey kB{2, 0};
const ObjectKey kC{3, 0};

/// Random valid sequence: random topological order of units, then random
/// adjacent merges (merging neighbours of a valid sequence stays valid).
BlockSequence random_valid_sequence(const DependencyModel& model, Rng& rng) {
  const std::size_t n = model.units.size();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v : model.succs[u]) ++indegree[v];
  std::vector<std::size_t> ready;
  for (std::size_t u = 0; u < n; ++u)
    if (indegree[u] == 0) ready.push_back(u);
  BlockSequence seq;
  while (!ready.empty()) {
    const std::size_t pick = rng.uniform(0, ready.size() - 1);
    const std::size_t u = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    seq.push_back({{u}});
    for (std::size_t v : model.succs[u])
      if (--indegree[v] == 0) ready.push_back(v);
  }
  for (std::size_t i = seq.size() - 1; i > 0; --i) {
    if (rng.bernoulli(0.4)) {
      seq[i - 1].units.insert(seq[i - 1].units.end(), seq[i].units.begin(),
                              seq[i].units.end());
      seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  return seq;
}

TEST(Executor, FlatRunCommitsEffects) {
  Cluster cluster(fast_config());
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  bank.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);

  ExecStats stats;
  const std::vector<Record> params{Record{1}, Record{2}, Record{0}, Record{3},
                                   Record{7}};
  executor.run(Protocol::kFlat, with_program(*bank.profiles()[0].program),
               params, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.full_aborts, 0u);

  const auto servers = cluster.servers();
  EXPECT_EQ(
      workloads::latest_value(servers, workloads::Bank::account_key(1)).value[0],
      10'000 - 7);
  EXPECT_EQ(
      workloads::latest_value(servers, workloads::Bank::account_key(2)).value[0],
      10'000 + 7);
  EXPECT_EQ(
      workloads::latest_value(servers, workloads::Bank::branch_key(0)).value[0],
      10'000 - 7);
  EXPECT_EQ(
      workloads::latest_value(servers, workloads::Bank::branch_key(3)).value[0],
      10'000 + 7);
  bank.check_invariants(servers);
}

TEST(Executor, AnyValidBlockSequenceMatchesFlatExecution) {
  // Property: for the bank transfer, every valid Block Sequence commits the
  // same final state the flat execution does.
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  const auto& profile = bank.profiles()[0];
  const std::vector<Record> params{Record{5}, Record{6}, Record{1}, Record{2},
                                   Record{13}};

  // Reference: flat run.
  std::vector<store::Record> expected;
  {
    Cluster cluster(fast_config());
    bank.seed(cluster.servers());
    auto stub = cluster.make_stub(0);
    Executor executor(stub, fast_executor(), 1);
    ExecStats stats;
    executor.run(Protocol::kFlat, with_program(*profile.program), params, stats);
    for (const auto& key :
         {workloads::Bank::account_key(5), workloads::Bank::account_key(6),
          workloads::Bank::branch_key(1), workloads::Bank::branch_key(2)})
      expected.push_back(workloads::latest_value(cluster.servers(), key).value);
  }

  Rng rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const auto seq = random_valid_sequence(profile.static_model, rng);
    ASSERT_TRUE(sequence_valid(seq, profile.static_model));
    Cluster cluster(fast_config());
    bank.seed(cluster.servers());
    auto stub = cluster.make_stub(0);
    Executor executor(stub, fast_executor(), 1);
    ExecStats stats;
    executor.run(Protocol::kManualCN,
                 with_blocks(*profile.program, profile.static_model, seq),
                 params, stats);
    EXPECT_EQ(stats.commits, 1u);
    std::size_t i = 0;
    for (const auto& key :
         {workloads::Bank::account_key(5), workloads::Bank::account_key(6),
          workloads::Bank::branch_key(1), workloads::Bank::branch_key(2)}) {
      EXPECT_EQ(workloads::latest_value(cluster.servers(), key).value,
                expected[i++])
          << "trial " << trial << " key " << store::to_string(key);
    }
  }
}

/// Program with a saboteur: block {B, C} where a local op between the two
/// reads commits a conflicting write through a second client, a controlled
/// number of times.
struct SabotageRig {
  Cluster cluster{fast_config()};
  std::unique_ptr<dtm::QuorumStub> saboteur_stub;
  std::shared_ptr<int> fires = std::make_shared<int>(0);
  TxProgram program;
  DependencyModel model;
  BlockSequence sequence;

  explicit SabotageRig(ObjectKey victim, int n_fires) {
    workloads::seed_all(cluster.servers(), kA, Record{100});
    workloads::seed_all(cluster.servers(), kB, Record{200});
    workloads::seed_all(cluster.servers(), kC, Record{300});
    saboteur_stub = std::make_unique<dtm::QuorumStub>(cluster.make_stub(9));
    *fires = n_fires;

    ProgramBuilder b("sabotaged", 0);
    const VarId a = b.remote_read(
        1, {}, [](const TxEnv&) { return kA; }, "read A");
    const VarId bb = b.remote_read(
        2, {a}, [](const TxEnv&) { return kB; }, "read B");
    auto* stub = saboteur_stub.get();
    auto counter = fires;
    b.local({bb}, {},
            [stub, counter, victim](TxEnv&) {
              if (*counter <= 0) return;
              --*counter;
              nesting::Transaction txn(*stub, nesting::next_tx_id());
              const Record v = txn.read(victim);
              txn.write(victim, Record{v[0] + 1});
              txn.commit();
            },
            "sabotage");
    b.remote_read(3, {bb}, [](const TxEnv&) { return kC; }, "read C");
    program = b.build();
    model = build_dependency_model(program, AttachPolicy::kLatestProducer);
    // Blocks: {U_A} then {U_B(+sabotage), U_C} — conflict detected by
    // read C's incremental validation while the second block executes.
    if (model.units.size() != 3u)
      throw std::logic_error("SabotageRig: unexpected unit count");
    sequence = {Block{{0}}, Block{{1, 2}}};
    if (!sequence_valid(sequence, model))
      throw std::logic_error("SabotageRig: invalid sequence");
  }
};

TEST(Executor, PartialRollbackRetriesOnlyTheBlock) {
  SabotageRig rig(kB, /*n_fires=*/1);  // victim first-read in current block
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kManualCN,
               with_blocks(rig.program, rig.model, rig.sequence), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.partial_aborts, 1u);
  EXPECT_EQ(stats.full_aborts, 0u);
  // Block 0 ran once (1 op); block 1 ran twice (3 ops each).
  EXPECT_EQ(stats.ops_executed, 1u + 3u + 3u);
  EXPECT_EQ(stats.blocks_executed, 1u + 2u);
}

TEST(Executor, MergedHistoryConflictEscalatesToFullAbort) {
  SabotageRig rig(kA, /*n_fires=*/1);  // victim read by the *previous* block
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kManualCN,
               with_blocks(rig.program, rig.model, rig.sequence), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.partial_aborts, 0u);
  EXPECT_EQ(stats.full_aborts, 1u);
  EXPECT_EQ(stats.ops_executed, (1u + 3u) * 2);
}

TEST(Executor, RepeatedPartialsEscalateAtTheCap) {
  SabotageRig rig(kB, /*n_fires=*/4);
  auto stub = rig.cluster.make_stub(0);
  auto config = fast_executor();
  config.max_partial_retries = 3;
  Executor executor(stub, config, 1);
  ExecStats stats;
  executor.run(Protocol::kManualCN,
               with_blocks(rig.program, rig.model, rig.sequence), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  // Fires 1-3 are absorbed as partial retries; fire 4 exceeds the cap and
  // escalates; the restart runs clean.
  EXPECT_EQ(stats.partial_aborts, 3u);
  EXPECT_EQ(stats.full_aborts, 1u);
}

TEST(Executor, FlatModeTreatsEveryConflictAsFullAbort) {
  SabotageRig rig(kB, /*n_fires=*/2);
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kFlat, with_program(rig.program), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.partial_aborts, 0u);
  EXPECT_EQ(stats.full_aborts, 2u);
}

TEST(Executor, CheckpointRestoreResumesAtInvalidRead) {
  // Victim B is read at op 1 (the second remote access); the conflict is
  // detected at read C.  The checkpoint executor must resume from B's
  // checkpoint, re-executing ops 1-3 but NOT op 0.
  SabotageRig rig(kB, /*n_fires=*/1);
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kCheckpoint, with_program(rig.program), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.full_aborts, 0u);
  EXPECT_EQ(stats.checkpoint_restores, 1u);
  // ops: A,B,sab,C(aborts) = 4, then resume B,sab,C = 3.
  EXPECT_EQ(stats.ops_executed, 4u + 3u);
  // A checkpoint per remote access: A,B,C + re-executed B,C.
  EXPECT_EQ(stats.checkpoints_taken, 5u);
}

TEST(Executor, CheckpointRestoreReachesBackToEarlierAccess) {
  // Victim A was read at op 0: restore must rewind to the very first
  // checkpoint and re-execute everything — still no full abort.
  SabotageRig rig(kA, /*n_fires=*/1);
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kCheckpoint, with_program(rig.program), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.full_aborts, 0u);
  EXPECT_EQ(stats.checkpoint_restores, 1u);
  EXPECT_EQ(stats.ops_executed, 4u + 4u);
}

TEST(Executor, CheckpointMatchesFlatFinalState) {
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  const auto& profile = bank.profiles()[0];
  const std::vector<Record> params{Record{3}, Record{4}, Record{1}, Record{2},
                                   Record{9}};
  std::vector<store::Record> expected;
  {
    Cluster cluster(fast_config());
    bank.seed(cluster.servers());
    auto stub = cluster.make_stub(0);
    Executor executor(stub, fast_executor(), 1);
    ExecStats stats;
    executor.run(Protocol::kFlat, with_program(*profile.program), params, stats);
    for (const auto& key :
         {workloads::Bank::account_key(3), workloads::Bank::account_key(4),
          workloads::Bank::branch_key(1), workloads::Bank::branch_key(2)})
      expected.push_back(workloads::latest_value(cluster.servers(), key).value);
  }
  Cluster cluster(fast_config());
  bank.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kCheckpoint, with_program(*profile.program), params,
               stats);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.checkpoints_taken, 4u);
  std::size_t i = 0;
  for (const auto& key :
       {workloads::Bank::account_key(3), workloads::Bank::account_key(4),
        workloads::Bank::branch_key(1), workloads::Bank::branch_key(2)})
    EXPECT_EQ(workloads::latest_value(cluster.servers(), key).value,
              expected[i++]);
}

TEST(Executor, CheckpointEscalatesAfterRetryCap) {
  SabotageRig rig(kB, /*n_fires=*/5);
  auto stub = rig.cluster.make_stub(0);
  auto config = fast_executor();
  config.max_partial_retries = 3;
  Executor executor(stub, config, 1);
  ExecStats stats;
  executor.run(Protocol::kCheckpoint, with_program(rig.program), {}, stats);
  EXPECT_EQ(stats.commits, 1u);
  // Fires 1-3 restore; fire 4 exceeds the cap -> full restart; fire 5
  // restores again on the second attempt.
  EXPECT_EQ(stats.full_aborts, 1u);
  EXPECT_EQ(stats.checkpoint_restores, 4u);
}

TEST(Executor, AdaptiveUsesControllerPlan) {
  Cluster cluster(fast_config());
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  bank.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);

  AdaptiveController controller(*bank.profiles()[0].program, {},
                                default_contention_model());
  const auto initial_plan = controller.plan();
  EXPECT_EQ(initial_plan->sequence.size(), 4u);  // static: one unit per block

  ExecStats stats;
  const std::vector<Record> params{Record{1}, Record{2}, Record{0}, Record{3},
                                   Record{5}};
  executor.run(Protocol::kAcn, with_controller(controller), params, stats);
  EXPECT_EQ(stats.commits, 1u);

  controller.adapt({{workloads::Bank::kBranch, 500},
                    {workloads::Bank::kAccount, 1}});
  const auto adapted_plan = controller.plan();
  EXPECT_NE(adapted_plan, initial_plan);
  EXPECT_EQ(adapted_plan->sequence.size(), 2u);  // Figure 3 arrangement
  EXPECT_EQ(controller.adaptations(), 1u);

  executor.run(Protocol::kAcn, with_controller(controller), params, stats);
  EXPECT_EQ(stats.commits, 2u);
  bank.check_invariants(cluster.servers());
}

TEST(Executor, ControllerSkipsNoopRecompositions) {
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  AdaptiveController controller(*bank.profiles()[0].program, {},
                                default_contention_model());
  const RawLevels hot_branches{{workloads::Bank::kBranch, 500},
                               {workloads::Bank::kAccount, 1}};
  controller.adapt(hot_branches);
  const auto plan = controller.plan();
  EXPECT_EQ(controller.adaptations(), 1u);
  EXPECT_EQ(controller.recompositions(), 1u);

  // Same workload snapshot: tick counts, but no new plan is published.
  controller.adapt(hot_branches);
  EXPECT_EQ(controller.adaptations(), 2u);
  EXPECT_EQ(controller.recompositions(), 1u);
  EXPECT_EQ(controller.plan(), plan);

  // Flipped workload: genuinely new composition.
  controller.adapt({{workloads::Bank::kBranch, 1},
                    {workloads::Bank::kAccount, 500}});
  EXPECT_EQ(controller.recompositions(), 2u);
  EXPECT_NE(controller.plan(), plan);
}

TEST(Executor, SameCompositionComparesLayoutNotPointers) {
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  AlgorithmModule algorithm(*bank.profiles()[0].program, {},
                            default_contention_model());
  const RawLevels levels{{workloads::Bank::kBranch, 100},
                         {workloads::Bank::kAccount, 3}};
  const Plan a = algorithm.recompute(levels);
  const Plan b = algorithm.recompute(levels);  // independent recompute
  EXPECT_TRUE(same_composition(a, b));
  const Plan c = algorithm.recompute({{workloads::Bank::kBranch, 3},
                                      {workloads::Bank::kAccount, 100}});
  EXPECT_FALSE(same_composition(a, c));
}

TEST(Executor, PartialAbortsLandInTheExpectedBlockPosition) {
  SabotageRig rig(kB, /*n_fires=*/2);
  auto stub = rig.cluster.make_stub(0);
  Executor executor(stub, fast_executor(), 1);
  ExecStats stats;
  executor.run(Protocol::kManualCN,
               with_blocks(rig.program, rig.model, rig.sequence), {}, stats);
  // The sabotaged block is position 1 of the two-block sequence.
  EXPECT_EQ(stats.partials_at_position[0], 0u);
  EXPECT_EQ(stats.partials_at_position[1], 2u);
}

TEST(Executor, TouchedClassesAreDeduplicated) {
  workloads::Bank bank({.n_branches = 4, .n_accounts = 8});
  AdaptiveController controller(*bank.profiles()[0].program, {},
                                default_contention_model());
  EXPECT_EQ(controller.touched_classes(),
            (std::vector<ir::ClassId>{workloads::Bank::kBranch,
                                      workloads::Bank::kAccount}));
}

TEST(ExecStats, MergeAggregates) {
  ExecStats a, b;
  a.commits = 1;
  a.partial_aborts = 2;
  b.commits = 3;
  b.full_aborts = 4;
  b.ops_executed = 5;
  a.merge(b);
  EXPECT_EQ(a.commits, 4u);
  EXPECT_EQ(a.partial_aborts, 2u);
  EXPECT_EQ(a.full_aborts, 4u);
  EXPECT_EQ(a.ops_executed, 5u);
}

}  // namespace
}  // namespace acn
