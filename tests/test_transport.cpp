// Real-TCP transport tests: loopback request/reply over TcpServer +
// TcpTransport (frame correlation, torn frames, corrupt frames poisoning
// the connection, deadlines surfacing as kDropped, reconnect after a peer
// restart, client-side chaos knobs), and the multi-process harness — a
// spawned cluster_main fleet driven through harness::Cluster with
// TransportMode::kTcp, including cross-shard transfers whose final state
// must match an identically-seeded simulated cluster.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/common/clock.hpp"
#include "src/dtm/abort.hpp"
#include "src/dtm/codec.hpp"
#include "src/harness/cluster.hpp"
#include "src/shard/coordinator.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard_map.hpp"
#include "src/transport/frame.hpp"
#include "src/transport/tcp_server.hpp"
#include "src/transport/tcp_transport.hpp"
#include "src/transport/wire.hpp"

namespace acn::transport {
namespace {

using namespace std::chrono_literals;
using store::ObjectKey;
using store::Record;

// ---- loopback fixture ---------------------------------------------------

/// A server whose data plane answers ReadRequest{tx} with a ReadResponse
/// carrying record {tx * 10, from} at version tx — enough structure to
/// verify that every response reached the caller that asked for it.
/// `slow_tx` (when nonzero) makes that one transaction sleep `delay`,
/// so deadline tests can stall a single call while the peer stays healthy.
std::unique_ptr<TcpServer> make_echo_server(
    std::chrono::milliseconds delay = 0ms, dtm::TxId slow_tx = 0) {
  TcpServerConfig config;
  auto on_data = [delay, slow_tx](std::int64_t from,
                                  std::span<const std::uint8_t> body)
      -> std::optional<std::vector<std::uint8_t>> {
    const dtm::Request req = dtm::decode_request(body);
    const auto& read = std::get<dtm::ReadRequest>(req.payload);
    if (delay.count() > 0 && (slow_tx == 0 || read.tx == slow_tx))
      std::this_thread::sleep_for(delay);
    dtm::ReadResponse rr;
    rr.code = dtm::ReadCode::kOk;
    rr.record.value = Record{static_cast<store::Field>(read.tx * 10),
                             static_cast<store::Field>(from)};
    rr.record.version = read.tx;
    dtm::Response res;
    res.payload = rr;
    return dtm::encode(res);
  };
  auto on_control = [](std::span<const std::uint8_t> body) {
    const ControlRequest req = decode_control(body);
    ControlOutcome out;
    out.reply_body = encode_control_reply(ControlReply{});
    if (req.op == ControlOp::kShutdown) out.action = ControlAction::kShutdown;
    return out;
  };
  return std::make_unique<TcpServer>(config, std::move(on_data),
                                     std::move(on_control));
}

dtm::Request read_request(dtm::TxId tx) {
  dtm::Request req;
  req.payload = dtm::ReadRequest{tx, ObjectKey{1, 5}, {}, {}};
  return req;
}

std::unique_ptr<TcpTransport> dial(int port,
                                   std::chrono::milliseconds timeout = 2000ms) {
  TcpTransportConfig config;
  config.call_timeout = timeout;
  return std::make_unique<TcpTransport>(
      std::map<net::NodeId, Endpoint>{{0, Endpoint{"127.0.0.1", port}}},
      config, /*seed=*/0x7c9);
}

TEST(TcpLoopback, CallRoundTrips) {
  auto server = make_echo_server();
  auto transport = dial(server->port());
  const auto result = transport->call(/*from=*/100, /*to=*/0, read_request(7));
  ASSERT_TRUE(result.ok());
  const auto& rr = std::get<dtm::ReadResponse>(result.response.payload);
  EXPECT_EQ(rr.record.version, 7u);
  EXPECT_EQ(rr.record.value.fields[0], 70);
  EXPECT_EQ(rr.record.value.fields[1], 100);  // sender id round-tripped
  EXPECT_GT(transport->counters().bytes_sent.load(), 0u);
  EXPECT_GT(transport->counters().bytes_recv.load(), 0u);
}

TEST(TcpLoopback, UnknownPeerIsNodeDown) {
  auto server = make_echo_server();
  auto transport = dial(server->port());
  EXPECT_EQ(transport->call(100, 5, read_request(1)).error,
            net::NetErrorCode::kNodeDown);
}

TEST(TcpLoopback, ConcurrentCallsCorrelateById) {
  // Callers on several threads, responses arriving out of order (the
  // handler sleeps a tx-dependent amount): every response must carry the
  // payload of ITS request — correlation by envelope id, not arrival order.
  auto server = make_echo_server();
  auto transport = dial(server->port(), 5000ms);
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const dtm::TxId tx = static_cast<dtm::TxId>(t * 1000 + i + 1);
        const auto result = transport->call(100 + t, 0, read_request(tx));
        if (!result.ok()) {
          ++failures;
          continue;
        }
        const auto& rr = std::get<dtm::ReadResponse>(result.response.payload);
        if (rr.record.version != tx ||
            rr.record.value.fields[0] != static_cast<store::Field>(tx * 10))
          ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpLoopback, MulticallFansOutAcrossPeers) {
  auto a = make_echo_server();
  auto b = make_echo_server();
  TcpTransportConfig config;
  TcpTransport transport({{0, {"127.0.0.1", a->port()}},
                          {1, {"127.0.0.1", b->port()}}},
                         config, 0x7c9);
  const auto results = transport.multicall(100, {0, 1}, read_request(3));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(std::get<dtm::ReadResponse>(result.response.payload)
                  .record.version,
              3u);
  }
}

TEST(TcpLoopback, NodeDownFailsFastAndRecovers) {
  auto server = make_echo_server();
  auto transport = dial(server->port());
  ASSERT_TRUE(transport->call(100, 0, read_request(1)).ok());
  transport->set_node_down(0, true);
  const Stopwatch watch;
  EXPECT_EQ(transport->call(100, 0, read_request(2)).error,
            net::NetErrorCode::kNodeDown);
  // Fail-fast: no socket round-trip, certainly no 2s deadline.
  EXPECT_LT(watch.elapsed_ns(), 500'000'000u);
  transport->set_node_down(0, false);
  EXPECT_TRUE(transport->call(100, 0, read_request(3)).ok());
}

TEST(TcpLoopback, PartitionRefusesCrossGroupCalls) {
  auto server = make_echo_server();
  auto transport = dial(server->port());
  ASSERT_TRUE(transport->call(100, 0, read_request(1)).ok());
  // Client 100 in one group, replica 0 in the other.
  transport->set_partition({{100}, {0}});
  EXPECT_TRUE(transport->partitioned());
  EXPECT_EQ(transport->call(100, 0, read_request(2)).error,
            net::NetErrorCode::kPartitioned);
  transport->clear_partition();
  EXPECT_FALSE(transport->partitioned());
  EXPECT_TRUE(transport->call(100, 0, read_request(3)).ok());
}

TEST(TcpLoopback, DropProbabilityOneDropsEveryCall) {
  auto server = make_echo_server();
  auto transport = dial(server->port());
  transport->set_drop_probability(1.0);
  EXPECT_EQ(transport->call(100, 0, read_request(1)).error,
            net::NetErrorCode::kDropped);
  transport->set_drop_probability(0.0);
  EXPECT_TRUE(transport->call(100, 0, read_request(2)).ok());
}

TEST(TcpLoopback, DeadlineExpiryIsDropped) {
  // tx 1 stalls 1.5s in the handler; the call deadline is 150ms, so the
  // caller sees kDropped — the same shape a sim timeout has, which is what
  // lets QuorumStub's retry ladder run unmodified over TCP.  tx 2 answers
  // promptly on the same connection: the late response for tx 1 must be
  // discarded, not mis-delivered.
  auto server = make_echo_server(1500ms, /*slow_tx=*/1);
  auto transport = dial(server->port(), 150ms);
  const Stopwatch watch;
  EXPECT_EQ(transport->call(100, 0, read_request(1)).error,
            net::NetErrorCode::kDropped);
  EXPECT_LT(watch.elapsed_ns(), 1'200'000'000u);
  const auto result = transport->call(100, 0, read_request(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<dtm::ReadResponse>(result.response.payload)
                .record.version,
            2u);
  // Let the stalled handler finish and its orphaned response arrive; the
  // transport must swallow it (no caller waits on that id any more).
  std::this_thread::sleep_for(1600ms);
  EXPECT_TRUE(transport->call(100, 0, read_request(3)).ok());
}

TEST(TcpLoopback, ReconnectsAfterPeerRestart) {
  auto server = make_echo_server();
  const int port = server->port();
  auto transport = dial(port, 300ms);
  ASSERT_TRUE(transport->call(100, 0, read_request(1)).ok());

  server.reset();  // peer process "dies"
  EXPECT_FALSE(transport->call(100, 0, read_request(2)).ok());

  // Peer comes back on the SAME port (SO_REUSEADDR); the transport must
  // re-dial — through its backoff — without a new instance.
  TcpServerConfig config;
  config.port = port;
  server = std::make_unique<TcpServer>(
      config,
      [](std::int64_t, std::span<const std::uint8_t> body)
          -> std::optional<std::vector<std::uint8_t>> {
        const auto req = dtm::decode_request(body);
        dtm::ReadResponse rr;
        rr.code = dtm::ReadCode::kOk;
        rr.record.version = std::get<dtm::ReadRequest>(req.payload).tx;
        dtm::Response res;
        res.payload = rr;
        return dtm::encode(res);
      },
      [](std::span<const std::uint8_t>) {
        return ControlOutcome{encode_control_reply(ControlReply{}),
                              ControlAction::kNone};
      });

  bool recovered = false;
  const Stopwatch watch;
  while (watch.elapsed_ns() < 10'000'000'000ull) {
    if (transport->call(100, 0, read_request(9)).ok()) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(transport->counters().reconnects.load(), 1u);
}

// ---- raw-socket tests: torn and corrupt frames --------------------------

int raw_dial(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Read until one full frame parses (or the peer closes / 5s passes);
/// returns the frame payload, or nullopt on close.
std::optional<std::vector<std::uint8_t>> read_frame(int fd) {
  FrameReader reader;
  std::uint8_t buf[512];
  const Stopwatch watch;
  while (watch.elapsed_ns() < 5'000'000'000ull) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return std::nullopt;
    if (!reader.feed(std::span(buf, static_cast<std::size_t>(n))))
      return std::nullopt;
    auto frames = reader.take();
    if (!frames.empty()) return std::move(frames.front());
  }
  return std::nullopt;
}

TEST(TcpRawSocket, TornFramesReassembleByteByByte) {
  auto server = make_echo_server();
  const int fd = raw_dial(server->port());

  std::vector<std::uint8_t> stream;
  append_frame(stream, encode_hello(Channel::kData, /*node=*/42));
  append_frame(stream,
               encode_request_payload(/*id=*/12345, /*from=*/42,
                                      read_request(6)));
  // One byte per write: the server's reader sees maximally torn frames —
  // partial length prefix, partial CRC, partial payload — and must
  // reassemble without ever acting on an incomplete frame.
  for (const std::uint8_t byte : stream)
    write_all(fd, std::span(&byte, 1));

  const auto payload = read_frame(fd);
  ASSERT_TRUE(payload.has_value());
  const Envelope env = read_envelope(*payload);
  EXPECT_EQ(env.kind, FrameKind::kResponse);
  EXPECT_EQ(env.id, 12345u);
  const dtm::Response res =
      dtm::decode_response(std::span(*payload).subspan(env.body_offset));
  EXPECT_EQ(std::get<dtm::ReadResponse>(res.payload).record.version, 6u);
  ::close(fd);
}

TEST(TcpRawSocket, CorruptFramePoisonsTheConnection) {
  auto server = make_echo_server();
  const int fd = raw_dial(server->port());

  std::vector<std::uint8_t> stream;
  append_frame(stream, encode_hello(Channel::kData, 42));
  const std::size_t request_start = stream.size();
  append_frame(stream, encode_request_payload(1, 42, read_request(6)));
  stream[request_start + 8] ^= 0x01;  // corrupt the request payload
  write_all(fd, stream);

  // The server must drop the connection (poisoned stream), not answer.
  EXPECT_FALSE(read_frame(fd).has_value());
  EXPECT_GE(server->counters().frames_corrupt.load(), 1u);
  ::close(fd);

  // The listener itself is unharmed: a clean connection still works.
  const int fd2 = raw_dial(server->port());
  std::vector<std::uint8_t> clean;
  append_frame(clean, encode_hello(Channel::kData, 43));
  append_frame(clean, encode_request_payload(2, 43, read_request(8)));
  write_all(fd2, clean);
  EXPECT_TRUE(read_frame(fd2).has_value());
  ::close(fd2);
}

// ---- multi-process cluster (spawned cluster_main fleet) -----------------

shard::ShardMap range_map(std::uint32_t n_shards) {
  shard::ShardMapConfig config;
  config.n_shards = n_shards;
  config.partitioning = shard::Partitioning::kRange;
  config.range_block = 100;
  return shard::ShardMap(config);
}

KeyFootprint write_footprint(std::vector<ObjectKey> keys) {
  std::sort(keys.begin(), keys.end());
  KeyFootprint footprint;
  for (const auto& key : keys) footprint.push_back({key, true});
  return footprint;
}

harness::ClusterConfig fleet_config(std::size_t per_group, std::size_t groups,
                                    const char* log_dir) {
  harness::ClusterConfig config;
  config.n_servers = per_group;
  config.n_groups = groups;
  config.base_latency = std::chrono::nanoseconds{0};
  config.transport_mode = harness::TransportMode::kTcp;
  config.tcp.log_dir = log_dir;
  config.tcp.call_timeout = std::chrono::milliseconds(2000);
  config.stub.max_quorum_retries = 16;  // re-select around crashed replicas
  return config;
}

/// Move one unit src -> dst through the coordinator, retrying aborts.
void transfer(shard::CrossShardCoordinator& coordinator, const ObjectKey& src,
              const ObjectKey& dst) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    try {
      shard::ShardTx tx = coordinator.begin(write_footprint({src, dst}));
      const Record s = tx.read(src);
      const Record d = tx.read(dst);
      tx.write(src, Record{s.fields[0] - 1});
      tx.write(dst, Record{d.fields[0] + 1});
      tx.commit();
      return;
    } catch (const dtm::TxAbort&) {
    }
  }
  FAIL() << "transfer never committed";
}

/// The same deterministic seed + transfer script against either transport.
void run_transfer_script(harness::Cluster& cluster, const shard::ShardMap& map) {
  for (std::uint64_t id = 0; id < 20; ++id) {
    seed_sharded(cluster, map, ObjectKey{1, id}, Record{100});
    seed_sharded(cluster, map, ObjectKey{1, 100 + id}, Record{100});
  }
  cluster.flush_seeds();
  shard::ShardRouter router(map);
  shard::CrossShardCoordinator coordinator(cluster, router, /*ordinal=*/0);
  for (std::uint64_t i = 0; i < 30; ++i) {
    // Mix of same-shard and cross-shard transfers, fixed pattern.
    const ObjectKey src{1, i % 20};
    const ObjectKey dst{1, i % 3 == 0 ? (i * 7) % 20 : 100 + (i * 7) % 20};
    if (src == dst) continue;
    transfer(coordinator, src, dst);
  }
  EXPECT_GT(coordinator.stats().cross_shard_commits.load(), 0u);
  EXPECT_EQ(coordinator.stats().atomicity_breaches.load(), 0u);
}

/// Every key's latest committed value across the cluster (max version wins).
std::map<ObjectKey, store::Field> committed_state(harness::Cluster& cluster) {
  std::map<ObjectKey, store::VersionedRecord> latest;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    for (const auto& [key, record] : cluster.store_snapshot(i)) {
      auto [it, inserted] = latest.try_emplace(key, record);
      if (!inserted && record.version > it->second.version)
        it->second = record;
    }
  std::map<ObjectKey, store::Field> values;
  for (const auto& [key, record] : latest)
    values[key] = record.value.fields.empty() ? 0 : record.value.fields[0];
  return values;
}

TEST(ClusterTcp, TwoProcessTransfersMatchSim) {
  const shard::ShardMap map = range_map(2);
  // One replica per group keeps this a genuine two-OS-process cluster.
  harness::ClusterConfig tcp_config =
      fleet_config(/*per_group=*/1, /*groups=*/2, "transport-test-logs");
  harness::Cluster tcp_cluster(tcp_config);
  ASSERT_TRUE(tcp_cluster.remote());
  ASSERT_NE(tcp_cluster.tcp_transport(), nullptr);
  run_transfer_script(tcp_cluster, map);

  harness::ClusterConfig sim_config = tcp_config;
  sim_config.transport_mode = harness::TransportMode::kSim;
  harness::Cluster sim_cluster(sim_config);
  run_transfer_script(sim_cluster, map);

  // Same seeds, same transfer script, no faults: the multi-process fleet
  // must land on exactly the state the deterministic simulation computes.
  const auto tcp_state = committed_state(tcp_cluster);
  const auto sim_state = committed_state(sim_cluster);
  EXPECT_EQ(tcp_state, sim_state);
  ASSERT_FALSE(tcp_state.empty());
  store::Field total = 0;
  for (const auto& [key, value] : tcp_state) total += value;
  EXPECT_EQ(total, static_cast<store::Field>(tcp_state.size()) * 100);

  // Real socket traffic flowed and the fleet shuts down cleanly.
  EXPECT_GT(tcp_cluster.transport().counters().bytes_sent.load(), 0u);
  EXPECT_TRUE(tcp_cluster.shutdown_fleet());
}

TEST(ClusterTcp, ControlPlaneProbesAndMirrorsReplicas) {
  harness::Cluster cluster(
      fleet_config(/*per_group=*/1, /*groups=*/1, "transport-test-logs"));
  cluster.seed_object(ObjectKey{1, 1}, Record{11});
  cluster.seed_object(ObjectKey{1, 2}, Record{22});
  cluster.flush_seeds();

  // Control plane answers a ping and a dump for a process we never wrote
  // to through the data plane.
  ASSERT_NE(cluster.tcp_transport(), nullptr);
  const ControlReply pong =
      cluster.tcp_transport()->control(0, ControlRequest{});
  EXPECT_TRUE(pong.ok);
  const auto snapshot = cluster.store_snapshot(0);
  EXPECT_EQ(snapshot.size(), 2u);

  // mirror() reconstructs the remote state as in-process servers — the
  // surface workload invariant checks run against.
  const harness::StateMirror mirror = cluster.mirror();
  ASSERT_EQ(mirror.servers.size(), 1u);
  EXPECT_EQ(mirror.servers[0]->store().read(ObjectKey{1, 1}).record.value,
            Record{11});
  EXPECT_TRUE(cluster.shutdown_fleet());
}

TEST(ClusterTcp, RemoteCrashRestartCatchesUpFromPeers) {
  // Four replica processes, one group (root + 3 children: the write quorum
  // — root plus 2 of 3 children — survives one leaf crash; a 3-node tree's
  // write quorum is all three nodes, so nothing could commit).  Crash a
  // leaf, keep committing on the surviving quorum, then rejoin it — the
  // restart path must ship the missed writes over the control plane and
  // lift the suspension.
  const shard::ShardMap map = range_map(1);
  harness::Cluster cluster(
      fleet_config(/*per_group=*/4, /*groups=*/1, "transport-test-logs"));
  for (std::uint64_t id = 0; id < 8; ++id)
    seed_sharded(cluster, map, ObjectKey{1, id}, Record{100});
  cluster.flush_seeds();

  shard::ShardRouter router(map);
  shard::CrossShardCoordinator coordinator(cluster, router, 0);
  transfer(coordinator, ObjectKey{1, 0}, ObjectKey{1, 1});

  cluster.crash_node(3);
  // Committed while node 3 is down: it must miss these versions.
  transfer(coordinator, ObjectKey{1, 2}, ObjectKey{1, 3});
  transfer(coordinator, ObjectKey{1, 4}, ObjectKey{1, 5});

  const std::size_t caught_up =
      cluster.restart_node(3, harness::CatchUpScope::kAllReplicas);
  EXPECT_GT(caught_up, 0u);

  // Node 3's store now matches the max-version state the survivors hold.
  // (A single replica's snapshot can legitimately trail on keys its
  // quorums skipped, so compare against the cluster-wide latest.)
  std::map<ObjectKey, store::VersionedRecord> latest;
  for (std::size_t i = 0; i < 3; ++i)
    for (const auto& [key, record] : cluster.store_snapshot(i)) {
      auto [it, inserted] = latest.try_emplace(key, record);
      if (!inserted && record.version > it->second.version)
        it->second = record;
    }
  std::map<ObjectKey, store::VersionedRecord> rejoined;
  for (const auto& [key, record] : cluster.store_snapshot(3))
    rejoined[key] = record;
  for (const auto& [key, record] : latest) {
    ASSERT_TRUE(rejoined.count(key)) << to_string(key);
    EXPECT_EQ(rejoined[key].value, record.value) << to_string(key);
    EXPECT_EQ(rejoined[key].version, record.version) << to_string(key);
  }
  // And it serves traffic again.
  transfer(coordinator, ObjectKey{1, 6}, ObjectKey{1, 7});
  EXPECT_TRUE(cluster.shutdown_fleet());
}

}  // namespace
}  // namespace acn::transport
