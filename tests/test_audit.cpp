// Program-auditor tests: detection of undeclared reads/writes, tolerance
// of param reads, and a clean audit over EVERY shipped workload program —
// the guarantee that the dependency declarations driving the Static Module
// are complete.
#include <gtest/gtest.h>

#include "src/acn/audit.hpp"
#include "src/harness/cluster.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"
#include "src/workloads/vacation.hpp"

namespace acn {
namespace {

using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::ObjectKey;

harness::ClusterConfig fast_config() {
  harness::ClusterConfig config;
  config.n_servers = 4;
  config.base_latency = std::chrono::nanoseconds{0};
  return config;
}

const ObjectKey kA{1, 0};
const ObjectKey kB{2, 0};

TEST(Audit, CleanProgramPasses) {
  harness::Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{10});
  auto stub = cluster.make_stub(0);

  ProgramBuilder b("clean", 1);
  const VarId a = b.remote_read(
      1, {b.param(0)}, [](const TxEnv&) { return kA; }, "read A");
  b.local({a, b.param(0)}, {a},
          [a](TxEnv& e) {
            Record r = e.get(a);
            r[0] += 1;
            e.write_object(a, std::move(r));
          },
          "bump");
  const auto program = b.build();
  EXPECT_TRUE(audit_program(program, {Record{1}}, stub).empty());
  EXPECT_NO_THROW(expect_clean_audit(program, {Record{1}}, stub));
}

TEST(Audit, DetectsUndeclaredRead) {
  harness::Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{10});
  auto stub = cluster.make_stub(0);

  ProgramBuilder b("sneaky-read", 1);
  const VarId a = b.remote_read(
      1, {}, [](const TxEnv&) { return kA; }, "read A");
  const VarId hidden = b.fresh_var();
  b.local({}, {hidden},
          [hidden](TxEnv& e) { e.seti(hidden, 5); }, "init hidden");
  const VarId out = b.fresh_var();
  b.local({a}, {out},  // does NOT declare `hidden`
          [a, hidden, out](TxEnv& e) {
            e.seti(out, e.geti(a) + e.geti(hidden));
          },
          "sum");
  const auto program = b.build();

  const auto violations = audit_program(program, {Record{1}}, stub);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].var, hidden);
  EXPECT_EQ(violations[0].kind, AuditViolation::Kind::kUndeclaredRead);
  EXPECT_NE(violations[0].describe().find("sum"), std::string::npos);
  EXPECT_THROW(expect_clean_audit(program, {Record{1}}, stub),
               std::logic_error);
}

TEST(Audit, DetectsUndeclaredWrite) {
  harness::Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{10});
  auto stub = cluster.make_stub(0);

  ProgramBuilder b("sneaky-write", 0);
  const VarId a = b.remote_read(
      1, {}, [](const TxEnv&) { return kA; }, "read A");
  const VarId side = b.fresh_var();
  b.local({a}, {},  // writes `side` without declaring it
          [side](TxEnv& e) { e.seti(side, 1); }, "side effect");
  const auto program = b.build();

  const auto violations = audit_program(program, {}, stub);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].var, side);
  EXPECT_EQ(violations[0].kind, AuditViolation::Kind::kUndeclaredWrite);
}

TEST(Audit, DetectsUndeclaredObjectWriteback) {
  harness::Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{10});
  workloads::seed_all(cluster.servers(), kB, Record{20});
  auto stub = cluster.make_stub(0);

  ProgramBuilder b("sneaky-writeback", 0);
  const VarId a = b.remote_read(
      1, {}, [](const TxEnv&) { return kA; }, "read A");
  const VarId bb = b.remote_read(
      2, {}, [](const TxEnv&) { return kB; }, "read B");
  b.local({a}, {a},  // secretly also writes back B
          [a, bb](TxEnv& e) {
            e.write_object(a, Record{1});
            e.write_object(bb, Record{2});
          },
          "double write");
  const auto program = b.build();

  const auto violations = audit_program(program, {}, stub);
  ASSERT_GE(violations.size(), 1u);
  bool found = false;
  for (const auto& v : violations)
    if (v.var == bb && v.kind == AuditViolation::Kind::kUndeclaredWrite)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Audit, ParamReadsNeedNoDeclaration) {
  harness::Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{10});
  auto stub = cluster.make_stub(0);

  ProgramBuilder b("param-read", 2);
  const VarId a = b.remote_read(
      1, {}, [](const TxEnv&) { return kA; }, "read A");
  const VarId out = b.fresh_var();
  b.local({a}, {out},  // reads param 1 without declaring: fine
          [a, out](TxEnv& e) { e.seti(out, e.geti(a) + e.geti(1)); }, "sum");
  const auto program = b.build();
  EXPECT_TRUE(audit_program(program, {Record{1}, Record{2}}, stub).empty());
}

TEST(Audit, KeyFnReadingOutsideKeyDepsIsFlagged) {
  harness::Cluster cluster(fast_config());
  workloads::seed_all(cluster.servers(), kA, Record{0});
  workloads::seed_all(cluster.servers(), kB, Record{0});
  auto stub = cluster.make_stub(0);

  ProgramBuilder b("sneaky-key", 1);
  const VarId a = b.remote_read(
      1, {}, [](const TxEnv&) { return kA; }, "read A");
  // key_fn consults `a` but declares no key_deps.
  b.remote_read(2, {},
                [a](const TxEnv& e) {
                  return ObjectKey{2, static_cast<std::uint64_t>(
                                          e.geti(a) >= 0 ? 0 : 0)};
                },
                "read B[A]");
  const auto program = b.build();
  const auto violations = audit_program(program, {Record{1}}, stub);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].var, a);
}

// ---- every shipped workload program audits clean --------------------------

void audit_workload(workloads::Workload& workload) {
  harness::Cluster cluster(fast_config());
  workload.seed(cluster.servers());
  auto stub = cluster.make_stub(0);
  Rng rng(7);
  for (const auto& profile : workload.profiles()) {
    for (int phase = 0; phase < 3; ++phase) {
      const auto params = profile.make_params(rng, phase);
      EXPECT_NO_THROW(expect_clean_audit(*profile.program, params, stub))
          << profile.program->name << " phase " << phase;
    }
  }
}

TEST(Audit, BankProgramsAreClean) {
  workloads::Bank bank;
  audit_workload(bank);
}

TEST(Audit, VacationProgramsAreClean) {
  workloads::VacationConfig config;
  config.cancel_fraction = 0.2;
  workloads::Vacation vacation(config);
  audit_workload(vacation);
}

TEST(Audit, TpccProgramsAreClean) {
  workloads::TpccConfig config;
  config.w_neworder = 0.3;
  config.w_payment = 0.2;
  config.w_delivery = 0.2;
  config.w_orderstatus = 0.15;
  config.w_stocklevel = 0.15;
  config.min_order_lines = 5;
  config.max_order_lines = 15;
  workloads::Tpcc tpcc(config);
  audit_workload(tpcc);
}

}  // namespace
}  // namespace acn
