// Soak test: all four protocols under sustained concurrent contention with
// phase changes, node failure/recovery, history recording and full
// invariant + serializability verification.  Runs a few seconds total —
// the heavy-duty confidence check of the suite.
//
// Set ACN_SOAK_MS to lengthen the per-protocol run (default 400 ms).
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "src/harness/driver.hpp"
#include "src/nesting/history.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"
#include "src/workloads/vacation.hpp"

namespace acn::harness {
namespace {

std::chrono::milliseconds soak_interval() {
  if (const char* env = std::getenv("ACN_SOAK_MS"))
    return std::chrono::milliseconds{std::strtol(env, nullptr, 10)};
  return std::chrono::milliseconds{100};
}

ClusterConfig soak_cluster() {
  ClusterConfig config;
  config.n_servers = 10;
  config.base_latency = std::chrono::microseconds{2};
  config.stub.retry.base = std::chrono::microseconds{5};
  return config;
}

DriverConfig soak_driver() {
  DriverConfig config;
  config.n_clients = 6;
  config.intervals = 4;
  config.interval = soak_interval();
  config.executor.backoff_base = std::chrono::microseconds{5};
  config.phase_changes = {{1, 1}, {3, 0}};
  return config;
}

class SoakAllProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(SoakAllProtocols, BankSurvivesWithSerializableHistory) {
  Cluster cluster(soak_cluster());
  workloads::Bank bank({.n_branches = 8, .n_accounts = 64});
  bank.seed(cluster.servers());

  nesting::HistoryLog history;
  auto config = soak_driver();
  config.executor.history = &history;

  // Mid-run chaos: a leaf goes down, then comes back.
  std::thread chaos([&] {
    std::this_thread::sleep_for(config.interval);
    cluster.network().set_node_down(9, true);
    std::this_thread::sleep_for(config.interval);
    cluster.network().set_node_down(9, false);
  });

  const auto result = run(cluster, bank, GetParam(), config);
  chaos.join();

  EXPECT_GT(result.stats.commits, 0u) << protocol_name(GetParam());
  EXPECT_EQ(history.size(), result.stats.commits);
  const auto report = nesting::check_serializable(history.snapshot());
  EXPECT_TRUE(report.ok) << report.violation;
  // run() already verified the bank invariant.
}

TEST_P(SoakAllProtocols, TpccMixSurvives) {
  Cluster cluster(soak_cluster());
  workloads::TpccConfig tpcc_config;
  tpcc_config.n_warehouses = 2;
  tpcc_config.districts_per_warehouse = 4;
  tpcc_config.customers_per_district = 16;
  tpcc_config.n_items = 48;
  tpcc_config.order_ring = 16;
  tpcc_config.w_neworder = 0.4;
  tpcc_config.w_payment = 0.3;
  tpcc_config.w_delivery = 0.1;
  tpcc_config.w_orderstatus = 0.1;
  tpcc_config.w_stocklevel = 0.1;
  workloads::Tpcc tpcc(tpcc_config);
  tpcc.seed(cluster.servers());
  const auto result = run(cluster, tpcc, GetParam(), soak_driver());
  EXPECT_GT(result.stats.commits, 0u) << protocol_name(GetParam());
}

TEST_P(SoakAllProtocols, VacationWithCancelsSurvives) {
  Cluster cluster(soak_cluster());
  workloads::VacationConfig vacation_config;
  vacation_config.n_items = 24;
  vacation_config.n_customers = 48;
  vacation_config.cancel_fraction = 0.25;
  workloads::Vacation vacation(vacation_config);
  vacation.seed(cluster.servers());
  auto config = soak_driver();
  config.think_time = std::chrono::microseconds{20};
  const auto result = run(cluster, vacation, GetParam(), config);
  EXPECT_GT(result.stats.commits, 0u) << protocol_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Protocols, SoakAllProtocols,
                         ::testing::Values(Protocol::kFlat, Protocol::kManualCN,
                                           Protocol::kAcn,
                                           Protocol::kCheckpoint),
                         [](const auto& info) {
                           std::string name = protocol_name(info.param);
                           for (auto& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

}  // namespace
}  // namespace acn::harness
