// Closed-nesting (QR-CN) tests: frame semantics, read-your-writes across
// frames, merge-on-commit, partial vs full abort classification, and a
// concurrent serializability check via the bank invariant.
#include <gtest/gtest.h>

#include <thread>

#include "src/harness/cluster.hpp"
#include "src/nesting/transaction.hpp"
#include "src/workloads/workload.hpp"

namespace acn::nesting {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using store::ObjectKey;
using store::Record;

ClusterConfig fast_config(std::size_t n = 7) {
  ClusterConfig config;
  config.n_servers = n;
  config.base_latency = std::chrono::nanoseconds{0};
  config.stub.retry.max_retries = 3;
  config.stub.retry.base = std::chrono::nanoseconds{1000};
  return config;
}

const ObjectKey kA{1, 1};
const ObjectKey kB{1, 2};
const ObjectKey kC{2, 1};

class NestingTest : public ::testing::Test {
 protected:
  NestingTest() : cluster_(fast_config()) {
    workloads::seed_all(cluster_.servers(), kA, Record{10});
    workloads::seed_all(cluster_.servers(), kB, Record{20});
    workloads::seed_all(cluster_.servers(), kC, Record{30});
  }
  Cluster cluster_;
};

TEST_F(NestingTest, ReadCachesAndCountsStats) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  EXPECT_EQ(txn.read(kA), Record{10});
  EXPECT_EQ(txn.read(kA), Record{10});
  EXPECT_EQ(txn.stats().remote_reads, 1u);
  EXPECT_EQ(txn.stats().cached_reads, 1u);
}

TEST_F(NestingTest, WriteRequiresPriorRead) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  EXPECT_THROW(txn.write(kA, Record{1}), std::logic_error);
  txn.read(kA);
  EXPECT_NO_THROW(txn.write(kA, Record{1}));
}

TEST_F(NestingTest, ReadYourOwnWrites) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kA);
  txn.write(kA, Record{99});
  EXPECT_EQ(txn.read(kA), Record{99});
}

TEST_F(NestingTest, NestedFrameSeesParentState) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kA);
  txn.write(kA, Record{42});
  txn.begin_nested();
  EXPECT_EQ(txn.read(kA), Record{42});  // parent write visible, no RPC
  EXPECT_EQ(txn.stats().remote_reads, 1u);
  txn.commit_nested();
}

TEST_F(NestingTest, AbortNestedDiscardsOnlyTopFrame) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kA);
  txn.write(kA, Record{42});
  txn.begin_nested();
  txn.read(kB);
  txn.write(kB, Record{77});
  txn.abort_nested();
  EXPECT_EQ(txn.depth(), 1u);
  EXPECT_FALSE(txn.has_read(kB));
  EXPECT_FALSE(txn.has_written(kB));
  EXPECT_EQ(txn.read(kA), Record{42});  // parent state intact
}

TEST_F(NestingTest, CommitNestedMergesIntoParent) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.begin_nested();
  txn.read(kB);
  txn.write(kB, Record{77});
  txn.commit_nested();
  EXPECT_TRUE(txn.has_read(kB));
  EXPECT_TRUE(txn.has_written(kB));
  EXPECT_EQ(txn.read(kB), Record{77});
  txn.commit();
  // Committed state is visible to a fresh transaction.
  Transaction check(stub, next_tx_id());
  EXPECT_EQ(check.read(kB), Record{77});
}

TEST_F(NestingTest, OnlyOneNestingLevel) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.begin_nested();
  EXPECT_THROW(txn.begin_nested(), std::logic_error);
  txn.abort_nested();
  EXPECT_THROW(txn.abort_nested(), std::logic_error);
  EXPECT_THROW(txn.commit_nested(), std::logic_error);
}

TEST_F(NestingTest, CommitWithOpenSubTransactionIsAnError) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.begin_nested();
  EXPECT_THROW(txn.commit(), std::logic_error);
}

TEST_F(NestingTest, ClassifyPartialWhenInvalidObjectIsFrameLocal) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kA);  // parent history
  txn.begin_nested();
  txn.read(kB);  // first read inside the sub-transaction
  const dtm::TxAbort frame_local(dtm::AbortKind::kValidation, {kB});
  EXPECT_EQ(txn.classify(frame_local), AbortScope::kPartial);
  // An object never seen before also re-executes within the sub-transaction.
  const dtm::TxAbort unseen(dtm::AbortKind::kBusy, {kC});
  EXPECT_EQ(txn.classify(unseen), AbortScope::kPartial);
}

TEST_F(NestingTest, ClassifyFullWhenInvalidObjectIsMergedHistory) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kA);
  txn.begin_nested();
  txn.read(kB);
  const dtm::TxAbort parent_object(dtm::AbortKind::kValidation, {kA});
  EXPECT_EQ(txn.classify(parent_object), AbortScope::kFull);
  const dtm::TxAbort mixed(dtm::AbortKind::kValidation, {kA, kB});
  EXPECT_EQ(txn.classify(mixed), AbortScope::kFull);
}

TEST_F(NestingTest, ClassifyFullWithoutActiveSubTransaction) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kB);
  const dtm::TxAbort abort(dtm::AbortKind::kValidation, {kB});
  EXPECT_EQ(txn.classify(abort), AbortScope::kFull);
}

TEST_F(NestingTest, PartialRollbackPathEndToEnd) {
  // T1 reads A (parent), opens a sub-txn, reads B; T2 invalidates B; T1's
  // next read aborts; T1 retries only the sub-transaction and commits.
  auto stub1 = cluster_.make_stub(0);
  auto stub2 = cluster_.make_stub(1);

  Transaction t1(stub1, next_tx_id());
  t1.read(kA);
  t1.begin_nested();
  t1.read(kB);

  {
    Transaction t2(stub2, next_tx_id());
    const Record b = t2.read(kB);
    t2.write(kB, Record{b[0] + 1});
    t2.commit();
  }

  try {
    t1.read(kC);  // incremental validation now sees stale B
    FAIL() << "expected TxAbort";
  } catch (const dtm::TxAbort& abort) {
    EXPECT_EQ(t1.classify(abort), AbortScope::kPartial);
    t1.abort_nested();
  }

  t1.begin_nested();
  EXPECT_EQ(t1.read(kB), Record{21});  // fresh copy
  t1.read(kC);
  t1.commit_nested();
  EXPECT_NO_THROW(t1.commit());
}

TEST_F(NestingTest, ReadOnlyCommitValidates) {
  auto stub1 = cluster_.make_stub(0);
  auto stub2 = cluster_.make_stub(1);
  Transaction t1(stub1, next_tx_id());
  t1.read(kA);
  {
    Transaction t2(stub2, next_tx_id());
    const Record a = t2.read(kA);
    t2.write(kA, Record{a[0] + 1});
    t2.commit();
  }
  EXPECT_THROW(t1.commit(), dtm::TxAbort);
}

TEST_F(NestingTest, InsertThenReadBack) {
  auto stub = cluster_.make_stub(0);
  const ObjectKey fresh{9, 1234};
  Transaction txn(stub, next_tx_id());
  txn.insert(fresh, Record{5, 6});
  EXPECT_EQ(txn.read(fresh), (Record{5, 6}));
  txn.commit();
  Transaction check(stub, next_tx_id());
  EXPECT_EQ(check.read(fresh), (Record{5, 6}));
}

TEST_F(NestingTest, ResetClearsEverything) {
  auto stub = cluster_.make_stub(0);
  Transaction txn(stub, next_tx_id());
  txn.read(kA);
  txn.write(kA, Record{1});
  txn.reset(next_tx_id());
  EXPECT_EQ(txn.read_set_size(), 0u);
  EXPECT_EQ(txn.write_set_size(), 0u);
  EXPECT_EQ(txn.depth(), 1u);
}

TEST_F(NestingTest, ConcurrentTransfersPreserveTotalBalance) {
  // 4 threads x 50 committed transfers over 4 objects; the sum is invariant
  // iff the protocol is (1-copy) serializable for this workload.
  const std::vector<ObjectKey> keys{{1, 1}, {1, 2}, {2, 1}, {5, 9}};
  workloads::seed_all(cluster_.servers(), {5, 9}, Record{40});

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto stub = cluster_.make_stub(t);
      Rng rng(100 + t);
      int committed = 0;
      while (committed < 50) {
        Transaction txn(stub, next_tx_id());
        try {
          const auto i = rng.uniform(0, keys.size() - 1);
          auto j = rng.uniform(0, keys.size() - 1);
          if (j == i) j = (j + 1) % keys.size();
          const Record a = txn.read(keys[i]);
          const Record b = txn.read(keys[j]);
          txn.write(keys[i], Record{a[0] - 1});
          txn.write(keys[j], Record{b[0] + 1});
          txn.commit();
          ++committed;
        } catch (const dtm::TxAbort&) {
          // retry with a fresh transaction
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  store::Field total = 0;
  for (const auto& key : keys)
    total += workloads::latest_value(cluster_.servers(), key).value[0];
  EXPECT_EQ(total, 10 + 20 + 30 + 40);
}

TEST(TxIds, MonotoneAndUnique) {
  const auto a = next_tx_id();
  const auto b = next_tx_id();
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace acn::nesting
