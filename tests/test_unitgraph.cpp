// Static Module tests — including the paper's own worked examples:
//   * Section I, T_p1:  {Read(A), Read(B), C=A+B, D=C+phi}
//   * Section I, T_p2:  {Read(A), Read(B), C=A+B, Read(D), E=D+C}
//   * Section V-C1, T:  {Read A..D, var=A+B, var=var/2, Read E, var2=E+B}
// plus attachment-policy behaviour, dependency-edge construction, deferred
// ops, and cycle-aware contended attachment.
#include <gtest/gtest.h>

#include "src/acn/unitgraph.hpp"

namespace acn {
namespace {

using ir::ProgramBuilder;
using ir::TxEnv;
using ir::TxProgram;
using ir::VarId;
using store::ObjectKey;

/// Shorthand: remote read of class `cls` (key irrelevant for analysis).
VarId rd(ProgramBuilder& b, ir::ClassId cls, const char* label) {
  return b.remote_read(cls, {},
                       [cls](const TxEnv&) { return ObjectKey{cls, 0}; },
                       label);
}

/// Shorthand: local op consuming `reads`, producing `writes`.
void lop(ProgramBuilder& b, std::vector<VarId> reads, std::vector<VarId> writes,
         const char* label) {
  b.local(std::move(reads), std::move(writes), [](TxEnv&) {}, label);
}

std::size_t unit_of(const DependencyModel& m, std::size_t op) {
  return m.unit_of_op.at(op);
}

TEST(OpDependencies, RawWarWaw) {
  ProgramBuilder b("deps", 1);
  const VarId a = rd(b, 1, "A");      // op0 writes a
  lop(b, {a}, {}, "reader");          // op1 RAW on op0
  lop(b, {}, {a}, "overwriter");      // op2 WAR on op1, WAW on op0
  lop(b, {a}, {}, "reader2");         // op3 RAW on op2
  const TxProgram p = b.build();

  const auto raw = op_dataflow(p);
  EXPECT_EQ(raw[1], std::vector<std::size_t>{0});
  EXPECT_TRUE(raw[2].empty());  // pure overwrite: no data flow in
  EXPECT_EQ(raw[3], std::vector<std::size_t>{2});

  const auto all = op_dependencies(p);
  EXPECT_EQ(all[1], std::vector<std::size_t>{0});
  EXPECT_EQ(all[2], (std::vector<std::size_t>{0, 1}));  // WAW + WAR
  EXPECT_EQ(all[3], std::vector<std::size_t>{2});
}

TEST(UnitGraph, PaperTp1LocalChainStaysTogether) {
  // T_p1 = {Read(A), Read(B), C=A+B, D=C+phi}: D must share B's UnitBlock
  // with C — splitting them would forfeit closed nesting (Section I).
  ProgramBuilder b("tp1", 0);
  const VarId a = rd(b, 1, "Read(A)");
  const VarId bb = rd(b, 2, "Read(B)");
  const VarId c = b.fresh_var();
  lop(b, {a, bb}, {c}, "C=A+B");  // op2
  const VarId d = b.fresh_var();
  lop(b, {c}, {d}, "D=C+phi");  // op3
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);

  ASSERT_EQ(model.units.size(), 2u);
  EXPECT_EQ(unit_of(model, 2), unit_of(model, 1));  // C with Read(B)
  EXPECT_EQ(unit_of(model, 3), unit_of(model, 1));  // D follows C
  // Read(A)'s unit must precede Read(B)'s (C consumes A).
  EXPECT_TRUE(model.depends(unit_of(model, 0), unit_of(model, 1)));
  EXPECT_EQ(model.forced_merges, 0u);
}

TEST(UnitGraph, PaperTp2SeparatesIndependentTail) {
  // T_p2 = {Read(A), Read(B), C=A+B, Read(D), E=D+C}: E goes with Read(D),
  // so an invalidation of D re-executes only {Read(D), E} (Section I).
  ProgramBuilder b("tp2", 0);
  const VarId a = rd(b, 1, "Read(A)");
  const VarId bb = rd(b, 2, "Read(B)");
  const VarId c = b.fresh_var();
  lop(b, {a, bb}, {c}, "C=A+B");  // op2
  const VarId d = rd(b, 3, "Read(D)");  // op3
  const VarId e = b.fresh_var();
  lop(b, {d, c}, {e}, "E=D+C");  // op4
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);

  ASSERT_EQ(model.units.size(), 3u);
  EXPECT_EQ(unit_of(model, 4), unit_of(model, 3));  // E with Read(D)
  EXPECT_NE(unit_of(model, 4), unit_of(model, 2));
  // E consumes C, so Read(B)'s unit precedes Read(D)'s.
  EXPECT_TRUE(model.depends(unit_of(model, 2), unit_of(model, 3)));
}

TEST(UnitGraph, PaperSectionVC1Example) {
  // T = {Read A, Read B, Read C, Read D, var=A+B, var=var/2, Read E,
  //      var2=E+B}; the paper prescribes: var=A+B in Read(B)'s UnitBlock,
  //      var=var/2 follows it, var2=E+B in Read(E)'s UnitBlock.
  ProgramBuilder b("vc1", 0);
  const VarId a = rd(b, 1, "Read A");   // op0
  const VarId bb = rd(b, 2, "Read B");  // op1
  rd(b, 3, "Read C");                   // op2
  rd(b, 4, "Read D");                   // op3
  const VarId var = b.fresh_var();
  lop(b, {a, bb}, {var}, "var=A+B");  // op4
  lop(b, {var}, {var}, "var=var/2");  // op5
  const VarId e = rd(b, 5, "Read E");  // op6
  const VarId var2 = b.fresh_var();
  lop(b, {e, bb}, {var2}, "var2=E+B");  // op7
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);

  ASSERT_EQ(model.units.size(), 5u);
  EXPECT_EQ(unit_of(model, 4), unit_of(model, 1));
  EXPECT_EQ(unit_of(model, 5), unit_of(model, 1));
  EXPECT_EQ(unit_of(model, 7), unit_of(model, 6));
  // Read C / Read D units carry exactly one op each.
  EXPECT_EQ(model.units[unit_of(model, 2)].ops.size(), 1u);
  EXPECT_EQ(model.units[unit_of(model, 3)].ops.size(), 1u);
}

TEST(UnitGraph, MostContendedAttractsLocalOps) {
  // Same T_p2 shape; with B's class hot, E=D+C re-attaches to the unit
  // whose object is most contended (Algorithm Module Step 1).
  ProgramBuilder b("tp2hot", 0);
  const VarId a = rd(b, 1, "Read(A)");
  const VarId bb = rd(b, 2, "Read(B)");
  const VarId c = b.fresh_var();
  lop(b, {a, bb}, {c}, "C=A+B");
  const VarId d = rd(b, 3, "Read(D)");
  const VarId e = b.fresh_var();
  lop(b, {d, c}, {e}, "E=D+C");
  const TxProgram p = b.build();

  const ClassLevels hot_b{{1, 0.0}, {2, 0.9}, {3, 0.1}};
  const auto model =
      build_dependency_model(p, AttachPolicy::kMostContended, hot_b);
  EXPECT_EQ(unit_of(model, 4), unit_of(model, 1));  // E joins Read(B)'s unit
  // Read(D) must now precede Read(B)'s unit (E needs D).
  EXPECT_TRUE(model.depends(unit_of(model, 3), unit_of(model, 1)));
  EXPECT_EQ(model.forced_merges, 0u);

  const ClassLevels hot_d{{1, 0.0}, {2, 0.1}, {3, 0.9}};
  const auto model2 =
      build_dependency_model(p, AttachPolicy::kMostContended, hot_d);
  EXPECT_EQ(unit_of(model2, 4), unit_of(model2, 3));  // E back with Read(D)
}

TEST(UnitGraph, CycleAvoidanceFallsBackToValidCandidate) {
  // ReadB's key depends on A, so U_A -> U_B is fixed.  A local op reading
  // both A and B prefers hot A, but attaching there would need U_B -> U_A;
  // the analysis must fall back to U_B and stay acyclic.
  ProgramBuilder b("cycle", 0);
  const VarId a = rd(b, 1, "Read(A)");
  const VarId bb = b.remote_read(
      2, {a}, [](const TxEnv&) { return ObjectKey{2, 0}; }, "Read(B[A])");
  const VarId x = b.fresh_var();
  lop(b, {a, bb}, {x}, "f(A,B)");
  const TxProgram p = b.build();

  const ClassLevels hot_a{{1, 0.9}, {2, 0.0}};
  const auto model =
      build_dependency_model(p, AttachPolicy::kMostContended, hot_a);
  EXPECT_EQ(unit_of(model, 2), unit_of(model, 1));  // fell back to U_B
  EXPECT_EQ(model.forced_merges, 0u);
  EXPECT_TRUE(model.order_valid({0, 1}));
}

TEST(UnitGraph, LeadingLocalOpJoinsFirstConsumer) {
  // k = f(p0) computed before any access; both reads key off it.
  ProgramBuilder b("leading", 1);
  const VarId p0 = b.param(0);
  const VarId k = b.fresh_var();
  lop(b, {p0}, {k}, "k=f(p0)");  // op0, deferred
  b.remote_read(1, {k}, [](const TxEnv&) { return ObjectKey{1, 0}; }, "A[k]");
  b.remote_read(2, {k}, [](const TxEnv&) { return ObjectKey{2, 0}; }, "B[k]");
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  EXPECT_EQ(unit_of(model, 0), unit_of(model, 1));  // with earliest consumer
}

TEST(UnitGraph, SideEffectOnlyOpAttachesToLastUnit) {
  // A param-only op with no consumers (e.g. a blind insert) runs as late
  // as possible, near the commit phase.
  ProgramBuilder b("insertish", 1);
  const VarId p0 = b.param(0);
  rd(b, 1, "Read A");  // op0
  rd(b, 2, "Read B");  // op1
  lop(b, {p0}, {}, "blind insert");  // op2, deferred, no consumers
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  EXPECT_EQ(unit_of(model, 2), unit_of(model, 1));
}

TEST(UnitGraph, NoRemoteOpsThrows) {
  ProgramBuilder b("pure", 1);
  lop(b, {b.param(0)}, {}, "noop");
  const auto program = b.build();
  EXPECT_THROW(build_dependency_model(program, AttachPolicy::kLatestProducer),
               std::invalid_argument);
}

TEST(UnitGraph, OrderValidRejectsViolations) {
  ProgramBuilder b("ord", 0);
  const VarId a = rd(b, 1, "A");
  const VarId bb = b.remote_read(
      2, {a}, [](const TxEnv&) { return ObjectKey{2, 0}; }, "B[A]");
  (void)bb;
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  ASSERT_EQ(model.units.size(), 2u);
  EXPECT_TRUE(model.order_valid({0, 1}));
  EXPECT_FALSE(model.order_valid({1, 0}));
  EXPECT_FALSE(model.order_valid({0}));
  EXPECT_FALSE(model.order_valid({0, 0}));
}

TEST(UnitGraph, DescribeMentionsLabels) {
  ProgramBuilder b("desc", 0);
  const VarId a = rd(b, 1, "ReadAlpha");
  lop(b, {a}, {}, "useAlpha");
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  const auto text = model.describe();
  EXPECT_NE(text.find("ReadAlpha"), std::string::npos);
  EXPECT_NE(text.find("useAlpha"), std::string::npos);
}

TEST(UnitGraph, WarDependencyOrdersUnits) {
  // op2 overwrites the var op1's unit read: WAR forces U(A) before U(B).
  ProgramBuilder b("war", 1);
  const VarId p0 = b.param(0);
  const VarId shared = b.fresh_var();
  lop(b, {p0}, {shared}, "init");            // op0 deferred
  const VarId a = rd(b, 1, "Read A");        // op1
  lop(b, {a, shared}, {}, "use shared");     // op2 -> U(A)
  const VarId bb = rd(b, 2, "Read B");       // op3
  lop(b, {bb}, {shared}, "clobber shared");  // op4 -> U(B), WAR on op2
  const auto program = b.build();
  const auto model =
      build_dependency_model(program, AttachPolicy::kLatestProducer);
  const auto ua = unit_of(model, 1);
  const auto ub = unit_of(model, 3);
  EXPECT_EQ(unit_of(model, 4), ub);
  EXPECT_TRUE(model.depends(ua, ub));
}

}  // namespace
}  // namespace acn
