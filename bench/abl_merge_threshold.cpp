// Ablation: Step 2 merge threshold (the "granularity" trade-off of
// Section III).  Small thresholds keep UnitBlocks separate (fine-grained
// nesting: cheap partial rollbacks but little saved work per abort); large
// thresholds merge aggressively toward flat execution.  Runs the Bank
// workload under QR-ACN for each threshold and prints mean post-adaptation
// throughput.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;

  std::printf("\n=== Ablation: merge threshold (Bank, QR-ACN) ===\n");
  std::printf("%12s %14s %16s %16s\n", "threshold", "mean tx/s",
              "partial aborts", "full aborts");
  for (const double threshold : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    auto driver = args.driver;
    driver.algorithm.merge_threshold = threshold;
    harness::Cluster cluster(args.cluster);
    workloads::Bank bank;
    bank.seed(cluster.servers());
    try {
      const auto result =
          harness::run(cluster, bank, harness::Protocol::kAcn, driver);
      std::printf("%12.2f %14.1f %16llu %16llu\n", threshold,
                  result.mean_throughput(1),
                  static_cast<unsigned long long>(result.stats.partial_aborts),
                  static_cast<unsigned long long>(result.stats.full_aborts));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "threshold %.2f failed: %s\n", threshold, e.what());
      return 1;
    }
  }
  return 0;
}
