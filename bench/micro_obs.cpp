// Microbenchmarks for the observability hot paths.
//
// The claim being checked: with instrumentation compiled in but turned off
// (disabled registry/tracer, or a null Observability* at the call site),
// each guarded event costs a branch or two — well under ~5 ns — so the
// protocol layers can stay instrumented in release builds.  The enabled
// rows show the real cost of a sharded counter bump, a histogram observe,
// and a ring-buffer trace record.
#include <benchmark/benchmark.h>

#include "src/obs/obs.hpp"

namespace {

using acn::obs::MetricsRegistry;
using acn::obs::Observability;
using acn::obs::Tracer;

// -- metrics ----------------------------------------------------------------

void BM_CounterAdd_Enabled(benchmark::State& state) {
  MetricsRegistry registry;
  auto counter = registry.counter("bench.counter");
  for (auto _ : state) counter.add();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd_Enabled);

void BM_CounterAdd_Disabled(benchmark::State& state) {
  MetricsRegistry registry;
  auto counter = registry.counter("bench.counter");
  registry.set_enabled(false);
  for (auto _ : state) counter.add();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd_Disabled);

void BM_CounterAdd_DefaultHandle(benchmark::State& state) {
  // A default-constructed handle: the pattern for layers whose
  // Observability* was never set.
  MetricsRegistry::Counter counter;
  for (auto _ : state) counter.add();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd_DefaultHandle);

void BM_HistogramObserve_Enabled(benchmark::State& state) {
  MetricsRegistry registry;
  auto histogram = registry.histogram(
      "bench.hist", MetricsRegistry::exponential_bounds(100, 2.0, 24));
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram.observe(value);
    value = value * 6364136223846793005ULL + 1442695040888963407ULL;
    value >>= 40;  // keep it in the bucketed range
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve_Enabled);

void BM_HistogramObserve_Disabled(benchmark::State& state) {
  MetricsRegistry registry;
  auto histogram = registry.histogram(
      "bench.hist", MetricsRegistry::exponential_bounds(100, 2.0, 24));
  registry.set_enabled(false);
  for (auto _ : state) histogram.observe(12345);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve_Disabled);

// -- tracer -----------------------------------------------------------------

void BM_TraceInstant_Enabled(benchmark::State& state) {
  Tracer tracer;
  std::uint64_t tx = 0;
  for (auto _ : state) tracer.instant("tick", "bench", ++tx, "arg", 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstant_Enabled);

void BM_TraceInstant_Disabled(benchmark::State& state) {
  Tracer tracer;
  tracer.set_enabled(false);
  std::uint64_t tx = 0;
  for (auto _ : state) tracer.instant("tick", "bench", ++tx, "arg", 1);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceInstant_Disabled);

void BM_TraceSpan_Enabled(benchmark::State& state) {
  Tracer tracer;
  std::uint64_t tx = 0;
  for (auto _ : state) {
    Tracer::Span span(&tracer, "span", "bench", ++tx);
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan_Enabled);

void BM_TraceSpan_NullTracer(benchmark::State& state) {
  // The instrumentation-site pattern when no Observability is installed.
  Tracer* tracer = nullptr;
  benchmark::DoNotOptimize(tracer);
  std::uint64_t tx = 0;
  for (auto _ : state) {
    Tracer::Span span(tracer, "span", "bench", ++tx);
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpan_NullTracer);

// -- the guarded call-site shape used across src/dtm and src/acn ------------

void BM_GuardedSite_NullObs(benchmark::State& state) {
  Observability* obs = nullptr;
  benchmark::DoNotOptimize(obs);
  for (auto _ : state) {
    if (obs) obs->tx_commits.add();  // the exact shape of every call site
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardedSite_NullObs);

void BM_GuardedSite_DisabledObs(benchmark::State& state) {
  acn::obs::ObsConfig config;
  config.metrics_enabled = false;
  Observability bundle(config);
  Observability* obs = &bundle;
  benchmark::DoNotOptimize(obs);
  for (auto _ : state) {
    if (obs) obs->tx_commits.add();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardedSite_DisabledObs);

void BM_GuardedSite_EnabledObs(benchmark::State& state) {
  Observability bundle;
  Observability* obs = &bundle;
  benchmark::DoNotOptimize(obs);
  for (auto _ : state) {
    if (obs) obs->tx_commits.add();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardedSite_EnabledObs);

}  // namespace

BENCHMARK_MAIN();
