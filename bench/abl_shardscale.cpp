// Horizontal-sharding acceptance gate (src/shard).
//
// Three phases, each with a hard pass/fail check so CI can gate on the
// exit status:
//
//   1. Scale-out curve — the same single-shard-only transfer workload runs
//      on 1, 2, 4, ... --shards quorum groups with a fixed number of
//      clients and replicas *per group*.  Because single-shard commits
//      touch nothing outside their home group, adding groups must add
//      throughput nearly linearly: the gate fails unless
//      thr[S_max] >= 0.8 * S_max * thr[1].  The run also asserts the
//      fast-path invariant held (zero cross-shard commits, zero
//      mispredictions, zero wrong-group refusals).
//
//   2. Mixed single/cross-shard correctness — a deterministic transfer
//      list (--cross percent forced cross-group) runs concurrently with
//      retry-until-commit on a sharded cluster AND single-threaded on an
//      unsharded reference cluster.  Transfers are unconditional, so the
//      final balances are order-independent: every key must match the
//      reference exactly and the total must be conserved.
//
//   3. Coordinator-crash chaos — cross-shard transactions prepare on two
//      groups and their coordinators "crash" (the handles are abandoned);
//      one leaf per group crashes and rejoins under live traffic.  After
//      their leases run out the prepares must park IN-DOUBT (protections
//      held — presumed abort is unsafe once a sibling may have committed),
//      cooperative termination must resolve every one of them to abort
//      (sealing the outcome at the coordinators), and afterwards the gate
//      requires zero orphaned prepares (no open lease, no protected key)
//      in EVERY group, zero atomicity breaches anywhere, and that a zombie
//      coordinator waking up after resolution is refused phase 2.
//
//   4. TPC-C scale curve — full NewOrder transactions submitted through
//      shard::Client with warehouse-per-group placement, one warehouse per
//      group, clients pinned to their home warehouse, 0% remote lines.
//      Every transaction must take the single-shard fast path (zero
//      cross-shard dispatches, escalations, mispredictions or wrong-group
//      refusals) and the largest point must reach >= 0.8x linear over the
//      1-group baseline — the unsharded run is the first point of the same
//      curve, so "matches unsharded within noise" is the frac itself.
//
//   5. TPC-C remote mix vs unsharded reference — a deterministic NewOrder
//      list where each order line's stock is supplied by a foreign
//      warehouse with probability --remote-wh (default 0.10) runs through
//      shard::Client on a sharded cluster (one thread per warehouse, so
//      every district sees its orders in a fixed sequence) and sequentially
//      on an unsharded reference.  Stock is seeded deep enough that the
//      restock rule stays dormant, making cross-warehouse stock updates
//      commute: the gate requires the final record of EVERY seeded key to
//      equal the reference exactly, at least one cross-shard NewOrder
//      commit, and zero orphaned prepares (no open lease, no protected
//      key) after the run.
//
// With --transport=tcp every cluster in phases 1-5 is a spawned
// multi-process fleet on localhost sockets — except the phase 2/5 reference
// clusters, which stay on the in-process simulation so the state-equality
// gates literally check "the socket fleet ends state-equal to the sim run
// of the same op list".  The 0.8x-linear throughput gates apply to sim only
// (they calibrate against the sleep-injected LAN model; on real sockets the
// curve measures host core count), but every correctness gate — fast-path
// purity, state equality, conservation, in-doubt resolution, zero orphaned
// prepares — is enforced identically in both modes.
//
// Flags beyond the shared set (see figure_common.hpp), consumed through
// BenchOptions::parse's `extra` hook: --shards=N is the largest group
// count on the curve (default 8); --group-servers=N replicas per group
// (default 4); --clients-per-shard=N (default 2); --txs=N transactions per
// client on the curves (default 300); --cross=P percent of mixed-phase
// transfers forced cross-shard (default 25); --remote-wh=P probability a
// phase-5 order line is remote (default 0.10).
// --metrics-json FILE writes the curve and check results as JSON (the
// format scripts/bench_snapshot.sh folds into BENCH_7.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/figure_common.hpp"
#include "src/chaos/chaos.hpp"
#include "src/common/rng.hpp"
#include "src/harness/indoubt.hpp"
#include "src/shard/coordinator.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard_map.hpp"
#include "src/transport/wire.hpp"
#include "src/workloads/tpcc.hpp"

namespace {

using namespace acn;
using shard::CrossShardCoordinator;
using shard::ShardMap;
using shard::ShardRouter;
using shard::ShardTx;
using store::ObjectKey;
using store::Record;

constexpr store::Field kInitialBalance = 10'000;

acn::KeyFootprint write_footprint(std::vector<ObjectKey> keys) {
  std::sort(keys.begin(), keys.end());
  acn::KeyFootprint footprint;
  for (const auto& key : keys) footprint.push_back({key, true});
  return footprint;
}

/// `per_group` account keys owned by each group under `map` (hash
/// placement is opaque, so walk ids until every pool is full).
std::vector<std::vector<ObjectKey>> build_pools(const ShardMap& map,
                                                std::size_t per_group,
                                                std::uint64_t first_id = 0) {
  std::vector<std::vector<ObjectKey>> pools(map.n_shards());
  std::size_t filled = 0;
  for (std::uint64_t id = first_id; filled < pools.size(); ++id) {
    const ObjectKey key{1, id};
    auto& pool = pools[map.shard_of(key)];
    if (pool.size() >= per_group) continue;
    pool.push_back(key);
    if (pool.size() == per_group) ++filled;
  }
  return pools;
}

/// One unconditional transfer, retried until it commits (conflicts between
/// concurrent clients surface as TxAbort; the transfer itself never fails
/// on balances).  Returns attempts made.
std::size_t transfer(CrossShardCoordinator& coordinator, const ObjectKey& src,
                     const ObjectKey& dst, store::Field amount) {
  for (std::size_t attempt = 1;; ++attempt) {
    ShardTx tx = coordinator.begin(write_footprint({src, dst}));
    try {
      const Record a = tx.read(src);
      const Record b = tx.read(dst);
      tx.write(src, Record{a.fields[0] - amount});
      tx.write(dst, Record{b.fields[0] + amount});
      tx.commit();
      return attempt;
    } catch (const dtm::TxAbort&) {
      std::this_thread::sleep_for(std::chrono::microseconds{20 * attempt});
    }
  }
}

// Fleet-wide gauges summed over probe_replica: a direct Server read in sim
// mode, one kProbe control round-trip per replica on TCP.
std::size_t cluster_protected(harness::Cluster& cluster) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    count += static_cast<std::size_t>(cluster.probe_replica(i).protected_keys);
  return count;
}

std::size_t cluster_open_leases(harness::Cluster& cluster) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    count += static_cast<std::size_t>(cluster.probe_replica(i).open_leases);
  return count;
}

std::uint64_t cluster_wrong_group(harness::Cluster& cluster) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    count += cluster.probe_replica(i).wrong_group;
  return count;
}

std::size_t cluster_indoubt(harness::Cluster& cluster) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    count += static_cast<std::size_t>(cluster.probe_replica(i).indoubt);
  return count;
}

/// Invariant check that works against a remote fleet: mirror its committed
/// state locally and hand the workload in-process replicas as usual.
void check_workload_invariants(harness::Cluster& cluster,
                               const workloads::Workload& workload) {
  if (cluster.remote()) {
    const harness::StateMirror m = cluster.mirror();
    workload.check_invariants(m.servers);
  } else {
    workload.check_invariants(cluster.servers());
  }
}

/// Latest committed value of `key` read from `mirror` (see latest_value).
store::Field mirrored_balance(const harness::StateMirror& mirror,
                              const ObjectKey& key) {
  return workloads::latest_value(mirror.servers, key).value.fields[0];
}

struct ScaleOptions {
  std::size_t max_shards = 8;
  std::size_t group_servers = 4;
  std::size_t clients_per_shard = 2;
  std::size_t txs_per_client = 300;
  int cross_pct = 25;
  double remote_wh = 0.10;  // phase-5 remote order-line probability
};

struct ScalePoint {
  std::size_t shards = 0;
  double tx_per_sec = 0;
  std::uint64_t commits = 0;
};

/// Phase 1: the single-shard workload on `shards` groups.  Every client is
/// pinned to a home group and transfers only inside its pool, so groups
/// never exchange a message; per-group load is identical across the curve.
ScalePoint run_scale_point(const bench::BenchOptions& args,
                           const ScaleOptions& scale, std::size_t shards) {
  harness::ClusterConfig config = args.cluster;
  config.n_servers = scale.group_servers;
  config.n_groups = shards;
  config.prepare_lease_ns = 2'000'000'000;  // generous: expiry is phase 3
  harness::Cluster cluster(config);

  const ShardMap map(shard::ShardMapConfig{
      .n_shards = static_cast<std::uint32_t>(shards)});
  ShardRouter router(map);
  const auto pools = build_pools(map, /*per_group=*/16);
  for (const auto& pool : pools)
    for (const ObjectKey& key : pool)
      shard::seed_sharded(cluster, map, key, Record{kInitialBalance});
  cluster.flush_seeds();

  const std::size_t n_clients = scale.clients_per_shard * shards;
  std::vector<std::unique_ptr<CrossShardCoordinator>> coordinators;
  coordinators.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i)
    coordinators.push_back(std::make_unique<CrossShardCoordinator>(
        cluster, router, static_cast<int>(i)));

  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i)
    clients.emplace_back([&, i] {
      const std::size_t home = i % shards;
      const auto& pool = pools[home];
      acn::Rng rng(args.driver.seed + 0x5ca1e + i);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t t = 0; t < scale.txs_per_client; ++t) {
        const std::size_t a = rng.uniform(0, pool.size() - 1);
        std::size_t b = rng.uniform(0, pool.size() - 2);
        if (b >= a) ++b;
        transfer(*coordinators[i], pool[a], pool[b], 1);
      }
    });

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : clients) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScalePoint point;
  point.shards = shards;
  std::uint64_t cross = 0, mispredicted = router.stats().mispredicted;
  for (const auto& coordinator : coordinators) {
    point.commits += coordinator->stats().single_shard_commits.load();
    cross += coordinator->stats().cross_shard_commits.load();
  }
  point.tx_per_sec = seconds > 0 ? static_cast<double>(point.commits) / seconds
                                 : 0;
  if (cross != 0 || mispredicted != 0 || cluster_wrong_group(cluster) != 0)
    throw std::runtime_error(
        "single-shard workload leaked off the fast path (cross=" +
        std::to_string(cross) + " mispredict=" + std::to_string(mispredicted) +
        ")");
  return point;
}

// ---- TPC-C through the unified Client API (phases 4 and 5) -------------

workloads::TpccConfig tpcc_config(std::size_t warehouses,
                                  std::size_t districts) {
  workloads::TpccConfig config;
  config.n_warehouses = warehouses;
  config.districts_per_warehouse = districts;
  config.customers_per_district = 30;
  config.n_items = 64;
  config.w_neworder = 1.0;
  // Deep stock keeps the restock rule dormant, so remote stock updates
  // commute and phase 5's state-equality check is order-independent.
  config.initial_stock_quantity = 1'000'000;
  return config;
}

/// One NewOrder parameter vector: [w, d, c, items, qtys, supply].  Items
/// are made distinct by a fixed stride; each line's supplying warehouse is
/// foreign with probability `remote`.
std::vector<Record> make_neworder_params(const workloads::TpccConfig& config,
                                         store::Field w, store::Field d,
                                         acn::Rng& rng, double remote) {
  const std::size_t lines = workloads::Tpcc::kOrderLines;
  Record items(lines), qtys(lines), supply(lines);
  const auto first =
      static_cast<store::Field>(rng.uniform(0, config.n_items - 1));
  for (std::size_t l = 0; l < lines; ++l) {
    items[l] = static_cast<store::Field>(
        (static_cast<std::uint64_t>(first) + 7 * l) % config.n_items);
    qtys[l] = static_cast<store::Field>(rng.uniform(1, 10));
    supply[l] = w;
    if (remote > 0 && config.n_warehouses > 1 && rng.bernoulli(remote)) {
      auto other = static_cast<store::Field>(
          rng.uniform(0, config.n_warehouses - 2));
      supply[l] = other >= w ? other + 1 : other;
    }
  }
  const auto c = static_cast<store::Field>(
      rng.uniform(0, config.customers_per_district - 1));
  return {Record{w}, Record{d}, Record{c}, items, qtys, supply};
}

/// Phase 4: one point of the TPC-C curve.  One warehouse per group, every
/// client pinned to a distinct district of its home group's warehouse, 0%
/// remote lines — per-group load is constant across the curve and every
/// transaction must stay on the single-shard fast path.
ScalePoint run_tpcc_scale_point(const bench::BenchOptions& args,
                                const ScaleOptions& scale,
                                std::size_t shards) {
  harness::ClusterConfig config = args.cluster;
  config.n_servers = scale.group_servers;
  config.n_groups = shards;
  config.prepare_lease_ns = 2'000'000'000;
  harness::Cluster cluster(config);

  const workloads::TpccConfig workload_config =
      tpcc_config(shards, std::max<std::size_t>(scale.clients_per_shard, 2));
  workloads::Tpcc tpcc(workload_config);
  shard::ClientFleet fleet(tpcc, static_cast<std::uint32_t>(shards));
  fleet.seed(cluster, tpcc);

  const ir::TxProgram& program = *tpcc.profiles()[0].program;
  const std::size_t n_clients = scale.clients_per_shard * shards;
  auto factory = fleet.factory();
  std::vector<std::unique_ptr<harness::Submitter>> submitters;
  for (std::size_t i = 0; i < n_clients; ++i)
    submitters.push_back(factory(cluster, i, args.driver.executor,
                                 args.driver.seed ^ (i << 16)));

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> commits{0};
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < n_clients; ++i)
    clients.emplace_back([&, i] {
      const auto w = static_cast<store::Field>(i % shards);
      const auto d = static_cast<store::Field>(i / shards);
      acn::Rng rng(args.driver.seed + 0x79cc + i);
      acn::ExecStats stats;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t t = 0; t < scale.txs_per_client; ++t)
        submitters[i]->run(
            harness::Protocol::kFlat, acn::with_program(program),
            make_neworder_params(workload_config, w, d, rng, 0.0), stats);
      commits.fetch_add(stats.commits, std::memory_order_relaxed);
    });

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : clients) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ScalePoint point;
  point.shards = shards;
  point.commits = commits.load();
  point.tx_per_sec = seconds > 0 ? static_cast<double>(point.commits) / seconds
                                 : 0;
  const auto& stats = fleet.stats();
  if (stats.cross_shard.load() != 0 || stats.escalations.load() != 0 ||
      fleet.router().stats().mispredicted != 0 ||
      cluster_wrong_group(cluster) != 0)
    throw std::runtime_error(
        "pinned TPC-C leaked off the fast path (cross=" +
        std::to_string(stats.cross_shard.load()) + " escalations=" +
        std::to_string(stats.escalations.load()) + ")");
  check_workload_invariants(cluster, tpcc);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleOptions scale;
  bool latency_given = false;
  // Bench-specific flags are claimed through the shared parser's `extra`
  // hook; everything else is the common option set.
  const auto extra = [&](const std::string& arg) {
    auto value = [&](const char* prefix) {
      return std::strtol(arg.c_str() + std::strlen(prefix), nullptr, 10);
    };
    if (arg.rfind("--latency-us", 0) == 0) latency_given = true;  // observed
    if (arg.rfind("--group-servers=", 0) == 0)
      scale.group_servers = static_cast<std::size_t>(value("--group-servers="));
    else if (arg.rfind("--clients-per-shard=", 0) == 0)
      scale.clients_per_shard =
          static_cast<std::size_t>(value("--clients-per-shard="));
    else if (arg.rfind("--txs=", 0) == 0)
      scale.txs_per_client = static_cast<std::size_t>(value("--txs="));
    else if (arg.rfind("--cross=", 0) == 0)
      scale.cross_pct = static_cast<int>(value("--cross="));
    else if (arg.rfind("--remote-wh=", 0) == 0)
      scale.remote_wh =
          std::strtod(arg.c_str() + std::strlen("--remote-wh="), nullptr);
    else
      return false;
    return true;
  };
  auto args = bench::BenchOptions::parse(argc, argv, extra);
  if (args.cluster.n_groups > 1) scale.max_shards = args.cluster.n_groups;
  // Sleep-dominated RPCs make the curve insensitive to host core count; a
  // too-small latency would measure thread scheduling instead of sharding.
  if (!latency_given) args.cluster.base_latency = std::chrono::microseconds{60};
  args.cluster.stub.max_quorum_retries = 16;  // phase 3 crashes leaves
  // The linearity gates calibrate against the simulated LAN; over real
  // sockets the curve reflects host core count, so TCP runs print it
  // without gating (every correctness gate still applies).
  const bool tcp =
      args.cluster.transport_mode == harness::TransportMode::kTcp;

  std::printf("\n=== Shard scale-out: %zu replicas/group, %zu clients/shard, "
              "%zu tx/client ===\n",
              scale.group_servers, scale.clients_per_shard,
              scale.txs_per_client);

  bool ok = true;
  std::vector<ScalePoint> curve;
  double linear_frac = 0;
  std::uint64_t mixed_cross = 0, mixed_single = 0;
  std::uint64_t orphans_reclaimed = 0, atomicity_breaches = 0;
  std::vector<ScalePoint> tpcc_curve;
  double tpcc_linear_frac = 0;
  std::uint64_t tpcc_cross = 0;

  try {
    // ---- Phase 1: throughput curve over group counts ---------------------
    std::printf("%8s %10s %12s %10s\n", "shards", "commits", "tx/s",
                "vs linear");
    for (std::size_t shards = 1; shards <= scale.max_shards; shards *= 2) {
      const ScalePoint point = run_scale_point(args, scale, shards);
      curve.push_back(point);
      const double frac =
          curve.front().tx_per_sec > 0
              ? point.tx_per_sec / (static_cast<double>(point.shards) *
                                    curve.front().tx_per_sec)
              : 0;
      std::printf("%8zu %10llu %12.1f %9.2fx\n", point.shards,
                  static_cast<unsigned long long>(point.commits),
                  point.tx_per_sec, frac);
      linear_frac = frac;  // the last (largest) point decides the gate
    }
    if (linear_frac < 0.8) {
      if (tcp) {
        std::printf("note: %.2fx linear on tcp (gate is sim-only)\n",
                    linear_frac);
      } else {
        std::fprintf(stderr,
                     "FAIL: %zu-shard throughput is %.2fx linear (< 0.80x)\n",
                     scale.max_shards, linear_frac);
        ok = false;
      }
    }

    // ---- Phase 2: mixed workload vs unsharded reference ------------------
    const std::size_t mixed_shards = std::min<std::size_t>(4, scale.max_shards);
    const std::size_t n_ops = 400;
    const std::size_t n_mixed_clients = 4;
    std::printf("mixed: %zu transfers (%d%% cross-shard) on %zu shards vs "
                "unsharded reference\n",
                n_ops, scale.cross_pct, mixed_shards);

    harness::ClusterConfig sharded_config = args.cluster;
    sharded_config.n_servers = scale.group_servers;
    sharded_config.n_groups = mixed_shards;
    sharded_config.prepare_lease_ns = 2'000'000'000;
    harness::Cluster sharded(sharded_config);
    const ShardMap map(shard::ShardMapConfig{
        .n_shards = static_cast<std::uint32_t>(mixed_shards)});
    ShardRouter router(map);

    harness::ClusterConfig reference_config = sharded_config;
    reference_config.n_groups = 1;
    // The reference is always the in-process simulation: on --transport=tcp
    // this gate becomes "the socket fleet ends state-equal to the sim run
    // of the same op list".
    reference_config.transport_mode = harness::TransportMode::kSim;
    harness::Cluster reference(reference_config);
    const ShardMap one(shard::ShardMapConfig{.n_shards = 1});
    ShardRouter reference_router(one);

    const auto pools = build_pools(map, /*per_group=*/12);
    std::vector<ObjectKey> keys;
    for (const auto& pool : pools)
      keys.insert(keys.end(), pool.begin(), pool.end());
    std::sort(keys.begin(), keys.end());
    for (const ObjectKey& key : keys) {
      shard::seed_sharded(sharded, map, key, Record{kInitialBalance});
      shard::seed_sharded(reference, one, key, Record{kInitialBalance});
    }
    sharded.flush_seeds();
    reference.flush_seeds();

    // The op list is fixed up front so both clusters execute the exact same
    // transfers; cross-shard ops draw src and dst from different groups.
    struct Op {
      ObjectKey src, dst;
      store::Field amount = 0;
    };
    std::vector<Op> ops;
    acn::Rng rng(args.driver.seed + 0x30ca1);
    for (std::size_t k = 0; k < n_ops; ++k) {
      const bool cross =
          static_cast<int>(rng.uniform(0, 99)) < scale.cross_pct;
      const std::size_t src_group = rng.uniform(0, map.n_shards() - 1);
      std::size_t dst_group = src_group;
      if (cross && map.n_shards() > 1) {
        dst_group = rng.uniform(0, map.n_shards() - 2);
        if (dst_group >= src_group) ++dst_group;
      }
      const auto& src_pool = pools[src_group];
      const auto& dst_pool = pools[dst_group];
      Op op;
      op.src = src_pool[rng.uniform(0, src_pool.size() - 1)];
      do {
        op.dst = dst_pool[rng.uniform(0, dst_pool.size() - 1)];
      } while (op.dst == op.src);
      op.amount = static_cast<store::Field>(rng.uniform(1, 50));
      ops.push_back(op);
    }

    // Concurrent retry-until-commit on the sharded cluster: transfers are
    // unconditional, so any commit order yields the same final balances.
    {
      std::vector<std::unique_ptr<CrossShardCoordinator>> coordinators;
      for (std::size_t i = 0; i < n_mixed_clients; ++i)
        coordinators.push_back(std::make_unique<CrossShardCoordinator>(
            sharded, router, static_cast<int>(i)));
      std::vector<std::thread> clients;
      for (std::size_t i = 0; i < n_mixed_clients; ++i)
        clients.emplace_back([&, i] {
          for (std::size_t k = i; k < ops.size(); k += n_mixed_clients)
            transfer(*coordinators[i], ops[k].src, ops[k].dst, ops[k].amount);
        });
      for (auto& thread : clients) thread.join();
      for (const auto& coordinator : coordinators) {
        mixed_single += coordinator->stats().single_shard_commits.load();
        mixed_cross += coordinator->stats().cross_shard_commits.load();
        atomicity_breaches += coordinator->stats().atomicity_breaches.load();
      }
    }
    // Single-threaded on the unsharded reference (no conflicts to retry).
    {
      CrossShardCoordinator coordinator(reference, reference_router, 0);
      for (const Op& op : ops)
        transfer(coordinator, op.src, op.dst, op.amount);
    }

    // One committed-state pass per cluster (a store dump per replica on
    // TCP), then per-key max-version reads against the local copies.
    const harness::StateMirror sharded_state = sharded.mirror();
    const harness::StateMirror reference_state = reference.mirror();
    std::size_t mismatched = 0;
    store::Field sharded_total = 0;
    for (const ObjectKey& key : keys) {
      const store::Field got = mirrored_balance(sharded_state, key);
      const store::Field want = mirrored_balance(reference_state, key);
      sharded_total += got;
      if (got != want) {
        ++mismatched;
        std::fprintf(stderr, "FAIL: key %s = %lld, reference %lld\n",
                     store::to_string(key).c_str(),
                     static_cast<long long>(got),
                     static_cast<long long>(want));
      }
    }
    const store::Field expected_total =
        static_cast<store::Field>(keys.size()) * kInitialBalance;
    std::printf(
        "mixed commits: %llu single, %llu cross; %zu keys compared\n",
        static_cast<unsigned long long>(mixed_single),
        static_cast<unsigned long long>(mixed_cross), keys.size());
    if (mismatched != 0) ok = false;
    if (sharded_total != expected_total) {
      std::fprintf(stderr, "FAIL: total %lld != seeded %lld\n",
                   static_cast<long long>(sharded_total),
                   static_cast<long long>(expected_total));
      ok = false;
    }
    if (mixed_cross == 0 && mixed_shards > 1) {
      std::fprintf(stderr, "FAIL: mixed run exercised no cross-shard 2PC\n");
      ok = false;
    }
    if (mixed_single + mixed_cross != n_ops) {
      std::fprintf(stderr, "FAIL: %llu commits for %zu transfers\n",
                   static_cast<unsigned long long>(mixed_single + mixed_cross),
                   n_ops);
      ok = false;
    }

    // ---- Phase 3: coordinator crash + per-group leaf chaos ---------------
    std::printf("chaos: abandoning cross-shard prepares, crashing one leaf "
                "per group\n");
    harness::ClusterConfig chaos_config = sharded_config;
    chaos_config.prepare_lease_ns = 120'000'000;  // 120 ms
    harness::Cluster chaotic(chaos_config);
    for (const ObjectKey& key : keys)
      shard::seed_sharded(chaotic, map, key, Record{kInitialBalance});
    chaotic.flush_seeds();

    // Three coordinators prepare across two groups each, then "crash":
    // their ShardTx handles are parked and never run phase 2.
    std::vector<std::unique_ptr<CrossShardCoordinator>> doomed;
    std::vector<ShardTx> parked;
    for (std::size_t c = 0; c < 3; ++c) {
      doomed.push_back(std::make_unique<CrossShardCoordinator>(
          chaotic, router, static_cast<int>(100 + c)));
      // Orphan c holds slot 8+c of two adjacent pools: the per-c slot makes
      // the three orphans' key sets disjoint even when the groups wrap
      // (mixed_shards == 2), and the live traffic below stays in slots 0..7.
      const ObjectKey src = pools[c % mixed_shards][8 + c];
      const ObjectKey dst = pools[(c + 1) % mixed_shards][8 + c];
      ShardTx tx = doomed.back()->begin(write_footprint({src, dst}));
      tx.write(src, Record{0});
      tx.write(dst, Record{0});
      if (tx.prepare_all() == 0)
        throw std::runtime_error("chaos: orphan prepared no group");
      parked.push_back(std::move(tx));
    }
    if (cluster_open_leases(chaotic) == 0)
      throw std::runtime_error("chaos: no lease outstanding after prepares");

    // One leaf per group crashes and rejoins under the orphaned prepares.
    for (std::size_t g = 0; g < mixed_shards; ++g) {
      const auto victims = chaos::ChaosController::leaf_victims(chaotic, 1, g);
      chaotic.crash_node(victims.front());
      chaotic.restart_node(victims.front());
    }

    // Live traffic keeps committing around the orphans (the parked
    // prepares hold only each pool's .back() key; live transfers use the
    // front halves).
    CrossShardCoordinator survivor(chaotic, router, 7);
    for (std::size_t k = 0; k < 24; ++k) {
      const auto& src_pool = pools[k % mixed_shards];
      const auto& dst_pool = pools[(k + 1) % mixed_shards];
      transfer(survivor, src_pool[k % 4], dst_pool[4 + k % 4], 1);
    }
    atomicity_breaches += survivor.stats().atomicity_breaches.load();

    // The orphans' leases run out — but cross-shard prepares are never
    // presumed aborted by expiry alone: they must park in-doubt with their
    // protections held until cooperative termination decides them.
    std::this_thread::sleep_for(std::chrono::milliseconds{150});
    chaotic.expire_all_leases();
    const std::size_t parked_indoubt = cluster_indoubt(chaotic);
    if (parked_indoubt == 0) {
      std::fprintf(stderr, "FAIL: no orphaned prepare parked in-doubt\n");
      ok = false;
    }
    // Cooperative termination: the coordinators are reachable but recorded
    // no decision, so every orphan resolves to abort and the absence of a
    // record is sealed at each coordinator.
    const harness::IndoubtReport indoubt = harness::resolve_indoubt(chaotic);
    orphans_reclaimed = indoubt.resolved_abort;
    const std::size_t leaked_leases = cluster_open_leases(chaotic);
    const std::size_t leaked_keys = cluster_protected(chaotic);
    std::printf("chaos: %zu prepares parked in-doubt, %llu resolved to "
                "abort, %zu open leases, %zu protected keys after "
                "termination\n",
                parked_indoubt,
                static_cast<unsigned long long>(orphans_reclaimed),
                leaked_leases, leaked_keys);
    if (orphans_reclaimed == 0) {
      std::fprintf(stderr, "FAIL: no orphaned prepare was resolved\n");
      ok = false;
    }
    if (indoubt.unresolved != 0) {
      std::fprintf(stderr, "FAIL: %zu prepares left in-doubt\n",
                   indoubt.unresolved);
      ok = false;
    }
    if (leaked_leases != 0 || leaked_keys != 0) {
      std::fprintf(stderr,
                   "FAIL: orphaned prepares leaked (%zu leases, %zu keys)\n",
                   leaked_leases, leaked_keys);
      ok = false;
    }
    // A zombie coordinator waking up after resolution must be refused: its
    // own decision log now holds the sealed abort, so record_commit fails
    // and phase 2 never starts.
    try {
      parked.front().commit_prepared();
      std::fprintf(stderr, "FAIL: zombie phase 2 was accepted\n");
      ok = false;
    } catch (const dtm::TxAbort&) {
    }
    for (const auto& coordinator : doomed)
      atomicity_breaches += coordinator->stats().atomicity_breaches.load();
    if (atomicity_breaches != 0) {
      std::fprintf(stderr, "FAIL: %llu atomicity breaches\n",
                   static_cast<unsigned long long>(atomicity_breaches));
      ok = false;
    }

    // ---- Phase 4: TPC-C NewOrder curve through shard::Client -------------
    std::printf("tpcc: NewOrder curve, 1 warehouse/group, 0%% remote\n");
    std::printf("%8s %10s %12s %10s\n", "shards", "commits", "tx/s",
                "vs linear");
    for (std::size_t shards = 1; shards <= scale.max_shards; shards *= 2) {
      const ScalePoint point = run_tpcc_scale_point(args, scale, shards);
      tpcc_curve.push_back(point);
      const double frac =
          tpcc_curve.front().tx_per_sec > 0
              ? point.tx_per_sec / (static_cast<double>(point.shards) *
                                    tpcc_curve.front().tx_per_sec)
              : 0;
      std::printf("%8zu %10llu %12.1f %9.2fx\n", point.shards,
                  static_cast<unsigned long long>(point.commits),
                  point.tx_per_sec, frac);
      tpcc_linear_frac = frac;
    }
    if (tpcc_linear_frac < 0.8) {
      if (tcp) {
        std::printf("note: %.2fx linear on tcp (gate is sim-only)\n",
                    tpcc_linear_frac);
      } else {
        std::fprintf(stderr,
                     "FAIL: %zu-shard TPC-C throughput is %.2fx linear "
                     "(< 0.80x)\n",
                     scale.max_shards, tpcc_linear_frac);
        ok = false;
      }
    }

    // ---- Phase 5: TPC-C remote mix vs unsharded reference ----------------
    const std::size_t tpcc_shards = std::min<std::size_t>(4, scale.max_shards);
    const std::size_t tpcc_txs = 100;  // per warehouse
    std::printf("tpcc mixed: %zu NewOrders/warehouse (%.0f%% remote lines) "
                "on %zu shards vs unsharded reference\n",
                tpcc_txs, scale.remote_wh * 100, tpcc_shards);

    const workloads::TpccConfig tpcc_config_mixed = tpcc_config(
        tpcc_shards, /*districts=*/4);
    workloads::Tpcc tpcc(tpcc_config_mixed);
    const ir::TxProgram& neworder = *tpcc.profiles()[0].program;

    harness::ClusterConfig tpcc_sharded_config = args.cluster;
    tpcc_sharded_config.n_servers = scale.group_servers;
    tpcc_sharded_config.n_groups = tpcc_shards;
    tpcc_sharded_config.prepare_lease_ns = 2'000'000'000;
    harness::Cluster tpcc_sharded(tpcc_sharded_config);
    shard::ClientFleet fleet(tpcc, static_cast<std::uint32_t>(tpcc_shards));
    fleet.seed(tpcc_sharded, tpcc);

    harness::ClusterConfig tpcc_reference_config = tpcc_sharded_config;
    tpcc_reference_config.n_groups = 1;
    // In-process simulation always (see phase 2's reference).
    tpcc_reference_config.transport_mode = harness::TransportMode::kSim;
    harness::Cluster tpcc_reference(tpcc_reference_config);
    tpcc.seed(tpcc_reference.servers());

    // One op list per warehouse, fixed up front: warehouse w's thread (and
    // the reference, per warehouse in the same order) executes exactly this
    // sequence, so every district sees a deterministic order of NewOrders.
    // Cross-warehouse effects are only commuting stock updates.
    std::vector<std::vector<std::vector<Record>>> tpcc_ops(tpcc_shards);
    for (std::size_t w = 0; w < tpcc_shards; ++w) {
      acn::Rng rng(args.driver.seed + 0x700 + 0xdead * w);
      for (std::size_t t = 0; t < tpcc_txs; ++t) {
        const auto d = static_cast<store::Field>(
            rng.uniform(0, tpcc_config_mixed.districts_per_warehouse - 1));
        tpcc_ops[w].push_back(make_neworder_params(
            tpcc_config_mixed, static_cast<store::Field>(w), d, rng,
            scale.remote_wh));
      }
    }

    // Sharded run: one Client per warehouse, concurrent.
    std::uint64_t tpcc_commits = 0;
    {
      auto factory = fleet.factory();
      std::vector<std::unique_ptr<harness::Submitter>> submitters;
      for (std::size_t w = 0; w < tpcc_shards; ++w)
        submitters.push_back(factory(tpcc_sharded, w, args.driver.executor,
                                     args.driver.seed ^ (w << 16)));
      std::vector<acn::ExecStats> stats(tpcc_shards);
      std::vector<std::thread> clients;
      for (std::size_t w = 0; w < tpcc_shards; ++w)
        clients.emplace_back([&, w] {
          for (const auto& params : tpcc_ops[w])
            submitters[w]->run(harness::Protocol::kFlat,
                               acn::with_program(neworder), params, stats[w]);
        });
      for (auto& thread : clients) thread.join();
      for (const auto& s : stats) tpcc_commits += s.commits;
    }
    // Sequential reference: per warehouse in the same per-op order.
    {
      auto stub = tpcc_reference.make_stub(0, args.driver.seed);
      acn::Executor executor(stub, args.driver.executor, args.driver.seed);
      acn::ExecStats stats;
      for (std::size_t w = 0; w < tpcc_shards; ++w)
        for (const auto& params : tpcc_ops[w])
          executor.run(harness::Protocol::kFlat, acn::with_program(neworder),
                       params, stats);
    }

    // Every seeded key is the whole universe (NewOrder writes only ring
    // slots that seeding created), so compare all of them.
    std::vector<ObjectKey> tpcc_keys;
    tpcc.seed_objects([&](const ObjectKey& key, const Record&) {
      tpcc_keys.push_back(key);
    });
    const harness::StateMirror tpcc_state = tpcc_sharded.mirror();
    std::size_t tpcc_mismatched = 0;
    for (const ObjectKey& key : tpcc_keys) {
      const Record got =
          workloads::latest_value(tpcc_state.servers, key).value;
      const Record want =
          workloads::latest_value(tpcc_reference.servers(), key).value;
      if (got != want) {
        ++tpcc_mismatched;
        std::fprintf(stderr, "FAIL: tpcc key %s diverged from reference\n",
                     store::to_string(key).c_str());
      }
    }
    tpcc_cross = fleet.stats().cross_shard.load();
    const std::uint64_t tpcc_cross_commits = fleet.stats().cross_commits.load();
    const std::size_t tpcc_leases = cluster_open_leases(tpcc_sharded);
    const std::size_t tpcc_protected = cluster_protected(tpcc_sharded);
    std::printf("tpcc mixed: %llu commits (%llu cross-shard), %zu keys "
                "compared\n",
                static_cast<unsigned long long>(tpcc_commits),
                static_cast<unsigned long long>(tpcc_cross_commits),
                tpcc_keys.size());
    if (tpcc_mismatched != 0) ok = false;
    if (tpcc_commits != tpcc_shards * tpcc_txs) {
      std::fprintf(stderr, "FAIL: tpcc %llu commits for %zu NewOrders\n",
                   static_cast<unsigned long long>(tpcc_commits),
                   tpcc_shards * tpcc_txs);
      ok = false;
    }
    if (tpcc_cross_commits == 0 && tpcc_shards > 1 && scale.remote_wh > 0) {
      std::fprintf(stderr,
                   "FAIL: tpcc mixed run committed no cross-shard NewOrder\n");
      ok = false;
    }
    if (tpcc_leases != 0 || tpcc_protected != 0) {
      std::fprintf(stderr,
                   "FAIL: tpcc orphaned prepares (%zu leases, %zu keys)\n",
                   tpcc_leases, tpcc_protected);
      ok = false;
    }
    check_workload_invariants(tpcc_sharded, tpcc);
    tpcc.check_invariants(tpcc_reference.servers());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abl_shardscale failed: %s\n", e.what());
    return 1;
  }

  if (!args.metrics_json_path.empty()) {
    std::FILE* file = std::fopen(args.metrics_json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "FAIL: cannot open %s\n",
                   args.metrics_json_path.c_str());
      ok = false;
    } else {
      std::fprintf(file, "{\n \"curve\": {");
      for (std::size_t i = 0; i < curve.size(); ++i)
        std::fprintf(file, "%s\"%zu\": %.1f", i ? ", " : "", curve[i].shards,
                     curve[i].tx_per_sec);
      std::fprintf(file, "},\n \"tpcc_curve\": {");
      for (std::size_t i = 0; i < tpcc_curve.size(); ++i)
        std::fprintf(file, "%s\"%zu\": %.1f", i ? ", " : "",
                     tpcc_curve[i].shards, tpcc_curve[i].tx_per_sec);
      std::fprintf(file,
                   "},\n \"linear_frac\": %.4f,\n"
                   " \"tpcc_linear_frac\": %.4f,\n"
                   " \"tpcc_cross\": %llu,\n \"mixed_single\": %llu,\n"
                   " \"mixed_cross\": %llu,\n \"orphans_reclaimed\": %llu,\n"
                   " \"atomicity_breaches\": %llu\n}\n",
                   linear_frac, tpcc_linear_frac,
                   static_cast<unsigned long long>(tpcc_cross),
                   static_cast<unsigned long long>(mixed_single),
                   static_cast<unsigned long long>(mixed_cross),
                   static_cast<unsigned long long>(orphans_reclaimed),
                   static_cast<unsigned long long>(atomicity_breaches));
      std::fclose(file);
      std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
    }
  }

  if (ok)
    std::printf("all shard scale/correctness/crash checks passed "
                "(invariants verified)\n");
  return ok ? 0 : 1;
}
