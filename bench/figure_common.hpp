// Shared runner for the Figure 4 reproduction binaries.
//
// Each bench builds the paper's cluster shape — 10 server replicas in a
// ternary tree behind a simulated LAN — runs one workload under QR-DTM,
// QR-CN and QR-ACN for a fixed number of measurement intervals, and prints
// the per-interval throughput series plus the post-adaptation improvement
// summary (the numbers the paper quotes per panel).
//
// All benches share one option set, BenchOptions::parse(argc, argv):
//   --clients=N --intervals=N --interval-ms=N --servers=N --latency-us=N
//   --seed=N
//   --shards=N           quorum groups; n_servers is then per group (see
//                        harness::ClusterConfig::n_groups).  Every bench
//                        submits through shard::Client, which routes each
//                        transaction by its predicted footprint: N=1 keeps
//                        the classic single-group behavior, N>1 places the
//                        workload per its Placement and commits cross-shard
//                        transactions by 2PC.
// Fault injection (chaos-capable benches):
//   --drop=P             global message-drop probability (both legs)
//   --lease-ms=N         prepare-lease lifetime on every server (0 = off)
// Durability (src/wal; benches that honor it say so in their headers):
//   --durability=wal|none  per-replica write-ahead log + snapshots
//   --data-dir DIR       root directory for per-node logs (node-<i>/ inside)
//   --flush-us=N         group-commit window (0 = fsync every append)
//   --no-fsync           keep the log but skip fsync (comparative benches)
//   --snapshot-kb=N      snapshot + compact after this much log
// Batched read pipeline (QR-CN / QR-ACN runs):
//   --batch-reads        fetch each Block's independent reads in one round
//   --prefetch           also speculate on the next Block (implies the above)
// Contention-aware scheduler (src/sched):
//   --sched=POLICY       none | queue | admit | both (default none)
// Transport (src/transport; benches that support it say so):
//   --transport=MODE     sim | tcp (default sim).  tcp spawns each replica
//                        as a cluster_main process on localhost sockets and
//                        drives it through transport::TcpTransport; per-
//                        process logs land under --tcp-log-dir
//   --tcp-log-dir DIR    replica stderr logs + topology file (default
//                        cluster-logs)
// Execution mode (src/queue — the deterministic epoch lane):
//   --exec=MODE          acn | queue | hybrid (default acn).  queue sends
//                        every predictable transaction through the epoch
//                        lane; hybrid routes by scheduler hotness (pair it
//                        with --sched=queue/both so hotness is tracked)
//   --epoch-max=N        planner epoch cut size (transactions per epoch)
//   --epoch-wait-us=N    how long the planner holds an epoch open to fill
//   --executors=N        queue executor threads draining an epoch
// Observability (both --flag=FILE and --flag FILE forms):
//   --trace FILE         Chrome-trace/Perfetto JSON of the runs
//   --metrics-json FILE  per-protocol metrics snapshots as JSON
//   --metrics-csv FILE   same snapshots as protocol,name,kind,stat,value rows
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "src/harness/driver.hpp"
#include "src/harness/report.hpp"
#include "src/obs/obs.hpp"
#include "src/queue/service.hpp"
#include "src/shard/client.hpp"

namespace acn::bench {

struct BenchOptions {
  harness::ClusterConfig cluster;
  harness::DriverConfig driver;
  std::string csv_path;           // --csv=FILE: dump the per-interval series
  std::string trace_path;         // --trace FILE: Chrome-trace JSON
  std::string metrics_json_path;  // --metrics-json FILE
  std::string metrics_csv_path;   // --metrics-csv FILE
  /// --drop=P: benches that inject faults apply this to the cluster network
  /// after construction (run_figure ignores it).
  double drop_probability = 0.0;
  /// --exec=MODE plus the epoch lane's tuning knobs.
  shard::ExecMode exec_mode = shard::ExecMode::kAcn;
  queue::QueueConfig queue;
  /// True when --data-dir was given explicitly.  Otherwise the data dir
  /// defaults to a per-run path under the system temp directory, and
  /// cleanup_data_dir() removes it when the bench succeeds — durable runs
  /// must not litter the working tree with wal-data-* directories.
  bool data_dir_overridden = false;
  /// Shared so copies of BenchOptions keep driver.obs valid.
  std::shared_ptr<obs::Observability> obs;

  /// Remove the run's durable data (call on success only — a failed run
  /// keeps its logs for inspection).  No-op for an explicit --data-dir:
  /// the user owns that path.
  void cleanup_data_dir() const {
    if (data_dir_overridden) return;
    std::error_code ec;  // best effort: a vanished dir is fine
    std::filesystem::remove_all(cluster.durability.data_dir, ec);
  }

  BenchOptions() {
    cluster.n_servers = 10;
    cluster.base_latency = std::chrono::microseconds{25};
    cluster.stub.retry.base = std::chrono::microseconds{20};
    driver.n_clients = 8;
    driver.intervals = 8;
    driver.interval = std::chrono::milliseconds{250};
    driver.executor.backoff_base = std::chrono::microseconds{20};
    driver.seed = 42;
  }

  /// Parse the shared command-line options (see the header comment for the
  /// full list).  `extra` lets a bench claim its own flags before the
  /// shared set (return true = consumed); everything else is shared, so
  /// every bench accepts --shards/--sched/--durability/... identically.
  /// Unknown arguments are reported and ignored, so benches stay
  /// permissive across versions.
  static BenchOptions parse(int argc, char** argv,
                            const std::function<bool(const std::string&)>&
                                extra = {});
};

inline BenchOptions BenchOptions::parse(
    int argc, char** argv,
    const std::function<bool(const std::string&)>& extra) {
  BenchOptions args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (extra && extra(arg)) continue;
    auto value = [&](const char* prefix) -> long {
      return std::strtol(arg.c_str() + std::strlen(prefix), nullptr, 10);
    };
    // String-valued flag accepting --flag=FILE and --flag FILE.
    auto path_flag = [&](const char* flag, std::string& out) -> bool {
      const std::size_t n = std::strlen(flag);
      if (arg.rfind(flag, 0) != 0) return false;
      if (arg.size() > n && arg[n] == '=') {
        out = arg.substr(n + 1);
        return true;
      }
      if (arg.size() == n && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return false;
    };
    if (path_flag("--csv", args.csv_path) ||
        path_flag("--trace", args.trace_path) ||
        path_flag("--metrics-json", args.metrics_json_path) ||
        path_flag("--metrics-csv", args.metrics_csv_path))
      continue;
    if (path_flag("--data-dir", args.cluster.durability.data_dir)) {
      args.data_dir_overridden = true;
      continue;
    }
    if (path_flag("--tcp-log-dir", args.cluster.tcp.log_dir)) continue;
    if (arg == "--transport=sim") {
      args.cluster.transport_mode = harness::TransportMode::kSim;
      continue;
    }
    if (arg == "--transport=tcp") {
      args.cluster.transport_mode = harness::TransportMode::kTcp;
      continue;
    }
    if (arg == "--durability=wal") {
      args.cluster.durability.mode = harness::DurabilityMode::kWal;
      continue;
    }
    if (arg == "--durability=none") {
      args.cluster.durability.mode = harness::DurabilityMode::kNone;
      continue;
    }
    if (arg.rfind("--flush-us=", 0) == 0) {
      args.cluster.durability.flush_interval_ns = value("--flush-us=") * 1'000;
      continue;
    }
    if (arg.rfind("--snapshot-kb=", 0) == 0) {
      args.cluster.durability.snapshot_every_bytes =
          static_cast<std::uint64_t>(value("--snapshot-kb=")) * 1024;
      continue;
    }
    if (arg == "--no-fsync") {
      args.cluster.durability.fsync = false;
      continue;
    }
    if (arg.rfind("--exec=", 0) == 0) {
      const auto mode =
          shard::parse_exec_mode(arg.c_str() + std::strlen("--exec="));
      if (!mode) {
        std::fprintf(stderr, "bad --exec value: %s\n", arg.c_str());
        std::exit(2);
      }
      args.exec_mode = *mode;
      continue;
    }
    if (arg.rfind("--epoch-max=", 0) == 0) {
      args.queue.epoch_max = static_cast<std::size_t>(value("--epoch-max="));
      continue;
    }
    if (arg.rfind("--epoch-wait-us=", 0) == 0) {
      args.queue.epoch_wait =
          std::chrono::microseconds{value("--epoch-wait-us=")};
      continue;
    }
    if (arg.rfind("--executors=", 0) == 0) {
      args.queue.n_executors = static_cast<std::size_t>(value("--executors="));
      continue;
    }
    if (arg.rfind("--sched=", 0) == 0) {
      const auto policy =
          sched::parse_policy(arg.c_str() + std::strlen("--sched="));
      if (!policy) {
        std::fprintf(stderr, "bad --sched value: %s\n", arg.c_str());
        std::exit(2);
      }
      args.driver.scheduler.policy = *policy;
      continue;
    }
    if (arg == "--batch-reads") {
      args.driver.batch_reads = true;
    } else if (arg == "--prefetch") {
      // Prefetching rides the batched round; the flag implies batching.
      args.driver.batch_reads = true;
      args.driver.prefetch = true;
    } else if (arg.rfind("--clients=", 0) == 0)
      args.driver.n_clients = static_cast<std::size_t>(value("--clients="));
    else if (arg.rfind("--intervals=", 0) == 0)
      args.driver.intervals = static_cast<std::size_t>(value("--intervals="));
    else if (arg.rfind("--interval-ms=", 0) == 0)
      args.driver.interval = std::chrono::milliseconds{value("--interval-ms=")};
    else if (arg.rfind("--servers=", 0) == 0)
      args.cluster.n_servers = static_cast<std::size_t>(value("--servers="));
    else if (arg.rfind("--shards=", 0) == 0)
      args.cluster.n_groups = static_cast<std::size_t>(value("--shards="));
    else if (arg.rfind("--latency-us=", 0) == 0)
      args.cluster.base_latency = std::chrono::microseconds{value("--latency-us=")};
    else if (arg.rfind("--seed=", 0) == 0)
      args.driver.seed = static_cast<std::uint64_t>(value("--seed="));
    else if (arg.rfind("--drop=", 0) == 0)
      args.drop_probability =
          std::strtod(arg.c_str() + std::strlen("--drop="), nullptr);
    else if (arg.rfind("--lease-ms=", 0) == 0)
      args.cluster.prepare_lease_ns = value("--lease-ms=") * 1'000'000;
    else
      std::fprintf(stderr, "ignoring unknown arg: %s\n", arg.c_str());
  }
  if (!args.data_dir_overridden) {
    // Per-run temp path: parallel bench invocations never collide, and a
    // successful run (cleanup_data_dir) leaves nothing in the working tree.
    std::error_code ec;
    std::filesystem::path base = std::filesystem::temp_directory_path(ec);
    if (ec) base = ".";
    args.cluster.durability.data_dir =
        (base / ("acn-wal-" +
                 std::filesystem::path(argv[0]).filename().string() + "-" +
                 std::to_string(static_cast<unsigned long>(::getpid()))))
            .string();
  }
  if (!args.trace_path.empty() || !args.metrics_json_path.empty() ||
      !args.metrics_csv_path.empty()) {
    obs::ObsConfig config;
    config.trace_enabled = !args.trace_path.empty();
    args.obs = std::make_shared<obs::Observability>(config);
    args.driver.obs = args.obs.get();
  }
  return args;
}

/// Route the fleet's clients through the deterministic epoch lane per
/// --exec (no-op for --exec=acn).  The lane is built lazily by the first
/// client thread; one EpochService is shared by the whole fleet.
inline void arm_exec_mode(shard::ClientFleet& fleet, const BenchOptions& args) {
  if (args.exec_mode == shard::ExecMode::kAcn) return;
  const queue::QueueConfig config = args.queue;
  const std::uint64_t seed = args.driver.seed;
  obs::Observability* obs = args.driver.obs;
  fleet.set_lane(args.exec_mode,
                 [config, seed, obs](harness::Cluster& cluster,
                                     const shard::ShardRouter& router) {
                   return std::make_shared<queue::EpochService>(
                       cluster, router, config, seed, obs);
                 });
}

/// Print the lane-side dispatch and epoch counters after a run (no-op when
/// the lane never engaged).
inline void print_lane_summary(const shard::ClientFleet& fleet) {
  const auto& stats = fleet.stats();
  if (stats.lane_submits.load() == 0) return;
  std::printf("lane dispatch: submitted %llu, committed %llu, demoted %llu\n",
              static_cast<unsigned long long>(stats.lane_submits.load()),
              static_cast<unsigned long long>(stats.lane_commits.load()),
              static_cast<unsigned long long>(stats.lane_demotions.load()));
  if (const auto service =
          std::dynamic_pointer_cast<queue::EpochService>(fleet.lane())) {
    const queue::ServiceStats& qs = service->stats();
    const std::uint64_t epochs = qs.epochs.load();
    std::printf(
        "epoch lane: %llu epochs (%llu committed, %llu retries), avg size "
        "%.1f, spec reads %llu, mispredicted %llu\n",
        static_cast<unsigned long long>(epochs),
        static_cast<unsigned long long>(qs.epoch_commits.load()),
        static_cast<unsigned long long>(qs.epoch_retries.load()),
        epochs > 0 ? static_cast<double>(qs.submitted.load()) /
                         static_cast<double>(epochs)
                   : 0.0,
        static_cast<unsigned long long>(qs.spec_reads.load()),
        static_cast<unsigned long long>(qs.mispredicted.load()));
  }
}

/// Run `workload` under `protocol` with every worker submitting through a
/// shard::Client of `fleet` (the cluster must be seeded via fleet.seed).
/// With --shards=1 this is behaviorally the classic unsharded run: every
/// plan is single-shard and the Client is a pass-through to the home
/// group's Executor.
inline harness::RunResult run_sharded(harness::Cluster& cluster,
                                      const workloads::Workload& workload,
                                      harness::Protocol protocol,
                                      harness::DriverConfig driver,
                                      shard::ClientFleet& fleet) {
  driver.make_submitter = fleet.factory();
  driver.shard_of = fleet.shard_of();
  return harness::run(cluster, workload, protocol, driver);
}

template <class MakeWorkload>
int run_figure(const std::string& title, const BenchOptions& args,
               MakeWorkload&& make_workload) {
  try {
    // One cluster + client fleet per protocol: workloads submit through
    // shard::Client, which routes by predicted footprint (single-shard
    // fast path or cross-shard 2PC) behind the uniform Submitter API.
    std::vector<harness::RunResult> results;
    for (const harness::Protocol protocol :
         {harness::Protocol::kFlat, harness::Protocol::kManualCN,
          harness::Protocol::kAcn}) {
      harness::Cluster cluster(args.cluster);
      auto workload = make_workload();
      shard::ClientFleet fleet(
          *workload, static_cast<std::uint32_t>(args.cluster.n_groups));
      fleet.seed(cluster, *workload);
      arm_exec_mode(fleet, args);
      results.push_back(
          run_sharded(cluster, *workload, protocol, args.driver, fleet));
      print_lane_summary(fleet);
      if (args.cluster.n_groups > 1) {
        const auto& stats = fleet.stats();
        const auto router = fleet.router().stats();
        std::printf(
            "%s dispatch: fast-path %llu, cross-shard %llu "
            "(escalations %llu, mispredicted %llu, atomicity-breaches %llu)\n",
            harness::protocol_name(protocol),
            static_cast<unsigned long long>(stats.fast_path.load()),
            static_cast<unsigned long long>(stats.cross_shard.load()),
            static_cast<unsigned long long>(stats.escalations.load()),
            static_cast<unsigned long long>(router.mispredicted),
            static_cast<unsigned long long>(stats.atomicity_breaches.load()));
      }
    }
    harness::print_figure(title, results, args.driver);
    if (!args.csv_path.empty() &&
        harness::write_csv(args.csv_path, results, args.driver))
      std::printf("series written to %s\n", args.csv_path.c_str());
    if (args.obs) {
      if (!args.trace_path.empty() &&
          args.obs->tracer.write_chrome_json(args.trace_path))
        std::printf("trace written to %s (dropped events: %llu)\n",
                    args.trace_path.c_str(),
                    static_cast<unsigned long long>(args.obs->tracer.dropped()));
      if (!args.metrics_json_path.empty() &&
          harness::write_metrics_json(args.metrics_json_path, results))
        std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
      if (!args.metrics_csv_path.empty() &&
          harness::write_metrics_csv(args.metrics_csv_path, results))
        std::printf("metrics written to %s\n", args.metrics_csv_path.c_str());
    }
    args.cleanup_data_dir();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s failed: %s\n", title.c_str(), e.what());
    return 1;
  }
}

}  // namespace acn::bench
