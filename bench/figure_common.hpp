// Shared runner for the Figure 4 reproduction binaries.
//
// Each bench builds the paper's cluster shape — 10 server replicas in a
// ternary tree behind a simulated LAN — runs one workload under QR-DTM,
// QR-CN and QR-ACN for a fixed number of measurement intervals, and prints
// the per-interval throughput series plus the post-adaptation improvement
// summary (the numbers the paper quotes per panel).
//
// Command-line overrides (all optional, positional-free):
//   --clients=N --intervals=N --interval-ms=N --servers=N --latency-us=N
//   --seed=N
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/harness/driver.hpp"
#include "src/harness/report.hpp"

namespace acn::bench {

struct FigureArgs {
  harness::ClusterConfig cluster;
  harness::DriverConfig driver;
  std::string csv_path;  // --csv=FILE: dump the per-interval series

  FigureArgs() {
    cluster.n_servers = 10;
    cluster.base_latency = std::chrono::microseconds{25};
    cluster.stub.busy_backoff = std::chrono::microseconds{20};
    driver.n_clients = 8;
    driver.intervals = 8;
    driver.interval = std::chrono::milliseconds{250};
    driver.executor.backoff_base = std::chrono::microseconds{20};
    driver.seed = 42;
  }
};

inline FigureArgs parse_args(int argc, char** argv) {
  FigureArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> long {
      return std::strtol(arg.c_str() + std::strlen(prefix), nullptr, 10);
    };
    if (arg.rfind("--clients=", 0) == 0)
      args.driver.n_clients = static_cast<std::size_t>(value("--clients="));
    else if (arg.rfind("--intervals=", 0) == 0)
      args.driver.intervals = static_cast<std::size_t>(value("--intervals="));
    else if (arg.rfind("--interval-ms=", 0) == 0)
      args.driver.interval = std::chrono::milliseconds{value("--interval-ms=")};
    else if (arg.rfind("--servers=", 0) == 0)
      args.cluster.n_servers = static_cast<std::size_t>(value("--servers="));
    else if (arg.rfind("--latency-us=", 0) == 0)
      args.cluster.base_latency = std::chrono::microseconds{value("--latency-us=")};
    else if (arg.rfind("--seed=", 0) == 0)
      args.driver.seed = static_cast<std::uint64_t>(value("--seed="));
    else if (arg.rfind("--csv=", 0) == 0)
      args.csv_path = arg.substr(std::strlen("--csv="));
    else
      std::fprintf(stderr, "ignoring unknown arg: %s\n", arg.c_str());
  }
  return args;
}

template <class MakeWorkload>
int run_figure(const std::string& title, const FigureArgs& args,
               MakeWorkload&& make_workload) {
  try {
    const auto results = harness::run_all_protocols(
        args.cluster, std::forward<MakeWorkload>(make_workload), args.driver);
    harness::print_figure(title, results, args.driver);
    if (!args.csv_path.empty() &&
        harness::write_csv(args.csv_path, results, args.driver))
      std::printf("series written to %s\n", args.csv_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s failed: %s\n", title.c_str(), e.what());
    return 1;
  }
}

}  // namespace acn::bench
