// Figure 4(c): TPC-C, 50% NewOrder + 50% Payment.
//
// Paper: after QR-ACN kicks in, +28% over QR-DTM and +9% over QR-CN.
#include "bench/figure_common.hpp"
#include "src/workloads/tpcc.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  acn::workloads::TpccConfig config;
  config.w_neworder = 0.5;
  config.w_payment = 0.5;
  return acn::bench::run_figure(
      "Figure 4(c): TPC-C NewOrder 50% + Payment 50%", args,
      [config] { return std::make_unique<acn::workloads::Tpcc>(config); });
}
