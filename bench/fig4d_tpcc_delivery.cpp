// Figure 4(d): TPC-C, 100% Delivery transactions.
//
// Paper: Delivery spreads its accesses uniformly over many objects with
// similar low contention, so closed nesting does not pay off — QR-DTM,
// QR-CN and QR-ACN perform alike.  The panel's purpose is to bound
// QR-ACN's overhead relative to manual QR-CN (< 3% in the paper).
#include "bench/figure_common.hpp"
#include "src/workloads/tpcc.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  acn::workloads::TpccConfig config;
  config.w_neworder = 0.0;
  config.w_delivery = 1.0;
  return acn::bench::run_figure(
      "Figure 4(d): TPC-C Delivery 100% (uniform low contention)", args,
      [config] { return std::make_unique<acn::workloads::Tpcc>(config); });
}
