// Scheduler acceptance gate: contention-aware scheduling must beat plain
// optimistic racing on a hot-key-skewed Bank.
//
// Two QR-ACN runs on identical fresh clusters (same seed, same workload,
// same intervals): one with --sched=none (the baseline: reactive exponential
// backoff only), one with --sched=both (AIMD admission + hot-key conflict
// queues).  The workload concentrates nearly every transfer on a tiny
// branch hot set, the regime the scheduler exists for.  The gate requires,
// for the scheduled run relative to the baseline:
//
//   1. committed throughput no worse (total commits >= baseline commits),
//   2. strictly fewer full aborts (conflicts resolved locally, not by
//      racing to the validation/commit round),
//   3. strictly fewer total RPCs (the round-trips those aborts burned),
//   4. liveness throughout: every measurement interval of the scheduled
//      run commits at least one transaction (no deadlock — tickets are
//      acquired in canonical key order; no starvation — FIFO queues plus
//      admission aging), and the run itself terminates.
//
// Exit status is non-zero when any check fails, so CI gates on it.
// Variants exercised by CI:
//   --durability=wal   same comparison over durable replicas,
//   --chaos-burst      same comparison with a mid-run message-drop burst
//                      (both runs get the identical fault plan).
#include <filesystem>
#include <string>

#include "bench/figure_common.hpp"
#include "src/chaos/chaos.hpp"
#include "src/workloads/bank.hpp"

namespace {

struct GateResult {
  acn::harness::RunResult run;
  std::uint64_t total_rpcs = 0;
};

std::uint64_t total_rpcs(const acn::obs::Snapshot& snap) {
  std::uint64_t total = 0;
  for (const char* name : {"rpc.read", "rpc.read.batched", "rpc.validate",
                           "rpc.prepare", "rpc.commit", "rpc.abort",
                           "rpc.contention"})
    total += snap.counter(name);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acn;
  bool chaos_burst = false;
  std::size_t hot_branches = 2;
  double hot_probability = 0.95;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool mine = true;
    if (arg == "--chaos-burst")
      chaos_burst = true;
    else if (arg.rfind("--hot-branches=", 0) == 0)
      hot_branches = static_cast<std::size_t>(
          std::strtol(arg.c_str() + 15, nullptr, 10));
    else if (arg.rfind("--hot-prob=", 0) == 0)
      hot_probability = std::strtod(arg.c_str() + 11, nullptr);
    else
      mine = false;
    // Neutralize consumed args for BenchOptions::parse (run_policy sets the
    // policy itself, so a spare --sched=none is inert).
    if (mine) argv[i] = const_cast<char*>("--sched=none");
  }
  auto args = bench::BenchOptions::parse(argc, argv);
  if (!args.obs) {
    args.obs = std::make_shared<obs::Observability>();
    args.driver.obs = args.obs.get();
  }
  const bool durable =
      args.cluster.durability.mode == harness::DurabilityMode::kWal;
  // The durable variant gates on the *scheduling* effect over the WAL code
  // path (append, group commit, snapshots), not on disk performance: real
  // fsync latency on shared CI disks varies by 2-3x run to run, which would
  // drown the comparison.
  if (durable) args.cluster.durability.fsync = false;

  // The hot-key regime: most transfers hit a small branch hot set.
  workloads::BankConfig bank_config;
  bank_config.hot_branches = hot_branches;
  bank_config.hot_probability = hot_probability;

  std::printf("\n=== Scheduler gate: skewed Bank, QR-ACN, none vs both%s%s ===\n",
              durable ? " (durable)" : "", chaos_burst ? " (drop burst)" : "");

  auto run_policy = [&](sched::SchedulerPolicy policy) -> GateResult {
    auto cluster_config = args.cluster;
    if (durable) {
      cluster_config.durability.data_dir =
          (std::filesystem::path(args.cluster.durability.data_dir) /
           sched::policy_name(policy))
              .string();
      std::filesystem::remove_all(cluster_config.durability.data_dir);
    }
    harness::Cluster cluster(cluster_config);
    cluster.set_obs(args.obs.get());
    workloads::Bank bank(bank_config);
    bank.seed(cluster.servers());
    cluster.checkpoint_all();

    auto driver = args.driver;
    driver.scheduler.policy = policy;

    chaos::FaultPlan plan;
    if (chaos_burst) {
      const auto interval =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              driver.interval);
      plan.drop_burst(interval * 2, /*probability=*/0.08, interval * 3);
    }
    chaos::ChaosController chaos(cluster, plan, args.obs.get());

    const auto before = args.obs->metrics.snapshot();
    GateResult result;
    try {
      chaos.start();
      result.run = harness::run(cluster, bank, harness::Protocol::kAcn, driver);
      chaos.stop();
    } catch (...) {
      chaos.stop(/*drain=*/true);
      throw;
    }
    result.total_rpcs =
        total_rpcs(args.obs->metrics.snapshot().since(before));
    return result;
  };

  try {
    const GateResult baseline = run_policy(sched::SchedulerPolicy::kNone);
    const GateResult scheduled = run_policy(sched::SchedulerPolicy::kBoth);

    const auto show = [](const char* label, const GateResult& r) {
      std::printf("%-6s commits=%8llu full_aborts=%8llu rpcs=%10llu\n", label,
                  static_cast<unsigned long long>(r.run.stats.commits),
                  static_cast<unsigned long long>(r.run.stats.full_aborts),
                  static_cast<unsigned long long>(r.total_rpcs));
    };
    show("none", baseline);
    show("both", scheduled);
    {
      const auto snap = args.obs->metrics.snapshot();
      std::printf(
          "sched: admit{immediate=%llu waits=%llu aged=%llu} "
          "queue{acquires=%llu waits=%llu timeouts=%llu}\n",
          static_cast<unsigned long long>(snap.counter("sched.admit.immediate")),
          static_cast<unsigned long long>(snap.counter("sched.admit.waits")),
          static_cast<unsigned long long>(snap.counter("sched.admit.aged")),
          static_cast<unsigned long long>(snap.counter("sched.queue.acquires")),
          static_cast<unsigned long long>(snap.counter("sched.queue.waits")),
          static_cast<unsigned long long>(snap.counter("sched.queue.timeouts")));
    }

    bool ok = true;
    if (scheduled.run.stats.commits < baseline.run.stats.commits) {
      std::fprintf(stderr,
                   "FAIL: scheduled throughput below baseline "
                   "(%llu < %llu commits)\n",
                   static_cast<unsigned long long>(scheduled.run.stats.commits),
                   static_cast<unsigned long long>(baseline.run.stats.commits));
      ok = false;
    }
    if (scheduled.run.stats.full_aborts >= baseline.run.stats.full_aborts) {
      std::fprintf(stderr,
                   "FAIL: full aborts not reduced (%llu >= %llu)\n",
                   static_cast<unsigned long long>(
                       scheduled.run.stats.full_aborts),
                   static_cast<unsigned long long>(
                       baseline.run.stats.full_aborts));
      ok = false;
    }
    if (scheduled.total_rpcs >= baseline.total_rpcs) {
      std::fprintf(stderr, "FAIL: total RPCs not reduced (%llu >= %llu)\n",
                   static_cast<unsigned long long>(scheduled.total_rpcs),
                   static_cast<unsigned long long>(baseline.total_rpcs));
      ok = false;
    }
    for (std::size_t k = 0; k < scheduled.run.throughput.size(); ++k)
      if (scheduled.run.throughput[k] <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: scheduled run starved in interval %zu "
                     "(no commits)\n",
                     k);
        ok = false;
      }

    if (!args.metrics_json_path.empty()) {
      std::FILE* file = std::fopen(args.metrics_json_path.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "FAIL: cannot open %s\n",
                     args.metrics_json_path.c_str());
        ok = false;
      } else {
        std::fprintf(file, "%s\n",
                     args.obs->metrics.snapshot().to_json().c_str());
        std::fclose(file);
        std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
      }
    }
    if (ok) {
      std::printf("scheduler gate passed (throughput held, aborts and RPCs "
                  "reduced, no starvation)\n");
      args.cleanup_data_dir();
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abl_scheduler failed: %s\n", e.what());
    return 1;
  }
}
