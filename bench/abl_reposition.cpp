// Ablation: which Algorithm Module steps buy the performance?
//
// Runs Bank under QR-ACN with each step disabled in turn:
//   full        — Steps 1+2+3 (the paper's QR-ACN)
//   no-resplit  — Step 1 off: local ops stay with their latest producer
//   no-merge    — Step 2 off: one UnitBlock per Block
//   no-reorder  — Step 3 off: static order, hot blocks stay early
//   strict-dep  — Step 2 merges only dependent neighbours (the paper's
//                 V-C3 wording rather than its Figure 3 behaviour)
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;

  struct Variant {
    const char* name;
    AlgorithmConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}});
  {
    AlgorithmConfig c;
    c.enable_resplit = false;
    variants.push_back({"no-resplit", c});
  }
  {
    AlgorithmConfig c;
    c.enable_merge = false;
    variants.push_back({"no-merge", c});
  }
  {
    AlgorithmConfig c;
    c.enable_reorder = false;
    variants.push_back({"no-reorder", c});
  }
  {
    AlgorithmConfig c;
    c.merge_requires_dependency = true;
    variants.push_back({"strict-dep", c});
  }

  std::printf("\n=== Ablation: Algorithm Module steps (Bank, QR-ACN) ===\n");
  std::printf("%12s %14s %16s %16s\n", "variant", "mean tx/s",
              "partial aborts", "full aborts");
  for (const auto& variant : variants) {
    auto driver = args.driver;
    driver.algorithm = variant.config;
    harness::Cluster cluster(args.cluster);
    workloads::Bank bank;
    bank.seed(cluster.servers());
    try {
      const auto result =
          harness::run(cluster, bank, harness::Protocol::kAcn, driver);
      std::printf("%12s %14.1f %16llu %16llu\n", variant.name,
                  result.mean_throughput(1),
                  static_cast<unsigned long long>(result.stats.partial_aborts),
                  static_cast<unsigned long long>(result.stats.full_aborts));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name, e.what());
      return 1;
    }
  }
  return 0;
}
