// Ablation: adaptation window length (the paper fixes 10 s; here the
// measurement/adaptation interval is a free time-scale parameter).  Shorter
// windows react faster to the Vacation hot-table rotation but see noisier
// contention estimates.  Prints, per window length, the mean QR-ACN
// throughput over a fixed total runtime with one phase change in the
// middle.
#include "bench/figure_common.hpp"
#include "src/workloads/vacation.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  const auto total = std::chrono::milliseconds{1600};

  std::printf("\n=== Ablation: adaptation window (Vacation, QR-ACN) ===\n");
  std::printf("%14s %10s %14s %14s\n", "window(ms)", "windows", "mean tx/s",
              "adaptations");
  for (const long window_ms : {100L, 200L, 400L, 800L}) {
    auto driver = args.driver;
    driver.interval = std::chrono::milliseconds{window_ms};
    driver.intervals = static_cast<std::size_t>(total.count() / window_ms);
    driver.phase_changes = {{driver.intervals / 2, 1}};
    harness::Cluster cluster(args.cluster);
    workloads::Vacation vacation;
    vacation.seed(cluster.servers());
    try {
      const auto result =
          harness::run(cluster, vacation, harness::Protocol::kAcn, driver);
      std::printf("%14ld %10zu %14.1f %14llu\n", window_ms, driver.intervals,
                  result.mean_throughput(1),
                  static_cast<unsigned long long>(result.adaptations));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "window %ld failed: %s\n", window_ms, e.what());
      return 1;
    }
  }
  return 0;
}
