// Ablation: how the Dynamic Module learns contention.
//
//   explicit  — one contention query per adaptation tick (a handful of
//               messages per window);
//   piggyback — levels ride on every read RPC (the paper's described
//               mechanism: "meta-data are coupled with existing network
//               messages, which slightly increases the network
//               transmission delay").
//
// Prints QR-ACN throughput and wire bytes for both modes on the Bank
// workload with a mid-run contention change, quantifying the freshness /
// bandwidth trade.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 6;
  args.driver.phase_changes = {{3, 1}};

  std::printf("\n=== Ablation: contention feed (Bank, QR-ACN) ===\n");
  std::printf("%12s %14s %16s %18s\n", "mode", "mean tx/s", "wire bytes",
              "bytes/commit");
  for (const bool piggyback : {false, true}) {
    auto driver = args.driver;
    driver.piggyback_contention = piggyback;
    harness::Cluster cluster(args.cluster);
    workloads::Bank bank;
    bank.seed(cluster.servers());
    try {
      const auto result =
          harness::run(cluster, bank, harness::Protocol::kAcn, driver);
      const auto bytes = cluster.network().stats().bytes();
      std::printf("%12s %14.1f %16llu %18.1f\n",
                  piggyback ? "piggyback" : "explicit",
                  result.mean_throughput(1),
                  static_cast<unsigned long long>(bytes),
                  static_cast<double>(bytes) /
                      static_cast<double>(std::max<std::uint64_t>(
                          result.stats.commits, 1)));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mode %d failed: %s\n", piggyback, e.what());
      return 1;
    }
  }
  return 0;
}
