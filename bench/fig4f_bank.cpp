// Figure 4(f): Bank, 90% write transactions, contention changes in the 2nd
// and 4th intervals (hot class flips branches -> accounts -> branches).
//
// Paper: QR-CN (the Figure 2 manual decomposition) wins at the very start;
// QR-ACN then re-splits account/branch blocks and reorders them, reaching
// gains up to 55%.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  args.driver.phase_changes = {{1, 1}, {3, 0}};
  return acn::bench::run_figure(
      "Figure 4(f): Bank 90% writes, contention changes at intervals 2 and 4",
      args, [] { return std::make_unique<acn::workloads::Bank>(); });
}
