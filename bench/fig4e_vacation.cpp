// Figure 4(e): Vacation with the hot objects changing in the 2nd and 4th
// intervals (hot table rotates cars -> flights -> cars).
//
// Paper: QR-ACN re-adapts after each change — +120% over QR-DTM and +35%
// over QR-CN in the second interval, and still +8% over QR-DTM when the
// fourth interval's change happens to favour the static compositions.
#include "bench/figure_common.hpp"
#include "src/workloads/vacation.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  args.driver.phase_changes = {{1, 1}, {3, 0}};
  return acn::bench::run_figure(
      "Figure 4(e): Vacation, contention changes at intervals 2 and 4", args,
      [] { return std::make_unique<acn::workloads::Vacation>(); });
}
