// Partition-and-heal acceptance scenario for the fault subsystem.
//
// One scripted chaos run over the Bank workload:
//   * 10% bidirectional message drops for the middle of the run,
//   * a leaf server crashes and rejoins mid-run (anti-entropy catch-up),
//   * two leaves are partitioned away from the rest and healed,
//   * a second leaf crashes near the end and stays down until the run
//     stops, so its rejoin catch-up runs against a quiescent cluster,
//   * an orphaned two-phase commit (prepared, never finished) holds two
//     account keys until its prepare lease expires.
//
// The run must keep committing transactions throughout, and at exit it
// verifies, beyond the driver's Bank-sum invariant:
//   1. rpc.lease.expired > 0 — the orphaned prepare was reclaimed;
//   2. zero prepared locks outstanding on every replica;
//   3. the node that rejoined after traffic stopped — synced from one read
//      quorum — matches the newest version of every key across ALL
//      replicas (an exhaustive catch-up finds nothing to pull), i.e. the
//      read-quorum sync was as complete as a quorum read promises.
// Exit status is non-zero when any check fails, so CI can gate on it.
//
// With --durability=wal the same checks run against durable replicas:
// every restart then clears the node's memory and rebuilds it from its
// log and snapshot — the orphaned prepare's protections are re-armed from
// the log, and lease expiry must reclaim them all the same.  Two extra
// checks assert the log actually participated (records appended, records
// replayed during the mid-run rejoin).
//
// With --shards=N (> 1) the same chaos plan runs against a sharded cluster
// with Bank submitted through shard::Client, and the orphan becomes a
// cross-shard prepare spanning two groups.  Cross-shard prepares are never
// presumed aborted by expiry — they park in-doubt — so the orphan check
// changes shape: ChaosController::stop() must resolve it (to abort; the
// coordinator recorded no decision), nothing may stay parked, and the
// fleet-wide atomicity_breaches counter must be zero at exit.  The Bank
// sum is verified after the heal, when no prepare can still be in flight.
#include <algorithm>
#include <filesystem>
#include <optional>
#include <thread>

#include "bench/figure_common.hpp"
#include "src/chaos/chaos.hpp"
#include "src/shard/coordinator.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  if (args.cluster.prepare_lease_ns <= 0)
    args.cluster.prepare_lease_ns = 150'000'000;  // 150ms default
  if (args.drop_probability <= 0) args.drop_probability = 0.10;
  // Check 3 needs commit/abort delivery to be reliable enough that no
  // member silently misses an install: with p = 0.19 per member and round
  // (both legs at 10% loss), 12 replays push residual loss below 1e-9.
  args.cluster.stub.max_commit_replays = 12;
  if (!args.obs) {
    args.obs = std::make_shared<obs::Observability>();
    args.driver.obs = args.obs.get();
  }
  const bool durable =
      args.cluster.durability.mode == harness::DurabilityMode::kWal;
  // Each invocation is a fresh cluster, not a restart of the last one.
  if (durable) std::filesystem::remove_all(args.cluster.durability.data_dir);

  const bool sharded = args.cluster.n_groups > 1;
  std::printf("\n=== Partition & heal: Bank under QR-ACN with leases%s%s ===\n",
              durable ? " (durable replicas)" : "",
              sharded ? " (sharded)" : "");
  harness::Cluster cluster(args.cluster);
  cluster.set_obs(args.obs.get());
  workloads::Bank bank;
  std::unique_ptr<shard::ClientFleet> fleet;
  if (sharded) {
    fleet = std::make_unique<shard::ClientFleet>(
        bank, static_cast<std::uint32_t>(args.cluster.n_groups));
    fleet->seed(cluster, bank);
  } else {
    bank.seed(cluster.servers());
  }
  // Seeding writes the stores directly, bypassing the WAL; checkpoint so
  // the seed state survives the disk-faithful restarts below.
  cluster.checkpoint_all();

  // An orphaned 2PC: prepare two cold account keys and walk away.  Nothing
  // will ever commit or abort this transaction.  Unsharded, only lease
  // expiry can release the keys; sharded, the orphan spans two groups, so
  // expiry parks it in-doubt and cooperative termination at the heal must
  // release it instead.
  std::unique_ptr<shard::CrossShardCoordinator> orphan_owner;
  std::optional<shard::ShardTx> orphan_tx;
  if (sharded) {
    const shard::ShardMap& map = fleet->map();
    const store::ObjectKey a = workloads::Bank::account_key(40);
    store::ObjectKey b = a;
    for (store::Field id = 41;; ++id) {
      b = workloads::Bank::account_key(id);
      if (map.shard_of(b) != map.shard_of(a)) break;
    }
    orphan_owner = std::make_unique<shard::CrossShardCoordinator>(
        cluster, fleet->router(), /*client_ordinal=*/500'000);
    acn::KeyFootprint footprint;
    footprint.push_back({std::min(a, b), true});
    footprint.push_back({std::max(a, b), true});
    orphan_tx.emplace(orphan_owner->begin(footprint));
    orphan_tx->write(a, store::Record{0});
    orphan_tx->write(b, store::Record{0});
    if (orphan_tx->prepare_all() < 2)
      throw std::runtime_error("orphan prepared fewer than 2 groups");
    std::printf("[setup] orphaned cross-shard prepare holds %s and %s\n",
                store::to_string(a).c_str(), store::to_string(b).c_str());
  } else {
    auto doomed = cluster.make_stub(/*client_ordinal=*/500'000);
    const dtm::TxId orphan = 0xD00DULL << 32;
    std::vector<store::ObjectKey> orphan_keys = {
        workloads::Bank::account_key(40), workloads::Bank::account_key(41)};
    doomed.prepare(orphan, {}, orphan_keys, {0, 0});
    std::printf("[setup] orphaned prepare holds accounts 40,41\n");
  }

  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      args.driver.interval);
  const auto victims = chaos::ChaosController::leaf_victims(cluster, 4);
  const net::NodeId midrun_victim = victims.front();
  const net::NodeId late_victim = victims.back();

  chaos::FaultPlan plan;
  plan.drop_burst(interval * 1, args.drop_probability, interval * 5);
  plan.crash(interval * 3 / 2, {midrun_victim}, /*down_for=*/interval * 2);
  if (victims.size() >= 4)
    plan.isolate(interval * 5, {victims[1], victims[2]},
                 /*heal_after=*/interval * 3 / 2);
  if (late_victim != midrun_victim)
    plan.crash(interval * 13 / 2, {late_victim});  // healed by chaos.stop()

  chaos::ChaosController chaos(cluster, plan, args.obs.get());

  auto driver = args.driver;
  // Sharded, the driver's end-of-run invariant check would race the
  // in-doubt machinery (a handed-off phase 2 may still hold protections);
  // it moves to after the heal, when nothing can be in flight.
  if (sharded) driver.check_invariants = false;
  try {
    chaos.start();
    const auto result =
        sharded
            ? bench::run_sharded(cluster, bank, harness::Protocol::kAcn,
                                 driver, *fleet)
            : harness::run(cluster, bank, harness::Protocol::kAcn, driver);
    // Traffic has stopped; stop() drains remaining events and heals —
    // rejoining late_victim from one read quorum against a quiet cluster,
    // then expiring stale leases and resolving every in-doubt prepare (the
    // sharded orphan resolves here: no decision record, presumed abort).
    chaos.stop();
    if (sharded) bank.check_invariants(cluster.servers());

    std::printf("%8s %12s\n", "t(s)", "tx/s");
    const double seconds =
        std::chrono::duration<double>(driver.interval).count();
    for (std::size_t k = 0; k < result.throughput.size(); ++k)
      std::printf("%8.2f %12.1f\n", static_cast<double>(k + 1) * seconds,
                  result.throughput[k]);

    // Let the orphan's lease run out even on a short run, then force the
    // lazy expiry sweep everywhere (no traffic after the run ends).
    std::this_thread::sleep_for(
        std::chrono::nanoseconds{args.cluster.prepare_lease_ns} +
        std::chrono::milliseconds{10});
    std::uint64_t leases_expired = 0;
    std::size_t still_protected = 0;
    for (dtm::Server* server : cluster.servers()) {
      server->expire_stale_leases();
      leases_expired += server->stats().leases_expired.load();
      still_protected += server->store().protected_count();
    }
    // Exhaustive catch-up on the late victim: its rejoin synced from one
    // read quorum, so if the intersection property held there is nothing
    // newer anywhere else in the cluster.
    const std::size_t missed =
        cluster.restart_node(late_victim, harness::CatchUpScope::kAllReplicas);

    std::printf(
        "commits=%llu full_aborts=%llu rpc.lease.expired=%llu "
        "catchup_keys=%zu\n",
        static_cast<unsigned long long>(result.stats.commits),
        static_cast<unsigned long long>(result.stats.full_aborts),
        static_cast<unsigned long long>(leases_expired),
        chaos.keys_caught_up());

    bool ok = true;
    if (result.stats.commits == 0) {
      std::fprintf(stderr, "FAIL: no transaction committed\n");
      ok = false;
    }
    if (!sharded && leases_expired == 0) {
      std::fprintf(stderr, "FAIL: no prepare lease expired\n");
      ok = false;
    }
    if (sharded) {
      // The cross-shard orphan must have been terminated at the heal, not
      // presumed aborted by expiry, and the hard invariant must hold:
      // no coordinator anywhere half-committed a transaction.
      const harness::IndoubtReport& indoubt = chaos.indoubt_report();
      std::size_t still_parked = 0;
      for (dtm::Server* server : cluster.servers())
        still_parked += server->indoubt_count();
      std::printf("indoubt: %zu queries, %zu resolved commit, %zu resolved "
                  "abort, %zu unresolved\n",
                  indoubt.queries, indoubt.resolved_commit,
                  indoubt.resolved_abort, indoubt.unresolved);
      if (indoubt.resolved_abort == 0) {
        std::fprintf(stderr, "FAIL: the orphaned prepare was not resolved\n");
        ok = false;
      }
      if (indoubt.unresolved != 0 || still_parked != 0) {
        std::fprintf(stderr, "FAIL: %zu prepares left in-doubt (%zu parked)\n",
                     indoubt.unresolved, still_parked);
        ok = false;
      }
      const std::uint64_t breaches = fleet->stats().atomicity_breaches.load();
      if (breaches != 0) {
        std::fprintf(stderr, "FAIL: %llu atomicity breaches\n",
                     static_cast<unsigned long long>(breaches));
        ok = false;
      }
    }
    if (still_protected != 0) {
      std::fprintf(stderr, "FAIL: %zu keys still protected at exit\n",
                   still_protected);
      ok = false;
    }
    if (missed != 0) {
      std::fprintf(stderr,
                   "FAIL: rejoined node %d was missing %zu key versions\n",
                   late_victim, missed);
      ok = false;
    }
    if (durable) {
      const auto snap = args.obs->metrics.snapshot();
      const std::uint64_t appended = snap.counter("wal.append.bytes");
      const std::uint64_t replayed = snap.counter("wal.replay.records");
      std::printf("wal.append.bytes=%llu wal.replay.records=%llu\n",
                  static_cast<unsigned long long>(appended),
                  static_cast<unsigned long long>(replayed));
      if (appended == 0) {
        std::fprintf(stderr, "FAIL: durable run logged nothing\n");
        ok = false;
      }
      if (replayed == 0) {
        std::fprintf(stderr,
                     "FAIL: durable restarts replayed no log records\n");
        ok = false;
      }
    }
    if (!args.metrics_json_path.empty()) {
      std::FILE* file = std::fopen(args.metrics_json_path.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "FAIL: cannot open %s\n",
                     args.metrics_json_path.c_str());
        ok = false;
      } else {
        std::fprintf(file, "%s\n",
                     args.obs->metrics.snapshot().to_json().c_str());
        std::fclose(file);
        std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
      }
    }
    if (ok) {
      std::printf("all partition/lease/catch-up checks passed "
                  "(invariants verified)\n");
      args.cleanup_data_dir();
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    chaos.stop(/*drain=*/true);
    std::fprintf(stderr, "abl_partition failed: %s\n", e.what());
    return 1;
  }
}
