// Ablation: quorum construction policy.
//
// QR-DTM's paper text describes level-majority quorums while citing the
// Agrawal-El Abbadi tree quorum construction; the two differ in read-quorum
// size and load placement.  Runs the Bank workload under QR-ACN with both
// policies and several read biases, printing throughput and wire traffic.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;

  struct Variant {
    const char* name;
    harness::QuorumPolicy policy;
    double root_read_bias;
  };
  const Variant variants[] = {
      {"tree b=1.0 (root reads)", harness::QuorumPolicy::kTree, 1.0},
      {"tree b=0.5", harness::QuorumPolicy::kTree, 0.5},
      {"tree b=0.0 (leaf reads)", harness::QuorumPolicy::kTree, 0.0},
      {"level-majority", harness::QuorumPolicy::kLevelMajority, 0.5},
      {"read-one/write-all", harness::QuorumPolicy::kRowa, 0.5},
  };

  std::printf("\n=== Ablation: quorum policy (Bank, QR-ACN) ===\n");
  std::printf("%-26s %12s %14s %14s\n", "policy", "mean tx/s", "messages",
              "msgs/commit");
  for (const auto& variant : variants) {
    auto cluster_config = args.cluster;
    cluster_config.quorum_policy = variant.policy;
    cluster_config.root_read_bias = variant.root_read_bias;
    harness::Cluster cluster(cluster_config);
    workloads::Bank bank;
    bank.seed(cluster.servers());
    try {
      const auto result =
          harness::run(cluster, bank, harness::Protocol::kAcn, args.driver);
      const auto messages = cluster.network().stats().messages();
      std::printf("%-26s %12.1f %14llu %14.1f\n", variant.name,
                  result.mean_throughput(1),
                  static_cast<unsigned long long>(messages),
                  static_cast<double>(messages) /
                      static_cast<double>(std::max<std::uint64_t>(
                          result.stats.commits, 1)));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name, e.what());
      return 1;
    }
  }
  return 0;
}
