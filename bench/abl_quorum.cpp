// Ablation: quorum construction policy.
//
// QR-DTM's paper text describes level-majority quorums while citing the
// Agrawal-El Abbadi tree quorum construction; the two differ in read-quorum
// size and load placement.  Runs the Bank workload under QR-ACN with both
// policies and several read biases, printing throughput and wire traffic.
//
// Supports --transport=tcp: each replica becomes a cluster_main process and
// the same variants run over real sockets.  The wire columns come from the
// transport counters (exact socket bytes on TCP, approx_size() estimates on
// sim), so the table is comparable across modes; the sim-only message count
// is appended only when available.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;

  struct Variant {
    const char* name;
    harness::QuorumPolicy policy;
    double root_read_bias;
  };
  const Variant variants[] = {
      {"tree b=1.0 (root reads)", harness::QuorumPolicy::kTree, 1.0},
      {"tree b=0.5", harness::QuorumPolicy::kTree, 0.5},
      {"tree b=0.0 (leaf reads)", harness::QuorumPolicy::kTree, 0.0},
      {"level-majority", harness::QuorumPolicy::kLevelMajority, 0.5},
      {"read-one/write-all", harness::QuorumPolicy::kRowa, 0.5},
  };

  const bool tcp =
      args.cluster.transport_mode == harness::TransportMode::kTcp;
  std::printf("\n=== Ablation: quorum policy (Bank, QR-ACN, %s) ===\n",
              tcp ? "tcp" : "sim");
  std::printf("%-26s %12s %12s %14s %10s\n", "policy", "mean tx/s", "wire KB",
              "bytes/commit", tcp ? "reconnects" : "messages");
  for (const auto& variant : variants) {
    auto cluster_config = args.cluster;
    cluster_config.quorum_policy = variant.policy;
    cluster_config.root_read_bias = variant.root_read_bias;
    harness::Cluster cluster(cluster_config);
    workloads::Bank bank;
    harness::seed_workload(cluster, bank);
    try {
      const auto result =
          harness::run(cluster, bank, harness::Protocol::kAcn, args.driver);
      const auto& wire = cluster.transport().counters();
      const std::uint64_t bytes =
          wire.bytes_sent.load() + wire.bytes_recv.load();
      const std::uint64_t tail = tcp ? wire.reconnects.load()
                                     : cluster.network().stats().messages();
      std::printf("%-26s %12.1f %12.1f %14.1f %10llu\n", variant.name,
                  result.mean_throughput(1),
                  static_cast<double>(bytes) / 1024.0,
                  static_cast<double>(bytes) /
                      static_cast<double>(std::max<std::uint64_t>(
                          result.stats.commits, 1)),
                  static_cast<unsigned long long>(tail));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name, e.what());
      return 1;
    }
  }
  return 0;
}
