// Fault tolerance under load: QR-DTM's quorum replication is the paper's
// substrate claim ("fault-tolerant DTM").  This bench kills non-root
// servers mid-run and measures how throughput degrades while correctness
// (the Bank invariant) is preserved.
//
// Interval schedule: servers fail one per interval starting at interval 1
// (leaves of the quorum tree, derived from the actual cluster topology so
// --servers works), then all rejoin — with anti-entropy catch-up — for the
// final interval.  The schedule is a chaos::FaultPlan replayed by a
// ChaosController; --drop and --lease-ms layer message loss and prepare
// leases on top.
#include "bench/figure_common.hpp"
#include "src/chaos/chaos.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);

  std::printf("\n=== Fault tolerance: Bank under QR-ACN with node failures ===\n");
  harness::Cluster cluster(args.cluster);
  workloads::Bank bank;
  bank.seed(cluster.servers());
  if (args.drop_probability > 0)
    cluster.network().set_drop_probability(args.drop_probability);

  // One leaf crash per interval starting at interval 1, everyone back for
  // the final interval.  Victims come from the bottom of the quorum tree so
  // write quorums stay constructible throughout.
  const auto victims = chaos::ChaosController::leaf_victims(
      cluster, std::min<std::size_t>(3, cluster.size() - 1));
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      args.driver.interval);
  chaos::FaultPlan plan;
  for (std::size_t i = 0; i < victims.size(); ++i)
    plan.crash(interval * (i + 1), {victims[i]});
  plan.restart(interval * (victims.size() + 1), victims);

  chaos::ChaosController chaos(cluster, plan, args.driver.obs);

  auto driver = args.driver;
  driver.intervals = victims.size() + 3;  // healthy + crashes + recovered
  try {
    chaos.start();
    const auto result =
        harness::run(cluster, bank, harness::Protocol::kAcn, driver);
    chaos.stop();
    std::printf("%8s %12s\n", "t(s)", "tx/s");
    const double seconds =
        std::chrono::duration<double>(driver.interval).count();
    for (std::size_t k = 0; k < result.throughput.size(); ++k)
      std::printf("%8.2f %12.1f\n", static_cast<double>(k + 1) * seconds,
                  result.throughput[k]);
    std::printf(
        "commits=%llu full_aborts=%llu catchup_keys=%zu "
        "(invariants verified)\n",
        static_cast<unsigned long long>(result.stats.commits),
        static_cast<unsigned long long>(result.stats.full_aborts),
        chaos.keys_caught_up());
    return 0;
  } catch (const std::exception& e) {
    chaos.stop(/*drain=*/true);
    std::fprintf(stderr, "abl_faults failed: %s\n", e.what());
    return 1;
  }
}
