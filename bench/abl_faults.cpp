// Fault tolerance under load: QR-DTM's quorum replication is the paper's
// substrate claim ("fault-tolerant DTM").  This bench kills non-root
// servers mid-run and measures how throughput degrades while correctness
// (the Bank invariant) is preserved.
//
// Interval schedule: servers fail one per interval starting at interval 1
// (ids from the bottom of the tree), then all recover for the final
// interval.
#include <thread>

#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  const std::size_t intervals = 6;

  std::printf("\n=== Fault tolerance: Bank under QR-ACN with node failures ===\n");
  harness::Cluster cluster(args.cluster);
  workloads::Bank bank;
  bank.seed(cluster.servers());

  // Drive the failure schedule from a side thread while the standard
  // driver measures throughput per interval.
  std::thread chaos([&] {
    const auto interval = args.driver.interval;
    std::this_thread::sleep_for(interval);  // interval 0: healthy
    const int victims[] = {9, 8, 7};        // leaves first
    for (int victim : victims) {
      cluster.network().set_node_down(victim, true);
      std::printf("  [chaos] node %d down\n", victim);
      std::this_thread::sleep_for(interval);
    }
    for (int victim : victims) cluster.network().set_node_down(victim, false);
    std::printf("  [chaos] all nodes recovered\n");
  });

  auto driver = args.driver;
  driver.intervals = intervals;
  try {
    const auto result =
        harness::run(cluster, bank, harness::Protocol::kAcn, driver);
    chaos.join();
    std::printf("%8s %12s\n", "t(s)", "tx/s");
    const double seconds =
        std::chrono::duration<double>(driver.interval).count();
    for (std::size_t k = 0; k < result.throughput.size(); ++k)
      std::printf("%8.2f %12.1f\n", static_cast<double>(k + 1) * seconds,
                  result.throughput[k]);
    std::printf("commits=%llu full_aborts=%llu (invariants verified)\n",
                static_cast<unsigned long long>(result.stats.commits),
                static_cast<unsigned long long>(result.stats.full_aborts));
    return 0;
  } catch (const std::exception& e) {
    chaos.join();
    std::fprintf(stderr, "abl_faults failed: %s\n", e.what());
    return 1;
  }
}
