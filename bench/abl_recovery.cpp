// Durability acceptance gate: log-replay recovery must be byte-identical
// to — and strictly cheaper than — rebuilding a replica from its peers.
//
// One Bank run over a durable cluster (--durability is forced to wal):
//   * an orphaned two-phase commit holds two account keys, so recovery has
//     an unresolved prepare to re-arm from the log;
//   * mid-run, leaf replica A crashes keeping its disk (its group-commit
//     buffer is lost — that window is the most the log may miss);
//   * a little later, leaf replica B crashes losing its disk entirely;
//   * both stay down until traffic stops, so every restart below is
//     measured against a quiescent cluster.
//
// After the run:
//   1. A reference state is computed: the newest version of every key
//      across the replicas that never crashed.
//   2. A rejoins: volatile state cleared, snapshot loaded, log replayed,
//      then the read-quorum sync runs as a delta pass.  Its store must be
//      byte-identical (canonical encoding) to the reference, the delta
//      must be strictly smaller than a full rebuild, and wal.replay.records
//      must show the log actually drove the recovery.
//   3. B rejoins with an empty disk: recovery finds nothing, the delta
//      pass refetches everything, and the store must still match the
//      reference — disk loss degrades to PR 3 catch-up, never to a wrong
//      or missing state.
//   4. Once every prepare lease has had time to expire, no replica may
//      hold a protected key (the re-armed orphan included).
// Exit status is non-zero when any check fails, so CI can gate on it.
#include <algorithm>
#include <filesystem>
#include <thread>

#include "bench/figure_common.hpp"
#include "src/chaos/chaos.hpp"
#include "src/dtm/codec.hpp"
#include "src/workloads/bank.hpp"

namespace {

using namespace acn;

/// Canonical byte encoding of a store state: (key, value, version) sorted
/// by key.  Two replicas with equal encodings hold identical committed
/// state — the "byte-identical" in this gate's contract.
std::vector<std::uint8_t> fingerprint(
    std::vector<std::pair<store::ObjectKey, store::VersionedRecord>> state) {
  std::sort(state.begin(), state.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  dtm::Encoder e;
  for (const auto& [key, rec] : state) {
    e.key(key);
    e.record(rec.value);
    e.u64(rec.version);
  }
  return e.take();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchOptions::parse(argc, argv);
  args.cluster.durability.mode = harness::DurabilityMode::kWal;
  if (args.cluster.prepare_lease_ns <= 0)
    args.cluster.prepare_lease_ns = 150'000'000;  // 150ms default
  if (!args.obs) {
    args.obs = std::make_shared<obs::Observability>();
    args.driver.obs = args.obs.get();
  }
  // Each invocation is a fresh cluster, not a restart of the last one.
  std::filesystem::remove_all(args.cluster.durability.data_dir);

  std::printf("\n=== Recovery: WAL replay vs peer catch-up (Bank, QR-ACN) ===\n");
  harness::Cluster cluster(args.cluster);
  cluster.set_obs(args.obs.get());
  workloads::Bank bank;
  bank.seed(cluster.servers());
  // Seeding bypasses the WAL; checkpoint so the seed state is on disk.
  cluster.checkpoint_all();

  // The orphaned 2PC: prepared everywhere, never resolved.  Replica A will
  // carry it through crash + log replay as a re-armed protection.
  {
    auto doomed = cluster.make_stub(/*client_ordinal=*/500'000);
    const dtm::TxId orphan_tx = 0xD00DULL << 32;
    std::vector<store::ObjectKey> orphan_keys = {
        workloads::Bank::account_key(40), workloads::Bank::account_key(41)};
    doomed.prepare(orphan_tx, {}, orphan_keys, {0, 0});
    std::printf("[setup] orphaned prepare holds accounts 40,41\n");
  }

  const auto victims = chaos::ChaosController::leaf_victims(cluster, 2);
  if (victims.size() < 2 || victims[0] == victims[1]) {
    std::fprintf(stderr, "abl_recovery needs two distinct leaf victims\n");
    return 1;
  }
  const net::NodeId node_a = victims[0];  // crash, disk survives
  const net::NodeId node_b = victims[1];  // crash, disk lost

  const auto run_time = args.driver.interval * args.driver.intervals;
  // Plain timer thread rather than a ChaosController: its stop() would
  // rejoin the victims for us, and this gate must own both restarts.
  std::thread crasher([&] {
    std::this_thread::sleep_for(run_time * 2 / 5);
    cluster.crash_node(node_a);
    std::printf("[fault] crash node %d (disk kept)\n", node_a);
    std::this_thread::sleep_for(run_time * 3 / 20);
    cluster.crash_node(node_b, /*lose_disk=*/true);
    std::printf("[fault] crash node %d (disk lost)\n", node_b);
  });

  auto driver = args.driver;
  try {
    const auto result =
        harness::run(cluster, bank, harness::Protocol::kAcn, driver);
    crasher.join();

    std::printf("%8s %12s\n", "t(s)", "tx/s");
    const double seconds =
        std::chrono::duration<double>(driver.interval).count();
    for (std::size_t k = 0; k < result.throughput.size(); ++k)
      std::printf("%8.2f %12.1f\n", static_cast<double>(k + 1) * seconds,
                  result.throughput[k]);

    // Reference: newest version of every key across the replicas that
    // never crashed.  Every commit reached a write quorum of live nodes,
    // so this is the authoritative committed state.
    std::unordered_map<store::ObjectKey, store::VersionedRecord,
                       store::ObjectKeyHash>
        newest;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const auto id = static_cast<net::NodeId>(i);
      if (id == node_a || id == node_b) continue;
      for (auto& [key, rec] : cluster.server(i).store().snapshot()) {
        auto [it, inserted] = newest.try_emplace(key, rec);
        if (!inserted && rec.version > it->second.version) it->second = rec;
      }
    }
    std::vector<std::pair<store::ObjectKey, store::VersionedRecord>> reference(
        newest.begin(), newest.end());
    const std::size_t total_keys = reference.size();
    const auto reference_print = fingerprint(reference);

    const std::size_t delta_a = cluster.restart_node(node_a);
    const auto print_a = fingerprint(
        cluster.server(static_cast<std::size_t>(node_a)).store().snapshot());
    const std::size_t delta_b = cluster.restart_node(node_b);
    const auto print_b = fingerprint(
        cluster.server(static_cast<std::size_t>(node_b)).store().snapshot());

    const auto snap = args.obs->metrics.snapshot();
    const std::uint64_t replayed = snap.counter("wal.replay.records");
    std::printf(
        "commits=%llu total_keys=%zu delta_a=%zu delta_b=%zu "
        "wal.replay.records=%llu wal.fsync.count=%llu\n",
        static_cast<unsigned long long>(result.stats.commits), total_keys,
        delta_a, delta_b, static_cast<unsigned long long>(replayed),
        static_cast<unsigned long long>(snap.counter("wal.fsync.count")));

    // Give the re-armed orphan lease (restarted clock) time to run out,
    // then force the lazy sweep everywhere.
    std::this_thread::sleep_for(
        std::chrono::nanoseconds{args.cluster.prepare_lease_ns} +
        std::chrono::milliseconds{10});
    std::size_t still_protected = 0;
    for (dtm::Server* server : cluster.servers()) {
      server->expire_stale_leases();
      still_protected += server->store().protected_count();
    }

    bool ok = true;
    auto fail = [&](const char* what) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    };
    if (result.stats.commits == 0) fail("no transaction committed");
    if (print_a != reference_print)
      fail("log-replay recovery (node A) diverged from the reference state");
    if (replayed == 0) fail("node A's rejoin replayed no log records");
    if (delta_a >= delta_b)
      fail("log replay did not reduce the catch-up delta (delta_a >= delta_b)");
    if (delta_a >= total_keys)
      fail("delta pass refetched every key despite the log");
    if (print_b != reference_print)
      fail("disk-loss recovery (node B) diverged from the reference state");
    if (delta_b != total_keys)
      fail("wiped node B did not rebuild every key from its peers");
    if (still_protected != 0)
      fail("keys still protected after every lease had time to expire");
    if (!args.metrics_json_path.empty()) {
      std::FILE* file = std::fopen(args.metrics_json_path.c_str(), "w");
      if (file == nullptr) {
        fail("cannot open --metrics-json output file");
      } else {
        std::fprintf(file, "%s\n", snap.to_json().c_str());
        std::fclose(file);
        std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
      }
    }
    if (ok) {
      std::printf(
          "all recovery checks passed: replay + delta == fresh catch-up "
          "(%zu keys saved)\n",
          total_keys - delta_a);
      args.cleanup_data_dir();
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    crasher.join();
    std::fprintf(stderr, "abl_recovery failed: %s\n", e.what());
    return 1;
  }
}
