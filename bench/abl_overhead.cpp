// Ablation: QR-ACN overhead where partial rollback cannot pay off
// (Section I-B claim: "QR-ACN guarantees performance similar to flat
// nesting, thus exposing minimal overhead").  Bank configured with a
// uniform access distribution — no hot spots at all — so all three
// protocols should coincide; the printout quantifies the residual gaps.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace acn;
  auto args = bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;

  workloads::BankConfig uniform;
  uniform.hot_branches = 0;  // no hot set: purely uniform picks
  uniform.hot_accounts = 0;
  try {
    const auto results = harness::run_all_protocols(
        args.cluster,
        [uniform] { return std::make_unique<workloads::Bank>(uniform); },
        args.driver);
    harness::print_figure("Ablation: uniform Bank (overhead bound)", results,
                          args.driver);
    std::printf("QR-ACN overhead vs QR-DTM: %+.1f%%  (paper bound: ~3%%)\n",
                -harness::improvement_pct(results[2], results[0], 1));
    std::printf("QR-ACN overhead vs QR-CN:  %+.1f%%\n",
                -harness::improvement_pct(results[2], results[1], 1));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abl_overhead failed: %s\n", e.what());
    return 1;
  }
}
