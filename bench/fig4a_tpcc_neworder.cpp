// Figure 4(a): TPC-C, 100% NewOrder transactions.
//
// Paper: QR-ACN tracks QR-DTM during the first (monitoring) interval, then
// identifies District as the hot spot, moves its access next to the commit
// phase and merges similar-contention blocks; reported gains after the
// first window: +53% over QR-DTM, +38% over QR-CN.
#include "bench/figure_common.hpp"
#include "src/workloads/tpcc.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  acn::workloads::TpccConfig config;
  config.w_neworder = 1.0;
  return acn::bench::run_figure(
      "Figure 4(a): TPC-C NewOrder 100%", args,
      [config] { return std::make_unique<acn::workloads::Tpcc>(config); });
}
