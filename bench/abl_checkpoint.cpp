// Comparison: closed nesting vs checkpointing as the partial-rollback
// mechanism (Section III; the experiment of Dhoke et al., IPDPS'13 — the
// paper's reference [10] — which found closed nesting cheaper in DTM).
//
// Runs Bank and TPC-C NewOrder under all four protocols: QR-DTM (flat),
// QR-CN (manual closed nesting), QR-ACN, and QR-CKPT (a checkpoint taken
// before every remote access; rollback to the checkpoint preceding the
// first invalidated read).
//
// Note on expectations: in this reproduction a checkpoint deep-copies the
// variable environment and buffered read/write-sets — tens to hundreds of
// bytes — so the checkpointing overhead is far smaller relative to a
// (simulated) network round trip than in the paper's Java system, where
// continuation state is heavyweight.  QR-CKPT is therefore more
// competitive here than reference [10] reports; the rollback *precision*
// comparison (restores vs partial aborts) is the meaningful output.
#include "bench/figure_common.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"

namespace {

using namespace acn;

int run_four(const char* title, const bench::BenchOptions& args,
             const std::function<std::unique_ptr<workloads::Workload>()>& make) {
  std::vector<harness::RunResult> results;
  for (const harness::Protocol protocol :
       {harness::Protocol::kFlat, harness::Protocol::kManualCN,
        harness::Protocol::kAcn, harness::Protocol::kCheckpoint}) {
    harness::Cluster cluster(args.cluster);
    auto workload = make();
    workload->seed(cluster.servers());
    try {
      results.push_back(
          harness::run(cluster, *workload, protocol, args.driver));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (%s) failed: %s\n", title,
                   harness::protocol_name(protocol), e.what());
      return 1;
    }
  }
  harness::print_figure(title, results, args.driver);
  const auto& ckpt = results[3].stats;
  std::printf("QR-CKPT: checkpoints=%llu restores=%llu; "
              "QR-CKPT vs QR-CN %+.1f%%, vs QR-ACN %+.1f%%\n",
              static_cast<unsigned long long>(ckpt.checkpoints_taken),
              static_cast<unsigned long long>(ckpt.checkpoint_restores),
              harness::improvement_pct(results[3], results[1], 1),
              harness::improvement_pct(results[3], results[2], 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;
  int rc = run_four("Closed nesting vs checkpointing: Bank", args, [] {
    return std::make_unique<acn::workloads::Bank>();
  });
  if (rc == 0)
    rc = run_four("Closed nesting vs checkpointing: TPC-C NewOrder", args, [] {
      acn::workloads::TpccConfig config;
      config.w_neworder = 1.0;
      return std::make_unique<acn::workloads::Tpcc>(config);
    });
  return rc;
}
