// Figure 4(b): TPC-C, 100% Payment transactions.
//
// Paper: QR-ACN starts below both baselines (its initial static composition
// is not partial-abort friendly), then finds Warehouse and District hot and
// shifts them toward the commit phase; +53% over QR-DTM, +45% over QR-CN.
#include "bench/figure_common.hpp"
#include "src/workloads/tpcc.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  acn::workloads::TpccConfig config;
  config.w_neworder = 0.0;
  config.w_payment = 1.0;
  // Four warehouses: with only two, the warehouse YTD hot spot saturates
  // (every concurrent pair conflicts no matter the composition) and all
  // three protocols collapse together; four keeps it in the regime the
  // paper describes, where exposure-window reduction pays off.
  config.n_warehouses = 4;
  return acn::bench::run_figure(
      "Figure 4(b): TPC-C Payment 100%", args,
      [config] { return std::make_unique<acn::workloads::Tpcc>(config); });
}
