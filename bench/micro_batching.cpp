// Microbenchmark for the batched read pipeline: runs the same deterministic
// single-client bank transfer stream under QR-CN three ways — sequential
// reads, batched reads, batched + prefetch — and compares quorum read
// rounds.  Doubles as an end-to-end equivalence check: all three modes must
// commit the same transaction count and the same final balances, and the
// batched modes must demonstrably save rounds (nonzero exit otherwise), so
// CI can run it as a smoke test.
//
//   --txs=N --seed=N --branches=N --accounts=N
//   --metrics-json FILE   per-mode metrics snapshots as one JSON object
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/obs/obs.hpp"
#include "src/workloads/bank.hpp"

namespace {

using namespace acn;

struct Options {
  std::size_t txs = 2000;
  std::uint64_t seed = 42;
  std::size_t branches = 16;
  std::size_t accounts = 128;
  std::string metrics_json;
};

struct ModeResult {
  std::string label;
  std::uint64_t commits = 0;
  std::uint64_t read_rounds = 0;  // single + batched quorum read rounds
  std::uint64_t rpcs_saved = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_waste = 0;
  double mean_batch = 0.0;
  std::vector<store::Record> balances;  // every account + branch, in order
  obs::Snapshot metrics;                // full snapshot for --metrics-json
};

ModeResult run_mode(const Options& opt, const std::string& label,
                    bool batch, bool prefetch) {
  harness::ClusterConfig cluster_config;
  cluster_config.n_servers = 10;
  cluster_config.base_latency = std::chrono::nanoseconds{0};
  cluster_config.stub.retry.base = std::chrono::nanoseconds{100};

  obs::Observability obs;
  harness::Cluster cluster(cluster_config);
  cluster.set_obs(&obs);
  workloads::Bank bank({.n_branches = opt.branches, .n_accounts = opt.accounts});
  bank.seed(cluster.servers());
  const auto& profile = bank.profiles()[0];

  auto stub = cluster.make_stub(0);
  ExecutorConfig exec_config;
  exec_config.backoff_base = std::chrono::nanoseconds{100};
  exec_config.obs = &obs;
  Executor executor(stub, exec_config, opt.seed);

  RunOptions options;
  options.program = profile.program.get();
  options.model = &profile.static_model;
  options.sequence = &profile.manual_sequence;
  options.batch_reads = batch;
  options.prefetch = prefetch;

  Rng rng(opt.seed);
  ExecStats stats;
  for (std::size_t i = 0; i < opt.txs; ++i) {
    const auto params = profile.make_params(rng, /*phase=*/0);
    executor.run(Protocol::kManualCN, options, params, stats);
  }
  bank.check_invariants(cluster.servers());

  ModeResult result;
  result.label = label;
  result.commits = stats.commits;
  const auto snapshot = obs.metrics.snapshot();
  result.metrics = snapshot;
  result.read_rounds =
      snapshot.counter("rpc.read") + snapshot.counter("rpc.read.batched");
  result.rpcs_saved = snapshot.counter("rpc.read.saved");
  result.prefetch_hits = snapshot.counter("exec.prefetch.hit");
  result.prefetch_waste = snapshot.counter("exec.prefetch.waste");
  if (const auto* h = snapshot.histogram("rpc.read.batch_size"))
    result.mean_batch = h->mean();
  for (std::size_t a = 0; a < opt.accounts; ++a)
    result.balances.push_back(
        workloads::latest_value(cluster.servers(),
                                workloads::Bank::account_key(
                                    static_cast<store::Field>(a))).value);
  for (std::size_t b = 0; b < opt.branches; ++b)
    result.balances.push_back(
        workloads::latest_value(cluster.servers(),
                                workloads::Bank::branch_key(
                                    static_cast<store::Field>(b))).value);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> long {
      return std::strtol(arg.c_str() + std::strlen(prefix), nullptr, 10);
    };
    if (arg.rfind("--txs=", 0) == 0)
      opt.txs = static_cast<std::size_t>(value("--txs="));
    else if (arg.rfind("--seed=", 0) == 0)
      opt.seed = static_cast<std::uint64_t>(value("--seed="));
    else if (arg.rfind("--branches=", 0) == 0)
      opt.branches = static_cast<std::size_t>(value("--branches="));
    else if (arg.rfind("--accounts=", 0) == 0)
      opt.accounts = static_cast<std::size_t>(value("--accounts="));
    else if (arg.rfind("--metrics-json=", 0) == 0)
      opt.metrics_json = arg.substr(std::strlen("--metrics-json="));
    else if (arg == "--metrics-json" && i + 1 < argc)
      opt.metrics_json = argv[++i];
    else
      std::fprintf(stderr, "ignoring unknown arg: %s\n", arg.c_str());
  }

  try {
    const auto plain = run_mode(opt, "sequential", false, false);
    const auto batched = run_mode(opt, "batched", true, false);
    const auto pipelined = run_mode(opt, "batched+prefetch", true, true);

    std::printf("micro_batching: %zu bank transfers, seed %llu\n", opt.txs,
                static_cast<unsigned long long>(opt.seed));
    std::printf("%-18s %10s %12s %10s %12s %9s %9s\n", "mode", "commits",
                "read_rounds", "saved", "mean_batch", "pf_hit", "pf_waste");
    for (const auto* r : {&plain, &batched, &pipelined})
      std::printf("%-18s %10llu %12llu %10llu %12.2f %9llu %9llu\n",
                  r->label.c_str(),
                  static_cast<unsigned long long>(r->commits),
                  static_cast<unsigned long long>(r->read_rounds),
                  static_cast<unsigned long long>(r->rpcs_saved),
                  r->mean_batch,
                  static_cast<unsigned long long>(r->prefetch_hits),
                  static_cast<unsigned long long>(r->prefetch_waste));

    bool ok = true;
    auto fail = [&](const char* what) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    };
    for (const auto* r : {&batched, &pipelined}) {
      if (r->commits != plain.commits) fail("commit counts diverge");
      if (r->balances != plain.balances) fail("final balances diverge");
      if (r->rpcs_saved == 0) fail("batched mode saved no quorum rounds");
      if (r->read_rounds >= plain.read_rounds)
        fail("batched mode used at least as many read rounds");
    }
    if (pipelined.prefetch_hits == 0)
      fail("prefetch mode adopted no speculative reads");
    if (!opt.metrics_json.empty()) {
      std::FILE* file = std::fopen(opt.metrics_json.c_str(), "w");
      if (file == nullptr) {
        fail("cannot open --metrics-json output file");
      } else {
        std::fprintf(file, "{\"sequential\":%s,\"batched\":%s,\"pipelined\":%s}\n",
                     plain.metrics.to_json().c_str(),
                     batched.metrics.to_json().c_str(),
                     pipelined.metrics.to_json().c_str());
        std::fclose(file);
        std::printf("metrics written to %s\n", opt.metrics_json.c_str());
      }
    }
    if (ok)
      std::printf("OK: identical results, %llu -> %llu read rounds "
                  "(%.1f%% fewer with prefetch)\n",
                  static_cast<unsigned long long>(plain.read_rounds),
                  static_cast<unsigned long long>(pipelined.read_rounds),
                  100.0 * (1.0 - static_cast<double>(pipelined.read_rounds) /
                                     static_cast<double>(plain.read_rounds)));
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_batching failed: %s\n", e.what());
    return 1;
  }
}
