// Queue-lane acceptance gate: the deterministic epoch executor must turn
// hot-key conflicts into queue order instead of aborts.
//
// Phase A — throughput under skew.  On a 95%-skewed Bank (two hot
// branches), QR-ACN runs on identical fresh clusters under three execution
// modes: --exec=acn with the contention-aware scheduler at its best
// (--sched=both), --exec=queue (every predictable transaction through the
// epoch lane), and --exec=hybrid (scheduler hotness routes).  The gate
// requires the queue run to commit at least as much as the scheduled
// optimistic baseline with near-zero full aborts — intra-epoch conflicts
// are queue order, and sequential epochs cannot race each other.  The
// queue mode is additionally swept over --epoch-max (the planner's cut
// size) to chart the epoch-size curve.
//
// Phase B — hybrid state equality.  A fixed, commutative transfer list
// (unconditional amount-1 moves, so any commit order yields one final
// state) is executed once through a pure-ACN reference and once through
// --exec=hybrid with the hot accounts heated, splitting traffic between
// the epoch lane and the optimistic path.  Every touched key must end
// byte-equal to the reference, and both paths must actually have run.
//
// Phase C — epoch commit atomicity under chaos.  A queue-mode run takes a
// mid-epoch replica crash (restarted with catch-up before the run ends).
// Afterwards: zero orphaned prepares anywhere (no open lease, no
// protected key on any replica, crashed-and-rejoined included), zero
// atomicity breaches from the epoch coordinator, and the Bank sum
// invariant intact.
//
// Exit status is non-zero when any check fails, so CI gates on it.
// --metrics-json FILE writes the per-mode commits/aborts, the epoch-size
// curve and the full metrics snapshot (bench_snapshot.sh folds this into
// BENCH_9.json).
#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/figure_common.hpp"
#include "src/sched/scheduler.hpp"
#include "src/workloads/bank.hpp"

namespace {

using namespace acn;
using ir::ProgramBuilder;
using ir::TxEnv;
using ir::VarId;
using store::ObjectKey;
using store::Record;

struct ModeResult {
  harness::RunResult run;
  std::uint64_t lane_submits = 0;
  std::uint64_t lane_commits = 0;
  std::uint64_t lane_demotions = 0;
  std::uint64_t epochs = 0;
  std::uint64_t epoch_commits = 0;
  std::uint64_t epoch_retries = 0;
  std::uint64_t spec_reads = 0;
  std::uint64_t mispredicted = 0;
  double avg_epoch = 0.0;
};

void fold_lane_stats(const shard::ClientFleet& fleet, ModeResult& result) {
  const auto& stats = fleet.stats();
  result.lane_submits = stats.lane_submits.load();
  result.lane_commits = stats.lane_commits.load();
  result.lane_demotions = stats.lane_demotions.load();
  if (const auto service =
          std::dynamic_pointer_cast<queue::EpochService>(fleet.lane())) {
    const queue::ServiceStats& qs = service->stats();
    result.epochs = qs.epochs.load();
    result.epoch_commits = qs.epoch_commits.load();
    result.epoch_retries = qs.epoch_retries.load();
    result.spec_reads = qs.spec_reads.load();
    result.mispredicted = qs.mispredicted.load();
    result.avg_epoch =
        result.epochs > 0 ? static_cast<double>(qs.submitted.load()) /
                                static_cast<double>(result.epochs)
                          : 0.0;
  }
}

/// Throw if any replica still holds an open lease or a protected key —
/// the "zero orphaned prepares" invariant every phase asserts.
void require_no_orphans(harness::Cluster& cluster, const char* where) {
  for (dtm::Server* server : cluster.servers()) {
    if (server->open_lease_count() != 0 ||
        server->store().protected_count() != 0)
      throw std::runtime_error(std::string(where) +
                               ": orphaned prepare state on a replica");
  }
}

/// One interval-driven Bank run under `mode` on a fresh cluster.
ModeResult run_mode(const bench::BenchOptions& args,
                    const workloads::BankConfig& bank_config,
                    shard::ExecMode mode, sched::SchedulerPolicy policy,
                    std::size_t epoch_max) {
  harness::Cluster cluster(args.cluster);
  cluster.set_obs(args.obs.get());
  workloads::Bank bank(bank_config);
  shard::ClientFleet fleet(bank,
                           static_cast<std::uint32_t>(args.cluster.n_groups));
  fleet.seed(cluster, bank);

  auto mode_args = args;
  mode_args.exec_mode = mode;
  mode_args.queue.epoch_max = epoch_max;
  bench::arm_exec_mode(fleet, mode_args);

  auto driver = args.driver;
  driver.scheduler.policy = policy;

  ModeResult result;
  result.run =
      bench::run_sharded(cluster, bank, harness::Protocol::kAcn, driver, fleet);
  fold_lane_stats(fleet, result);
  require_no_orphans(cluster, shard::exec_mode_name(mode));
  bank.check_invariants(cluster.servers());
  return result;
}

// ---- Phase B: fixed commutative transfer list ---------------------------

/// Unconditional move of 1 unit between two param-keyed accounts.  No
/// balance check, so transfers commute: any commit order of the same list
/// produces the same final state.
ir::TxProgram flat_transfer_program() {
  ProgramBuilder b("queue.gate.transfer", 2);
  const VarId p_src = b.param(0);
  const VarId p_dst = b.param(1);
  const VarId src = b.remote_read(
      workloads::Bank::kAccount, {p_src},
      [p_src](const TxEnv& e) {
        return workloads::Bank::account_key(e.geti(p_src));
      },
      "read src", /*for_write=*/true);
  const VarId dst = b.remote_read(
      workloads::Bank::kAccount, {p_dst},
      [p_dst](const TxEnv& e) {
        return workloads::Bank::account_key(e.geti(p_dst));
      },
      "read dst", /*for_write=*/true);
  b.local({src, dst}, {src, dst},
          [src, dst](TxEnv& e) {
            Record a = e.get(src);
            Record d = e.get(dst);
            a[0] -= 1;
            d[0] += 1;
            e.write_object(src, std::move(a));
            e.write_object(dst, std::move(d));
          },
          "transfer");
  return b.build();
}

bool run_state_equality(const bench::BenchOptions& args,
                        const workloads::BankConfig& bank_config) {
  constexpr std::size_t kHotAccounts = 4;
  constexpr std::size_t kTransfers = 240;
  constexpr std::size_t kThreads = 4;

  // The deterministic list: roughly half the transfers touch the hot
  // accounts (lane traffic under hybrid), the rest stay cold (optimistic).
  std::vector<std::pair<store::Field, store::Field>> transfers;
  Rng rng(args.driver.seed ^ 0x9A7E);
  const auto accounts =
      static_cast<std::uint64_t>(bank_config.n_accounts);
  for (std::size_t i = 0; i < kTransfers; ++i) {
    store::Field src, dst;
    if (rng.bernoulli(0.5)) {
      src = static_cast<store::Field>(rng.uniform(0, kHotAccounts - 1));
      dst = static_cast<store::Field>(rng.uniform(kHotAccounts, accounts - 1));
    } else {
      src = static_cast<store::Field>(rng.uniform(kHotAccounts, accounts - 1));
      dst = static_cast<store::Field>(rng.uniform(kHotAccounts, accounts - 1));
      if (dst == src) dst = static_cast<store::Field>(
          kHotAccounts + (static_cast<std::uint64_t>(dst) + 1 - kHotAccounts) %
                             (accounts - kHotAccounts));
    }
    transfers.emplace_back(src, dst);
  }
  std::set<store::Field> touched;
  for (const auto& [src, dst] : transfers) {
    touched.insert(src);
    touched.insert(dst);
  }
  const auto program = flat_transfer_program();

  // Reference: every transfer once, sequentially, pure ACN.
  std::map<store::Field, store::Field> reference_state;
  {
    harness::Cluster cluster(args.cluster);
    workloads::Bank bank(bank_config);
    shard::ClientFleet fleet(bank,
                             static_cast<std::uint32_t>(args.cluster.n_groups));
    fleet.seed(cluster, bank);
    auto submitter = fleet.factory()(cluster, 0, args.driver.executor,
                                     args.driver.seed ^ 0xACEF);
    acn::ExecStats stats;
    for (const auto& [src, dst] : transfers)
      submitter->run(harness::Protocol::kFlat, acn::with_program(program),
                     {Record{src}, Record{dst}}, stats);
    for (const store::Field id : touched)
      reference_state[id] =
          shard::latest_sharded(cluster, fleet.map(),
                               workloads::Bank::account_key(id))
              .value.fields[0];
  }

  // Hybrid: the same list split over concurrent clients, hot accounts
  // heated so the scheduler routes them to the epoch lane.
  std::uint64_t lane_submits = 0, fast_path = 0;
  std::map<store::Field, store::Field> hybrid_state;
  {
    harness::Cluster cluster(args.cluster);
    workloads::Bank bank(bank_config);
    shard::ClientFleet fleet(bank,
                             static_cast<std::uint32_t>(args.cluster.n_groups));
    fleet.seed(cluster, bank);
    auto hybrid_args = args;
    hybrid_args.exec_mode = shard::ExecMode::kHybrid;
    bench::arm_exec_mode(fleet, hybrid_args);

    sched::SchedulerConfig sched_config;
    sched_config.policy = sched::SchedulerPolicy::kQueue;
    sched_config.class_hot_level = 0;
    sched::TxScheduler scheduler(sched_config, kThreads, args.driver.seed);
    {
      // Heat the hot accounts through the public blame interface: three
      // blamed aborts reach the default hot_score.
      auto& gate = scheduler.session(0);
      gate.admit({});
      for (std::size_t id = 0; id < kHotAccounts; ++id)
        for (int i = 0; i < 3; ++i)
          gate.on_full_abort(
              TxOutcome::kValidation,
              {workloads::Bank::account_key(static_cast<store::Field>(id))});
      gate.finish(TxOutcome::kValidation);
    }

    auto factory = fleet.factory();
    std::vector<std::unique_ptr<harness::Submitter>> submitters;
    for (std::size_t t = 0; t < kThreads; ++t)
      submitters.push_back(factory(cluster, static_cast<int>(t),
                                   args.driver.executor,
                                   args.driver.seed ^ (t << 12)));
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        acn::RunOptions options = acn::with_program(program);
        options.scheduler = &scheduler.session(t);
        acn::ExecStats stats;
        for (std::size_t i = t; i < transfers.size(); i += kThreads)
          submitters[t]->run(harness::Protocol::kFlat, options,
                             {Record{transfers[i].first},
                              Record{transfers[i].second}},
                             stats);
      });
    for (std::thread& thread : threads) thread.join();

    lane_submits = fleet.stats().lane_submits.load();
    fast_path = fleet.stats().fast_path.load();
    require_no_orphans(cluster, "hybrid state-equality");
    for (const store::Field id : touched)
      hybrid_state[id] =
          shard::latest_sharded(cluster, fleet.map(),
                               workloads::Bank::account_key(id))
              .value.fields[0];
  }

  bool ok = true;
  std::size_t mismatches = 0;
  for (const store::Field id : touched)
    if (hybrid_state[id] != reference_state[id]) ++mismatches;
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: hybrid state diverges from the ACN reference on "
                 "%zu of %zu touched keys\n",
                 mismatches, touched.size());
    ok = false;
  }
  if (lane_submits == 0) {
    std::fprintf(stderr,
                 "FAIL: hybrid run never used the epoch lane "
                 "(hot routing inert)\n");
    ok = false;
  }
  if (fast_path == 0) {
    std::fprintf(stderr,
                 "FAIL: hybrid run never used the optimistic path\n");
    ok = false;
  }
  std::printf(
      "hybrid state-equality: %zu keys equal, lane %llu / optimistic %llu\n",
      touched.size(), static_cast<unsigned long long>(lane_submits),
      static_cast<unsigned long long>(fast_path));
  return ok;
}

// ---- Phase C: mid-epoch crash --------------------------------------------

bool run_crash_atomicity(const bench::BenchOptions& args,
                         const workloads::BankConfig& bank_config) {
  auto cluster_config = args.cluster;
  // Four replicas per group keep the write quorum constructible with one
  // leaf down; extra quorum re-picks dodge the crashed node.
  cluster_config.n_servers = std::max<std::size_t>(cluster_config.n_servers, 4);
  cluster_config.stub.max_quorum_retries = 16;
  harness::Cluster cluster(cluster_config);
  cluster.set_obs(args.obs.get());
  workloads::Bank bank(bank_config);
  shard::ClientFleet fleet(
      bank, static_cast<std::uint32_t>(cluster_config.n_groups));
  fleet.seed(cluster, bank);
  auto mode_args = args;
  mode_args.exec_mode = shard::ExecMode::kQueue;
  bench::arm_exec_mode(fleet, mode_args);

  const auto run_time = args.driver.interval * args.driver.intervals;
  const std::size_t victim_group = cluster_config.n_groups > 1 ? 1 : 0;
  const net::NodeId victim = cluster.group_members(victim_group).back();
  std::thread crasher([&] {
    std::this_thread::sleep_for(run_time * 2 / 5);
    cluster.crash_node(victim);
    std::printf("[fault] crash node %d mid-epoch\n", victim);
    std::this_thread::sleep_for(run_time / 5);
    cluster.restart_node(victim, harness::CatchUpScope::kAllReplicas);
    std::printf("[heal] node %d rejoined\n", victim);
  });

  ModeResult result;
  bool ok = true;
  try {
    result.run = bench::run_sharded(cluster, bank, harness::Protocol::kAcn,
                                    args.driver, fleet);
    fold_lane_stats(fleet, result);
    crasher.join();
  } catch (...) {
    crasher.join();
    throw;
  }

  const std::uint64_t breaches = fleet.stats().atomicity_breaches.load();
  if (breaches != 0) {
    std::fprintf(stderr, "FAIL: %llu atomicity breaches under chaos\n",
                 static_cast<unsigned long long>(breaches));
    ok = false;
  }
  for (dtm::Server* server : cluster.servers())
    if (server->open_lease_count() != 0 ||
        server->store().protected_count() != 0) {
      std::fprintf(stderr,
                   "FAIL: orphaned prepare state after mid-epoch crash "
                   "(lease=%zu protected=%zu)\n",
                   server->open_lease_count(),
                   server->store().protected_count());
      ok = false;
    }
  try {
    bank.check_invariants(cluster.servers());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL: bank invariant after crash: %s\n", e.what());
    ok = false;
  }
  std::printf(
      "crash run: commits=%llu epochs=%llu (retries %llu), demotions %llu\n",
      static_cast<unsigned long long>(result.run.stats.commits),
      static_cast<unsigned long long>(result.epochs),
      static_cast<unsigned long long>(result.epoch_retries),
      static_cast<unsigned long long>(result.lane_demotions));
  return ok;
}

void append_mode_json(std::string& json, const char* name,
                      const ModeResult& r, bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s\"%s\": {\"commits\": %llu, \"full_aborts\": %llu, "
      "\"lane_commits\": %llu, \"lane_demotions\": %llu, \"epochs\": %llu, "
      "\"epoch_retries\": %llu, \"avg_epoch\": %.2f, \"spec_reads\": %llu}",
      first ? "" : ", ", name,
      static_cast<unsigned long long>(r.run.stats.commits),
      static_cast<unsigned long long>(r.run.stats.full_aborts),
      static_cast<unsigned long long>(r.lane_commits),
      static_cast<unsigned long long>(r.lane_demotions),
      static_cast<unsigned long long>(r.epochs),
      static_cast<unsigned long long>(r.epoch_retries), r.avg_epoch,
      static_cast<unsigned long long>(r.spec_reads));
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t hot_branches = 2;
  double hot_probability = 0.95;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool mine = true;
    if (arg.rfind("--hot-branches=", 0) == 0)
      hot_branches =
          static_cast<std::size_t>(std::strtol(arg.c_str() + 15, nullptr, 10));
    else if (arg.rfind("--hot-prob=", 0) == 0)
      hot_probability = std::strtod(arg.c_str() + 11, nullptr);
    else
      mine = false;
    if (mine) argv[i] = const_cast<char*>("--sched=none");
  }
  auto args = bench::BenchOptions::parse(argc, argv);
  if (!args.obs) {
    args.obs = std::make_shared<obs::Observability>();
    args.driver.obs = args.obs.get();
  }

  workloads::BankConfig bank_config;
  bank_config.hot_branches = hot_branches;
  bank_config.hot_probability = hot_probability;

  std::printf(
      "\n=== Queue gate: skewed Bank, acn+sched vs queue vs hybrid ===\n");

  try {
    // ---- Phase A: throughput under skew + the epoch-size curve ----------
    const ModeResult baseline =
        run_mode(args, bank_config, shard::ExecMode::kAcn,
                 sched::SchedulerPolicy::kBoth, args.queue.epoch_max);
    const std::vector<std::size_t> curve_sizes{8, 32, 128};
    std::vector<ModeResult> curve;
    for (const std::size_t epoch_max : curve_sizes)
      curve.push_back(run_mode(args, bank_config, shard::ExecMode::kQueue,
                               sched::SchedulerPolicy::kNone, epoch_max));
    const ModeResult& queued = curve.back();  // the gate point (128)
    const ModeResult hybrid =
        run_mode(args, bank_config, shard::ExecMode::kHybrid,
                 sched::SchedulerPolicy::kBoth, args.queue.epoch_max);

    const auto show = [](const char* label, const ModeResult& r) {
      std::printf(
          "%-9s commits=%8llu full_aborts=%8llu lane=%llu/%llu epochs=%llu "
          "(avg %.1f, retries %llu)\n",
          label, static_cast<unsigned long long>(r.run.stats.commits),
          static_cast<unsigned long long>(r.run.stats.full_aborts),
          static_cast<unsigned long long>(r.lane_commits),
          static_cast<unsigned long long>(r.lane_demotions),
          static_cast<unsigned long long>(r.epochs), r.avg_epoch,
          static_cast<unsigned long long>(r.epoch_retries));
    };
    show("acn+both", baseline);
    for (std::size_t i = 0; i < curve.size(); ++i)
      show(("queue@" + std::to_string(curve_sizes[i])).c_str(), curve[i]);
    show("hybrid", hybrid);

    bool ok = true;
    if (queued.run.stats.commits < baseline.run.stats.commits) {
      std::fprintf(stderr,
                   "FAIL: queue mode below the scheduled baseline "
                   "(%llu < %llu commits)\n",
                   static_cast<unsigned long long>(queued.run.stats.commits),
                   static_cast<unsigned long long>(baseline.run.stats.commits));
      ok = false;
    }
    // "Near-zero": sequential epochs cannot race each other, so the only
    // aborts are epoch retries against external interference — of which a
    // single-lane run has none.  Allow 1% headroom for scheduling noise.
    if (queued.run.stats.full_aborts * 100 > queued.run.stats.commits) {
      std::fprintf(stderr, "FAIL: queue mode full aborts not near-zero "
                   "(%llu aborts / %llu commits)\n",
                   static_cast<unsigned long long>(queued.run.stats.full_aborts),
                   static_cast<unsigned long long>(queued.run.stats.commits));
      ok = false;
    }
    if (queued.lane_commits == 0 || queued.epochs == 0) {
      std::fprintf(stderr, "FAIL: queue mode never engaged the epoch lane\n");
      ok = false;
    }

    // ---- Phase B: hybrid state equality ---------------------------------
    if (!run_state_equality(args, bank_config)) ok = false;

    // ---- Phase C: mid-epoch crash ---------------------------------------
    if (!run_crash_atomicity(args, bank_config)) ok = false;

    if (!args.metrics_json_path.empty()) {
      std::string json = "{\"modes\": {";
      append_mode_json(json, "acn_both", baseline, true);
      append_mode_json(json, "queue", queued, false);
      append_mode_json(json, "hybrid", hybrid, false);
      json += "}, \"epoch_curve\": [";
      for (std::size_t i = 0; i < curve.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"epoch_max\": %zu, \"commits\": %llu, "
                      "\"full_aborts\": %llu, \"avg_epoch\": %.2f}",
                      i == 0 ? "" : ", ", curve_sizes[i],
                      static_cast<unsigned long long>(curve[i].run.stats.commits),
                      static_cast<unsigned long long>(
                          curve[i].run.stats.full_aborts),
                      curve[i].avg_epoch);
        json += buf;
      }
      json += "], \"metrics\": ";
      json += args.obs->metrics.snapshot().to_json();
      json += "}";
      std::FILE* file = std::fopen(args.metrics_json_path.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "FAIL: cannot open %s\n",
                     args.metrics_json_path.c_str());
        ok = false;
      } else {
        std::fprintf(file, "%s\n", json.c_str());
        std::fclose(file);
        std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
      }
    }

    if (ok) {
      std::printf(
          "queue gate passed (throughput held, near-zero aborts, hybrid "
          "state-equal, crash atomic)\n");
      args.cleanup_data_dir();
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abl_queue failed: %s\n", e.what());
    return 1;
  }
}
