// Long-transaction case: full-spec Delivery (all 10 districts of a
// warehouse, ~40 remote accesses per transaction).
//
// Finding (extends Figure 4(d) to long transactions): transaction length
// alone does not make closed nesting pay.  Every district block here is
// equally contended (each concurrent Delivery on the same warehouse
// touches all ten cursors), so an invalidation almost always lands on an
// *earlier, already-merged* block — a full abort no composition avoids.
// All three protocols tie, confirming the paper's Section III analysis:
// partial rollback needs a contention *gradient* between blocks (hot spots
// the Algorithm Module can isolate and push toward the commit phase), not
// merely a long transaction.
#include "bench/figure_common.hpp"
#include "src/workloads/tpcc.hpp"

int main(int argc, char** argv) {
  auto args = acn::bench::BenchOptions::parse(argc, argv);
  args.driver.intervals = 4;
  acn::workloads::TpccConfig config;
  config.w_neworder = 0.0;
  config.w_delivery = 1.0;
  config.delivery_all_districts = true;
  // Fewer clients than districts so cursor contention stays moderate, and
  // a small ring so cursor conflicts do occur.
  args.driver.n_clients = 6;
  return acn::bench::run_figure(
      "Long transactions: full-spec Delivery (40 accesses/tx)", args,
      [config] { return std::make_unique<acn::workloads::Tpcc>(config); });
}
