// Google-benchmark micro-benchmarks for the framework's moving parts:
// quorum construction, store operations, dependency analysis, and the
// Algorithm Module's recompute (the cost the paper argues is negligible,
// cf. its discussion of Figure 4(d)).
#include <benchmark/benchmark.h>

#include "src/acn/algorithm_module.hpp"
#include "src/quorum/level_quorum.hpp"
#include "src/quorum/tree_quorum.hpp"
#include "src/store/contention_tracker.hpp"
#include "src/store/versioned_store.hpp"
#include "src/workloads/bank.hpp"
#include "src/workloads/tpcc.hpp"

namespace {

using namespace acn;

void BM_TreeReadQuorum(benchmark::State& state) {
  quorum::TreeQuorumSystem qs{
      quorum::TreeTopology(static_cast<std::size_t>(state.range(0)), 3)};
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(qs.read_quorum(rng));
}
BENCHMARK(BM_TreeReadQuorum)->Arg(10)->Arg(30)->Arg(100);

void BM_TreeWriteQuorum(benchmark::State& state) {
  quorum::TreeQuorumSystem qs{
      quorum::TreeTopology(static_cast<std::size_t>(state.range(0)), 3)};
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(qs.write_quorum(rng));
}
BENCHMARK(BM_TreeWriteQuorum)->Arg(10)->Arg(30)->Arg(100);

void BM_LevelWriteQuorum(benchmark::State& state) {
  quorum::LevelMajorityQuorumSystem qs{
      quorum::TreeTopology(static_cast<std::size_t>(state.range(0)), 3)};
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(qs.write_quorum(rng));
}
BENCHMARK(BM_LevelWriteQuorum)->Arg(10)->Arg(30);

void BM_StoreRead(benchmark::State& state) {
  store::VersionedStore s;
  for (std::uint64_t i = 0; i < 1024; ++i)
    s.seed({1, i}, store::Record{static_cast<store::Field>(i)});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.read({1, i++ % 1024}));
  }
}
BENCHMARK(BM_StoreRead);

void BM_StoreProtectUnprotect(benchmark::State& state) {
  store::VersionedStore s;
  s.seed({1, 1}, store::Record{1});
  for (auto _ : state) {
    s.try_protect({1, 1}, 7);
    s.unprotect({1, 1}, 7);
  }
}
BENCHMARK(BM_StoreProtectUnprotect);

void BM_ContentionBump(benchmark::State& state) {
  store::ContentionTracker tracker;
  std::uint64_t i = 0;
  for (auto _ : state) tracker.on_write({1, i++ % 64}, 0);
}
BENCHMARK(BM_ContentionBump);

void BM_DependencyAnalysisBank(benchmark::State& state) {
  workloads::Bank bank;
  const auto& program = *bank.profiles()[0].program;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        build_dependency_model(program, AttachPolicy::kLatestProducer));
}
BENCHMARK(BM_DependencyAnalysisBank);

void BM_DependencyAnalysisTpccNewOrder(benchmark::State& state) {
  workloads::Tpcc tpcc;
  const auto& program = *tpcc.profiles()[0].program;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        build_dependency_model(program, AttachPolicy::kLatestProducer));
}
BENCHMARK(BM_DependencyAnalysisTpccNewOrder);

void BM_AlgorithmRecomputeBank(benchmark::State& state) {
  workloads::Bank bank;
  AlgorithmModule mod(*bank.profiles()[0].program, {},
                      default_contention_model());
  const RawLevels levels{{workloads::Bank::kBranch, 120},
                         {workloads::Bank::kAccount, 7}};
  for (auto _ : state) benchmark::DoNotOptimize(mod.recompute(levels));
}
BENCHMARK(BM_AlgorithmRecomputeBank);

void BM_AlgorithmRecomputeTpccNewOrder(benchmark::State& state) {
  workloads::Tpcc tpcc;
  AlgorithmModule mod(*tpcc.profiles()[0].program, {},
                      default_contention_model());
  const RawLevels levels{{workloads::Tpcc::kDistrict, 200},
                         {workloads::Tpcc::kStock, 12},
                         {workloads::Tpcc::kWarehouse, 3},
                         {workloads::Tpcc::kCustomer, 4},
                         {workloads::Tpcc::kItem, 0}};
  for (auto _ : state) benchmark::DoNotOptimize(mod.recompute(levels));
}
BENCHMARK(BM_AlgorithmRecomputeTpccNewOrder);

}  // namespace

BENCHMARK_MAIN();
