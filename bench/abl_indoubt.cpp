// Cross-shard atomicity under 2PC phase-boundary chaos (the in-doubt gate).
//
// Three scenarios, each on a fresh 2-group cluster with live shard::Client
// traffic recording a history and a cross-shard decision log:
//
//   1. crash-coordinator — a victim coordinator prepares a transaction on
//      both groups, then its client node goes down between prepare and
//      phase 2 (FaultPlan::crash_coordinator) and the handle is abandoned.
//      No decision record exists, so cooperative termination must resolve
//      both parked groups to ABORT (sealing presumed abort at the
//      coordinator) and a zombie phase 2 afterwards must be refused.
//
//   2. isolate-prepared-group — the victim prepares on both groups, group 1
//      is partitioned away (FaultPlan::isolate_group), and phase 2 runs:
//      group 0 installs, group 1's push becomes an in-doubt handoff.  After
//      the heal, termination must finish the transaction to COMMIT from the
//      coordinator's decision record — never abort half of it.
//
//   3. phase2-drop — a heavy drop burst (FaultPlan::phase2_drop_burst)
//      covers the phase-2 window; pushes and decision queries are lossy but
//      bounded (RetryPolicy + op_deadline), so every loss is a classified
//      handoff, and termination finishes whatever the burst swallowed.
//
// In every scenario concurrent clients run a deterministic mixed
// single/cross-shard transfer list to completion.  The gate exits non-zero
// unless, under every plan:
//   * atomicity_breaches == 0 across every coordinator (the hard invariant);
//   * ChaosController::stop() leaves nothing in-doubt, no open lease and no
//     protected key;
//   * the committed history is conflict-serializable and the cross-shard
//     atomicity checker finds no torn transaction (all groups installed or
//     none; no reader saw an uninstalled proposal);
//   * the final state of every live key equals a fault-free sequential
//     reference, and the victim keys equal exactly their expected outcome
//     (untouched after the abort scenario, fully transferred otherwise).
//
// Flags beyond the shared set: --txs=N transfers in the live list (default
// 160).  --metrics-json FILE writes per-scenario results (the format
// scripts/bench_snapshot.sh folds into BENCH_8.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "bench/figure_common.hpp"
#include "src/chaos/chaos.hpp"
#include "src/dtm/abort.hpp"
#include "src/common/rng.hpp"
#include "src/harness/indoubt.hpp"
#include "src/nesting/history.hpp"
#include "src/shard/coordinator.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard_map.hpp"

namespace {

using namespace acn;
using shard::CrossShardCoordinator;
using shard::ShardMap;
using shard::ShardRouter;
using shard::ShardTx;
using store::ObjectKey;
using store::Record;

constexpr store::Field kInitialBalance = 1'000;
constexpr store::Field kVictimAmount = 111;
constexpr std::size_t kShards = 2;
constexpr std::size_t kClients = 4;

enum class Scenario { kCrashCoordinator, kIsolateGroup, kPhase2Drop };

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kCrashCoordinator: return "crash-coordinator";
    case Scenario::kIsolateGroup: return "isolate-prepared-group";
    case Scenario::kPhase2Drop: return "phase2-drop";
  }
  return "?";
}

acn::KeyFootprint write_footprint(std::vector<ObjectKey> keys) {
  std::sort(keys.begin(), keys.end());
  acn::KeyFootprint footprint;
  for (const auto& key : keys) footprint.push_back({key, true});
  return footprint;
}

/// `per_group` account keys owned by each group under `map`.
std::vector<std::vector<ObjectKey>> build_pools(const ShardMap& map,
                                                std::size_t per_group) {
  std::vector<std::vector<ObjectKey>> pools(map.n_shards());
  std::size_t filled = 0;
  for (std::uint64_t id = 0; filled < pools.size(); ++id) {
    const ObjectKey key{1, id};
    auto& pool = pools[map.shard_of(key)];
    if (pool.size() >= per_group) continue;
    pool.push_back(key);
    if (pool.size() == per_group) ++filled;
  }
  return pools;
}

/// Unconditional transfer of a fixed amount between two param-keyed
/// accounts — the live traffic every scenario runs through shard::Client.
ir::TxProgram transfer_program() {
  ir::ProgramBuilder b("indoubt.transfer", 2);
  const ir::VarId p_src = b.param(0);
  const ir::VarId p_dst = b.param(1);
  const ir::VarId src = b.remote_read(
      1, {p_src},
      [p_src](const ir::TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p_src))};
      },
      "read src", /*for_write=*/true);
  const ir::VarId dst = b.remote_read(
      1, {p_dst},
      [p_dst](const ir::TxEnv& e) {
        return ObjectKey{1, static_cast<std::uint64_t>(e.geti(p_dst))};
      },
      "read dst", /*for_write=*/true);
  b.local({src, dst}, {src, dst},
          [src, dst](ir::TxEnv& e) {
            Record a = e.get(src);
            Record d = e.get(dst);
            a[0] -= 7;
            d[0] += 7;
            e.write_object(src, std::move(a));
            e.write_object(dst, std::move(d));
          },
          "transfer");
  return b.build();
}

struct Op {
  ObjectKey src, dst;
};

/// Deterministic transfer list: ~40% cross-group, drawn from pool indices
/// 0..7 (indices 10 and 11 are reserved for the victim transaction).
std::vector<Op> make_ops(const std::vector<std::vector<ObjectKey>>& pools,
                         std::size_t n_ops, std::uint64_t seed) {
  std::vector<Op> ops;
  acn::Rng rng(seed + 0x1d0b7);
  for (std::size_t k = 0; k < n_ops; ++k) {
    const std::size_t src_group = rng.uniform(0, pools.size() - 1);
    std::size_t dst_group = src_group;
    if (rng.uniform(0, 99) < 40) dst_group = (src_group + 1) % pools.size();
    Op op;
    op.src = pools[src_group][rng.uniform(0, 7)];
    do {
      op.dst = pools[dst_group][rng.uniform(0, 7)];
    } while (op.dst == op.src);
    ops.push_back(op);
  }
  return ops;
}

struct ScenarioResult {
  bool ok = true;
  std::uint64_t breaches = 0;
  std::uint64_t handoffs = 0;
  harness::IndoubtReport indoubt;
};

ScenarioResult run_scenario(const bench::BenchOptions& args,
                            Scenario scenario, std::size_t n_ops) {
  ScenarioResult result;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "FAIL [%s]: %s\n", scenario_name(scenario), what);
    result.ok = false;
  };

  harness::ClusterConfig config = args.cluster;
  config.n_groups = kShards;
  config.prepare_lease_ns = 80'000'000;  // 80 ms
  harness::Cluster cluster(config);
  if (args.obs) cluster.set_obs(args.obs.get());

  const ShardMap map(
      shard::ShardMapConfig{.n_shards = static_cast<std::uint32_t>(kShards)});
  ShardRouter router(map);
  const auto pools = build_pools(map, /*per_group=*/12);
  for (const auto& pool : pools)
    for (const ObjectKey& key : pool)
      shard::seed_sharded(cluster, map, key, Record{kInitialBalance});

  nesting::HistoryLog history;
  nesting::CrossShardLog cross_log;
  acn::ExecutorConfig executor = args.driver.executor;
  executor.history = &history;
  executor.cross_log = &cross_log;

  shard::ClientStats stats;
  std::vector<std::unique_ptr<shard::Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i)
    clients.push_back(std::make_unique<shard::Client>(
        cluster, router, stats, static_cast<int>(i), executor,
        args.driver.seed ^ (i << 8)));

  // The victim coordinator shares the logs, so its decision-time commit
  // intent is held against the final state by the atomicity checker.
  CrossShardCoordinator victim(cluster, router, /*client_ordinal=*/50);
  victim.set_logs(&history, &cross_log);
  const ObjectKey victim_src = pools[0][10];
  const ObjectKey victim_dst = pools[1][11];

  using Ms = std::chrono::milliseconds;
  chaos::FaultPlan plan;
  switch (scenario) {
    case Scenario::kCrashCoordinator:
      // Down until stop(): the decision record is unreachable while live
      // traffic runs, reachable again exactly when the heal resolves.
      plan.crash_coordinator(Ms{30}, victim.client_node());
      break;
    case Scenario::kIsolateGroup:
      plan.isolate_group(Ms{30}, cluster, /*group=*/1, /*heal_after=*/Ms{200});
      break;
    case Scenario::kPhase2Drop:
      plan.phase2_drop_burst(Ms{30}, 0.8, /*burst_for=*/Ms{200});
      break;
  }
  chaos::ChaosController chaos(cluster, plan, args.obs ? args.obs.get()
                                                       : nullptr);

  // Victim prepares on both groups before any fault fires.
  std::optional<ShardTx> parked;
  parked.emplace(victim.begin(write_footprint({victim_src, victim_dst})));
  parked->write(victim_src, Record{kInitialBalance - kVictimAmount});
  parked->write(victim_dst, Record{kInitialBalance + kVictimAmount});
  if (parked->prepare_all() < 2) {
    fail("victim prepared fewer than 2 groups");
    return result;
  }

  const ir::TxProgram program = transfer_program();
  const auto ops = make_ops(pools, n_ops, args.driver.seed);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> never_committed{0};
  chaos.start();

  // Cooperative termination runs DURING the chaos window, not only at
  // stop(): a fleet transaction whose own release or phase 2 got eaten by
  // the fault parks in-doubt with its keys protected, and the retrying
  // clients would otherwise wait on keys only termination can free — a
  // deadlock with resolution deferred to after the joins.  The pump is
  // idempotent and version-guarded, so racing live traffic is safe.
  std::atomic<bool> pumping{true};
  harness::IndoubtReport pumped;
  std::thread resolver([&] {
    while (pumping.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(Ms{25});
      for (dtm::Server* server : cluster.servers())
        server->expire_stale_leases();
      const auto round = harness::resolve_indoubt(cluster);
      pumped.queries += round.queries;
      pumped.resolved_commit += round.resolved_commit;
      pumped.resolved_abort += round.resolved_abort;
    }
  });

  for (std::size_t i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      acn::ExecStats es;
      for (std::size_t k = i; k < ops.size(); k += kClients) {
        // Retry until committed: chaos-window aborts are classified and
        // bounded, so the op lands once the relevant fault clears (capped
        // so a wedge fails the gate instead of hanging it).
        bool committed = false;
        for (std::size_t attempt = 1; attempt <= 1000; ++attempt) {
          try {
            clients[i]->run(
                harness::Protocol::kFlat, acn::with_program(program),
                {Record{static_cast<store::Field>(ops[k].src.id)},
                 Record{static_cast<store::Field>(ops[k].dst.id)}},
                es);
            committed = true;
            break;
          } catch (const dtm::TxAbort&) {
            std::this_thread::sleep_for(
                std::chrono::microseconds{100 * std::min<std::size_t>(
                                                    attempt, 50)});
          }
        }
        if (!committed) never_committed.fetch_add(1);
      }
    });

  // Let the scheduled fault land between the victim's prepare and phase 2.
  std::this_thread::sleep_for(Ms{60});
  switch (scenario) {
    case Scenario::kCrashCoordinator:
      // Abandon: the node is down and nobody will ever push phase 2.
      break;
    case Scenario::kIsolateGroup:
    case Scenario::kPhase2Drop:
      // Phase 2 into the fault: unreachable groups become handoffs and the
      // client-visible outcome is still commit.
      try {
        parked->commit_prepared();
      } catch (const dtm::TxAbort&) {
        fail("victim phase 2 aborted after the decision was recorded");
      }
      break;
  }

  for (auto& thread : threads) thread.join();
  // Outlive the victim's prepare lease before healing: a short op list can
  // drain faster than the lease, and termination only sees the prepare
  // after it has parked in-doubt.
  std::this_thread::sleep_for(Ms{120});
  pumping.store(false, std::memory_order_relaxed);
  resolver.join();
  // stop() heals, parks every overdue cross-shard lease and runs
  // cooperative termination; "healed" implies nothing is left in-doubt —
  // the pump's resolutions fold into the same report.
  chaos.stop();
  result.indoubt = chaos.indoubt_report();
  result.indoubt.queries += pumped.queries;
  result.indoubt.resolved_commit += pumped.resolved_commit;
  result.indoubt.resolved_abort += pumped.resolved_abort;
  result.handoffs = victim.stats().indoubt_handoffs.load();
  if (never_committed.load() != 0) fail("a live op never committed");

  if (scenario == Scenario::kCrashCoordinator) {
    if (result.indoubt.resolved_abort == 0)
      fail("abandoned prepare was not resolved to abort");
    // The zombie wakes up after its transaction was resolved away: the
    // sealed presumed abort must refuse phase 2.
    try {
      parked->commit_prepared();
      fail("zombie phase 2 was accepted after presumed abort was sealed");
    } catch (const dtm::TxAbort&) {
    }
  }
  if (scenario == Scenario::kIsolateGroup &&
      result.indoubt.resolved_commit == 0)
    fail("handed-off push was not resolved to commit");
  if (result.indoubt.unresolved != 0) fail("prepares left in-doubt");

  std::size_t open_leases = 0, protected_keys = 0;
  for (dtm::Server* server : cluster.servers()) {
    open_leases += server->open_lease_count();
    protected_keys += server->store().protected_count();
  }
  if (open_leases != 0 || protected_keys != 0) fail("leases or keys leaked");

  // The hard invariant, across the fleet and the victim.
  result.breaches = stats.atomicity_breaches.load() +
                    victim.stats().atomicity_breaches.load();
  if (result.breaches != 0) fail("atomicity breach");

  // Fault-free sequential reference for the live keys.
  harness::ClusterConfig reference_config = config;
  reference_config.n_groups = 1;
  harness::Cluster reference(reference_config);
  const ShardMap one(shard::ShardMapConfig{.n_shards = 1});
  ShardRouter reference_router(one);
  for (const auto& pool : pools)
    for (const ObjectKey& key : pool)
      shard::seed_sharded(reference, one, key, Record{kInitialBalance});
  {
    CrossShardCoordinator reference_client(reference, reference_router, 0);
    for (const Op& op : ops) {
      ShardTx tx = reference_client.begin(write_footprint({op.src, op.dst}));
      const Record a = tx.read(op.src);
      const Record b = tx.read(op.dst);
      tx.write(op.src, Record{a.fields[0] - 7});
      tx.write(op.dst, Record{b.fields[0] + 7});
      tx.commit();
    }
  }
  std::size_t mismatched = 0;
  for (const auto& pool : pools)
    for (const ObjectKey& key : pool) {
      if (key == victim_src || key == victim_dst) continue;
      const store::Field got =
          shard::latest_sharded(cluster, map, key).value.fields[0];
      const store::Field want =
          shard::latest_sharded(reference, one, key).value.fields[0];
      if (got != want) {
        ++mismatched;
        std::fprintf(stderr, "FAIL [%s]: key %s = %lld, reference %lld\n",
                     scenario_name(scenario), store::to_string(key).c_str(),
                     static_cast<long long>(got),
                     static_cast<long long>(want));
      }
    }
  if (mismatched != 0) result.ok = false;

  // The victim's outcome must be all-or-nothing, per scenario.
  const store::Field got_src =
      shard::latest_sharded(cluster, map, victim_src).value.fields[0];
  const store::Field got_dst =
      shard::latest_sharded(cluster, map, victim_dst).value.fields[0];
  const bool committed = scenario != Scenario::kCrashCoordinator;
  const store::Field want_src =
      committed ? kInitialBalance - kVictimAmount : kInitialBalance;
  const store::Field want_dst =
      committed ? kInitialBalance + kVictimAmount : kInitialBalance;
  if (got_src != want_src || got_dst != want_dst) fail("victim outcome torn");

  // History-level checks: conflict serializability of everything that
  // committed, and cross-shard atomicity of every recorded decision
  // against the final installed versions.
  const auto serializable = nesting::check_serializable(history.snapshot());
  if (!serializable.ok) {
    std::fprintf(stderr, "FAIL [%s]: %s\n", scenario_name(scenario),
                 serializable.violation.c_str());
    result.ok = false;
  }
  std::vector<std::pair<ObjectKey, store::Version>> final_versions;
  for (const auto& pool : pools)
    for (const ObjectKey& key : pool)
      final_versions.push_back(
          {key, shard::latest_sharded(cluster, map, key).version});
  const auto atomic = nesting::check_cross_shard_atomicity(
      history.snapshot(), cross_log.snapshot(), final_versions);
  if (!atomic.ok) {
    std::fprintf(stderr, "FAIL [%s]: %s\n", scenario_name(scenario),
                 atomic.violation.c_str());
    result.ok = false;
  }

  std::printf("[%s] ops=%zu cross_entries=%zu handoffs=%llu breaches=%llu "
              "indoubt: %zu queries, %zu commit, %zu abort, %zu left — %s\n",
              scenario_name(scenario), ops.size(), cross_log.size(),
              static_cast<unsigned long long>(result.handoffs),
              static_cast<unsigned long long>(result.breaches),
              result.indoubt.queries, result.indoubt.resolved_commit,
              result.indoubt.resolved_abort, result.indoubt.unresolved,
              result.ok ? "ok" : "FAILED");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_ops = 160;
  const auto extra = [&](const std::string& arg) {
    if (arg.rfind("--txs=", 0) == 0) {
      n_ops = static_cast<std::size_t>(
          std::strtol(arg.c_str() + std::strlen("--txs="), nullptr, 10));
      return true;
    }
    return false;
  };
  auto args = bench::BenchOptions::parse(argc, argv, extra);
  args.cluster.n_servers = 3;
  if (args.cluster.base_latency > std::chrono::microseconds{10})
    args.cluster.base_latency = std::chrono::microseconds{10};
  args.driver.executor.backoff_base = std::chrono::microseconds{10};
  if (!args.obs) {
    args.obs = std::make_shared<obs::Observability>();
    args.driver.obs = args.obs.get();
  }

  std::printf("\n=== In-doubt termination: cross-shard atomicity under 2PC "
              "phase-boundary chaos ===\n");

  bool ok = true;
  std::vector<std::pair<Scenario, ScenarioResult>> results;
  try {
    for (const Scenario scenario :
         {Scenario::kCrashCoordinator, Scenario::kIsolateGroup,
          Scenario::kPhase2Drop}) {
      results.emplace_back(scenario, run_scenario(args, scenario, n_ops));
      ok = ok && results.back().second.ok;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abl_indoubt failed: %s\n", e.what());
    return 1;
  }

  const auto snap = args.obs->metrics.snapshot();
  std::printf("obs: indoubt.queries=%llu indoubt.resolved.commit=%llu "
              "indoubt.resolved.abort=%llu\n",
              static_cast<unsigned long long>(snap.counter("indoubt.queries")),
              static_cast<unsigned long long>(
                  snap.counter("indoubt.resolved.commit")),
              static_cast<unsigned long long>(
                  snap.counter("indoubt.resolved.abort")));

  if (!args.metrics_json_path.empty()) {
    std::FILE* file = std::fopen(args.metrics_json_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "FAIL: cannot open %s\n",
                   args.metrics_json_path.c_str());
      ok = false;
    } else {
      std::uint64_t breaches = 0;
      std::size_t commits = 0, aborts = 0, unresolved = 0;
      std::fprintf(file, "{\n \"scenarios\": {");
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& [scenario, r] = results[i];
        std::fprintf(file, "%s\"%s\": %s", i ? ", " : "",
                     scenario_name(scenario), r.ok ? "true" : "false");
        breaches += r.breaches;
        commits += r.indoubt.resolved_commit;
        aborts += r.indoubt.resolved_abort;
        unresolved += r.indoubt.unresolved;
      }
      std::fprintf(file,
                   "},\n \"atomicity_breaches\": %llu,\n"
                   " \"indoubt_resolved_commit\": %zu,\n"
                   " \"indoubt_resolved_abort\": %zu,\n"
                   " \"indoubt_unresolved\": %zu\n}\n",
                   static_cast<unsigned long long>(breaches), commits, aborts,
                   unresolved);
      std::fclose(file);
      std::printf("metrics written to %s\n", args.metrics_json_path.c_str());
    }
  }

  if (ok)
    std::printf("all in-doubt termination/atomicity checks passed "
                "(invariants verified)\n");
  return ok ? 0 : 1;
}
