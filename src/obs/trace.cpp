#include "src/obs/trace.hpp"

#include <cstdio>

#include "src/common/clock.hpp"

namespace acn::obs {

struct Tracer::Ring {
  explicit Ring(std::size_t capacity, std::int32_t tid)
      : buf(capacity), tid(tid) {}

  std::vector<TraceEvent> buf;
  std::uint64_t head = 0;  // total events ever written (monotonic)
  std::int32_t tid;
  std::string thread_name;
};

namespace {
std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(ring_capacity ? ring_capacity : 1),
      instance_id_(next_tracer_id()) {}

Tracer::~Tracer() = default;

Tracer::Ring& Tracer::local_ring() {
  thread_local struct {
    std::uint64_t instance = 0;
    Ring* ring = nullptr;
  } cache;
  if (cache.instance == instance_id_) return *cache.ring;

  std::lock_guard lock(mutex_);
  auto& slot = rings_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<Ring>(capacity_, next_tid_++);
  cache = {instance_id_, slot.get()};
  return *slot;
}

void Tracer::record(const TraceEvent& event) noexcept {
  Ring& ring = local_ring();
  ring.buf[ring.head % capacity_] = event;
  ++ring.head;
}

void Tracer::set_process(std::int32_t pid, std::string name) {
  current_pid_.store(pid, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  process_names_[pid] = std::move(name);
}

void Tracer::set_thread_name(std::string name) {
  local_ring().thread_name = std::move(name);
}

void Tracer::instant(const char* name, const char* cat, std::uint64_t tx,
                     const char* arg0_name, std::int64_t arg0,
                     const char* arg1_name, std::int64_t arg1,
                     const char* sarg_name, const char* sarg) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = TraceEvent::Phase::kInstant;
  event.pid = current_pid_.load(std::memory_order_relaxed);
  event.ts_ns = now_ns();
  event.tx = tx;
  event.arg0_name = arg0_name;
  event.arg0 = arg0;
  event.arg1_name = arg1_name;
  event.arg1 = arg1;
  event.sarg_name = sarg_name;
  event.sarg = sarg;
  record(event);
}

void Tracer::begin(const char* name, const char* cat, std::uint64_t tx,
                   const char* arg0_name, std::int64_t arg0) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = TraceEvent::Phase::kBegin;
  event.pid = current_pid_.load(std::memory_order_relaxed);
  event.ts_ns = now_ns();
  event.tx = tx;
  event.arg0_name = arg0_name;
  event.arg0 = arg0;
  record(event);
}

void Tracer::end(const char* name, const char* cat) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = TraceEvent::Phase::kEnd;
  event.pid = current_pid_.load(std::memory_order_relaxed);
  event.ts_ns = now_ns();
  record(event);
}

std::vector<Tracer::ThreadEvents> Tracer::events() const {
  std::vector<ThreadEvents> out;
  std::lock_guard lock(mutex_);
  out.reserve(rings_.size());
  for (const auto& [id, ring] : rings_) {
    ThreadEvents thread;
    thread.tid = ring->tid;
    thread.thread_name = ring->thread_name;
    const std::uint64_t head = ring->head;
    const std::uint64_t retained = head < capacity_ ? head : capacity_;
    thread.events.reserve(retained);
    for (std::uint64_t i = head - retained; i < head; ++i)
      thread.events.push_back(ring->buf[i % capacity_]);
    out.push_back(std::move(thread));
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard lock(mutex_);
  for (const auto& [id, ring] : rings_)
    if (ring->head > capacity_) total += ring->head - capacity_;
  return total;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
  out += '"';
}

void append_ts_us(std::string& out, std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  out += buf;
}

void append_event(std::string& out, const TraceEvent& event,
                  std::int32_t tid) {
  out += "{\"name\":";
  append_escaped(out, event.name ? event.name : "?");
  out += ",\"cat\":";
  append_escaped(out, event.cat ? event.cat : "default");
  out += ",\"ph\":\"";
  out += static_cast<char>(event.phase);
  out += "\",\"pid\":" + std::to_string(event.pid);
  out += ",\"tid\":" + std::to_string(tid);
  out += ",\"ts\":";
  append_ts_us(out, event.ts_ns);
  if (event.phase == TraceEvent::Phase::kInstant) out += ",\"s\":\"t\"";
  const bool has_args = event.tx || event.arg0_name || event.arg1_name ||
                        (event.sarg_name && event.sarg);
  if (has_args && event.phase != TraceEvent::Phase::kEnd) {
    out += ",\"args\":{";
    bool first = true;
    auto arg = [&](const char* name, const std::string& value, bool quoted) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, name);
      out += ':';
      if (quoted)
        append_escaped(out, value.c_str());
      else
        out += value;
    };
    if (event.tx) arg("tx", std::to_string(event.tx), false);
    if (event.arg0_name) arg(event.arg0_name, std::to_string(event.arg0), false);
    if (event.arg1_name) arg(event.arg1_name, std::to_string(event.arg1), false);
    if (event.sarg_name && event.sarg) arg(event.sarg_name, event.sarg, true);
    out += '}';
  }
  out += '}';
}

void append_metadata(std::string& out, const char* name, std::int32_t pid,
                     std::int32_t tid, bool with_tid,
                     const std::string& value) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (with_tid) out += ",\"tid\":" + std::to_string(tid);
  out += ",\"args\":{\"name\":";
  append_escaped(out, value.c_str());
  out += "}}";
}

}  // namespace

std::string Tracer::chrome_json() const {
  const auto threads = events();
  std::map<std::int32_t, std::string> process_names;
  {
    std::lock_guard lock(mutex_);
    process_names = process_names_;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](auto&& append) {
    if (!first) out += ',';
    first = false;
    append();
  };

  for (const auto& [pid, name] : process_names)
    emit([&] { append_metadata(out, "process_name", pid, 0, false, name); });

  for (const auto& thread : threads) {
    if (!thread.thread_name.empty()) {
      // One thread may emit under several pids (one per protocol run);
      // label its lane in each process it appears in.
      std::map<std::int32_t, bool> seen;
      for (const auto& event : thread.events) seen[event.pid] = true;
      for (const auto& [pid, unused] : seen)
        emit([&] {
          append_metadata(out, "thread_name", pid, thread.tid, true,
                          thread.thread_name);
        });
    }
    // Re-balance B/E pairs: a wrapped ring may retain an end whose begin
    // was overwritten (skip it) or lose an end past the window (close it
    // at the last retained timestamp).
    std::vector<const TraceEvent*> open;
    std::uint64_t last_ts = 0;
    for (const auto& event : thread.events) {
      last_ts = event.ts_ns;
      switch (event.phase) {
        case TraceEvent::Phase::kBegin:
          open.push_back(&event);
          emit([&] { append_event(out, event, thread.tid); });
          break;
        case TraceEvent::Phase::kEnd:
          if (open.empty()) continue;  // begin lost to wrap-around
          open.pop_back();
          emit([&] { append_event(out, event, thread.tid); });
          break;
        case TraceEvent::Phase::kInstant:
          emit([&] { append_event(out, event, thread.tid); });
          break;
      }
    }
    while (!open.empty()) {
      TraceEvent closer = *open.back();
      open.pop_back();
      closer.phase = TraceEvent::Phase::kEnd;
      closer.ts_ns = last_ts;
      emit([&] { append_event(out, closer, thread.tid); });
    }
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    std::fprintf(stderr, "Tracer::write_chrome_json: cannot open %s\n",
                 path.c_str());
    return false;
  }
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  return ok;
}

}  // namespace acn::obs
