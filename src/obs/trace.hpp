// Structured transaction tracer with Chrome-trace export.
//
// Instrumentation points record fixed-size TraceEvents into *per-thread
// ring buffers* — no allocation, no shared lock on the hot path; a full
// ring overwrites its oldest events (dropped() reports how many).  Event
// names/categories must be string literals (static lifetime): events store
// the pointers only.
//
// export: chrome_json() emits the Chrome `chrome://tracing` / Perfetto
// JSON-array-of-events format ("traceEvents", ph B/E/i, ts in
// microseconds), with process/thread metadata records, so a trace file
// drops straight into ui.perfetto.dev.  B/E pairs are re-balanced per
// thread at export time, which keeps the output well-formed even when the
// ring wrapped mid-span.
//
// When disabled (set_enabled(false), or a null Tracer* at the call site),
// every record call is one predictable branch; see bench/micro_obs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"  // kObsDefaultEnabled

namespace acn::obs {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
  };

  const char* name = nullptr;  // string literal
  const char* cat = nullptr;   // string literal
  Phase phase = Phase::kInstant;
  std::int32_t pid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t tx = 0;  // transaction id, 0 = none (exported as args.tx)
  // Up to two numeric args and one string arg (names/values are literals).
  const char* arg0_name = nullptr;
  std::int64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::int64_t arg1 = 0;
  const char* sarg_name = nullptr;
  const char* sarg = nullptr;
};

class Tracer {
  struct Ring;

 public:
  /// `ring_capacity` is per thread, in events (one event = 96 bytes).
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Label the trace "process" new events are attributed to.  The harness
  /// gives each protocol run its own pid, so a multi-run trace shows one
  /// swim-lane group per protocol.
  void set_process(std::int32_t pid, std::string name);
  /// Label the calling thread's lane ("client-3", "driver", ...).
  void set_thread_name(std::string name);

  void instant(const char* name, const char* cat, std::uint64_t tx = 0,
               const char* arg0_name = nullptr, std::int64_t arg0 = 0,
               const char* arg1_name = nullptr, std::int64_t arg1 = 0,
               const char* sarg_name = nullptr, const char* sarg = nullptr);
  void begin(const char* name, const char* cat, std::uint64_t tx = 0,
             const char* arg0_name = nullptr, std::int64_t arg0 = 0);
  void end(const char* name, const char* cat);

  /// RAII span: emits a begin on construction (when the tracer is non-null
  /// and enabled) and the matching end on destruction — abort paths that
  /// unwind through exceptions still close their spans.
  class Span {
   public:
    Span() = default;
    Span(Tracer* tracer, const char* name, const char* cat,
         std::uint64_t tx = 0, const char* arg0_name = nullptr,
         std::int64_t arg0 = 0) {
      if (tracer && tracer->enabled()) {
        tracer_ = tracer;
        name_ = name;
        cat_ = cat;
        tracer->begin(name, cat, tx, arg0_name, arg0);
      }
    }
    Span(Span&& other) noexcept
        : tracer_(other.tracer_), name_(other.name_), cat_(other.cat_) {
      other.tracer_ = nullptr;
    }
    // No move-assignment: `span = Span(...)` would record the new begin
    // before the old end (the temporary is constructed first), breaking the
    // strict B/E nesting Chrome traces require.  Re-use via restart().
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// End the current span (if any), then begin a new one — the pattern
    /// for a span variable re-armed across loop iterations or phases.
    void restart(Tracer* tracer, const char* name, const char* cat,
                 std::uint64_t tx = 0, const char* arg0_name = nullptr,
                 std::int64_t arg0 = 0) {
      if (tracer_) tracer_->end(name_, cat_);
      tracer_ = nullptr;
      if (tracer && tracer->enabled()) {
        tracer_ = tracer;
        name_ = name;
        cat_ = cat;
        tracer->begin(name, cat, tx, arg0_name, arg0);
      }
    }
    /// End the span now (idempotent).
    void finish() {
      if (tracer_) tracer_->end(name_, cat_);
      tracer_ = nullptr;
    }
    ~Span() {
      if (tracer_) tracer_->end(name_, cat_);
    }

   private:
    Tracer* tracer_ = nullptr;
    const char* name_ = nullptr;
    const char* cat_ = nullptr;
  };

  /// Retained events of one thread, oldest first (post-wrap window).
  struct ThreadEvents {
    std::int32_t tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
  };

  /// Structured snapshot of all rings.  Exact once writers are quiescent
  /// (the exporters are meant to run after the measured workload joined).
  std::vector<ThreadEvents> events() const;

  /// Events lost to ring wrap-around, across all threads.
  std::uint64_t dropped() const;

  /// Chrome trace JSON ({"traceEvents": [...]}).
  std::string chrome_json() const;
  /// Write chrome_json() to `path`; false (with stderr message) on failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  Ring& local_ring();
  void record(const TraceEvent& event) noexcept;

  const std::size_t capacity_;
  const std::uint64_t instance_id_;
  std::atomic<bool> enabled_{kObsDefaultEnabled};
  std::atomic<std::int32_t> current_pid_{0};

  mutable std::mutex mutex_;
  std::map<std::thread::id, std::unique_ptr<Ring>> rings_;
  std::map<std::int32_t, std::string> process_names_;
  std::int32_t next_tid_ = 0;
};

}  // namespace acn::obs
