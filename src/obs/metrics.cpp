#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace acn::obs {

// ---------------------------------------------------------------------------
// HistogramData

std::uint64_t HistogramData::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  return total;
}

double HistogramData::mean() const noexcept {
  const std::uint64_t n = count();
  return n ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
}

std::uint64_t HistogramData::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0 || bounds.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank && counts[i] > 0)
      return i < bounds.size() ? bounds[i] : bounds.back();
  }
  return bounds.back();
}

// ---------------------------------------------------------------------------
// Snapshot

std::uint64_t Snapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

std::int64_t Snapshot::gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges)
    if (g.name == name) return g.value;
  return 0;
}

const HistogramData* Snapshot::histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms)
    if (h.name == name) return &h.data;
  return nullptr;
}

Snapshot Snapshot::since(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (auto& c : out.counters) {
    const std::uint64_t before = earlier.counter(c.name);
    c.value = c.value >= before ? c.value - before : 0;
  }
  for (auto& h : out.histograms) {
    const HistogramData* before = earlier.histogram(h.name);
    if (!before || before->counts.size() != h.data.counts.size()) continue;
    for (std::size_t i = 0; i < h.data.counts.size(); ++i)
      h.data.counts[i] = h.data.counts[i] >= before->counts[i]
                             ? h.data.counts[i] - before->counts[i]
                             : 0;
    h.data.sum = h.data.sum >= before->sum ? h.data.sum - before->sum : 0;
  }
  return out;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <class Seq, class Emit>
void append_json_object(std::string& out, const Seq& items, Emit&& emit) {
  out += '{';
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, item.name);
    out += ':';
    emit(out, item);
  }
  out += '}';
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(256 + 48 * (counters.size() + gauges.size()) +
              160 * histograms.size());
  out += "{\"counters\":";
  append_json_object(out, counters, [](std::string& o, const Counter& c) {
    o += std::to_string(c.value);
  });
  out += ",\"gauges\":";
  append_json_object(out, gauges, [](std::string& o, const Gauge& g) {
    o += std::to_string(g.value);
  });
  out += ",\"histograms\":";
  append_json_object(out, histograms, [](std::string& o, const Histogram& h) {
    o += "{\"bounds\":";
    append_u64_array(o, h.data.bounds);
    o += ",\"counts\":";
    append_u64_array(o, h.data.counts);
    o += ",\"count\":" + std::to_string(h.data.count());
    o += ",\"sum\":" + std::to_string(h.data.sum);
    o += ",\"p50\":" + std::to_string(h.data.percentile(0.50));
    o += ",\"p99\":" + std::to_string(h.data.percentile(0.99));
    o += '}';
  });
  out += '}';
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "name,kind,stat,value\n";
  for (const auto& c : counters)
    out += c.name + ",counter,value," + std::to_string(c.value) + "\n";
  for (const auto& g : gauges)
    out += g.name + ",gauge,value," + std::to_string(g.value) + "\n";
  for (const auto& h : histograms) {
    out += h.name + ",histogram,count," + std::to_string(h.data.count()) + "\n";
    out += h.name + ",histogram,sum," + std::to_string(h.data.sum) + "\n";
    out += h.name + ",histogram,p50," + std::to_string(h.data.percentile(0.5)) + "\n";
    out += h.name + ",histogram,p99," + std::to_string(h.data.percentile(0.99)) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t max_cells)
    : max_cells_(max_cells), instance_id_(next_instance_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Desc& MetricsRegistry::register_metric(std::string name,
                                                        Kind kind,
                                                        std::size_t n_cells) {
  std::lock_guard lock(mutex_);
  for (auto& desc : descs_) {
    if (desc.name != name) continue;
    if (desc.kind != kind)
      throw std::logic_error("metric re-registered with a different kind: " +
                             name);
    return desc;
  }
  if (kind != Kind::kGauge && cells_used_ + n_cells > max_cells_)
    throw std::length_error("MetricsRegistry cell budget exhausted at " + name);
  Desc& desc = descs_.emplace_back();
  desc.name = std::move(name);
  desc.kind = kind;
  if (kind == Kind::kGauge) {
    desc.gauge_cell = &gauges_.emplace_back();
  } else {
    desc.cell_base = static_cast<std::uint32_t>(cells_used_);
    cells_used_ += n_cells;
  }
  return desc;
}

MetricsRegistry::Counter MetricsRegistry::counter(std::string name) {
  const Desc& desc = register_metric(std::move(name), Kind::kCounter, 1);
  return Counter(this, desc.cell_base);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(std::string name) {
  const Desc& desc = register_metric(std::move(name), Kind::kGauge, 0);
  return Gauge(desc.gauge_cell);
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    std::string name, std::vector<std::uint64_t> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()))
    throw std::invalid_argument("histogram bounds must be ascending and non-empty");
  // Cells: one count per bound, one overflow count, one sum.
  Desc& desc = register_metric(std::move(name), Kind::kHistogram,
                               bounds.size() + 2);
  if (desc.bounds.empty()) desc.bounds = std::move(bounds);
  return Histogram(this, &desc);
}

std::vector<std::uint64_t> MetricsRegistry::exponential_bounds(
    std::uint64_t first, double factor, std::size_t n) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(n);
  double bound = static_cast<double>(first);
  for (std::size_t i = 0; i < n; ++i) {
    const auto rounded = static_cast<std::uint64_t>(bound);
    if (bounds.empty() || rounded > bounds.back()) bounds.push_back(rounded);
    bound *= factor;
  }
  return bounds;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // One shard per (thread, registry).  The single-entry TLS cache covers
  // the common case of one live registry; a miss falls back to the map.
  thread_local struct {
    std::uint64_t instance = 0;
    Shard* shard = nullptr;
  } cache;
  if (cache.instance == instance_id_) return *cache.shard;

  std::lock_guard lock(mutex_);
  auto& slot = shards_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<Shard>(max_cells_);
  cache = {instance_id_, slot.get()};
  return *slot;
}

void MetricsRegistry::bump(std::uint32_t cell, std::uint64_t delta) noexcept {
  if (!enabled()) return;
  local_shard().cells[cell].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::observe(const Desc& desc, std::uint64_t value) noexcept {
  if (!enabled()) return;
  const auto& bounds = desc.bounds;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  Shard& shard = local_shard();
  shard.cells[desc.cell_base + bucket].fetch_add(1, std::memory_order_relaxed);
  shard.cells[desc.cell_base + bounds.size() + 1].fetch_add(
      value, std::memory_order_relaxed);
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  std::lock_guard lock(mutex_);
  auto cell_sum = [&](std::uint32_t cell) {
    std::uint64_t total = 0;
    for (const auto& [tid, shard] : shards_)
      total += shard->cells[cell].load(std::memory_order_relaxed);
    return total;
  };
  for (const auto& desc : descs_) {
    switch (desc.kind) {
      case Kind::kCounter:
        out.counters.push_back({desc.name, cell_sum(desc.cell_base)});
        break;
      case Kind::kGauge:
        out.gauges.push_back(
            {desc.name, desc.gauge_cell->load(std::memory_order_relaxed)});
        break;
      case Kind::kHistogram: {
        Snapshot::Histogram hist;
        hist.name = desc.name;
        hist.data.bounds = desc.bounds;
        hist.data.counts.resize(desc.bounds.size() + 1);
        for (std::size_t i = 0; i <= desc.bounds.size(); ++i)
          hist.data.counts[i] =
              cell_sum(desc.cell_base + static_cast<std::uint32_t>(i));
        hist.data.sum = cell_sum(
            desc.cell_base + static_cast<std::uint32_t>(desc.bounds.size()) + 1);
        out.histograms.push_back(std::move(hist));
        break;
      }
    }
  }
  return out;
}

}  // namespace acn::obs
