// Metrics registry: lock-cheap named counters, gauges, and fixed-bucket
// latency histograms for the transaction runtime and the harness.
//
// Hot-path design: every counter/histogram update lands in a *per-thread
// shard* (a flat array of relaxed atomics private to the writing thread),
// so concurrent clients never contend on a shared cache line; snapshot()
// merges the shards.  Gauges are set-not-accumulated, so they live in one
// shared cell each.  Updates through a default-constructed or disabled
// handle are a single predictable branch — cheap enough to leave the
// instrumentation compiled into release binaries.
//
// The compile-time macro ACN_OBS_DEFAULT_ENABLED (0/1, default 1) picks the
// initial state of the runtime enabled flag; set_enabled() overrides it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace acn::obs {

#ifndef ACN_OBS_DEFAULT_ENABLED
#define ACN_OBS_DEFAULT_ENABLED 1
#endif
inline constexpr bool kObsDefaultEnabled = ACN_OBS_DEFAULT_ENABLED != 0;

/// Merged view of one histogram: `counts[i]` holds observations with
/// value <= bounds[i] (first matching bound wins); `counts.back()` is the
/// overflow bucket for values above every bound.
struct HistogramData {
  std::vector<std::uint64_t> bounds;  // ascending inclusive upper bounds
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t sum = 0;

  std::uint64_t count() const noexcept;
  double mean() const noexcept;
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]);
  /// overflow observations report the last finite bound.  0 when empty.
  std::uint64_t percentile(double q) const noexcept;
};

/// Point-in-time merged view of a registry.
struct Snapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    std::int64_t value = 0;
  };
  struct Histogram {
    std::string name;
    HistogramData data;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Value of the named counter, 0 when absent.
  std::uint64_t counter(std::string_view name) const noexcept;
  std::int64_t gauge(std::string_view name) const noexcept;
  const HistogramData* histogram(std::string_view name) const noexcept;

  /// Difference vs an earlier snapshot of the same registry: counters and
  /// histogram buckets subtract (clamped at 0); gauges keep their current
  /// value.  Metrics absent from `earlier` pass through unchanged.
  Snapshot since(const Snapshot& earlier) const;

  std::string to_json() const;
  /// "name,kind,stat,value" rows (histograms expand to count/sum/p50/p99),
  /// matching the harness CSV convention of one scalar per row.
  std::string to_csv() const;
};

class MetricsRegistry {
  struct Desc;

 public:
  /// `max_cells` bounds the total shard cells (1 per counter,
  /// bounds+2 per histogram); registration beyond it throws.
  explicit MetricsRegistry(std::size_t max_cells = 1024);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Monotonic counter handle.  Handles are cheap value types bound to the
  /// registry; the registry must outlive them.  A default-constructed
  /// handle is a no-op.
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t delta = 1) const noexcept {
      if (registry_) registry_->bump(cell_, delta);
    }

   private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* registry, std::uint32_t cell)
        : registry_(registry), cell_(cell) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint32_t cell_ = 0;
  };

  /// Last-set-wins gauge (one shared cell; set() is rare by design).
  class Gauge {
   public:
    Gauge() = default;
    void set(std::int64_t value) const noexcept {
      if (cell_) cell_->store(value, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) const noexcept {
      if (cell_) cell_->fetch_add(delta, std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
    std::atomic<std::int64_t>* cell_ = nullptr;
  };

  class Histogram {
   public:
    Histogram() = default;
    void observe(std::uint64_t value) const noexcept {
      if (registry_) registry_->observe(*desc_, value);
    }

   private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry* registry, const Desc* desc)
        : registry_(registry), desc_(desc) {}
    MetricsRegistry* registry_ = nullptr;
    const Desc* desc_ = nullptr;
  };

  /// Register (or look up, by exact name + kind) a metric.  Thread-safe.
  Counter counter(std::string name);
  Gauge gauge(std::string name);
  /// `bounds` must be non-empty, ascending inclusive upper bounds.
  Histogram histogram(std::string name, std::vector<std::uint64_t> bounds);

  /// Convenience bucket layout: {first, first*factor, ...} (n bounds),
  /// suitable for nanosecond latencies.
  static std::vector<std::uint64_t> exponential_bounds(std::uint64_t first,
                                                       double factor,
                                                       std::size_t n);

  /// Merge all shards into a consistent-enough view (relaxed reads; exact
  /// once writers are quiescent).
  Snapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Desc {
    std::string name;
    Kind kind;
    std::uint32_t cell_base = 0;            // first shard cell
    std::vector<std::uint64_t> bounds;      // histograms only
    std::atomic<std::int64_t>* gauge_cell = nullptr;
  };

  struct Shard {
    explicit Shard(std::size_t n)
        : cells(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {}
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;  // zero-initialised
  };

  void bump(std::uint32_t cell, std::uint64_t delta) noexcept;
  void observe(const Desc& desc, std::uint64_t value) noexcept;
  Shard& local_shard();
  Desc& register_metric(std::string name, Kind kind, std::size_t n_cells);

  const std::size_t max_cells_;
  const std::uint64_t instance_id_;  // process-unique, for TLS caching
  std::atomic<bool> enabled_{kObsDefaultEnabled};

  mutable std::mutex mutex_;
  std::deque<Desc> descs_;                         // stable addresses
  std::deque<std::atomic<std::int64_t>> gauges_;   // stable addresses
  std::map<std::thread::id, std::unique_ptr<Shard>> shards_;
  std::size_t cells_used_ = 0;
};

}  // namespace acn::obs
