#include "src/obs/obs.hpp"

#include <string>

#include "src/common/clock.hpp"

namespace acn::obs {

const char* abort_reason_name(int reason) noexcept {
  switch (reason) {
    case kReasonValidation:
      return "validation";
    case kReasonBusy:
      return "busy";
    case kReasonUnavailable:
      return "unavailable";
  }
  return "unknown";
}

namespace {
// 100ns .. ~1.3s in half-decade-ish steps: covers one RPC through a
// many-retry transaction on the simulated cluster.
std::vector<std::uint64_t> latency_bounds() {
  return MetricsRegistry::exponential_bounds(100, 2.0, 24);
}

// 1..16 keys per batched read, plus an overflow bucket for wider fan-out.
std::vector<std::uint64_t> batch_bounds() {
  return {1, 2, 3, 4, 6, 8, 12, 16};
}

// 1..256 transactions per planned epoch (the planner's cut size).
std::vector<std::uint64_t> epoch_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}
}  // namespace

Observability::Observability(ObsConfig config)
    : tracer(config.ring_capacity),
      tx_commits(metrics.counter("tx.commit")),
      tx_aborts_full(metrics.counter("tx.abort.full")),
      tx_aborts_partial(metrics.counter("tx.abort.partial")),
      blocks_executed(metrics.counter("block.executed")),
      tx_latency_ns(metrics.histogram("tx.latency_ns", latency_bounds())),
      block_latency_ns(metrics.histogram("block.latency_ns", latency_bounds())),
      rpc_reads(metrics.counter("rpc.read")),
      rpc_batched_reads(metrics.counter("rpc.read.batched")),
      rpcs_saved(metrics.counter("rpc.read.saved")),
      read_batch_size(metrics.histogram("rpc.read.batch_size", batch_bounds())),
      rpc_validates(metrics.counter("rpc.validate")),
      rpc_prepares(metrics.counter("rpc.prepare")),
      rpc_commits(metrics.counter("rpc.commit")),
      rpc_aborts(metrics.counter("rpc.abort")),
      rpc_contention_queries(metrics.counter("rpc.contention")),
      rpc_read_ns(metrics.histogram("rpc.read_ns", latency_bounds())),
      rpc_prepare_ns(metrics.histogram("rpc.prepare_ns", latency_bounds())),
      rpc_commit_ns(metrics.histogram("rpc.commit_ns", latency_bounds())),
      rpc_lease_expired(metrics.counter("rpc.lease.expired")),
      rpc_commit_replays(metrics.counter("rpc.commit.replayed")),
      rpc_commit_rejected(metrics.counter("rpc.commit.rejected")),
      chaos_crashes(metrics.counter("chaos.crash")),
      chaos_restarts(metrics.counter("chaos.restart")),
      chaos_partitions(metrics.counter("chaos.partition")),
      chaos_heals(metrics.counter("chaos.heal")),
      chaos_drop_bursts(metrics.counter("chaos.drop_burst")),
      chaos_latency_spikes(metrics.counter("chaos.latency_spike")),
      recovery_catchup_keys(metrics.counter("recovery.catchup.keys")),
      indoubt_queries(metrics.counter("indoubt.queries")),
      indoubt_resolved_commit(metrics.counter("indoubt.resolved.commit")),
      indoubt_resolved_abort(metrics.counter("indoubt.resolved.abort")),
      transport_bytes_sent(metrics.counter("transport.bytes.sent")),
      transport_bytes_recv(metrics.counter("transport.bytes.recv")),
      transport_reconnects(metrics.counter("transport.reconnects")),
      transport_frames_corrupt(metrics.counter("transport.frames.corrupt")),
      wal_append_bytes(metrics.counter("wal.append.bytes")),
      wal_fsync_count(metrics.counter("wal.fsync.count")),
      wal_replay_records(metrics.counter("wal.replay.records")),
      snapshot_write_bytes(metrics.counter("snapshot.write.bytes")),
      recovery_delta_keys(metrics.counter("recovery.delta.keys")),
      recovery_time_ns(metrics.histogram("recovery.time_ns", latency_bounds())),
      prefetch_hits(metrics.counter("exec.prefetch.hit")),
      prefetch_wasted(metrics.counter("exec.prefetch.waste")),
      rpc_busy_backoff_ns(metrics.counter("rpc.busy.backoff_ns")),
      sched_admit_immediate(metrics.counter("sched.admit.immediate")),
      sched_admit_waits(metrics.counter("sched.admit.waits")),
      sched_admit_aged(metrics.counter("sched.admit.aged")),
      sched_admit_wait_ns(
          metrics.histogram("sched.admit.wait_ns", latency_bounds())),
      sched_admit_window(metrics.gauge("sched.admit.window_milli")),
      sched_queue_acquires(metrics.counter("sched.queue.acquires")),
      sched_queue_waits(metrics.counter("sched.queue.waits")),
      sched_queue_timeouts(metrics.counter("sched.queue.timeouts")),
      sched_queue_wait_ns(
          metrics.histogram("sched.queue.wait_ns", latency_bounds())),
      sched_queue_depth(
          metrics.histogram("sched.queue.depth", batch_bounds())),
      sched_hot_keys(metrics.gauge("sched.queue.hot_keys")),
      queue_epochs(metrics.counter("queue.epoch.planned")),
      queue_epoch_commits(metrics.counter("queue.epoch.commits")),
      queue_epoch_retries(metrics.counter("queue.epoch.retries")),
      queue_epoch_size(metrics.histogram("queue.epoch.size", epoch_bounds())),
      queue_spec_commits(metrics.counter("queue.spec.commits")),
      queue_spec_reads(metrics.counter("queue.spec.reads")),
      queue_spec_mispredicts(metrics.counter("queue.spec.mispredict")),
      queue_spec_demotions(metrics.counter("queue.spec.demoted")),
      classify_partial(metrics.counter("nesting.classify.partial")),
      classify_full(metrics.counter("nesting.classify.full")),
      remote_reads(metrics.counter("nesting.read.remote")),
      cached_reads(metrics.counter("nesting.read.cached")),
      monitor_refreshes(metrics.counter("acn.monitor.refresh")),
      monitor_observes(metrics.counter("acn.monitor.observe")),
      adaptations(metrics.counter("acn.adaptations")),
      recompositions(metrics.counter("acn.recompositions")),
      plan_blocks(metrics.gauge("acn.plan.blocks")) {
  for (int reason = 0; reason < kReasonCount; ++reason) {
    const std::string suffix = abort_reason_name(reason);
    aborts_full_reason[reason] = metrics.counter("tx.abort.full." + suffix);
    aborts_partial_reason[reason] =
        metrics.counter("tx.abort.partial." + suffix);
  }
  metrics.set_enabled(config.metrics_enabled);
  tracer.set_enabled(config.trace_enabled);
}

ScopedLatency::ScopedLatency(MetricsRegistry::Histogram histogram)
    : histogram_(histogram), start_ns_(now_ns()), armed_(true) {}

void ScopedLatency::arm(MetricsRegistry::Histogram histogram) {
  histogram_ = histogram;
  start_ns_ = now_ns();
  armed_ = true;
}

ScopedLatency::~ScopedLatency() {
  if (armed_) histogram_.observe(now_ns() - start_ns_);
}

}  // namespace acn::obs
