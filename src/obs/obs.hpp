// Observability bundle: one metrics registry + one tracer + the standard
// instrumentation handles the protocol layers share.
//
// The harness driver owns an Observability instance per run (or one across
// runs — Snapshot::since() makes per-run deltas) and hands a pointer down
// through the executor/stub/controller configs.  A null pointer at any
// instrumentation point means "off": the guard is a single branch, so the
// layers stay cheap when nobody is watching (bench/micro_obs measures it).
#pragma once

#include <cstddef>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace acn::obs {

struct ObsConfig {
  bool metrics_enabled = true;
  bool trace_enabled = false;
  std::size_t ring_capacity = std::size_t{1} << 15;  // events per thread
};

/// Index for the per-reason abort counters (mirrors dtm::AbortKind, which
/// obs cannot name — the dependency points the other way).
enum AbortReason : int {
  kReasonValidation = 0,
  kReasonBusy = 1,
  kReasonUnavailable = 2,
  kReasonCount = 3,
};

const char* abort_reason_name(int reason) noexcept;

class Observability {
 public:
  explicit Observability(ObsConfig config = {});

  MetricsRegistry metrics;
  Tracer tracer;

  // -- transaction lifecycle (src/acn executor) ----------------------------
  MetricsRegistry::Counter tx_commits;
  MetricsRegistry::Counter tx_aborts_full;
  MetricsRegistry::Counter tx_aborts_partial;
  MetricsRegistry::Counter aborts_full_reason[kReasonCount];
  MetricsRegistry::Counter aborts_partial_reason[kReasonCount];
  MetricsRegistry::Counter blocks_executed;
  MetricsRegistry::Histogram tx_latency_ns;
  MetricsRegistry::Histogram block_latency_ns;

  // -- QR-DTM client runtime (src/dtm quorum stub, 2PC phases) -------------
  MetricsRegistry::Counter rpc_reads;
  MetricsRegistry::Counter rpc_batched_reads;
  /// Quorum rounds a batch avoided versus issuing its keys sequentially
  /// (batch of N keys = N-1 rounds saved).
  MetricsRegistry::Counter rpcs_saved;
  MetricsRegistry::Histogram read_batch_size;
  MetricsRegistry::Counter rpc_validates;
  MetricsRegistry::Counter rpc_prepares;
  MetricsRegistry::Counter rpc_commits;
  MetricsRegistry::Counter rpc_aborts;
  MetricsRegistry::Counter rpc_contention_queries;
  MetricsRegistry::Histogram rpc_read_ns;
  MetricsRegistry::Histogram rpc_prepare_ns;
  MetricsRegistry::Histogram rpc_commit_ns;

  // -- fault injection & recovery (src/dtm server, src/chaos, harness) -----
  MetricsRegistry::Counter rpc_lease_expired;    // prepare leases reclaimed
  MetricsRegistry::Counter rpc_commit_replays;   // phase-two rounds re-sent
  MetricsRegistry::Counter rpc_commit_rejected;  // commits refused: expired
  MetricsRegistry::Counter chaos_crashes;
  MetricsRegistry::Counter chaos_restarts;
  MetricsRegistry::Counter chaos_partitions;
  MetricsRegistry::Counter chaos_heals;
  MetricsRegistry::Counter chaos_drop_bursts;
  MetricsRegistry::Counter chaos_latency_spikes;
  MetricsRegistry::Counter recovery_catchup_keys;  // versions pulled on rejoin
  // Cooperative termination of in-doubt cross-shard prepares.
  MetricsRegistry::Counter indoubt_queries;          // DecisionQuery handled
  MetricsRegistry::Counter indoubt_resolved_commit;  // parked tx committed
  MetricsRegistry::Counter indoubt_resolved_abort;   // parked tx aborted

  // -- transport wire level (src/net SimTransport, src/transport TCP) ------
  /// Emitted identically by both transports: real socket bytes on TCP,
  /// approx_size() estimates on sim (the driver folds the per-run delta of
  /// net::TransportCounters in at run end).
  MetricsRegistry::Counter transport_bytes_sent;
  MetricsRegistry::Counter transport_bytes_recv;
  MetricsRegistry::Counter transport_reconnects;
  MetricsRegistry::Counter transport_frames_corrupt;

  // -- durability: WAL, snapshots, log-replay recovery (src/wal, harness) --
  MetricsRegistry::Counter wal_append_bytes;      // framed bytes logged
  MetricsRegistry::Counter wal_fsync_count;       // group-commit flushes synced
  MetricsRegistry::Counter wal_replay_records;    // log records replayed
  MetricsRegistry::Counter snapshot_write_bytes;  // snapshot files written
  /// Keys a durable rejoin still had to fetch from peers after log replay
  /// (the delta the WAL could not cover: its lost group-commit window).
  MetricsRegistry::Counter recovery_delta_keys;
  MetricsRegistry::Histogram recovery_time_ns;  // restart_node wall time

  // -- speculative prefetch (src/acn executor) -----------------------------
  MetricsRegistry::Counter prefetch_hits;    // speculative reads consumed
  MetricsRegistry::Counter prefetch_wasted;  // fetched but discarded

  // -- client-side backoff (src/dtm quorum stub) ---------------------------
  /// Total nanoseconds slept in the stub's busy-retry backoff; with the
  /// scheduler's admission gate in front, this should shrink — backoff
  /// becomes the second line of defense instead of the first.
  MetricsRegistry::Counter rpc_busy_backoff_ns;

  // -- contention-aware scheduler (src/sched) ------------------------------
  MetricsRegistry::Counter sched_admit_immediate;  // admitted without waiting
  MetricsRegistry::Counter sched_admit_waits;      // admissions that blocked
  MetricsRegistry::Counter sched_admit_aged;       // force-admitted by aging
  MetricsRegistry::Histogram sched_admit_wait_ns;
  MetricsRegistry::Gauge sched_admit_window;       // last AIMD window x1000
  MetricsRegistry::Counter sched_queue_acquires;   // hot-key tickets taken
  MetricsRegistry::Counter sched_queue_waits;      // acquisitions that blocked
  MetricsRegistry::Counter sched_queue_timeouts;   // fell back to optimistic
  MetricsRegistry::Histogram sched_queue_wait_ns;
  MetricsRegistry::Histogram sched_queue_depth;    // waiters seen at enqueue
  MetricsRegistry::Gauge sched_hot_keys;           // keys currently serialized

  // -- queue-oriented deterministic lane (src/queue) -----------------------
  MetricsRegistry::Counter queue_epochs;          // epochs planned
  MetricsRegistry::Counter queue_epoch_commits;   // epochs committed
  MetricsRegistry::Counter queue_epoch_retries;   // epoch commit re-runs
  MetricsRegistry::Histogram queue_epoch_size;    // entries per epoch
  MetricsRegistry::Counter queue_spec_commits;    // entries committed in-epoch
  MetricsRegistry::Counter queue_spec_reads;      // reads from earlier-in-epoch
  MetricsRegistry::Counter queue_spec_mispredicts;  // unplanned-key demotions
  MetricsRegistry::Counter queue_spec_demotions;  // total demotions (all causes)

  // -- closed nesting (src/nesting) ----------------------------------------
  MetricsRegistry::Counter classify_partial;
  MetricsRegistry::Counter classify_full;
  MetricsRegistry::Counter remote_reads;
  MetricsRegistry::Counter cached_reads;

  // -- ACN adaptation (src/acn monitor + controller) -----------------------
  MetricsRegistry::Counter monitor_refreshes;
  MetricsRegistry::Counter monitor_observes;
  MetricsRegistry::Counter adaptations;
  MetricsRegistry::Counter recompositions;
  MetricsRegistry::Gauge plan_blocks;
};

/// Observes elapsed wall time into a histogram when destroyed; a
/// default-constructed instance is a no-op.  Used for RPC phase latencies
/// where abort exits must still be measured.
class ScopedLatency {
 public:
  ScopedLatency() = default;
  explicit ScopedLatency(MetricsRegistry::Histogram histogram);
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency();

  /// Start (or restart) timing into `histogram`.
  void arm(MetricsRegistry::Histogram histogram);

 private:
  MetricsRegistry::Histogram histogram_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace acn::obs
