// The unified submission API for sharded workloads (shard::Client).
//
// A Client is what a workload thread holds instead of a raw Executor: one
// endpoint that accepts every TxProgram under every protocol and decides,
// per transaction, how it reaches the cluster.  Dispatch is footprint
// driven:
//
//   1. predict — evaluate acn::predicted_footprint over the bound params
//      and ask the ShardRouter for a route plan.
//   2. single-shard plan — run the transaction through the home group's
//      Executor::run, unchanged: full ACN partial rollback, batched reads,
//      checkpointing, everything the unsharded path has.  No other group
//      hears about the transaction.
//   3. multi-shard plan — execute the program block by block over a
//      ShardTx (cross-shard 2PC at commit).  Before each Block the Client
//      checkpoints the ShardTx and the variable environment; an execution
//      abort whose invalidated keys are all confined to the current Block
//      rolls back to the checkpoint and retries the Block — partial
//      rollback preserved across shards.  Aborts touching earlier Blocks'
//      reads, and any commit-phase abort, restart the transaction with
//      randomized exponential backoff.
//   4. escalate — predictions are blind to keys produced mid-transaction.
//      With owner-scoped seeding a mispredicted single-shard transaction
//      reads a foreign key on its home group and surfaces
//      dtm::ObjectMissing; the Client checks the key's real owner and, if
//      it is another group, re-runs the transaction on the cross-shard
//      path (a genuinely absent key is re-thrown — that is a workload
//      bug, not a routing miss).
//
// The contention-aware scheduler wraps BOTH paths identically: the fast
// path gates inside Executor::run as before; the cross-shard interpreter
// performs the same admit / on_full_abort / finish conversation itself,
// classifying 2PC aborts with the shared acn::outcome_of.  A scheduler
// cannot tell the paths apart — which is the point: admission control is a
// property of the submission API, not of any one execution engine.
//
// ClientFleet is the per-benchmark bundle: it owns the ShardMap (built
// from the workload's placement), the ShardRouter and the shared
// ClientStats, seeds a cluster owner-scoped, and hands the harness a
// SubmitterFactory so the driver builds one Client per worker thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "src/acn/executor.hpp"
#include "src/common/rng.hpp"
#include "src/harness/driver.hpp"
#include "src/shard/coordinator.hpp"
#include "src/workloads/workload.hpp"

namespace acn::shard {

/// How a Client executes transactions:
///   * kAcn    — the optimistic paths only (fast path / cross-shard 2PC),
///     the pre-queue behavior;
///   * kQueue  — every transaction with a predictable footprint goes to the
///     deterministic epoch lane (src/queue); the optimistic path serves
///     only demotions and unpredictable transactions;
///   * kHybrid — the scheduler routes: transactions whose predicted
///     footprint touches a hot key (SchedulerGate::any_hot) go to the
///     lane, cold traffic stays optimistic.
enum class ExecMode { kAcn, kQueue, kHybrid };

const char* exec_mode_name(ExecMode mode) noexcept;
/// Parse "acn" | "queue" | "hybrid"; nullopt on anything else.
std::optional<ExecMode> parse_exec_mode(std::string_view text) noexcept;

/// What the deterministic lane did with a submitted transaction.
enum class LaneOutcome {
  kCommitted,  // committed atomically with its epoch
  kDemoted,    // not executed (misprediction / epoch gave up) — the caller
               // re-runs it optimistically, serializing after the epoch
};

/// A deterministic execution lane (src/queue implements this over epochs).
/// The abstract interface keeps the layering acyclic — shard cannot link
/// the queue subsystem, which is built on top of it — mirroring
/// acn::SchedulerGate and harness::Submitter.  Implementations must be
/// thread-safe: every Client of a fleet submits into one shared lane.
class Lane {
 public:
  virtual ~Lane() = default;

  /// Hand one transaction to the lane and block until its epoch decides.
  /// `predicted` is the canonical predicted footprint (non-empty — callers
  /// keep unpredictable transactions on the optimistic path).  On
  /// kCommitted the lane has folded the execution into `stats`.
  virtual LaneOutcome submit(const ir::TxProgram& program,
                             const std::vector<acn::ir::Record>& params,
                             const KeyFootprint& predicted,
                             acn::ExecStats& stats) = 0;
};

/// Builds the fleet's shared lane on first use (called under the fleet's
/// lock, from whichever client thread gets there first).
using LaneFactory = std::function<std::shared_ptr<Lane>(
    harness::Cluster& cluster, const ShardRouter& router)>;

/// Dispatch counters, shared by every Client of a fleet.
struct ClientStats {
  /// Transactions dispatched down the single-shard Executor fast path.
  std::atomic<std::uint64_t> fast_path{0};
  /// Fast-path runs that surfaced a foreign key (dtm::ObjectMissing owned
  /// by another group) and were re-run cross-shard.
  std::atomic<std::uint64_t> escalations{0};
  /// Transactions executed on the cross-shard (2PC) path, including
  /// escalations.
  std::atomic<std::uint64_t> cross_shard{0};
  /// Cross-shard path transactions that committed.
  std::atomic<std::uint64_t> cross_commits{0};
  /// Sum of the per-coordinator atomicity-breach counters
  /// (CoordinatorStats::atomicity_breaches), folded in as Clients retire.
  /// The hard invariant every sharded gate asserts to be zero at exit.
  std::atomic<std::uint64_t> atomicity_breaches{0};
  /// Sum of CoordinatorStats::indoubt_handoffs: phase-2 pushes handed to
  /// cooperative termination after the decision was durably recorded
  /// (benign — the resolver finishes the install).
  std::atomic<std::uint64_t> indoubt_handoffs{0};
  /// Transactions handed to the deterministic lane (kQueue/kHybrid).
  std::atomic<std::uint64_t> lane_submits{0};
  /// Lane submissions that committed with their epoch.
  std::atomic<std::uint64_t> lane_commits{0};
  /// Lane submissions demoted back to the optimistic path.
  std::atomic<std::uint64_t> lane_demotions{0};
};

/// One worker thread's submission endpoint over a sharded cluster.
/// Implements harness::Submitter, so the driver (and every bench built on
/// it) is oblivious to sharding.  Not thread-safe — one Client per thread,
/// like the Executor it generalizes.
class Client final : public harness::Submitter {
 public:
  /// `client_ordinal` must be unique per Client (network identity of its
  /// stubs and the coordinator's TxId namespace).  `lane` (shared by the
  /// fleet) enables the deterministic dispatch of kQueue/kHybrid; kAcn
  /// ignores it.
  Client(harness::Cluster& cluster, const ShardRouter& router,
         ClientStats& stats, int client_ordinal, acn::ExecutorConfig config,
         std::uint64_t seed, ExecMode mode = ExecMode::kAcn,
         std::shared_ptr<Lane> lane = nullptr);
  ~Client() override;

  /// Execute one transaction to commit.  Same contract as Executor::run:
  /// throws std::invalid_argument when `options` lacks the protocol's
  /// inputs and the last dtm::TxAbort when retries are exhausted.
  void run(Protocol protocol, const acn::RunOptions& options,
           const std::vector<acn::ir::Record>& params,
           acn::ExecStats& stats) override;

  const CoordinatorStats& coordinator_stats() const noexcept {
    return coordinator_.stats();
  }

 private:
  void run_cross_shard(Protocol protocol, const acn::RunOptions& options,
                       const std::vector<acn::ir::Record>& params,
                       const KeyFootprint& predicted, acn::ExecStats& stats);
  void backoff(int attempt);

  const ShardRouter& router_;
  ClientStats& stats_;
  acn::ExecutorConfig config_;
  ExecMode mode_ = ExecMode::kAcn;
  std::shared_ptr<Lane> lane_;
  CrossShardCoordinator coordinator_;
  /// One stub + Executor per quorum group (stable addresses: the Executor
  /// keeps a reference to its stub).
  std::vector<std::unique_ptr<dtm::QuorumStub>> stubs_;
  std::vector<std::unique_ptr<acn::Executor>> executors_;
  Rng rng_;
};

/// Everything a benchmark needs to run a workload sharded: the ShardMap
/// derived from the workload's placement, the shared router and stats, and
/// the factory the harness driver consumes.  Outlives every Client it
/// builds (the driver joins its threads before the bench tears down).
class ClientFleet {
 public:
  /// Builds the map from `workload.placement()`: a custom shard function
  /// becomes Partitioning::kCustom (with the workload's replicated
  /// classes); no placement means salted-hash partitioning.
  ClientFleet(const workloads::Workload& workload, std::uint32_t n_shards);

  /// Owner-scoped seeding: every object lands on its owning group's
  /// replicas only (replicated classes on every group).  The sharded
  /// replacement for workload.seed(cluster.servers()).
  void seed(harness::Cluster& cluster, workloads::Workload& workload) const;

  /// Factory for harness::DriverConfig::make_submitter — one Client per
  /// worker thread, ordinal = thread index.
  harness::SubmitterFactory factory();

  /// Route transactions through a deterministic lane: every Client the
  /// factory builds after this call dispatches per `mode`, sharing one lane
  /// built lazily by `make_lane` on first use (client threads race to the
  /// factory, so construction is locked).  Call before the driver runs.
  void set_lane(ExecMode mode, LaneFactory make_lane);

  /// The shared lane instance, once some Client forced its construction
  /// (null before — e.g. before the driver ran, or in kAcn mode).  Benches
  /// read lane-side stats through this after a run.
  std::shared_ptr<Lane> lane() const;

  ExecMode mode() const noexcept { return mode_; }

  /// Partition function for harness::DriverConfig::shard_of (per-group
  /// hotness reporting).
  std::function<std::uint32_t(const store::ObjectKey&)> shard_of() const;

  const ShardMap& map() const noexcept { return map_; }
  const ShardRouter& router() const noexcept { return router_; }
  const ClientStats& stats() const noexcept { return stats_; }

 private:
  std::shared_ptr<Lane> lane_for(harness::Cluster& cluster);

  ShardMap map_;
  ShardRouter router_;
  ClientStats stats_;
  ExecMode mode_ = ExecMode::kAcn;
  LaneFactory make_lane_;
  mutable std::mutex lane_mutex_;
  std::shared_ptr<Lane> lane_;
};

}  // namespace acn::shard
