#include "src/shard/shard_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace acn::shard {

ShardMap::ShardMap(ShardMapConfig config) : config_(std::move(config)) {
  if (config_.n_shards == 0)
    throw std::invalid_argument("ShardMap: n_shards must be >= 1");
  if (config_.partitioning == Partitioning::kRange && config_.range_block == 0)
    throw std::invalid_argument("ShardMap: range_block must be >= 1");
  if (config_.partitioning == Partitioning::kCustom && !config_.custom)
    throw std::invalid_argument(
        "ShardMap: kCustom partitioning needs a placement function");
  std::sort(config_.replicated_classes.begin(),
            config_.replicated_classes.end());
}

std::uint32_t ShardMap::shard_of(const store::ObjectKey& key) const {
  if (config_.n_shards <= 1) return 0;
  if (config_.partitioning == Partitioning::kCustom)
    return config_.custom(key) % config_.n_shards;
  if (config_.partitioning == Partitioning::kRange)
    return static_cast<std::uint32_t>((key.id / config_.range_block) %
                                      config_.n_shards);
  // Salted re-mix (murmur3 finalizer) of the store's key hash; see the
  // header for why the raw hash bits must not be reused.
  std::uint64_t x = static_cast<std::uint64_t>(store::ObjectKeyHash{}(key)) ^
                    0x9e3779b97f4a7c15ULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x % config_.n_shards);
}

bool ShardMap::replicated(store::ClassId cls) const noexcept {
  return std::binary_search(config_.replicated_classes.begin(),
                            config_.replicated_classes.end(), cls);
}

std::vector<std::uint32_t> ShardMap::shards_touched(
    const KeyFootprint& footprint) const {
  KeyFootprint routed;
  routed.reserve(footprint.size());
  for (const FootprintEntry& entry : footprint)
    if (!replicated(entry.key.cls)) routed.push_back(entry);
  return acn::shards_touched(
      routed, [this](const ir::ObjectKey& key) { return shard_of(key); });
}

}  // namespace acn::shard
