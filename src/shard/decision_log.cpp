#include "src/shard/decision_log.hpp"

#include "src/dtm/codec.hpp"
#include "src/wal/format.hpp"

namespace acn::shard {
namespace {

std::uint32_t read_u32(const std::vector<std::uint8_t>& bytes,
                       std::size_t& pos) {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(bytes[pos++]) << shift;
  return v;
}

std::uint64_t read_u64(const std::vector<std::uint8_t>& bytes,
                       std::size_t& pos) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(bytes[pos++]) << shift;
  return v;
}

}  // namespace

DecisionLog::DecisionLog(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::lock_guard<std::mutex> guard(mutex_);
  replay_locked();
  file_ = std::fopen(path_.c_str(), "ab");
}

DecisionLog::~DecisionLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void DecisionLog::replay_locked() {
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  if (file == nullptr) return;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), file);
    bytes.insert(bytes.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  std::fclose(file);

  // Same framing rules as WAL segments: a torn or corrupt tail ends the
  // replay (the decision it held was never acknowledged as recorded, so no
  // phase-two message depended on it).
  const wal::SegmentScan scan = wal::parse_segment(bytes);
  for (const auto& record : scan.records) {
    try {
      std::size_t pos = 0;
      if (record.size() < 8 + 1 + 4) continue;
      Entry entry;
      const dtm::TxId tx = read_u64(record, pos);
      entry.decision = static_cast<Decision>(record[pos++]);
      const std::uint32_t n_pushes = read_u32(record, pos);
      entry.pushes.reserve(n_pushes);
      bool ok = true;
      for (std::uint32_t i = 0; i < n_pushes; ++i) {
        if (pos + 4 > record.size()) { ok = false; break; }
        const std::uint32_t len = read_u32(record, pos);
        if (pos + len > record.size()) { ok = false; break; }
        const auto request = dtm::decode_request(
            std::span<const std::uint8_t>(record.data() + pos, len));
        pos += len;
        const auto* push = std::get_if<dtm::CommitRequest>(&request.payload);
        if (push == nullptr) { ok = false; break; }
        entry.pushes.push_back(*push);
      }
      if (ok) entries_[tx] = std::move(entry);
    } catch (const dtm::CodecError&) {
      // Skip an undecodable record; the framing CRC already passed, so this
      // only happens across format changes — losing one record degrades to
      // the unreachable-coordinator path, never to a wrong answer.
    }
  }
}

void DecisionLog::append_locked(dtm::TxId tx, const Entry& entry) {
  if (file_ == nullptr) return;
  dtm::Encoder e;
  e.u64(tx);
  e.u8(static_cast<std::uint8_t>(entry.decision));
  e.u32(static_cast<std::uint32_t>(entry.pushes.size()));
  std::vector<std::uint8_t> payload = e.take();
  for (const auto& push : entry.pushes) {
    dtm::Request request;
    request.payload = push;
    const auto bytes = dtm::encode(request);
    dtm::Encoder len;
    len.u32(static_cast<std::uint32_t>(bytes.size()));
    const auto len_bytes = len.take();
    payload.insert(payload.end(), len_bytes.begin(), len_bytes.end());
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  std::vector<std::uint8_t> framed;
  wal::frame_record(framed, payload);
  std::fwrite(framed.data(), 1, framed.size(), file_);
  std::fflush(file_);
}

bool DecisionLog::record_commit(dtm::TxId tx,
                                std::vector<dtm::CommitRequest> pushes) {
  std::lock_guard<std::mutex> guard(mutex_);
  const auto it = entries_.find(tx);
  if (it != entries_.end() && it->second.decision == Decision::kAbort)
    return false;  // sealed: presumed abort was already served or recorded
  Entry& entry = entries_[tx];
  entry.decision = Decision::kCommit;
  entry.pushes = std::move(pushes);
  append_locked(tx, entry);
  return true;
}

void DecisionLog::record_abort(dtm::TxId tx) {
  std::lock_guard<std::mutex> guard(mutex_);
  Entry& entry = entries_[tx];
  // Commit decisions are irrevocable: a late abort record (e.g. cleanup
  // racing a resolver) must not flip an already-announced commit.
  if (entry.decision == Decision::kCommit && !entry.pushes.empty()) return;
  entry.decision = Decision::kAbort;
  entry.pushes.clear();
  append_locked(tx, entry);
}

std::optional<Decision> DecisionLog::decision(dtm::TxId tx) const {
  std::lock_guard<std::mutex> guard(mutex_);
  const auto it = entries_.find(tx);
  if (it == entries_.end()) return std::nullopt;
  return it->second.decision;
}

std::optional<dtm::CommitRequest> DecisionLog::push_for(
    dtm::TxId tx, std::uint32_t group) const {
  std::lock_guard<std::mutex> guard(mutex_);
  const auto it = entries_.find(tx);
  if (it == entries_.end() || it->second.decision != Decision::kCommit)
    return std::nullopt;
  for (const auto& push : it->second.pushes)
    if (push.group == group) return push;
  return std::nullopt;
}

dtm::DecisionReply DecisionLog::answer(const dtm::DecisionQuery& query) {
  dtm::DecisionReply reply;
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = entries_.find(query.tx);
  if (it == entries_.end()) {
    // Presumed abort, sealed: once "no record" has been served, this
    // transaction can never be decided commit (record_commit refuses).
    Entry sealed;
    sealed.decision = Decision::kAbort;
    append_locked(query.tx, sealed);
    it = entries_.emplace(query.tx, std::move(sealed)).first;
  }
  if (it->second.decision == Decision::kAbort) {
    reply.code = dtm::DecisionCode::kAborted;
    return reply;
  }
  reply.code = dtm::DecisionCode::kCommitted;
  for (const auto& push : it->second.pushes) {
    if (push.group != query.group) continue;
    reply.keys = push.keys;
    reply.values = push.values;
    reply.versions = push.versions;
    break;
  }
  return reply;
}

std::size_t DecisionLog::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return entries_.size();
}

}  // namespace acn::shard
