#include "src/shard/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace acn::shard {

CrossShardCoordinator::CrossShardCoordinator(harness::Cluster& cluster,
                                             const ShardRouter& router,
                                             int client_ordinal,
                                             std::uint64_t seed)
    : router_(router) {
  if (router_.map().n_shards() != cluster.n_groups())
    throw std::invalid_argument(
        "CrossShardCoordinator: shard map has " +
        std::to_string(router_.map().n_shards()) + " shards but cluster has " +
        std::to_string(cluster.n_groups()) + " groups");
  stubs_.reserve(cluster.n_groups());
  for (std::size_t g = 0; g < cluster.n_groups(); ++g)
    stubs_.push_back(cluster.make_group_stub(g, client_ordinal, seed));
  // TxIds must be globally unique: servers key their lease / presumed-abort
  // / idempotency memories by TxId.  High tag keeps coordinator ids out of
  // the executor's small-integer range; the ordinal keeps coordinators out
  // of each other's.
  tx_base_ = (0x5AADULL << 44) |
             ((static_cast<std::uint64_t>(client_ordinal) & 0xFFFF) << 28);
}

ShardTx CrossShardCoordinator::begin(const KeyFootprint& predicted) {
  const dtm::TxId tx =
      tx_base_ | (tx_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  return ShardTx(this, tx, router_.plan(predicted));
}

std::uint32_t ShardTx::serving_group(const store::ObjectKey& key) const {
  if (const auto it = read_groups_.find(key); it != read_groups_.end())
    return it->second;
  const ShardMap& map = owner_->router_.map();
  // Replicated classes live on every group: serve them from the home group
  // the transaction talks to anyway, so the read never adds a participant.
  if (map.replicated(key.cls)) return predicted_.home();
  return map.shard_of(key);
}

std::vector<dtm::VersionCheck> ShardTx::group_checks(
    std::uint32_t group) const {
  std::vector<dtm::VersionCheck> checks;
  for (const auto& [key, rec] : reads_)
    if (serving_group(key) == group) checks.push_back({key, rec.version});
  return checks;
}

store::Record ShardTx::read(const store::ObjectKey& key) {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::read on a finished transaction");
  if (const auto wit = writes_.find(key); wit != writes_.end())
    return wit->second;
  if (const auto rit = reads_.find(key); rit != reads_.end())
    return rit->second.value;
  const std::uint32_t group = serving_group(key);
  // Incremental validation within the serving group: every prior read on
  // this group rides along, so a stale snapshot dies at read time, not at
  // prepare.  Reads on OTHER groups cannot be checked here (this group
  // does not hold their keys); prepare/validate covers them per group.
  const auto outcome =
      owner_->stub(group).read(tx_, key, group_checks(group));
  reads_.emplace(key, outcome.record);
  read_groups_.emplace(key, group);
  return outcome.record.value;
}

void ShardTx::write(const store::ObjectKey& key, store::Record value) {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::write on a finished transaction");
  if (owner_->router_.map().replicated(key.cls))
    throw std::logic_error("ShardTx::write to replicated class " +
                           std::to_string(key.cls) + " (" +
                           store::to_string(key) + ")");
  writes_[key] = std::move(value);
}

ShardTx::Checkpoint ShardTx::checkpoint() const {
  return {reads_, read_groups_, writes_};
}

void ShardTx::restore(Checkpoint checkpoint) {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::restore on a finished transaction");
  reads_ = std::move(checkpoint.reads);
  read_groups_ = std::move(checkpoint.read_groups);
  writes_ = std::move(checkpoint.writes);
}

std::size_t ShardTx::prepare_all() {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::prepare_all: not active");

  // The authoritative participant set: the keys actually touched.  A
  // mispredicted footprint escalates here — the transaction may have been
  // *planned* single-shard, but it commits on the groups it really spans.
  std::vector<store::ObjectKey> touched;
  touched.reserve(reads_.size() + writes_.size());
  for (const auto& [key, rec] : reads_) touched.push_back(key);
  for (const auto& [key, value] : writes_) touched.push_back(key);
  plan_ = owner_->router_.reclassify(predicted_, touched);

  // Replicated-class reads were served by the home group; that group must
  // participate (validate) even when no owned key pinned it to the plan.
  for (const auto& [key, group] : read_groups_) {
    if (std::binary_search(plan_.groups.begin(), plan_.groups.end(), group))
      continue;
    plan_.groups.insert(
        std::upper_bound(plan_.groups.begin(), plan_.groups.end(), group),
        group);
  }
  try {
    // Ascending group order (plan_.groups is sorted): deterministic across
    // coordinators, so two cross-shard transactions always claim groups in
    // the same order and cannot hold-and-wait on each other in reverse.
    for (const std::uint32_t group : plan_.groups) {
      std::vector<store::ObjectKey> write_keys;   // std::map iterates sorted
      std::vector<store::Record> values;
      std::vector<store::Version> read_versions;
      for (const auto& [key, value] : writes_) {
        if (serving_group(key) != group) continue;
        write_keys.push_back(key);
        values.push_back(value);
        const auto rit = reads_.find(key);
        read_versions.push_back(rit != reads_.end() ? rit->second.version : 0);
      }
      const auto checks = group_checks(group);
      if (write_keys.empty()) {
        // Read-only participant: nothing to protect, but the snapshot this
        // transaction read from the group must still be current at commit.
        owner_->stub(group).validate(tx_, checks);
        continue;
      }
      PreparedGroup prepared;
      prepared.group = group;
      prepared.ticket =
          owner_->stub(group).prepare(tx_, checks, write_keys, read_versions);
      prepared.values = std::move(values);
      prepared_.push_back(std::move(prepared));
    }
  } catch (...) {
    // One group refused (conflict, busy, unreachable): release every
    // ticket already acquired so the other groups go free immediately
    // instead of waiting out their leases.
    abort_prepared();
    throw;
  }
  state_ = State::kPrepared;
  return prepared_.size();
}

void ShardTx::commit_prepared() {
  if (state_ != State::kPrepared)
    throw std::logic_error("ShardTx::commit_prepared: nothing prepared");

  std::exception_ptr failure;
  std::size_t installed = 0;
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    try {
      owner_->stub(prepared_[i].group)
          .commit(prepared_[i].ticket, prepared_[i].values);
      ++installed;
    } catch (...) {
      failure = std::current_exception();
      if (installed == 0) {
        // Nothing installed anywhere yet: the transaction can still abort
        // atomically — release the remaining tickets and surface the abort.
        for (std::size_t j = i + 1; j < prepared_.size(); ++j)
          owner_->stub(prepared_[j].group).abort(prepared_[j].ticket);
        break;
      }
      // A group already committed, so the decision is commit: push the
      // remaining groups forward rather than widening the damage.  The
      // transaction still reports failure (its durability claim on the
      // failed group is void) and the breach is counted.
      owner_->stats_.partial_commits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  prepared_.clear();
  state_ = State::kFinished;
  if (failure) {
    owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    std::rethrow_exception(failure);
  }

  owner_->router_.note_commit(plan_);
  if (plan_.single_shard())
    owner_->stats_.single_shard_commits.fetch_add(1,
                                                  std::memory_order_relaxed);
  else
    owner_->stats_.cross_shard_commits.fetch_add(1, std::memory_order_relaxed);
}

void ShardTx::abort_prepared() {
  for (const PreparedGroup& prepared : prepared_)
    owner_->stub(prepared.group).abort(prepared.ticket);
  prepared_.clear();
}

void ShardTx::commit() {
  try {
    prepare_all();
  } catch (...) {
    state_ = State::kFinished;
    owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
  commit_prepared();
}

void ShardTx::abort() {
  if (state_ == State::kFinished) return;
  abort_prepared();
  state_ = State::kFinished;
  owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
}

void seed_sharded(harness::Cluster& cluster, const ShardMap& map,
                  const store::ObjectKey& key, const store::Record& value) {
  if (map.replicated(key.cls)) {
    for (dtm::Server* server : cluster.servers()) server->store().seed(key, value);
    return;
  }
  for (dtm::Server* server : cluster.group_servers(map.shard_of(key)))
    server->store().seed(key, value);
}

store::VersionedRecord latest_sharded(harness::Cluster& cluster,
                                      const ShardMap& map,
                                      const store::ObjectKey& key) {
  store::VersionedRecord best;
  bool found = false;
  const auto replicas = map.replicated(key.cls)
                            ? cluster.servers()
                            : cluster.group_servers(map.shard_of(key));
  for (dtm::Server* server : replicas) {
    const auto result = server->store().read(key);
    if (result.status != store::ReadStatus::kOk) continue;
    if (!found || result.record.version > best.version) {
      best = result.record;
      found = true;
    }
  }
  if (!found)
    throw std::runtime_error("latest_sharded: no replica of group " +
                             std::to_string(map.shard_of(key)) + " holds " +
                             store::to_string(key));
  return best;
}

}  // namespace acn::shard
