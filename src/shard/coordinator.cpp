#include "src/shard/coordinator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace acn::shard {

CrossShardCoordinator::CrossShardCoordinator(harness::Cluster& cluster,
                                             const ShardRouter& router,
                                             int client_ordinal,
                                             std::uint64_t seed,
                                             std::string decision_log_path)
    : router_(router),
      decisions_(std::make_shared<DecisionLog>(std::move(decision_log_path))) {
  if (router_.map().n_shards() != cluster.n_groups())
    throw std::invalid_argument(
        "CrossShardCoordinator: shard map has " +
        std::to_string(router_.map().n_shards()) + " shards but cluster has " +
        std::to_string(cluster.n_groups()) + " groups");
  stubs_.reserve(cluster.n_groups());
  for (std::size_t g = 0; g < cluster.n_groups(); ++g)
    stubs_.push_back(cluster.make_group_stub(g, client_ordinal, seed));
  // TxIds must be globally unique: servers key their lease / presumed-abort
  // / idempotency memories by TxId.  High tag keeps coordinator ids out of
  // the executor's small-integer range; the ordinal keeps coordinators out
  // of each other's.
  tx_base_ = (0x5AADULL << 44) |
             ((static_cast<std::uint64_t>(client_ordinal) & 0xFFFF) << 28);
  // Serve decision records at the coordinator's own network identity.  The
  // handler owns the log by shared_ptr: the records outlive this object,
  // and the only way to make them unreachable is to take the NODE down —
  // which is exactly how chaos crashes a coordinator.
  client_node_ =
      static_cast<net::NodeId>(cluster.size()) + client_ordinal;
  const std::shared_ptr<DecisionLog> log = decisions_;
  cluster.transport().register_local(
      client_node_, [log](net::NodeId, const dtm::Request& request) {
        dtm::Response response;
        if (const auto* query =
                std::get_if<dtm::DecisionQuery>(&request.payload))
          response.payload = log->answer(*query);
        return response;
      });
}

ShardTx CrossShardCoordinator::begin(const KeyFootprint& predicted) {
  const dtm::TxId tx =
      tx_base_ | (tx_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  return ShardTx(this, tx, router_.plan(predicted));
}

std::uint32_t ShardTx::serving_group(const store::ObjectKey& key) const {
  if (const auto it = read_groups_.find(key); it != read_groups_.end())
    return it->second;
  const ShardMap& map = owner_->router_.map();
  // Replicated classes live on every group: serve them from the home group
  // the transaction talks to anyway, so the read never adds a participant.
  if (map.replicated(key.cls)) return predicted_.home();
  return map.shard_of(key);
}

std::vector<dtm::VersionCheck> ShardTx::group_checks(
    std::uint32_t group) const {
  std::vector<dtm::VersionCheck> checks;
  for (const auto& [key, rec] : reads_)
    if (serving_group(key) == group) checks.push_back({key, rec.version});
  return checks;
}

store::Record ShardTx::read(const store::ObjectKey& key) {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::read on a finished transaction");
  if (const auto wit = writes_.find(key); wit != writes_.end())
    return wit->second;
  if (const auto rit = reads_.find(key); rit != reads_.end())
    return rit->second.value;
  const std::uint32_t group = serving_group(key);
  // Incremental validation within the serving group: every prior read on
  // this group rides along, so a stale snapshot dies at read time, not at
  // prepare.  Reads on OTHER groups cannot be checked here (this group
  // does not hold their keys); prepare/validate covers them per group.
  const auto outcome =
      owner_->stub(group).read(tx_, key, group_checks(group));
  reads_.emplace(key, outcome.record);
  read_groups_.emplace(key, group);
  return outcome.record.value;
}

void ShardTx::write(const store::ObjectKey& key, store::Record value) {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::write on a finished transaction");
  if (owner_->router_.map().replicated(key.cls))
    throw std::logic_error("ShardTx::write to replicated class " +
                           std::to_string(key.cls) + " (" +
                           store::to_string(key) + ")");
  writes_[key] = std::move(value);
}

ShardTx::Checkpoint ShardTx::checkpoint() const {
  return {reads_, read_groups_, writes_};
}

void ShardTx::restore(Checkpoint checkpoint) {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::restore on a finished transaction");
  reads_ = std::move(checkpoint.reads);
  read_groups_ = std::move(checkpoint.read_groups);
  writes_ = std::move(checkpoint.writes);
}

std::size_t ShardTx::prepare_all() {
  if (state_ != State::kActive)
    throw std::logic_error("ShardTx::prepare_all: not active");

  // The authoritative participant set: the keys actually touched.  A
  // mispredicted footprint escalates here — the transaction may have been
  // *planned* single-shard, but it commits on the groups it really spans.
  std::vector<store::ObjectKey> touched;
  touched.reserve(reads_.size() + writes_.size());
  for (const auto& [key, rec] : reads_) touched.push_back(key);
  for (const auto& [key, value] : writes_) touched.push_back(key);
  plan_ = owner_->router_.reclassify(predicted_, touched);

  // Replicated-class reads were served by the home group; that group must
  // participate (validate) even when no owned key pinned it to the plan.
  for (const auto& [key, group] : read_groups_) {
    if (std::binary_search(plan_.groups.begin(), plan_.groups.end(), group))
      continue;
    plan_.groups.insert(
        std::upper_bound(plan_.groups.begin(), plan_.groups.end(), group),
        group);
  }
  // Write-participant groups, sorted: more than one makes this transaction
  // subject to decision records and in-doubt parking, and every prepare
  // must carry the full set so any single group can find its siblings.
  cross_groups_.clear();
  for (const auto& [key, value] : writes_) {
    const std::uint32_t group = serving_group(key);
    const auto at =
        std::lower_bound(cross_groups_.begin(), cross_groups_.end(), group);
    if (at == cross_groups_.end() || *at != group)
      cross_groups_.insert(at, group);
  }

  try {
    // Ascending group order (plan_.groups is sorted): deterministic across
    // coordinators, so two cross-shard transactions always claim groups in
    // the same order and cannot hold-and-wait on each other in reverse.
    for (const std::uint32_t group : plan_.groups) {
      std::vector<store::ObjectKey> write_keys;   // std::map iterates sorted
      std::vector<store::Record> values;
      std::vector<store::Version> read_versions;
      for (const auto& [key, value] : writes_) {
        if (serving_group(key) != group) continue;
        write_keys.push_back(key);
        values.push_back(value);
        const auto rit = reads_.find(key);
        read_versions.push_back(rit != reads_.end() ? rit->second.version : 0);
      }
      const auto checks = group_checks(group);
      if (write_keys.empty()) {
        // Read-only participant: nothing to protect, but the snapshot this
        // transaction read from the group must still be current at commit.
        owner_->stub(group).validate(tx_, checks);
        continue;
      }
      dtm::PrepareExtras extras;
      if (cross_groups_.size() > 1) {
        extras.participants = cross_groups_;
        extras.coordinator = owner_->client_node_;
        extras.values = values;
      }
      PreparedGroup prepared;
      prepared.group = group;
      prepared.ticket = owner_->stub(group).prepare(tx_, checks, write_keys,
                                                    read_versions, extras);
      prepared.values = std::move(values);
      prepared_.push_back(std::move(prepared));
    }
  } catch (...) {
    // One group refused (conflict, busy, unreachable): release every
    // ticket already acquired so the other groups go free immediately
    // instead of waiting out their leases.
    abort_prepared();
    throw;
  }
  state_ = State::kPrepared;
  return prepared_.size();
}

std::vector<std::pair<store::ObjectKey, store::Version>>
ShardTx::prepared_writes() const {
  std::vector<std::pair<store::ObjectKey, store::Version>> writes;
  for (const PreparedGroup& p : prepared_)
    for (std::size_t k = 0; k < p.ticket.keys.size(); ++k)
      writes.push_back({p.ticket.keys[k], p.ticket.new_versions[k]});
  return writes;
}

void ShardTx::commit_prepared() {
  if (state_ != State::kPrepared)
    throw std::logic_error("ShardTx::commit_prepared: nothing prepared");

  // Durable decision record BEFORE the first phase-two message (multi-group
  // only: a single prepared group installs or expires atomically on its
  // own).  From this point the transaction's outcome is commit no matter
  // what happens to this coordinator — an unreachable group becomes an
  // in-doubt handoff, never a reason to abort.
  const bool multi_group = prepared_.size() > 1;
  const auto installs = prepared_writes();
  if (multi_group) {
    std::vector<dtm::CommitRequest> pushes;
    pushes.reserve(prepared_.size());
    for (const PreparedGroup& p : prepared_)
      pushes.push_back(
          {tx_, p.ticket.keys, p.values, p.ticket.new_versions, p.group});
    if (!owner_->decisions_->record_commit(tx_, std::move(pushes))) {
      // The outcome was already sealed as abort — this coordinator served
      // presumed abort to a querier (its leases were resolved away while it
      // dawdled) or recorded an abort itself.  Deciding commit now would
      // contradict an answer someone may have acted on, so the transaction
      // aborts instead: release whatever the servers still hold.
      std::vector<store::ObjectKey> keys;
      for (const auto& [key, version] : installs) keys.push_back(key);
      for (const PreparedGroup& prepared : prepared_)
        owner_->stub(prepared.group).abort(prepared.ticket);
      prepared_.clear();
      state_ = State::kFinished;
      owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
      throw dtm::TxAbort(dtm::AbortKind::kBusy, std::move(keys),
                         dtm::AbortDetail::kLeaseExpired);
    }
    // The decision IS commit from here on, whatever happens to the pushes —
    // log the intent now so the atomicity checker holds the cluster to it.
    if (owner_->cross_log_ != nullptr)
      owner_->cross_log_->record({tx_, installs, true});
  }

  std::exception_ptr failure;
  std::size_t installed = 0;
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    try {
      owner_->stub(prepared_[i].group)
          .commit(prepared_[i].ticket, prepared_[i].values);
      ++installed;
    } catch (const dtm::TxAbort& abort) {
      if (multi_group && abort.detail() != dtm::AbortDetail::kLeaseExpired) {
        // Unreachable after bounded retries, with the commit decision
        // already durable: hand the push to cooperative termination.  The
        // group's prepare parks in-doubt when its lease runs out and the
        // resolver installs from the decision record (or a sibling's
        // verdict), so the transaction still counts as committed.
        owner_->stats_.indoubt_handoffs.fetch_add(1,
                                                  std::memory_order_relaxed);
        ++installed;
        continue;
      }
      failure = std::current_exception();
      if (multi_group) {
        // kExpired refusal after the decision was recorded: the group was
        // explicitly aborted out from under a committed transaction.  Push
        // the remaining groups forward (the decision stands) and count the
        // breach — the gates assert this never happens.
        owner_->stats_.atomicity_breaches.fetch_add(1,
                                                    std::memory_order_relaxed);
        continue;
      }
      // Single prepared group: nothing installed anywhere else, so the
      // abort is still atomic — release any remaining tickets and surface.
      if (installed == 0) {
        for (std::size_t j = i + 1; j < prepared_.size(); ++j)
          owner_->stub(prepared_[j].group).abort(prepared_[j].ticket);
        break;
      }
    } catch (...) {
      failure = std::current_exception();
      if (installed == 0 && !multi_group) {
        for (std::size_t j = i + 1; j < prepared_.size(); ++j)
          owner_->stub(prepared_[j].group).abort(prepared_[j].ticket);
        break;
      }
    }
  }
  prepared_.clear();
  state_ = State::kFinished;
  if (failure) {
    owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    std::rethrow_exception(failure);
  }

  if (owner_->history_ != nullptr) {
    nesting::CommittedTxn entry;
    entry.tx = tx_;
    for (const auto& [key, rec] : reads_)
      entry.reads.push_back({key, rec.version});
    entry.writes = installs;
    owner_->history_->record(std::move(entry));
  }

  owner_->router_.note_commit(plan_);
  if (plan_.single_shard())
    owner_->stats_.single_shard_commits.fetch_add(1,
                                                  std::memory_order_relaxed);
  else
    owner_->stats_.cross_shard_commits.fetch_add(1, std::memory_order_relaxed);
}

void ShardTx::abort_prepared() {
  // A cross-shard abort is recorded too: an in-doubt participant that asks
  // the (live) coordinator gets an authoritative kAborted instead of
  // waiting out the kUnknown-presumed-abort inference.  The cross-shard
  // log deliberately gets NO entry for aborts: releasing the tickets lets
  // rival transactions reuse the proposed version numbers, so (key,
  // version) stops naming this transaction's writes and the atomicity
  // checker could not tell a leaked install from an honest rival.  Commit
  // entries have no such ambiguity — their versions are installed or held
  // under protection until termination installs them.
  if (cross_groups_.size() > 1 && !prepared_.empty())
    owner_->decisions_->record_abort(tx_);
  for (const PreparedGroup& prepared : prepared_)
    owner_->stub(prepared.group).abort(prepared.ticket);
  prepared_.clear();
}

void ShardTx::commit() {
  try {
    prepare_all();
  } catch (...) {
    state_ = State::kFinished;
    owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
  commit_prepared();
}

void ShardTx::abort() {
  if (state_ == State::kFinished) return;
  abort_prepared();
  state_ = State::kFinished;
  owner_->stats_.aborts.fetch_add(1, std::memory_order_relaxed);
}

void seed_sharded(harness::Cluster& cluster, const ShardMap& map,
                  const store::ObjectKey& key, const store::Record& value) {
  // Mode-agnostic: the cluster seeds in-process stores directly (sim) or
  // buffers control-plane batches (TCP — cluster.flush_seeds() ships them).
  if (map.replicated(key.cls)) {
    cluster.seed_object(key, value);
    return;
  }
  cluster.seed_object(key, value, map.shard_of(key));
}

store::VersionedRecord latest_sharded(harness::Cluster& cluster,
                                      const ShardMap& map,
                                      const store::ObjectKey& key) {
  store::VersionedRecord best;
  bool found = false;
  const auto replicas = map.replicated(key.cls)
                            ? cluster.servers()
                            : cluster.group_servers(map.shard_of(key));
  for (dtm::Server* server : replicas) {
    const auto result = server->store().read(key);
    if (result.status != store::ReadStatus::kOk) continue;
    if (!found || result.record.version > best.version) {
      best = result.record;
      found = true;
    }
  }
  if (!found)
    throw std::runtime_error("latest_sharded: no replica of group " +
                             std::to_string(map.shard_of(key)) + " holds " +
                             store::to_string(key));
  return best;
}

}  // namespace acn::shard
