// Keyspace partitioning for the sharded cluster.
//
// A ShardMap is a pure, deterministic function from ObjectKey to quorum
// group: every client, server and test computes the same owner for a key
// with no coordination (the map is configuration, not state).  Two
// partitionings:
//
//   * kHash  — a salted re-mix of ObjectKeyHash modulo n_shards.  The salt
//     matters: VersionedStore already buckets keys internally with the raw
//     ObjectKeyHash, and reusing those exact bits for group placement would
//     correlate a group's keyspace slice with the store's internal lock
//     shards.  Re-mixing decorrelates the two layers.
//   * kRange — contiguous id blocks per class, round-robined across groups
//     (shard = (id / range_block) mod n_shards).  Keeps key neighborhoods
//     co-located, the layout range scans and locality-aware workloads want.
//
// n_shards == 1 degenerates to "everything on group 0", the unsharded
// cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/store/key.hpp"

namespace acn::shard {

enum class Partitioning { kHash, kRange };

struct ShardMapConfig {
  std::uint32_t n_shards = 1;
  Partitioning partitioning = Partitioning::kHash;
  /// kRange: ids [0, range_block) of every class land on shard 0, the next
  /// block on shard 1, and so on round-robin.
  std::uint64_t range_block = 1024;
};

class ShardMap {
 public:
  explicit ShardMap(ShardMapConfig config = {});

  std::uint32_t n_shards() const noexcept { return config_.n_shards; }

  /// The quorum group that owns `key`.
  std::uint32_t shard_of(const store::ObjectKey& key) const noexcept;

  /// acn::shards_touched bound to this map: the distinct groups a
  /// footprint's keys live on, sorted ascending.
  std::vector<std::uint32_t> shards_touched(
      const KeyFootprint& footprint) const;

  const ShardMapConfig& config() const noexcept { return config_; }

 private:
  ShardMapConfig config_;
};

}  // namespace acn::shard
