// Keyspace partitioning for the sharded cluster.
//
// A ShardMap is a pure, deterministic function from ObjectKey to quorum
// group: every client, server and test computes the same owner for a key
// with no coordination (the map is configuration, not state).  Three
// partitionings:
//
//   * kHash  — a salted re-mix of ObjectKeyHash modulo n_shards.  The salt
//     matters: VersionedStore already buckets keys internally with the raw
//     ObjectKeyHash, and reusing those exact bits for group placement would
//     correlate a group's keyspace slice with the store's internal lock
//     shards.  Re-mixing decorrelates the two layers.
//   * kRange — contiguous id blocks per class, round-robined across groups
//     (shard = (id / range_block) mod n_shards).  Keeps key neighborhoods
//     co-located, the layout range scans and locality-aware workloads want.
//   * kCustom — a workload-supplied placement function (e.g. TPC-C
//     warehouse-per-group: every key of a warehouse's districts, customers,
//     stock and orders derives the warehouse id and lands on its group).
//     This is what makes "0% remote" TPC-C genuinely single-shard.
//
// Replicated classes: read-mostly reference data (the TPC-C item table) can
// be declared replicated — seeded on EVERY group and served by whichever
// group the transaction already talks to, so reading it never widens a
// route plan.  Writes to replicated classes are refused by ShardTx (the
// groups' copies would silently diverge); shards_touched skips them.
//
// n_shards == 1 degenerates to "everything on group 0", the unsharded
// cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/store/key.hpp"

namespace acn::shard {

enum class Partitioning { kHash, kRange, kCustom };

struct ShardMapConfig {
  std::uint32_t n_shards = 1;
  Partitioning partitioning = Partitioning::kHash;
  /// kRange: ids [0, range_block) of every class land on shard 0, the next
  /// block on shard 1, and so on round-robin.
  std::uint64_t range_block = 1024;
  /// kCustom: the placement function.  Must be pure and total over the
  /// workload's keyspace and must not throw; the result is reduced modulo
  /// n_shards, so a workload can return a natural id (warehouse, branch)
  /// without knowing the group count.
  std::function<std::uint32_t(const store::ObjectKey&)> custom;
  /// Classes replicated on every group (any partitioning).  shard_of still
  /// assigns a nominal home (for seeding order and diagnostics), but
  /// shards_touched skips these keys and ShardTx serves them from the
  /// transaction's home group and refuses writes.
  std::vector<store::ClassId> replicated_classes;
};

class ShardMap {
 public:
  explicit ShardMap(ShardMapConfig config = {});

  std::uint32_t n_shards() const noexcept { return config_.n_shards; }

  /// The quorum group that owns `key`.
  std::uint32_t shard_of(const store::ObjectKey& key) const;

  /// Whether `cls` is replicated on every group (reads served anywhere,
  /// writes refused, invisible to route planning).
  bool replicated(store::ClassId cls) const noexcept;

  /// acn::shards_touched bound to this map: the distinct groups a
  /// footprint's keys live on, sorted ascending.  Replicated-class keys do
  /// not contribute a group (they are readable everywhere).
  std::vector<std::uint32_t> shards_touched(
      const KeyFootprint& footprint) const;

  const ShardMapConfig& config() const noexcept { return config_; }

 private:
  ShardMapConfig config_;
};

}  // namespace acn::shard
