// Cross-shard transactions: the single-shard fast path and 2PC across
// quorum groups.
//
// A CrossShardCoordinator is one client's gateway to a sharded cluster: it
// holds one QuorumStub per quorum group (all sharing the client's network
// identity) and hands out ShardTx handles.  A ShardTx buffers writes
// locally (read-your-writes), routes every read to the owning group's read
// quorum with incremental validation against the reads already made on
// that group, and at commit() classifies itself by the keys it ACTUALLY
// touched (ShardRouter::reclassify — the predicted footprint only picks
// the expected plan, it never decides the commit):
//
//   * single-shard — every key lives on one group: the commit is exactly
//     the pre-sharding path, one prepare + one commit round on that
//     group's write quorum.  No other group hears about the transaction.
//   * multi-shard — 2PC with the coordinator as the (unreplicated)
//     transaction manager: phase 1 prepares every write group (ascending
//     group order — deterministic, so two coordinators cannot deadlock
//     across groups) and validates read-only groups; phase 2 commits each
//     prepared group.  Any phase-1 failure aborts every acquired ticket.
//
// Coordinator crash tolerance comes from the groups, not the coordinator:
// each group's prepare records a lease (PR 3) and a WAL record (PR 4), so
// when a coordinator dies between prepares the leases expire, presumed
// abort releases every group, and a late phase 2 is refused kExpired.  A
// crashed coordinator can therefore never wedge a group.  The prepare
// lease must comfortably exceed the phase-2 duration: if a lease expires
// *mid phase 2* after the first group committed, atomicity is breached —
// the coordinator pushes the remaining groups forward (most-commit beats
// most-abort once the decision is durable anywhere), counts
// partial_commits, and still reports the transaction failed.  The
// shardscale gate asserts this counter stays zero under its generous
// leases.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "src/dtm/quorum_stub.hpp"
#include "src/harness/cluster.hpp"
#include "src/shard/router.hpp"

namespace acn::shard {

struct CoordinatorStats {
  std::atomic<std::uint64_t> single_shard_commits{0};
  std::atomic<std::uint64_t> cross_shard_commits{0};
  std::atomic<std::uint64_t> aborts{0};
  /// Atomicity breaches: a lease expired mid phase 2 after another group
  /// had already installed.  Zero under correctly sized leases.
  std::atomic<std::uint64_t> partial_commits{0};
};

class CrossShardCoordinator;

/// One transaction against the sharded keyspace.  Not thread-safe; one
/// client thread drives a ShardTx from begin to commit/abort.
class ShardTx {
 public:
  /// Read `key` from its owning group (read-your-writes: a buffered write
  /// or prior read of the key is served locally).  Replicated-class keys
  /// are served by the transaction's home group — every group holds them,
  /// so the read never widens the participant set.  Throws what
  /// QuorumStub::read throws.
  store::Record read(const store::ObjectKey& key);

  /// Buffer a write; nothing goes remote until commit().  Writes to
  /// replicated classes are refused (std::logic_error) — the groups'
  /// copies would silently diverge.
  void write(const store::ObjectKey& key, store::Record value);

  /// Deep copy of the buffered read/write-sets, for block-level partial
  /// rollback on the cross-shard path: shard::Client checkpoints before
  /// each Block and restores instead of restarting when an abort is
  /// confined to the current Block.
  struct Checkpoint {
    std::map<store::ObjectKey, store::VersionedRecord> reads;
    std::map<store::ObjectKey, std::uint32_t> read_groups;
    std::map<store::ObjectKey, store::Record> writes;
  };
  Checkpoint checkpoint() const;
  /// Roll the buffered state back to `checkpoint` (kActive only).
  void restore(Checkpoint checkpoint);

  /// Classify by the keys actually touched and run the single-shard fast
  /// path or cross-shard 2PC.  Throws TxAbort on conflict/expiry (the
  /// transaction is then fully released) and leaves the handle finished.
  void commit();

  /// Release anything prepared and finish the handle.  Safe to call in any
  /// state; idempotent.
  void abort();

  // -- test hooks: drive 2PC phase by phase (coordinator-crash tests) ------
  /// Phase 1 only: classify, prepare every write group, validate read-only
  /// groups.  Returns the number of groups holding a prepare ticket.
  /// Abandoning the handle after this call models a coordinator crash
  /// between prepares: the groups' leases expire and presumed abort
  /// releases them.
  std::size_t prepare_all();
  /// Phase 2 over the tickets prepare_all() acquired.
  void commit_prepared();
  /// Presumed-abort cleanup of prepare_all()'s tickets.
  void abort_prepared();

  dtm::TxId id() const noexcept { return tx_; }
  const RoutePlan& predicted() const noexcept { return predicted_; }
  /// The reclassified plan; meaningful after prepare_all()/commit().
  const RoutePlan& committed_plan() const noexcept { return plan_; }

 private:
  friend class CrossShardCoordinator;

  enum class State { kActive, kPrepared, kFinished };

  struct PreparedGroup {
    std::uint32_t group = 0;
    dtm::PrepareTicket ticket;
    std::vector<store::Record> values;  // aligned with ticket.keys
  };

  ShardTx(CrossShardCoordinator* owner, dtm::TxId tx, RoutePlan predicted)
      : owner_(owner), tx_(tx), predicted_(std::move(predicted)) {}

  std::vector<dtm::VersionCheck> group_checks(std::uint32_t group) const;

  /// The group a read of `key` would be (or was) served by: the owner, or
  /// the home group for replicated classes.
  std::uint32_t serving_group(const store::ObjectKey& key) const;

  CrossShardCoordinator* owner_ = nullptr;
  dtm::TxId tx_ = 0;
  RoutePlan predicted_;
  RoutePlan plan_;
  State state_ = State::kActive;
  std::map<store::ObjectKey, store::VersionedRecord> reads_;
  /// Which group served each read (validation must go back to it).
  std::map<store::ObjectKey, std::uint32_t> read_groups_;
  std::map<store::ObjectKey, store::Record> writes_;
  std::vector<PreparedGroup> prepared_;
};

class CrossShardCoordinator {
 public:
  /// `client_ordinal` is the client's network identity (shared by all the
  /// coordinator's per-group stubs) and must be unique per coordinator —
  /// it is also folded into transaction ids so two coordinators can never
  /// mint the same TxId.
  CrossShardCoordinator(harness::Cluster& cluster, const ShardRouter& router,
                        int client_ordinal, std::uint64_t seed = 0);

  /// Start a transaction; `predicted` seeds the route plan (pass
  /// acn::predicted_footprint output, or {} when nothing is predictable).
  ShardTx begin(const KeyFootprint& predicted = {});

  const ShardRouter& router() const noexcept { return router_; }
  const CoordinatorStats& stats() const noexcept { return stats_; }

 private:
  friend class ShardTx;

  dtm::QuorumStub& stub(std::uint32_t group) { return stubs_.at(group); }

  const ShardRouter& router_;
  std::vector<dtm::QuorumStub> stubs_;  // indexed by group
  CoordinatorStats stats_;
  std::uint64_t tx_base_ = 0;
  std::atomic<std::uint64_t> tx_seq_{0};
};

/// Seed `key` = `value` on every replica of its owning group — the sharded
/// analogue of workloads::seed_all (seeding a foreign group would plant
/// keys its quorums never serve but its snapshots would drag around).
/// Replicated-class keys are seeded on every group.
void seed_sharded(harness::Cluster& cluster, const ShardMap& map,
                  const store::ObjectKey& key, const store::Record& value);

/// Latest committed value of `key`, read from its owning group's replicas
/// (every replica for replicated classes; max-version copy).  Throws
/// std::runtime_error when no replica of the group holds it.
store::VersionedRecord latest_sharded(harness::Cluster& cluster,
                                      const ShardMap& map,
                                      const store::ObjectKey& key);

}  // namespace acn::shard
