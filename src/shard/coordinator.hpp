// Cross-shard transactions: the single-shard fast path and 2PC across
// quorum groups.
//
// A CrossShardCoordinator is one client's gateway to a sharded cluster: it
// holds one QuorumStub per quorum group (all sharing the client's network
// identity) and hands out ShardTx handles.  A ShardTx buffers writes
// locally (read-your-writes), routes every read to the owning group's read
// quorum with incremental validation against the reads already made on
// that group, and at commit() classifies itself by the keys it ACTUALLY
// touched (ShardRouter::reclassify — the predicted footprint only picks
// the expected plan, it never decides the commit):
//
//   * single-shard — every key lives on one group: the commit is exactly
//     the pre-sharding path, one prepare + one commit round on that
//     group's write quorum.  No other group hears about the transaction.
//   * multi-shard — 2PC with the coordinator as the (unreplicated)
//     transaction manager: phase 1 prepares every write group (ascending
//     group order — deterministic, so two coordinators cannot deadlock
//     across groups) and validates read-only groups; phase 2 commits each
//     prepared group.  Any phase-1 failure aborts every acquired ticket.
//
// Coordinator crash tolerance (PR 8) is layered:
//   * between prepares, presumed abort still rules — a single-write-group
//     prepare carries no cross-shard metadata, its lease expires, and a
//     late phase 2 is refused kExpired;
//   * once a transaction prepares MORE than one write group, each prepare
//     carries the participant set, the coordinator's node id, and the redo
//     payload.  An orphaned lease then parks *in-doubt* on its replicas
//     (protections held) instead of being presumed aborted;
//   * before the first phase-two message, the coordinator records its
//     decision (plus every group's exact push) in a DecisionLog reachable
//     over the network at the coordinator's client node — so a group that
//     cannot be pushed (partitioned, down) is an indoubt_handoff, not a
//     failure: cooperative termination (harness::resolve_indoubt) finishes
//     the install from the record, or from a sibling group's verdict when
//     the coordinator node itself is dead.
// atomicity_breaches counts the one remaining wrong outcome — a group
// refusing phase 2 as kExpired after the commit decision was recorded
// (i.e. an explicit abort raced the commit).  The shardscale and indoubt
// gates assert it stays zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include <memory>

#include "src/dtm/quorum_stub.hpp"
#include "src/harness/cluster.hpp"
#include "src/nesting/history.hpp"
#include "src/shard/decision_log.hpp"
#include "src/shard/router.hpp"

namespace acn::shard {

struct CoordinatorStats {
  std::atomic<std::uint64_t> single_shard_commits{0};
  std::atomic<std::uint64_t> cross_shard_commits{0};
  std::atomic<std::uint64_t> aborts{0};
  /// Atomicity breaches: a group refused phase 2 outright (kExpired) after
  /// the commit decision was durably recorded — some other group installed
  /// or will install, this one never will.  Hard invariant: zero under any
  /// fault plan (the shardscale / partition / indoubt gates assert it).
  std::atomic<std::uint64_t> atomicity_breaches{0};
  /// Phase-two pushes handed to cooperative termination: the group was
  /// unreachable after bounded retries, the decision record stands, and the
  /// in-doubt resolver finishes the install once the fault heals.  The
  /// transaction still counts as committed.
  std::atomic<std::uint64_t> indoubt_handoffs{0};
};

class CrossShardCoordinator;

/// One transaction against the sharded keyspace.  Not thread-safe; one
/// client thread drives a ShardTx from begin to commit/abort.
class ShardTx {
 public:
  /// Read `key` from its owning group (read-your-writes: a buffered write
  /// or prior read of the key is served locally).  Replicated-class keys
  /// are served by the transaction's home group — every group holds them,
  /// so the read never widens the participant set.  Throws what
  /// QuorumStub::read throws.
  store::Record read(const store::ObjectKey& key);

  /// Buffer a write; nothing goes remote until commit().  Writes to
  /// replicated classes are refused (std::logic_error) — the groups'
  /// copies would silently diverge.
  void write(const store::ObjectKey& key, store::Record value);

  /// Deep copy of the buffered read/write-sets, for block-level partial
  /// rollback on the cross-shard path: shard::Client checkpoints before
  /// each Block and restores instead of restarting when an abort is
  /// confined to the current Block.
  struct Checkpoint {
    std::map<store::ObjectKey, store::VersionedRecord> reads;
    std::map<store::ObjectKey, std::uint32_t> read_groups;
    std::map<store::ObjectKey, store::Record> writes;
  };
  Checkpoint checkpoint() const;
  /// Roll the buffered state back to `checkpoint` (kActive only).
  void restore(Checkpoint checkpoint);

  /// Classify by the keys actually touched and run the single-shard fast
  /// path or cross-shard 2PC.  Throws TxAbort on conflict/expiry (the
  /// transaction is then fully released) and leaves the handle finished.
  void commit();

  /// Release anything prepared and finish the handle.  Safe to call in any
  /// state; idempotent.
  void abort();

  // -- test hooks: drive 2PC phase by phase (coordinator-crash tests) ------
  /// Phase 1 only: classify, prepare every write group, validate read-only
  /// groups.  Returns the number of groups holding a prepare ticket.
  /// Abandoning the handle after this call models a coordinator crash
  /// between prepares: the groups' leases expire and presumed abort
  /// releases them.
  std::size_t prepare_all();
  /// Phase 2 over the tickets prepare_all() acquired.
  void commit_prepared();
  /// Presumed-abort cleanup of prepare_all()'s tickets.
  void abort_prepared();
  /// Every (key, proposed version) the tickets of prepare_all() would
  /// install, across all groups — what the atomicity checker needs for a
  /// transaction abandoned before any decision.
  std::vector<std::pair<store::ObjectKey, store::Version>> prepared_writes()
      const;

  dtm::TxId id() const noexcept { return tx_; }
  const RoutePlan& predicted() const noexcept { return predicted_; }
  /// The reclassified plan; meaningful after prepare_all()/commit().
  const RoutePlan& committed_plan() const noexcept { return plan_; }

 private:
  friend class CrossShardCoordinator;

  enum class State { kActive, kPrepared, kFinished };

  struct PreparedGroup {
    std::uint32_t group = 0;
    dtm::PrepareTicket ticket;
    std::vector<store::Record> values;  // aligned with ticket.keys
  };

  ShardTx(CrossShardCoordinator* owner, dtm::TxId tx, RoutePlan predicted)
      : owner_(owner), tx_(tx), predicted_(std::move(predicted)) {}

  std::vector<dtm::VersionCheck> group_checks(std::uint32_t group) const;

  /// The group a read of `key` would be (or was) served by: the owner, or
  /// the home group for replicated classes.
  std::uint32_t serving_group(const store::ObjectKey& key) const;

  CrossShardCoordinator* owner_ = nullptr;
  dtm::TxId tx_ = 0;
  RoutePlan predicted_;
  RoutePlan plan_;
  /// Write-participant groups (sorted); > 1 makes the transaction subject
  /// to decision records and in-doubt parking.  Set by prepare_all().
  std::vector<std::uint32_t> cross_groups_;
  State state_ = State::kActive;
  std::map<store::ObjectKey, store::VersionedRecord> reads_;
  /// Which group served each read (validation must go back to it).
  std::map<store::ObjectKey, std::uint32_t> read_groups_;
  std::map<store::ObjectKey, store::Record> writes_;
  std::vector<PreparedGroup> prepared_;
};

class CrossShardCoordinator {
 public:
  /// `client_ordinal` is the client's network identity (shared by all the
  /// coordinator's per-group stubs) and must be unique per coordinator —
  /// it is also folded into transaction ids so two coordinators can never
  /// mint the same TxId.  The constructor registers a DecisionQuery handler
  /// on that node answering from the coordinator's DecisionLog, so
  /// participants and resolvers can read decision records over the (faulty)
  /// network; `decision_log_path` makes the records durable ("" = memory).
  CrossShardCoordinator(harness::Cluster& cluster, const ShardRouter& router,
                        int client_ordinal, std::uint64_t seed = 0,
                        std::string decision_log_path = {});

  /// Start a transaction; `predicted` seeds the route plan (pass
  /// acn::predicted_footprint output, or {} when nothing is predictable).
  ShardTx begin(const KeyFootprint& predicted = {});

  const ShardRouter& router() const noexcept { return router_; }
  const CoordinatorStats& stats() const noexcept { return stats_; }

  /// The decision records (shared with the network handler, which keeps
  /// them answerable after this object dies — a coordinator "crash" in the
  /// chaos model is its NODE going down, not the log vanishing).
  DecisionLog& decisions() noexcept { return *decisions_; }
  net::NodeId client_node() const noexcept { return client_node_; }

  /// Optional verification taps.  `history` receives every ShardTx commit
  /// (reads + installed versions) for the serializability checker;
  /// `cross` receives every multi-group decision (commit AND abort) for
  /// the cross-shard atomicity checker.  Both may be null.
  void set_logs(nesting::HistoryLog* history,
                nesting::CrossShardLog* cross) noexcept {
    history_ = history;
    cross_log_ = cross;
  }

 private:
  friend class ShardTx;

  dtm::QuorumStub& stub(std::uint32_t group) { return stubs_.at(group); }

  const ShardRouter& router_;
  std::vector<dtm::QuorumStub> stubs_;  // indexed by group
  std::shared_ptr<DecisionLog> decisions_;
  net::NodeId client_node_ = -1;
  nesting::HistoryLog* history_ = nullptr;
  nesting::CrossShardLog* cross_log_ = nullptr;
  CoordinatorStats stats_;
  std::uint64_t tx_base_ = 0;
  std::atomic<std::uint64_t> tx_seq_{0};
};

/// Seed `key` = `value` on every replica of its owning group — the sharded
/// analogue of workloads::seed_all (seeding a foreign group would plant
/// keys its quorums never serve but its snapshots would drag around).
/// Replicated-class keys are seeded on every group.
void seed_sharded(harness::Cluster& cluster, const ShardMap& map,
                  const store::ObjectKey& key, const store::Record& value);

/// Latest committed value of `key`, read from its owning group's replicas
/// (every replica for replicated classes; max-version copy).  Throws
/// std::runtime_error when no replica of the group holds it.
store::VersionedRecord latest_sharded(harness::Cluster& cluster,
                                      const ShardMap& map,
                                      const store::ObjectKey& key);

}  // namespace acn::shard
