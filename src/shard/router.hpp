// Footprint-based shard routing.
//
// The router classifies a transaction by the quorum groups its keys live
// on.  It runs twice per transaction:
//
//   * plan() at submission, over the *predicted* footprint (the same
//     acn::predicted_footprint signal the contention scheduler consumes).
//     A one-group plan makes the transaction a single-shard candidate —
//     the common case partition-oriented planning is designed to make
//     cheap.
//   * reclassify() at commit, over the keys the transaction *actually*
//     read and wrote.  Predictions are blind to keys produced
//     mid-transaction, so the actual set is authoritative: if it spans
//     groups the prediction missed, the transaction is escalated to
//     cross-shard 2PC and the mispredict counter records the escape.  The
//     reverse (predicted groups never touched) is harmless over-prediction
//     and escalates nothing.
//
// A transaction is NEVER committed single-shard on the strength of the
// prediction alone — that would install a multi-group transaction on one
// group and silently drop the rest.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/shard/shard_map.hpp"

namespace acn::shard {

struct RoutePlan {
  /// Participant groups, sorted ascending, deduplicated.  Never empty for
  /// a routed transaction (a key-less footprint routes to group 0).
  std::vector<std::uint32_t> groups;

  bool single_shard() const noexcept { return groups.size() == 1; }
  /// The group a single-shard transaction runs on (first group otherwise).
  std::uint32_t home() const noexcept {
    return groups.empty() ? 0 : groups.front();
  }

  friend bool operator==(const RoutePlan&, const RoutePlan&) = default;
};

struct RouterStats {
  std::uint64_t planned_single = 0;  // plan(): one predicted group
  std::uint64_t planned_multi = 0;   // plan(): several predicted groups
  std::uint64_t committed_single = 0;
  std::uint64_t committed_multi = 0;
  /// reclassify() found a group the prediction missed (escalation).
  std::uint64_t mispredicted = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(const ShardMap& map) : map_(map) {}

  const ShardMap& map() const noexcept { return map_; }

  /// Classify a predicted footprint into a participant-group plan.
  RoutePlan plan(const KeyFootprint& predicted) const;

  /// The authoritative plan at commit time, from the keys actually
  /// touched.  Bumps `mispredicted` when `predicted` missed a group; the
  /// actual groups always win.
  RoutePlan reclassify(const RoutePlan& predicted,
                       const std::vector<store::ObjectKey>& touched) const;

  /// Commit-side accounting (the coordinator calls this once per commit).
  void note_commit(const RoutePlan& plan) const;

  RouterStats stats() const;

 private:
  const ShardMap& map_;
  mutable std::atomic<std::uint64_t> planned_single_{0};
  mutable std::atomic<std::uint64_t> planned_multi_{0};
  mutable std::atomic<std::uint64_t> committed_single_{0};
  mutable std::atomic<std::uint64_t> committed_multi_{0};
  mutable std::atomic<std::uint64_t> mispredicted_{0};
};

}  // namespace acn::shard
