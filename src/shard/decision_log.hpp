// Durable coordinator decision records for cross-shard 2PC.
//
// The unreplicated coordinator is the single point whose crash can strand a
// prepared group: once ANY participant has been told to commit, presumed
// abort is wrong for the others.  The DecisionLog closes that window —
// commit_prepared() records the decision (plus the exact phase-two push for
// every participant group) BEFORE the first phase-two message leaves, so
// the outcome of every transaction that might have partially installed is
// recoverable:
//
//   * volatile mode (empty path): an in-memory map.  The record survives
//     the ShardTx and even the CrossShardCoordinator object (the network
//     handler holds the log by shared_ptr), modelling a coordinator whose
//     process is alive but whose transaction handle is long gone;
//   * durable mode: each record is additionally appended to a WAL-framed
//     file (src/wal frame format, dtm codec payloads) and replayed on
//     construction, modelling a coordinator that restarts from disk.
//
// A coordinator registers a DecisionQuery handler on its client node that
// answers from this log, so in-doubt participants (and the harness
// resolver) reach it through the same faulty network as all other traffic:
// crashing the coordinator's node makes the record unreachable exactly when
// a real coordinator crash would.
//
// Termination precedence built on these answers (see DESIGN §13): a
// kCommitted/kAborted record is authoritative; kUnknown from a LIVE
// coordinator is authoritative abort (the decision is logged before any
// phase-two send, so no record means no group was told to commit); an
// unreachable coordinator decides nothing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dtm/messages.hpp"

namespace acn::shard {

enum class Decision : std::uint8_t { kCommit = 1, kAbort = 2 };

class DecisionLog {
 public:
  /// `path`: append-only decision file; empty keeps the records in memory
  /// only.  An existing file is replayed (torn tails dropped, same rules as
  /// WAL segments).
  explicit DecisionLog(std::string path = {});
  ~DecisionLog();

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  /// Record the commit decision and the per-group phase-two pushes.  Must
  /// happen-before any phase-two send; returns once the record is appended
  /// (and flushed, in durable mode).  Returns false — and records NOTHING —
  /// when the transaction's outcome is already sealed as abort (an explicit
  /// record_abort, or answer() having served presumed abort to a querier):
  /// a zombie coordinator deciding commit after its prepares were resolved
  /// away must abort instead of pushing phase 2.
  bool record_commit(dtm::TxId tx, std::vector<dtm::CommitRequest> pushes);
  void record_abort(dtm::TxId tx);

  std::optional<Decision> decision(dtm::TxId tx) const;

  /// The stored phase-two push for `group`, when `tx` was decided commit.
  std::optional<dtm::CommitRequest> push_for(dtm::TxId tx,
                                             std::uint32_t group) const;

  /// Answer a DecisionQuery from the records: kCommitted (with the stored
  /// push payload for the querying group) or kAborted.  Never kInDoubt —
  /// the coordinator either decided or it did not — and never kUnknown:
  /// answering "no record" IS the presumed-abort promise, so an unknown
  /// transaction is sealed as aborted before the reply leaves (a later
  /// record_commit for it is refused).  Without the seal a zombie
  /// coordinator could decide commit after a resolver acted on the absence
  /// of its record.
  dtm::DecisionReply answer(const dtm::DecisionQuery& query);

  std::size_t size() const;

 private:
  struct Entry {
    Decision decision = Decision::kAbort;
    std::vector<dtm::CommitRequest> pushes;
  };

  void append_locked(dtm::TxId tx, const Entry& entry);
  void replay_locked();

  std::string path_;
  mutable std::mutex mutex_;
  std::unordered_map<dtm::TxId, Entry> entries_;
  std::FILE* file_ = nullptr;
};

}  // namespace acn::shard
