#include "src/shard/router.hpp"

#include <algorithm>

namespace acn::shard {

RoutePlan ShardRouter::plan(const KeyFootprint& predicted) const {
  RoutePlan out;
  out.groups = map_.shards_touched(predicted);
  // A transaction with no predictable keys still needs a home; group 0 is
  // as good as any, and reclassify() will escalate if the real keys
  // disagree.
  if (out.groups.empty()) out.groups.push_back(0);
  if (out.single_shard())
    planned_single_.fetch_add(1, std::memory_order_relaxed);
  else
    planned_multi_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

RoutePlan ShardRouter::reclassify(
    const RoutePlan& predicted,
    const std::vector<store::ObjectKey>& touched) const {
  RoutePlan actual;
  actual.groups.reserve(touched.size());
  // Replicated-class keys never force a group: they are served by whichever
  // participant the transaction already has (ShardTx pins them to its home).
  for (const store::ObjectKey& key : touched)
    if (!map_.replicated(key.cls)) actual.groups.push_back(map_.shard_of(key));
  std::sort(actual.groups.begin(), actual.groups.end());
  actual.groups.erase(std::unique(actual.groups.begin(), actual.groups.end()),
                      actual.groups.end());
  if (actual.groups.empty()) actual.groups = predicted.groups;

  for (const std::uint32_t g : actual.groups) {
    if (!std::binary_search(predicted.groups.begin(), predicted.groups.end(),
                            g)) {
      mispredicted_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  return actual;
}

void ShardRouter::note_commit(const RoutePlan& plan) const {
  if (plan.single_shard())
    committed_single_.fetch_add(1, std::memory_order_relaxed);
  else
    committed_multi_.fetch_add(1, std::memory_order_relaxed);
}

RouterStats ShardRouter::stats() const {
  RouterStats out;
  out.planned_single = planned_single_.load(std::memory_order_relaxed);
  out.planned_multi = planned_multi_.load(std::memory_order_relaxed);
  out.committed_single = committed_single_.load(std::memory_order_relaxed);
  out.committed_multi = committed_multi_.load(std::memory_order_relaxed);
  out.mispredicted = mispredicted_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace acn::shard
