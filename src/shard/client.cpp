#include "src/shard/client.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace acn::shard {
namespace {

void require(bool present, const char* what) {
  if (!present)
    throw std::invalid_argument(std::string("shard::Client::run: missing ") +
                                what);
}

/// ir::TxBackend over a ShardTx: the adapter that lets unmodified
/// TxPrograms execute on the cross-shard path.
class ShardTxBackend final : public ir::TxBackend {
 public:
  explicit ShardTxBackend(ShardTx& tx) : tx_(tx) {}

  ir::Record read(const ir::ObjectKey& key) override { return tx_.read(key); }

  void write(const ir::ObjectKey& key, ir::Record value) override {
    tx_.write(key, std::move(value));
  }

  void insert(const ir::ObjectKey& key, ir::Record value) override {
    // Prepare validates read checks only, never write versions, so a
    // buffered write with no prior read IS a blind insert here.
    tx_.write(key, std::move(value));
  }

 private:
  ShardTx& tx_;
};

/// The program (plus block structure, when the protocol has one) a run
/// executes.  For kAcn the plan snapshot keeps model/sequence alive.
struct Resolved {
  const ir::TxProgram* program = nullptr;
  std::shared_ptr<const Plan> plan;
  const DependencyModel* model = nullptr;
  const BlockSequence* sequence = nullptr;
};

Resolved resolve(Protocol protocol, const acn::RunOptions& options) {
  Resolved out;
  switch (protocol) {
    case Protocol::kFlat:
    case Protocol::kCheckpoint:
      require(options.program != nullptr, "program");
      out.program = options.program;
      break;
    case Protocol::kManualCN:
      require(options.program != nullptr, "program (kManualCN)");
      require(options.model != nullptr, "model (kManualCN)");
      require(options.sequence != nullptr, "sequence (kManualCN)");
      out.program = options.program;
      out.model = options.model;
      out.sequence = options.sequence;
      break;
    case Protocol::kAcn:
      require(options.controller != nullptr, "controller (kAcn)");
      out.plan = options.controller->plan();
      out.program = &options.controller->algorithm().program();
      out.model = &out.plan->model;
      out.sequence = &out.plan->sequence;
      break;
  }
  return out;
}

void execute_op(const ir::TxProgram& program, std::size_t op_index,
                ir::TxEnv& env, acn::ExecStats& stats) {
  ++stats.ops_executed;
  const ir::Op& op = program.ops[op_index];
  if (op.is_remote())
    env.run_remote(op.remote);
  else
    op.local.fn(env);
}

}  // namespace

const char* exec_mode_name(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kAcn:
      return "acn";
    case ExecMode::kQueue:
      return "queue";
    case ExecMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::optional<ExecMode> parse_exec_mode(std::string_view text) noexcept {
  if (text == "acn") return ExecMode::kAcn;
  if (text == "queue") return ExecMode::kQueue;
  if (text == "hybrid") return ExecMode::kHybrid;
  return std::nullopt;
}

Client::Client(harness::Cluster& cluster, const ShardRouter& router,
               ClientStats& stats, int client_ordinal,
               acn::ExecutorConfig config, std::uint64_t seed, ExecMode mode,
               std::shared_ptr<Lane> lane)
    : router_(router),
      stats_(stats),
      config_(config),
      mode_(mode),
      lane_(std::move(lane)),
      coordinator_(cluster, router, client_ordinal, seed ^ 0xC0DEULL),
      rng_(seed * 0x9e3779b97f4a7c15ULL + 0x5AAD) {
  coordinator_.set_logs(config_.history, config_.cross_log);
  stubs_.reserve(cluster.n_groups());
  executors_.reserve(cluster.n_groups());
  for (std::size_t g = 0; g < cluster.n_groups(); ++g) {
    stubs_.push_back(std::make_unique<dtm::QuorumStub>(
        cluster.make_group_stub(g, client_ordinal, seed + g)));
    executors_.push_back(std::make_unique<acn::Executor>(
        *stubs_.back(), config_, seed ^ (static_cast<std::uint64_t>(g) << 8)));
  }
}

Client::~Client() {
  // Fold this client's coordinator counters into the fleet totals (the
  // gates assert the breach sum is zero; handoffs are benign and merely
  // reported).
  stats_.atomicity_breaches.fetch_add(
      coordinator_.stats().atomicity_breaches.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.indoubt_handoffs.fetch_add(
      coordinator_.stats().indoubt_handoffs.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void Client::backoff(int attempt) {
  const auto base = config_.backoff_base.count();
  const std::int64_t shifted = base << std::min(attempt, 6);
  const std::int64_t jitter = static_cast<std::int64_t>(
      rng_.uniform(0, static_cast<std::uint64_t>(shifted)));
  std::this_thread::sleep_for(std::chrono::nanoseconds{shifted + jitter});
}

void Client::run(Protocol protocol, const acn::RunOptions& options,
                 const std::vector<acn::ir::Record>& params,
                 acn::ExecStats& stats) {
  const Resolved resolved = resolve(protocol, options);
  const KeyFootprint predicted =
      predicted_footprint(*resolved.program, params);

  // Deterministic-lane dispatch: kQueue sends every predictable
  // transaction, kHybrid only those whose footprint touches a hot key (the
  // scheduler's call — cold traffic loses nothing to optimism).  A
  // footprint-less transaction is invisible to the planner's queues, so it
  // always stays optimistic.  A demotion falls through to the optimistic
  // paths below, which serializes the re-execution after the lane's epoch.
  if (lane_ != nullptr && mode_ != ExecMode::kAcn && !predicted.empty()) {
    const bool deterministic =
        mode_ == ExecMode::kQueue ||
        (options.scheduler != nullptr && options.scheduler->any_hot(predicted));
    if (deterministic) {
      stats_.lane_submits.fetch_add(1, std::memory_order_relaxed);
      if (lane_->submit(*resolved.program, params, predicted, stats) ==
          LaneOutcome::kCommitted) {
        stats_.lane_commits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stats_.lane_demotions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const RoutePlan plan = router_.plan(predicted);

  if (plan.single_shard()) {
    const std::uint32_t home = plan.home();
    stats_.fast_path.fetch_add(1, std::memory_order_relaxed);
    try {
      // The pre-sharding path, verbatim: full partial-rollback machinery,
      // admission gating inside Executor::run, one group involved.
      executors_.at(home)->run(protocol, options, params, stats);
      router_.note_commit(plan);
      return;
    } catch (const dtm::ObjectMissing& missing) {
      // Owner-scoped seeding makes a foreign key's absence on the home
      // group the misprediction signal: if another group owns the key,
      // this transaction was never single-shard — escalate.  A key no
      // group owns stays what it always was, a workload bug.
      const ShardMap& map = router_.map();
      if (map.n_shards() == 1 || map.replicated(missing.key().cls) ||
          map.shard_of(missing.key()) == home)
        throw;
      stats_.escalations.fetch_add(1, std::memory_order_relaxed);
    }
  }

  stats_.cross_shard.fetch_add(1, std::memory_order_relaxed);
  run_cross_shard(protocol, options, params, predicted, stats);
  stats_.cross_commits.fetch_add(1, std::memory_order_relaxed);
}

void Client::run_cross_shard(Protocol protocol, const acn::RunOptions& options,
                             const std::vector<acn::ir::Record>& params,
                             const KeyFootprint& predicted,
                             acn::ExecStats& stats) {
  // The same gate conversation Executor::run has, so admission control is
  // uniform across paths.  On an escalation the fast path's gate already
  // finished (the ObjectMissing escaped Executor::run); this re-admits.
  acn::SchedulerGate* const gate = options.scheduler;
  struct GateGuard {
    acn::SchedulerGate* gate;
    acn::TxOutcome outcome = acn::TxOutcome::kUnavailable;
    ~GateGuard() {
      if (gate) gate->finish(outcome);
    }
  } guard{gate};
  if (gate) gate->admit(predicted);

  for (int attempt = 0;; ++attempt) {
    // Re-resolve per attempt: under kAcn the controller may have published
    // a new composition between restarts (same contract as Executor::run).
    const Resolved resolved = resolve(protocol, options);
    const ir::TxProgram& program = *resolved.program;

    // Execution windows: the Block Sequence where the protocol has one,
    // the whole program as one window otherwise (kFlat/kCheckpoint carry
    // no block structure — cross-shard they restart in full).
    std::vector<std::vector<std::size_t>> blocks;
    if (resolved.sequence != nullptr) {
      blocks.reserve(resolved.sequence->size());
      for (const Block& block : *resolved.sequence)
        blocks.push_back(block_ops(block, *resolved.model));
    } else {
      std::vector<std::size_t>& all = blocks.emplace_back(program.ops.size());
      std::iota(all.begin(), all.end(), std::size_t{0});
    }

    ShardTx tx = coordinator_.begin(predicted);
    ShardTxBackend backend(tx);
    ir::TxEnv env(backend, program, params);
    try {
      for (std::size_t position = 0; position < blocks.size(); ++position) {
        const std::size_t slot =
            std::min(position, acn::ExecStats::kPositionSlots - 1);
        // Block-level partial rollback across shards: checkpoint the
        // buffered read/write-sets and the variable frame, retry just this
        // window when an abort is confined to it.
        const ShardTx::Checkpoint point = tx.checkpoint();
        const ir::TxEnv::Snapshot snapshot = env.snapshot();
        int partial_attempts = 0;
        for (;;) {
          ++stats.blocks_executed;
          try {
            for (const std::size_t op : blocks[position])
              execute_op(program, op, env, stats);
            break;
          } catch (const dtm::TxAbort& abort) {
            ++stats.aborts_in_execution;
            // Partial iff rolling this window back discards every stale
            // read: each invalidated key must be unseen before the window
            // (absent from the checkpoint's read-set).  This is the
            // closed-nesting classification, computed on buffered state.
            bool partial = blocks.size() > 1 &&
                           partial_attempts < config_.max_partial_retries;
            if (partial) {
              for (const auto& key : abort.invalid()) {
                if (point.reads.count(key) != 0) {
                  partial = false;
                  break;
                }
              }
            }
            if (!partial) {
              ++stats.fulls_at_position[slot];
              throw;  // escalate to a full restart
            }
            ++stats.partial_aborts;
            ++stats.partials_at_position[slot];
            ++partial_attempts;
            tx.restore(point);     // lvalues: restore/env keep the originals
            env.restore(snapshot); // usable for the next partial retry
            if (abort.kind() == dtm::AbortKind::kBusy)
              backoff(partial_attempts);
          }
        }
      }
      try {
        tx.commit();  // reclassify + fast path or 2PC, per actual keys
      } catch (const dtm::TxAbort&) {
        ++stats.aborts_at_commit;
        throw;
      }
      ++stats.commits;
      guard.outcome = acn::TxOutcome::kCommitted;
      return;
    } catch (const dtm::TxAbort& abort) {
      tx.abort();  // no-op when commit() already finished the handle
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      if (gate) gate->on_full_abort(acn::outcome_of(abort), abort.invalid());
      if (attempt >= config_.max_full_retries) {
        guard.outcome = acn::outcome_of(abort);
        throw;
      }
      backoff(attempt);
    }
  }
}

namespace {

ShardMap make_map(const workloads::Workload& workload, std::uint32_t n_shards) {
  const workloads::Placement placement = workload.placement();
  ShardMapConfig config;
  config.n_shards = n_shards;
  if (placement.shard_of) {
    config.partitioning = Partitioning::kCustom;
    config.custom = placement.shard_of;
  }
  config.replicated_classes = placement.replicated_classes;
  return ShardMap(config);
}

}  // namespace

ClientFleet::ClientFleet(const workloads::Workload& workload,
                         std::uint32_t n_shards)
    : map_(make_map(workload, n_shards)), router_(map_) {}

void ClientFleet::seed(harness::Cluster& cluster,
                       workloads::Workload& workload) const {
  workload.seed_objects(
      [&](const store::ObjectKey& key, const store::Record& value) {
        seed_sharded(cluster, map_, key, value);
      });
  cluster.flush_seeds();
}

harness::SubmitterFactory ClientFleet::factory() {
  return [this](harness::Cluster& cluster, std::size_t client,
                const acn::ExecutorConfig& config,
                std::uint64_t seed) -> std::unique_ptr<harness::Submitter> {
    return std::make_unique<Client>(cluster, router_, stats_,
                                    static_cast<int>(client), config, seed,
                                    mode_, lane_for(cluster));
  };
}

void ClientFleet::set_lane(ExecMode mode, LaneFactory make_lane) {
  std::lock_guard<std::mutex> lock(lane_mutex_);
  mode_ = mode;
  make_lane_ = std::move(make_lane);
  lane_.reset();
}

std::shared_ptr<Lane> ClientFleet::lane() const {
  std::lock_guard<std::mutex> lock(lane_mutex_);
  return lane_;
}

std::shared_ptr<Lane> ClientFleet::lane_for(harness::Cluster& cluster) {
  // Client threads race through factory(); the first one builds the lane.
  std::lock_guard<std::mutex> lock(lane_mutex_);
  if (mode_ == ExecMode::kAcn || !make_lane_) return nullptr;
  if (!lane_) lane_ = make_lane_(cluster, router_);
  return lane_;
}

std::function<std::uint32_t(const store::ObjectKey&)> ClientFleet::shard_of()
    const {
  return [this](const store::ObjectKey& key) { return map_.shard_of(key); };
}

}  // namespace acn::shard
