// Cooperative termination of in-doubt cross-shard prepares.
//
// A cross-shard prepare whose lease expires parks in-doubt on its replicas
// (src/dtm server): the protections stay held because a sibling group may
// already have been told to commit.  This resolver terminates every parked
// transaction by the precedence the protocol guarantees is safe:
//
//   1. The coordinator's decision record (DecisionQuery to the coordinator
//      node).  kCommitted installs the recorded push; kAborted — and
//      kUnknown from a LIVE coordinator — releases the prepare (the
//      decision is logged before any phase-two send, so no record means no
//      group was ever told to commit: presumed abort is safe).
//   2. Sibling participant groups, when the coordinator node is
//      unreachable.  Any replica answering kCommitted or kAborted is
//      authoritative (those memories are only written by a real decision).
//      On commit, the in-doubt replicas' own DecisionReply supplies the
//      redo payload and locally-proposed versions.
//   3. All participants merely prepared and the coordinator dead: the
//      transaction STAYS in-doubt — a decision record may exist behind the
//      crash, so unilateral presumed abort here could contradict it.
//      heal first, then resolve (ChaosController::stop() does exactly
//      that).
//
// Every query and push travels through the cluster's net::Network from the
// resolver's own client identity, so chaos (drops, partitions, down nodes)
// applies to termination traffic like any other; each RPC is bounded by a
// RetryPolicy and an op_deadline — a dead peer costs a classified timeout,
// never a hang.
#pragma once

#include <chrono>
#include <cstddef>

#include "src/common/retry_policy.hpp"
#include "src/harness/cluster.hpp"

namespace acn::harness {

struct IndoubtOptions {
  /// Retry shape for one peer RPC (query or push): up to `max_retries`
  /// re-sends with RetryPolicy::delay backoff.
  RetryPolicy retry{};
  /// Wall-clock budget for one peer RPC including retries; 0 = retries
  /// alone decide.
  std::chrono::nanoseconds op_deadline{std::chrono::milliseconds{50}};
  /// Network identity the resolver's traffic originates from, as an offset
  /// above the server ids (kept far from any client fleet's ordinals).
  int client_ordinal = 0x7E50;
};

struct IndoubtReport {
  std::size_t queries = 0;          // DecisionQuery RPCs issued
  std::size_t resolved_commit = 0;  // (tx, group) prepares pushed to commit
  std::size_t resolved_abort = 0;   // (tx, group) prepares released
  std::size_t unresolved = 0;       // left parked (no authoritative answer)
};

/// Resolve every in-doubt transaction currently parked on any replica.
/// Idempotent; safe to call with traffic stopped (benches, chaos stop) or
/// concurrent (commits/aborts are idempotent and version-guarded).
IndoubtReport resolve_indoubt(Cluster& cluster,
                              const IndoubtOptions& options = {});

}  // namespace acn::harness
