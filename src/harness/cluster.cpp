#include "src/harness/cluster.hpp"

namespace acn::harness {
namespace {

std::shared_ptr<const LatencyModel> make_latency(const ClusterConfig& config) {
  if (config.base_latency.count() <= 0) return std::make_shared<ZeroLatency>();
  return std::make_shared<FixedLatency>(config.base_latency,
                                        config.per_kilobyte);
}

std::unique_ptr<quorum::QuorumSystem> make_quorums(const ClusterConfig& config) {
  quorum::TreeTopology topology(config.n_servers, config.tree_arity);
  switch (config.quorum_policy) {
    case QuorumPolicy::kLevelMajority:
      return std::make_unique<quorum::LevelMajorityQuorumSystem>(topology);
    case QuorumPolicy::kRowa:
      return std::make_unique<quorum::RowaQuorumSystem>(config.n_servers);
    case QuorumPolicy::kTree:
      break;
  }
  return std::make_unique<quorum::TreeQuorumSystem>(topology,
                                                    config.root_read_bias);
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      network_(make_latency(config)),
      quorums_(make_quorums(config)) {
  servers_.reserve(config_.n_servers);
  for (std::size_t i = 0; i < config_.n_servers; ++i) {
    servers_.push_back(std::make_unique<dtm::Server>(
        static_cast<net::NodeId>(i), config_.contention_window_ns));
    dtm::Server* server = servers_.back().get();
    auto handler = [server](net::NodeId from, const dtm::Request& request) {
      return server->handle(from, request);
    };
    if (config_.async_servers)
      network_.register_node_async(static_cast<net::NodeId>(i),
                                   std::move(handler));
    else
      network_.register_node(static_cast<net::NodeId>(i), std::move(handler));
  }
}

std::vector<dtm::Server*> Cluster::servers() {
  std::vector<dtm::Server*> out;
  out.reserve(servers_.size());
  for (auto& server : servers_) out.push_back(server.get());
  return out;
}

dtm::QuorumStub Cluster::make_stub(int client_ordinal, std::uint64_t seed) {
  const auto client_node =
      static_cast<net::NodeId>(servers_.size()) + client_ordinal;
  const std::uint64_t stub_seed =
      seed != 0 ? seed
                : 0x57ab0000ULL + static_cast<std::uint64_t>(client_ordinal);
  return dtm::QuorumStub(network_, *quorums_, client_node, stub_seed,
                         config_.stub);
}

void Cluster::roll_contention_windows() {
  for (auto& server : servers_) server->roll_contention_window();
}

}  // namespace acn::harness
