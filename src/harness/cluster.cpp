#include "src/harness/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/common/clock.hpp"
#include "src/common/rng.hpp"

namespace acn::harness {
namespace {

std::shared_ptr<const LatencyModel> make_latency(const ClusterConfig& config) {
  if (config.base_latency.count() <= 0) return std::make_shared<ZeroLatency>();
  return std::make_shared<FixedLatency>(config.base_latency,
                                        config.per_kilobyte);
}

std::unique_ptr<quorum::QuorumSystem> make_group_quorums(
    const ClusterConfig& config, std::size_t group) {
  quorum::TreeTopology topology(config.n_servers, config.tree_arity);
  std::unique_ptr<quorum::QuorumSystem> inner;
  switch (config.quorum_policy) {
    case QuorumPolicy::kLevelMajority:
      inner = std::make_unique<quorum::LevelMajorityQuorumSystem>(topology);
      break;
    case QuorumPolicy::kRowa:
      inner = std::make_unique<quorum::RowaQuorumSystem>(config.n_servers);
      break;
    case QuorumPolicy::kTree:
      inner = std::make_unique<quorum::TreeQuorumSystem>(topology,
                                                         config.root_read_bias);
      break;
  }
  // Group g's replicas sit at global ids [g*n, (g+1)*n); the inner system
  // numbers them 0..n-1, so relocate its quorums.  Group 0 needs no shift —
  // the unsharded cluster keeps its exact pre-sharding quorum objects.
  if (group == 0) return inner;
  return std::make_unique<quorum::OffsetQuorumSystem>(
      std::move(inner),
      static_cast<quorum::NodeId>(group * config.n_servers));
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config), network_(make_latency(config)) {
  if (config_.n_groups == 0)
    throw std::invalid_argument("Cluster: n_groups must be >= 1");
  quorums_.reserve(config_.n_groups);
  for (std::size_t g = 0; g < config_.n_groups; ++g)
    quorums_.push_back(make_group_quorums(config_, g));

  const std::size_t total = config_.n_servers * config_.n_groups;
  servers_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    servers_.push_back(std::make_unique<dtm::Server>(
        static_cast<net::NodeId>(i), config_.contention_window_ns,
        config_.prepare_lease_ns));
    dtm::Server* server = servers_.back().get();
    server->set_group(static_cast<std::uint32_t>(i / config_.n_servers));
    auto handler = [server](net::NodeId from, const dtm::Request& request) {
      return server->handle(from, request);
    };
    if (config_.async_servers)
      network_.register_node_async(static_cast<net::NodeId>(i),
                                   std::move(handler));
    else
      network_.register_node(static_cast<net::NodeId>(i), std::move(handler));
  }

  if (config_.durability.mode == DurabilityMode::kWal) {
    persistence_.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      wal::WalConfig wal_config;
      wal_config.dir =
          config_.durability.data_dir + "/node-" + std::to_string(i);
      wal_config.flush_interval_ns = config_.durability.flush_interval_ns;
      wal_config.snapshot_every_bytes =
          config_.durability.snapshot_every_bytes;
      wal_config.fsync = config_.durability.fsync;
      persistence_.push_back(
          std::make_unique<wal::ReplicaPersistence>(std::move(wal_config)));
      // A cluster built over existing data directories is a restart: each
      // replica comes back up from its own disk before taking traffic.
      auto recovered = persistence_[i]->recover();
      servers_[i]->install_recovered(recovered.objects,
                                     recovered.open_prepares);
      servers_[i]->set_durability(persistence_[i].get());
    }
  }
}

std::vector<dtm::Server*> Cluster::servers() {
  std::vector<dtm::Server*> out;
  out.reserve(servers_.size());
  for (auto& server : servers_) out.push_back(server.get());
  return out;
}

std::vector<net::NodeId> Cluster::group_members(std::size_t g) const {
  if (g >= config_.n_groups)
    throw std::out_of_range("Cluster::group_members: unknown group");
  std::vector<net::NodeId> out;
  out.reserve(config_.n_servers);
  const std::size_t base = g * config_.n_servers;
  for (std::size_t i = 0; i < config_.n_servers; ++i)
    out.push_back(static_cast<net::NodeId>(base + i));
  return out;
}

std::vector<dtm::Server*> Cluster::group_servers(std::size_t g) {
  std::vector<dtm::Server*> out;
  out.reserve(config_.n_servers);
  for (const net::NodeId id : group_members(g))
    out.push_back(servers_[static_cast<std::size_t>(id)].get());
  return out;
}

dtm::QuorumStub Cluster::make_stub(int client_ordinal, std::uint64_t seed) {
  return make_group_stub(0, client_ordinal, seed);
}

dtm::QuorumStub Cluster::make_group_stub(std::size_t group, int client_ordinal,
                                         std::uint64_t seed) {
  if (group >= config_.n_groups)
    throw std::out_of_range("Cluster::make_group_stub: unknown group");
  const auto client_node =
      static_cast<net::NodeId>(servers_.size()) + client_ordinal;
  // Decorrelate per group so a coordinator's stubs don't pick rhyming
  // quorums across its groups.
  const std::uint64_t stub_seed =
      (seed != 0 ? seed
                 : 0x57ab0000ULL + static_cast<std::uint64_t>(client_ordinal)) ^
      (static_cast<std::uint64_t>(group) << 48);
  dtm::StubConfig stub_config = config_.stub;
  stub_config.group = static_cast<std::uint32_t>(group);
  return dtm::QuorumStub(network_, *quorums_[group], client_node, stub_seed,
                         stub_config);
}

void Cluster::roll_contention_windows() {
  for (auto& server : servers_) server->roll_contention_window();
}

std::vector<std::uint64_t> Cluster::class_levels(
    const std::vector<store::ClassId>& classes) {
  std::vector<std::uint64_t> levels(classes.size(), 0);
  for (auto& server : servers_) {
    const auto server_levels = server->contention().class_levels(classes);
    for (std::size_t i = 0; i < levels.size(); ++i)
      levels[i] = std::max(levels[i], server_levels[i]);
  }
  return levels;
}

void Cluster::crash_node(net::NodeId id, bool lose_disk) {
  network_.set_node_down(id, true);
  const auto i = static_cast<std::size_t>(id);
  if (i < persistence_.size() && persistence_[i]) {
    // What sat in the group-commit buffer never reached the disk.
    persistence_[i]->drop_unflushed();
    if (lose_disk) persistence_[i]->wipe();
  }
}

void Cluster::checkpoint_node(std::size_t i) {
  if (i >= persistence_.size() || !persistence_[i]) return;
  dtm::Server* server = servers_[i].get();
  persistence_[i]->write_snapshot([server] {
    return dtm::SnapshotData{server->store().snapshot(),
                             server->open_prepares()};
  });
}

void Cluster::checkpoint_all() {
  for (std::size_t i = 0; i < persistence_.size(); ++i) checkpoint_node(i);
}

std::size_t Cluster::restart_node(net::NodeId id, CatchUpScope scope) {
  if (id < 0 || static_cast<std::size_t>(id) >= servers_.size())
    throw std::invalid_argument("Cluster::restart_node: unknown server id");
  dtm::Server& joiner = *servers_[static_cast<std::size_t>(id)];

  const std::uint64_t start_ns = now_ns();
  wal::ReplicaPersistence* wal = persistence(static_cast<std::size_t>(id));
  if (wal != nullptr) {
    // Disk-faithful restart: the in-process "crash" left the replica's
    // memory intact, so first shed it — what a real reboot would keep is
    // exactly what recover() reads back from the log and snapshot.
    joiner.reset_volatile_state();
    auto recovered = wal->recover();
    joiner.install_recovered(recovered.objects, recovered.open_prepares);
  }

  // Pick the peers to sync from — always within the joiner's own quorum
  // group: the groups' keyspaces are disjoint, so a foreign peer holds
  // nothing this replica should serve (and syncing from one would install
  // keys the group does not own).  A read quorum of the group suffices:
  // every committed write reached a write quorum, and read and write
  // quorums intersect, so the newest version of every key is present among
  // the sources.
  const std::size_t joiner_group = group_of(id);
  const std::vector<net::NodeId> peers = group_members(joiner_group);
  std::vector<net::NodeId> sources;
  if (scope == CatchUpScope::kAllReplicas) {
    for (const net::NodeId peer : peers)
      if (peer != id) sources.push_back(peer);
  } else {
    Rng rng(0xca7c4b00ULL ^ (static_cast<std::uint64_t>(id) << 32) ^
            catchup_seq_++);
    sources = quorums_[joiner_group]->read_quorum(rng);
    sources.erase(std::remove(sources.begin(), sources.end(), id),
                  sources.end());
    if (sources.empty())
      for (const net::NodeId peer : peers)
        if (peer != id) sources.push_back(peer);
  }

  // Gather the newest version of every key across the sources, then install
  // whatever is newer than the local replica.  apply() is version-guarded,
  // so racing against live commit traffic can only lose to newer versions.
  std::unordered_map<store::ObjectKey, store::VersionedRecord,
                     store::ObjectKeyHash>
      newest;
  for (const net::NodeId src : sources) {
    if (network_.node_down(src)) continue;
    for (auto& [key, rec] : servers_[static_cast<std::size_t>(src)]
                                ->store()
                                .snapshot()) {
      auto [it, inserted] = newest.try_emplace(key, rec);
      if (!inserted && rec.version > it->second.version) it->second = rec;
    }
  }
  std::size_t updated = 0;
  for (const auto& [key, rec] : newest) {
    const auto local = joiner.store().version_of(key);
    if (local.has_value() && *local >= rec.version) continue;
    joiner.store().apply(key, rec.value, rec.version, store::kNoTx);
    ++updated;
  }

  network_.set_node_down(id, false);

  obs::Observability* obs = config_.stub.obs;
  if (obs != nullptr) {
    obs->recovery_catchup_keys.add(updated);
    if (wal != nullptr) {
      // For a durable node the peer sync was a delta pass on top of log
      // replay; `updated` is what the log could not cover.
      obs->recovery_delta_keys.add(updated);
      obs->recovery_time_ns.observe(now_ns() - start_ns);
    }
  }
  if (wal != nullptr) {
    // Make the recovered + caught-up state durable in one snapshot; this
    // also compacts the log the replay just consumed.
    checkpoint_node(static_cast<std::size_t>(id));
  }
  return updated;
}

}  // namespace acn::harness
