#include "src/harness/cluster.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/common/clock.hpp"
#include "src/common/rng.hpp"
#include "src/transport/spawn.hpp"
#include "src/transport/tcp_transport.hpp"
#include "src/transport/topology.hpp"

namespace acn::harness {
namespace {

std::shared_ptr<const LatencyModel> make_latency(const ClusterConfig& config) {
  if (config.base_latency.count() <= 0) return std::make_shared<ZeroLatency>();
  return std::make_shared<FixedLatency>(config.base_latency,
                                        config.per_kilobyte);
}

std::unique_ptr<quorum::QuorumSystem> make_group_quorums(
    const ClusterConfig& config, std::size_t group) {
  quorum::TreeTopology topology(config.n_servers, config.tree_arity);
  std::unique_ptr<quorum::QuorumSystem> inner;
  switch (config.quorum_policy) {
    case QuorumPolicy::kLevelMajority:
      inner = std::make_unique<quorum::LevelMajorityQuorumSystem>(topology);
      break;
    case QuorumPolicy::kRowa:
      inner = std::make_unique<quorum::RowaQuorumSystem>(config.n_servers);
      break;
    case QuorumPolicy::kTree:
      inner = std::make_unique<quorum::TreeQuorumSystem>(topology,
                                                         config.root_read_bias);
      break;
  }
  // Group g's replicas sit at global ids [g*n, (g+1)*n); the inner system
  // numbers them 0..n-1, so relocate its quorums.  Group 0 needs no shift —
  // the unsharded cluster keeps its exact pre-sharding quorum objects.
  if (group == 0) return inner;
  return std::make_unique<quorum::OffsetQuorumSystem>(
      std::move(inner),
      static_cast<quorum::NodeId>(group * config.n_servers));
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config), network_(make_latency(config)) {
  if (config_.n_groups == 0)
    throw std::invalid_argument("Cluster: n_groups must be >= 1");
  total_nodes_ = config_.n_servers * config_.n_groups;
  quorums_.reserve(config_.n_groups);
  for (std::size_t g = 0; g < config_.n_groups; ++g)
    quorums_.push_back(make_group_quorums(config_, g));

  if (config_.transport_mode == TransportMode::kTcp) {
    spawn_fleet();
    return;
  }

  transport_ =
      std::make_unique<net::SimTransport<dtm::Request, dtm::Response>>(
          network_);
  servers_.reserve(total_nodes_);
  for (std::size_t i = 0; i < total_nodes_; ++i) {
    servers_.push_back(std::make_unique<dtm::Server>(
        static_cast<net::NodeId>(i), config_.contention_window_ns,
        config_.prepare_lease_ns));
    dtm::Server* server = servers_.back().get();
    server->set_group(static_cast<std::uint32_t>(i / config_.n_servers));
    auto handler = [server](net::NodeId from, const dtm::Request& request) {
      return server->handle(from, request);
    };
    if (config_.async_servers)
      network_.register_node_async(static_cast<net::NodeId>(i),
                                   std::move(handler));
    else
      network_.register_node(static_cast<net::NodeId>(i), std::move(handler));
  }

  if (config_.durability.mode == DurabilityMode::kWal) {
    persistence_.reserve(total_nodes_);
    for (std::size_t i = 0; i < total_nodes_; ++i) {
      wal::WalConfig wal_config;
      wal_config.dir =
          config_.durability.data_dir + "/node-" + std::to_string(i);
      wal_config.flush_interval_ns = config_.durability.flush_interval_ns;
      wal_config.snapshot_every_bytes =
          config_.durability.snapshot_every_bytes;
      wal_config.fsync = config_.durability.fsync;
      persistence_.push_back(
          std::make_unique<wal::ReplicaPersistence>(std::move(wal_config)));
      // A cluster built over existing data directories is a restart: each
      // replica comes back up from its own disk before taking traffic.
      auto recovered = persistence_[i]->recover();
      servers_[i]->install_recovered(recovered.objects,
                                     recovered.open_prepares);
      servers_[i]->set_durability(persistence_[i].get());
    }
  }
}

Cluster::~Cluster() { shutdown_fleet(); }

void Cluster::spawn_fleet() {
  namespace fs = std::filesystem;
  const std::string log_dir = config_.tcp.log_dir;
  fs::create_directories(log_dir);
  const std::string binary = config_.tcp.binary.empty()
                                 ? transport::ProcessFleet::default_binary()
                                 : config_.tcp.binary;
  fleet_ = std::make_unique<transport::ProcessFleet>();

  transport::Topology topology;
  topology.servers = config_.n_servers;
  topology.groups = config_.n_groups;
  topology.durability =
      config_.durability.mode == DurabilityMode::kWal ? "wal" : "none";
  std::map<net::NodeId, transport::Endpoint> peers;
  for (std::size_t i = 0; i < total_nodes_; ++i) {
    std::vector<std::string> args = {
        "--node=" + std::to_string(i),
        "--group=" + std::to_string(i / config_.n_servers),
        "--host=" + config_.tcp.host,
        "--port=0",
        "--lease-ns=" + std::to_string(config_.prepare_lease_ns),
        "--window-ns=" + std::to_string(config_.contention_window_ns),
        "--workers=" + std::to_string(config_.tcp.server_workers),
    };
    if (config_.durability.mode == DurabilityMode::kWal) {
      args.push_back("--durability=wal");
      args.push_back("--data-dir=" + config_.durability.data_dir + "/node-" +
                     std::to_string(i));
      args.push_back("--flush-ns=" +
                     std::to_string(config_.durability.flush_interval_ns));
      args.push_back("--snapshot-bytes=" +
                     std::to_string(config_.durability.snapshot_every_bytes));
      if (!config_.durability.fsync) args.push_back("--no-fsync");
    }
    const int port = fleet_->spawn(
        binary, static_cast<int>(i), args,
        log_dir + "/node-" + std::to_string(i) + ".log",
        config_.tcp.ready_timeout);
    peers[static_cast<net::NodeId>(i)] = {config_.tcp.host, port};
    topology.nodes.push_back({static_cast<int>(i),
                              static_cast<std::uint32_t>(i / config_.n_servers),
                              config_.tcp.host, port});
  }
  // Record what ran: a failed CI job's artifacts then name every process.
  transport::save_topology(topology, log_dir + "/topology.toml");

  transport::TcpTransportConfig transport_config;
  transport_config.call_timeout = config_.tcp.call_timeout;
  auto tcp = std::make_unique<transport::TcpTransport>(
      std::move(peers), transport_config, /*seed=*/0xacd7c9);
  tcp_ = tcp.get();
  transport_ = std::move(tcp);
}

bool Cluster::shutdown_fleet() {
  if (!remote() || fleet_ == nullptr) return true;
  for (std::size_t i = 0; i < total_nodes_; ++i) {
    transport::ControlRequest req;
    req.op = transport::ControlOp::kShutdown;
    tcp().try_control(static_cast<net::NodeId>(i), req);
  }
  const bool clean = fleet_->wait_all(std::chrono::milliseconds(3000));
  fleet_->kill_all();
  return clean;
}

transport::TcpTransport& Cluster::tcp() {
  if (tcp_ == nullptr)
    throw std::logic_error("Cluster: control plane requires TransportMode::kTcp");
  return *tcp_;
}

dtm::Server& Cluster::server(std::size_t i) {
  if (remote())
    throw std::logic_error(
        "Cluster::server: replicas are remote processes (TransportMode::kTcp);"
        " use store_snapshot()/mirror() or the control plane");
  return *servers_[i];
}

std::vector<dtm::Server*> Cluster::servers() {
  if (remote())
    throw std::logic_error(
        "Cluster::servers: replicas are remote processes (TransportMode::kTcp);"
        " use store_snapshot()/mirror() or the control plane");
  std::vector<dtm::Server*> out;
  out.reserve(servers_.size());
  for (auto& server : servers_) out.push_back(server.get());
  return out;
}

dtm::DtmNetwork& Cluster::network() {
  if (remote())
    throw std::logic_error(
        "Cluster::network: no simulated network under TransportMode::kTcp;"
        " route faults through Cluster::transport()");
  return network_;
}

std::vector<net::NodeId> Cluster::group_members(std::size_t g) const {
  if (g >= config_.n_groups)
    throw std::out_of_range("Cluster::group_members: unknown group");
  std::vector<net::NodeId> out;
  out.reserve(config_.n_servers);
  const std::size_t base = g * config_.n_servers;
  for (std::size_t i = 0; i < config_.n_servers; ++i)
    out.push_back(static_cast<net::NodeId>(base + i));
  return out;
}

std::vector<dtm::Server*> Cluster::group_servers(std::size_t g) {
  std::vector<dtm::Server*> out;
  out.reserve(config_.n_servers);
  for (const net::NodeId id : group_members(g))
    out.push_back(&server(static_cast<std::size_t>(id)));
  return out;
}

dtm::QuorumStub Cluster::make_stub(int client_ordinal, std::uint64_t seed) {
  return make_group_stub(0, client_ordinal, seed);
}

dtm::QuorumStub Cluster::make_group_stub(std::size_t group, int client_ordinal,
                                         std::uint64_t seed) {
  if (group >= config_.n_groups)
    throw std::out_of_range("Cluster::make_group_stub: unknown group");
  const auto client_node =
      static_cast<net::NodeId>(total_nodes_) + client_ordinal;
  // Decorrelate per group so a coordinator's stubs don't pick rhyming
  // quorums across its groups.
  const std::uint64_t stub_seed =
      (seed != 0 ? seed
                 : 0x57ab0000ULL + static_cast<std::uint64_t>(client_ordinal)) ^
      (static_cast<std::uint64_t>(group) << 48);
  dtm::StubConfig stub_config = config_.stub;
  stub_config.group = static_cast<std::uint32_t>(group);
  return dtm::QuorumStub(*transport_, *quorums_[group], client_node, stub_seed,
                         stub_config);
}

void Cluster::seed_object(const store::ObjectKey& key,
                          const store::Record& value) {
  for (std::size_t g = 0; g < config_.n_groups; ++g) seed_object(key, value, g);
}

void Cluster::seed_object(const store::ObjectKey& key,
                          const store::Record& value, std::size_t group) {
  if (group >= config_.n_groups)
    throw std::out_of_range("Cluster::seed_object: unknown group");
  const std::size_t base = group * config_.n_servers;
  if (!remote()) {
    for (std::size_t i = 0; i < config_.n_servers; ++i)
      servers_[base + i]->store().seed(key, value);
    return;
  }
  for (std::size_t i = 0; i < config_.n_servers; ++i)
    pending_seeds_[base + i].push_back({key, value});
}

void Cluster::flush_seeds() {
  if (!remote()) return;
  for (auto& [node, entries] : pending_seeds_) {
    if (entries.empty()) continue;
    transport::ControlRequest req;
    req.op = transport::ControlOp::kSeed;
    req.entries.reserve(entries.size());
    for (auto& [key, value] : entries) req.entries.push_back({key, value, 1});
    tcp().control(static_cast<net::NodeId>(node), req);
    entries.clear();
  }
  pending_seeds_.clear();
}

std::vector<std::pair<store::ObjectKey, store::VersionedRecord>>
Cluster::store_snapshot(std::size_t i) {
  if (!remote()) return servers_[i]->store().snapshot();
  transport::ControlRequest req;
  req.op = transport::ControlOp::kDump;
  auto reply = tcp().control(static_cast<net::NodeId>(i), req);
  std::vector<std::pair<store::ObjectKey, store::VersionedRecord>> out;
  out.reserve(reply.entries.size());
  for (auto& entry : reply.entries)
    out.push_back(
        {entry.key, {std::move(entry.value), entry.version}});
  return out;
}

StateMirror Cluster::mirror() {
  StateMirror m;
  m.owned.reserve(total_nodes_);
  for (std::size_t i = 0; i < total_nodes_; ++i) {
    auto server = std::make_unique<dtm::Server>(static_cast<net::NodeId>(i));
    server->set_group(static_cast<std::uint32_t>(i / config_.n_servers));
    for (auto& [key, rec] : store_snapshot(i))
      server->store().apply(key, rec.value, rec.version, store::kNoTx);
    m.servers.push_back(server.get());
    m.owned.push_back(std::move(server));
  }
  return m;
}

std::size_t Cluster::expire_all_leases() {
  std::size_t expired = 0;
  if (!remote()) {
    for (auto& server : servers_) expired += server->expire_stale_leases();
    return expired;
  }
  transport::ControlRequest req;
  req.op = transport::ControlOp::kExpireLeases;
  for (std::size_t i = 0; i < total_nodes_; ++i)
    if (const auto reply = tcp().try_control(static_cast<net::NodeId>(i), req))
      expired += reply->count;
  return expired;
}

std::vector<dtm::InDoubtTx> Cluster::indoubt_transactions(std::size_t i) {
  if (!remote()) return servers_[i]->indoubt_transactions();
  transport::ControlRequest req;
  req.op = transport::ControlOp::kIndoubtList;
  if (const auto reply = tcp().try_control(static_cast<net::NodeId>(i), req))
    return reply->indoubt;
  return {};
}

transport::ReplicaProbe Cluster::probe_replica(std::size_t i) {
  transport::ReplicaProbe probe;
  if (!remote()) {
    dtm::Server& server = *servers_[i];
    probe.open_leases = server.open_lease_count();
    probe.protected_keys = server.store().protected_count();
    probe.wrong_group = server.stats().wrong_group.load();
    probe.indoubt = server.indoubt_count();
    probe.open_prepares = server.open_prepares().size();
    return probe;
  }
  transport::ControlRequest req;
  req.op = transport::ControlOp::kProbe;
  if (const auto reply = tcp().try_control(static_cast<net::NodeId>(i), req))
    probe = reply->probe;
  return probe;
}

void Cluster::roll_contention_windows() {
  if (!remote()) {
    for (auto& server : servers_) server->roll_contention_window();
    return;
  }
  transport::ControlRequest req;
  req.op = transport::ControlOp::kRollWindows;
  for (std::size_t i = 0; i < total_nodes_; ++i)
    tcp().try_control(static_cast<net::NodeId>(i), req);
}

std::vector<std::uint64_t> Cluster::class_levels(
    const std::vector<store::ClassId>& classes) {
  std::vector<std::uint64_t> levels(classes.size(), 0);
  if (!remote()) {
    for (auto& server : servers_) {
      const auto server_levels = server->contention().class_levels(classes);
      for (std::size_t i = 0; i < levels.size(); ++i)
        levels[i] = std::max(levels[i], server_levels[i]);
    }
    return levels;
  }
  transport::ControlRequest req;
  req.op = transport::ControlOp::kClassLevels;
  req.classes = classes;
  for (std::size_t i = 0; i < total_nodes_; ++i) {
    const auto reply = tcp().try_control(static_cast<net::NodeId>(i), req);
    if (!reply) continue;
    for (std::size_t c = 0; c < levels.size() && c < reply->levels.size(); ++c)
      levels[c] = std::max(levels[c], reply->levels[c]);
  }
  return levels;
}

void Cluster::crash_node(net::NodeId id, bool lose_disk) {
  if (remote()) {
    // Socket-layer crash: the replica suspends its data plane (listener
    // refuses data hellos, live data connections die) and sheds its
    // group-commit buffer — then the client side also marks it down so
    // calls fail fast instead of burning their deadlines.
    transport::ControlRequest req;
    req.op = transport::ControlOp::kCrash;
    req.lose_disk = lose_disk;
    tcp().control(id, req);
    transport_->set_node_down(id, true);
    return;
  }
  network_.set_node_down(id, true);
  const auto i = static_cast<std::size_t>(id);
  if (i < persistence_.size() && persistence_[i]) {
    // What sat in the group-commit buffer never reached the disk.
    persistence_[i]->drop_unflushed();
    if (lose_disk) persistence_[i]->wipe();
  }
}

void Cluster::checkpoint_node(std::size_t i) {
  if (remote()) {
    if (config_.durability.mode != DurabilityMode::kWal) return;
    transport::ControlRequest req;
    req.op = transport::ControlOp::kCheckpoint;
    tcp().try_control(static_cast<net::NodeId>(i), req);
    return;
  }
  if (i >= persistence_.size() || !persistence_[i]) return;
  dtm::Server* server = servers_[i].get();
  persistence_[i]->write_snapshot([server] {
    return dtm::SnapshotData{server->store().snapshot(),
                             server->open_prepares()};
  });
}

void Cluster::checkpoint_all() {
  if (remote()) {
    for (std::size_t i = 0; i < total_nodes_; ++i) checkpoint_node(i);
    return;
  }
  for (std::size_t i = 0; i < persistence_.size(); ++i) checkpoint_node(i);
}

std::size_t Cluster::restart_node(net::NodeId id, CatchUpScope scope) {
  if (id < 0 || static_cast<std::size_t>(id) >= total_nodes_)
    throw std::invalid_argument("Cluster::restart_node: unknown server id");
  if (remote()) return restart_remote_node(id, scope);
  dtm::Server& joiner = *servers_[static_cast<std::size_t>(id)];

  const std::uint64_t start_ns = now_ns();
  wal::ReplicaPersistence* wal = persistence(static_cast<std::size_t>(id));
  if (wal != nullptr) {
    // Disk-faithful restart: the in-process "crash" left the replica's
    // memory intact, so first shed it — what a real reboot would keep is
    // exactly what recover() reads back from the log and snapshot.
    joiner.reset_volatile_state();
    auto recovered = wal->recover();
    joiner.install_recovered(recovered.objects, recovered.open_prepares);
  }

  // Pick the peers to sync from — always within the joiner's own quorum
  // group: the groups' keyspaces are disjoint, so a foreign peer holds
  // nothing this replica should serve (and syncing from one would install
  // keys the group does not own).  A read quorum of the group suffices:
  // every committed write reached a write quorum, and read and write
  // quorums intersect, so the newest version of every key is present among
  // the sources.
  const std::vector<net::NodeId> sources = catchup_sources(id, scope);

  // Gather the newest version of every key across the sources, then install
  // whatever is newer than the local replica.  apply() is version-guarded,
  // so racing against live commit traffic can only lose to newer versions.
  std::unordered_map<store::ObjectKey, store::VersionedRecord,
                     store::ObjectKeyHash>
      newest;
  for (const net::NodeId src : sources) {
    if (network_.node_down(src)) continue;
    for (auto& [key, rec] : servers_[static_cast<std::size_t>(src)]
                                ->store()
                                .snapshot()) {
      auto [it, inserted] = newest.try_emplace(key, rec);
      if (!inserted && rec.version > it->second.version) it->second = rec;
    }
  }
  std::size_t updated = 0;
  for (const auto& [key, rec] : newest) {
    const auto local = joiner.store().version_of(key);
    if (local.has_value() && *local >= rec.version) continue;
    joiner.store().apply(key, rec.value, rec.version, store::kNoTx);
    ++updated;
  }

  network_.set_node_down(id, false);

  obs::Observability* obs = config_.stub.obs;
  if (obs != nullptr) {
    obs->recovery_catchup_keys.add(updated);
    if (wal != nullptr) {
      // For a durable node the peer sync was a delta pass on top of log
      // replay; `updated` is what the log could not cover.
      obs->recovery_delta_keys.add(updated);
      obs->recovery_time_ns.observe(now_ns() - start_ns);
    }
  }
  if (wal != nullptr) {
    // Make the recovered + caught-up state durable in one snapshot; this
    // also compacts the log the replay just consumed.
    checkpoint_node(static_cast<std::size_t>(id));
  }
  return updated;
}

std::vector<net::NodeId> Cluster::catchup_sources(net::NodeId id,
                                                  CatchUpScope scope) {
  const std::size_t joiner_group = group_of(id);
  const std::vector<net::NodeId> peers = group_members(joiner_group);
  std::vector<net::NodeId> sources;
  if (scope == CatchUpScope::kAllReplicas) {
    for (const net::NodeId peer : peers)
      if (peer != id) sources.push_back(peer);
  } else {
    Rng rng(0xca7c4b00ULL ^ (static_cast<std::uint64_t>(id) << 32) ^
            catchup_seq_++);
    sources = quorums_[joiner_group]->read_quorum(rng);
    sources.erase(std::remove(sources.begin(), sources.end(), id),
                  sources.end());
    if (sources.empty())
      for (const net::NodeId peer : peers)
        if (peer != id) sources.push_back(peer);
  }
  return sources;
}

std::size_t Cluster::restart_remote_node(net::NodeId id, CatchUpScope scope) {
  const std::uint64_t start_ns = now_ns();
  const bool durable = config_.durability.mode == DurabilityMode::kWal;

  // Disk-faithful reboot, remotely: the replica sheds its volatile state
  // and recovers from its own log/snapshot (a no-op for volatile nodes,
  // which simply kept their store — the "offline node rejoins" case).
  transport::ControlRequest restart;
  restart.op = transport::ControlOp::kRestart;
  tcp().control(id, restart);

  // The joiner's post-recovery versions, so the peer sync ships a delta.
  std::unordered_map<store::ObjectKey, store::Version, store::ObjectKeyHash>
      local;
  for (auto& [key, rec] : store_snapshot(static_cast<std::size_t>(id)))
    local[key] = rec.version;

  // Same source-selection policy as the sim path, same intersection-property
  // argument; dumps ride the control plane so a data-plane partition cannot
  // starve recovery.
  std::unordered_map<store::ObjectKey, store::VersionedRecord,
                     store::ObjectKeyHash>
      newest;
  for (const net::NodeId src : catchup_sources(id, scope)) {
    if (transport_->node_down(src)) continue;
    transport::ControlRequest dump;
    dump.op = transport::ControlOp::kDump;
    const auto reply = tcp().try_control(src, dump);
    if (!reply) continue;
    for (auto& entry : reply->entries) {
      store::VersionedRecord rec{std::move(entry.value), entry.version};
      auto [it, inserted] = newest.try_emplace(entry.key, rec);
      if (!inserted && rec.version > it->second.version)
        it->second = std::move(rec);
    }
  }

  transport::ControlRequest push;
  push.op = transport::ControlOp::kSeed;
  for (auto& [key, rec] : newest) {
    const auto it = local.find(key);
    if (it != local.end() && it->second >= rec.version) continue;
    push.entries.push_back({key, rec.value, rec.version});
  }
  const std::size_t updated = push.entries.size();
  if (!push.entries.empty()) tcp().control(id, push);

  // Reopen the data plane server-side, then client-side.
  transport::ControlRequest resume;
  resume.op = transport::ControlOp::kResume;
  tcp().control(id, resume);
  transport_->set_node_down(id, false);

  obs::Observability* obs = config_.stub.obs;
  if (obs != nullptr) {
    obs->recovery_catchup_keys.add(updated);
    if (durable) {
      obs->recovery_delta_keys.add(updated);
      obs->recovery_time_ns.observe(now_ns() - start_ns);
    }
  }
  if (durable) checkpoint_node(static_cast<std::size_t>(id));
  return updated;
}

}  // namespace acn::harness
