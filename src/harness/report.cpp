#include "src/harness/report.hpp"

#include <cstdio>

namespace acn::harness {

bool write_csv(const std::string& path, const std::vector<RunResult>& results,
               const DriverConfig& config) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    std::fprintf(stderr, "write_csv: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "protocol,interval,t_seconds,throughput_tps,abort_rate_per_s\n");
  const double seconds = std::chrono::duration<double>(config.interval).count();
  for (const auto& result : results) {
    for (std::size_t k = 0; k < result.throughput.size(); ++k) {
      const double abort_rate =
          k < result.abort_rate.size() ? result.abort_rate[k] : 0.0;
      std::fprintf(file, "%s,%zu,%.3f,%.1f,%.1f\n",
                   protocol_name(result.protocol), k,
                   static_cast<double>(k + 1) * seconds, result.throughput[k],
                   abort_rate);
    }
  }
  std::fclose(file);
  return true;
}

void print_metrics(const char* label, const obs::Snapshot& snapshot) {
  if (snapshot.empty()) return;
  const auto c = [&](const char* name) { return snapshot.counter(name); };
  std::printf("%-8s obs: commits=%llu aborts{full=%llu partial=%llu}", label,
              static_cast<unsigned long long>(c("tx.commit")),
              static_cast<unsigned long long>(c("tx.abort.full")),
              static_cast<unsigned long long>(c("tx.abort.partial")));
  std::printf(
      " full{val=%llu busy=%llu unavail=%llu}"
      " partial{val=%llu busy=%llu unavail=%llu}\n",
      static_cast<unsigned long long>(c("tx.abort.full.validation")),
      static_cast<unsigned long long>(c("tx.abort.full.busy")),
      static_cast<unsigned long long>(c("tx.abort.full.unavailable")),
      static_cast<unsigned long long>(c("tx.abort.partial.validation")),
      static_cast<unsigned long long>(c("tx.abort.partial.busy")),
      static_cast<unsigned long long>(c("tx.abort.partial.unavailable")));
  std::printf("%-8s obs: rpc{read=%llu validate=%llu prepare=%llu "
              "commit=%llu abort=%llu contention=%llu}",
              "",
              static_cast<unsigned long long>(c("rpc.read")),
              static_cast<unsigned long long>(c("rpc.validate")),
              static_cast<unsigned long long>(c("rpc.prepare")),
              static_cast<unsigned long long>(c("rpc.commit")),
              static_cast<unsigned long long>(c("rpc.abort")),
              static_cast<unsigned long long>(c("rpc.contention")));
  if (const obs::HistogramData* read = snapshot.histogram("rpc.read_ns"))
    if (read->count() > 0)
      std::printf(" read p50~%.1fus p99~%.1fus",
                  static_cast<double>(read->percentile(0.5)) / 1000.0,
                  static_cast<double>(read->percentile(0.99)) / 1000.0);
  if (const obs::HistogramData* prep = snapshot.histogram("rpc.prepare_ns"))
    if (prep->count() > 0)
      std::printf(" prepare p50~%.1fus",
                  static_cast<double>(prep->percentile(0.5)) / 1000.0);
  std::printf("\n");
  if (c("transport.bytes.sent") + c("transport.bytes.recv") > 0)
    std::printf("%-8s obs: transport{sent=%llu recv=%llu reconnects=%llu "
                "corrupt=%llu}\n",
                "",
                static_cast<unsigned long long>(c("transport.bytes.sent")),
                static_cast<unsigned long long>(c("transport.bytes.recv")),
                static_cast<unsigned long long>(c("transport.reconnects")),
                static_cast<unsigned long long>(c("transport.frames.corrupt")));
  if (c("acn.adaptations") > 0)
    std::printf("%-8s obs: acn{adaptations=%llu recompositions=%llu "
                "monitor_refreshes=%llu monitor_observes=%llu}\n",
                "",
                static_cast<unsigned long long>(c("acn.adaptations")),
                static_cast<unsigned long long>(c("acn.recompositions")),
                static_cast<unsigned long long>(c("acn.monitor.refresh")),
                static_cast<unsigned long long>(c("acn.monitor.observe")));
  if (c("queue.epoch.planned") > 0) {
    std::printf("%-8s obs: queue{epochs=%llu commits=%llu retries=%llu "
                "spec_reads=%llu mispredicts=%llu demoted=%llu}",
                "",
                static_cast<unsigned long long>(c("queue.epoch.planned")),
                static_cast<unsigned long long>(c("queue.epoch.commits")),
                static_cast<unsigned long long>(c("queue.epoch.retries")),
                static_cast<unsigned long long>(c("queue.spec.reads")),
                static_cast<unsigned long long>(c("queue.spec.mispredict")),
                static_cast<unsigned long long>(c("queue.spec.demoted")));
    if (const obs::HistogramData* size = snapshot.histogram("queue.epoch.size"))
      if (size->count() > 0)
        std::printf(" epoch_size p50~%llu",
                    static_cast<unsigned long long>(size->percentile(0.5)));
    std::printf("\n");
  }
}

bool write_metrics_json(const std::string& path,
                        const std::vector<RunResult>& results) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    std::fprintf(stderr, "write_metrics_json: cannot open %s\n", path.c_str());
    return false;
  }
  std::fputc('{', file);
  bool first = true;
  for (const auto& result : results) {
    if (result.metrics.empty()) continue;
    if (!first) std::fputc(',', file);
    first = false;
    std::fprintf(file, "\"%s\":%s", protocol_name(result.protocol),
                 result.metrics.to_json().c_str());
  }
  std::fputs("}\n", file);
  std::fclose(file);
  return true;
}

bool write_metrics_csv(const std::string& path,
                       const std::vector<RunResult>& results) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    std::fprintf(stderr, "write_metrics_csv: cannot open %s\n", path.c_str());
    return false;
  }
  std::fputs("protocol,name,kind,stat,value\n", file);
  for (const auto& result : results) {
    const std::string csv = result.metrics.to_csv();
    // Prefix every data row (to_csv emits its own header line first).
    std::size_t line_start = csv.find('\n') + 1;
    while (line_start < csv.size()) {
      std::size_t line_end = csv.find('\n', line_start);
      if (line_end == std::string::npos) line_end = csv.size();
      std::fprintf(file, "%s,%.*s\n", protocol_name(result.protocol),
                   static_cast<int>(line_end - line_start),
                   csv.c_str() + line_start);
      line_start = line_end + 1;
    }
  }
  std::fclose(file);
  return true;
}

}  // namespace acn::harness

namespace acn::harness {

double improvement_pct(const RunResult& a, const RunResult& b,
                       std::size_t from_interval) {
  const double tb = b.mean_throughput(from_interval);
  if (tb <= 0.0) return 0.0;
  return (a.mean_throughput(from_interval) - tb) / tb * 100.0;
}

void print_figure(const std::string& title,
                  const std::vector<RunResult>& results,
                  const DriverConfig& config) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("clients=%zu intervals=%zu interval=%lldms\n", config.n_clients,
              config.intervals,
              static_cast<long long>(config.interval.count()));

  std::printf("%8s", "t(s)");
  for (const auto& result : results)
    std::printf("%12s", protocol_name(result.protocol));
  std::printf("  %s\n", "committed tx/s");

  const double seconds = std::chrono::duration<double>(config.interval).count();
  for (std::size_t k = 0; k < config.intervals; ++k) {
    std::printf("%8.2f", static_cast<double>(k + 1) * seconds);
    for (const auto& result : results)
      std::printf("%12.1f", k < result.throughput.size() ? result.throughput[k]
                                                         : 0.0);
    for (const auto& [at, new_phase] : config.phase_changes)
      if (at == k) std::printf("   <- phase %d", new_phase);
    std::printf("\n");
  }

  for (const auto& result : results) {
    const auto& s = result.stats;
    std::printf(
        "%-8s commits=%llu full_aborts=%llu partial_aborts=%llu "
        "blocks=%llu ops=%llu",
        protocol_name(result.protocol),
        static_cast<unsigned long long>(s.commits),
        static_cast<unsigned long long>(s.full_aborts),
        static_cast<unsigned long long>(s.partial_aborts),
        static_cast<unsigned long long>(s.blocks_executed),
        static_cast<unsigned long long>(s.ops_executed));
    std::printf(" | at_commit=%llu in_exec=%llu busy=%llu",
                static_cast<unsigned long long>(s.aborts_at_commit),
                static_cast<unsigned long long>(s.aborts_in_execution),
                static_cast<unsigned long long>(s.aborts_busy));
    if (result.protocol == Protocol::kAcn)
      std::printf(" adaptations=%llu recompositions=%llu",
                  static_cast<unsigned long long>(result.adaptations),
                  static_cast<unsigned long long>(result.recompositions));
    std::printf(" lat_p50~%.1fus lat_p99~%.1fus",
                static_cast<double>(result.latency_p50_ns) / 1000.0,
                static_cast<double>(result.latency_p99_ns) / 1000.0);
    std::printf("\n");
    if (s.partial_aborts > 0) {
      std::size_t last = 0;
      for (std::size_t i = 0; i < ExecStats::kPositionSlots; ++i)
        if (s.partials_at_position[i] > 0) last = i;
      std::printf("%-8s partials by block position:", "");
      for (std::size_t i = 0; i <= last; ++i)
        std::printf(" %llu",
                    static_cast<unsigned long long>(s.partials_at_position[i]));
      std::printf("\n");
    }
    print_metrics(protocol_name(result.protocol), result.metrics);
  }

  // The paper reports improvement after QR-ACN "kicks in" (first window).
  if (results.size() == 3 && config.intervals >= 2) {
    const std::size_t from = 1;
    std::printf("post-adaptation (t>=%g s): QR-ACN vs QR-DTM %+.1f%%, "
                "QR-ACN vs QR-CN %+.1f%%\n",
                static_cast<double>(from + 1) * seconds,
                improvement_pct(results[2], results[0], from),
                improvement_pct(results[2], results[1], from));
  }
}

}  // namespace acn::harness
