// Benchmark driver: reproduces the paper's measurement methodology.
//
// A run executes one workload under one protocol (QR-DTM flat, QR-CN manual
// closed nesting, or QR-ACN) with `n_clients` client threads for
// `intervals` fixed-length intervals, recording committed transactions per
// interval — the series every panel of Figure 4 plots.  The driver also
//   * switches the workload phase at scheduled intervals (the contention
//     changes of the Vacation/Bank experiments),
//   * rolls the servers' contention windows at each interval boundary, and
//   * for QR-ACN, runs the Algorithm Module tick right after the roll, so
//     adaptation consumes the window that just closed — mirroring the
//     paper's "every 10 seconds" periodic re-composition.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/acn/executor.hpp"
#include "src/harness/cluster.hpp"
#include "src/obs/obs.hpp"
#include "src/sched/scheduler.hpp"
#include "src/workloads/workload.hpp"

namespace acn::harness {

/// The protocol enum lives with the executor now (acn::Protocol); these
/// aliases keep harness call sites source-compatible.
using Protocol = acn::Protocol;
using acn::protocol_name;

/// One client's transaction-submission endpoint — the surface the driver
/// runs workloads through.  The default implementation wraps a group-0
/// QuorumStub + Executor (the pre-sharding path); shard::Client implements
/// the same interface over a sharded cluster, routing each transaction by
/// its predicted footprint.  The factory inversion keeps the layering
/// acyclic (src/shard links the harness, so the harness cannot name
/// shard::Client — same pattern as acn::SchedulerGate / dtm::DurabilitySink).
class Submitter {
 public:
  virtual ~Submitter() = default;

  /// Execute one transaction to commit (retrying internally), with the
  /// Executor::run contract: throws std::invalid_argument on bad options
  /// and the last dtm::TxAbort when retries are exhausted.
  virtual void run(Protocol protocol, const acn::RunOptions& options,
                   const std::vector<acn::ir::Record>& params,
                   acn::ExecStats& stats) = 0;
};

/// Builds one Submitter per client thread: (cluster, client index, executor
/// config, seed).  The bench layer installs shard::ClientFleet::factory()
/// here; null means the default raw-Executor submitter.
using SubmitterFactory = std::function<std::unique_ptr<Submitter>(
    Cluster&, std::size_t, const acn::ExecutorConfig&, std::uint64_t)>;

struct DriverConfig {
  std::size_t n_clients = 8;
  std::size_t intervals = 8;
  std::chrono::milliseconds interval{250};
  /// phase_changes[i] = {interval index, new phase}.
  std::vector<std::pair<std::size_t, int>> phase_changes;
  std::uint64_t seed = 1;
  AlgorithmConfig algorithm;
  ExecutorConfig executor;
  bool check_invariants = true;
  /// QR-ACN contention feed: false = explicit quorum query per adaptation
  /// tick; true = levels piggybacked on every read RPC (Section V-C2).
  bool piggyback_contention = false;
  /// Batched read path: fetch each Block's independent remote reads in one
  /// read_many quorum round (kManualCN/kAcn; other protocols ignore it).
  bool batch_reads = false;
  /// With batch_reads: speculatively prefetch the next Block's independent
  /// reads in the same round (discarded on partial abort).
  bool prefetch = false;
  /// Pause between a client's transactions (emulates more client machines
  /// than threads, or TPC-C keying/think time).  Zero = closed loop.
  std::chrono::nanoseconds think_time{0};
  /// Contention-aware scheduler (src/sched).  With a policy other than
  /// kNone the driver builds one TxScheduler shared by all clients, gates
  /// every Executor::run through it, and feeds it the cluster's contention
  /// snapshot at each interval boundary.
  sched::SchedulerConfig scheduler;
  /// Observability bundle (owned by the caller, typically the bench main).
  /// When set, the driver wires it through every layer — executor, stub,
  /// monitor, controllers — labels the trace with one pid per protocol run,
  /// and returns the per-run metrics delta in RunResult::metrics.
  obs::Observability* obs = nullptr;
  /// Per-client submission endpoint factory.  Null = the default raw
  /// Executor over a group-0 stub (the unsharded path); the bench layer
  /// installs shard::ClientFleet::factory() to route through the
  /// ShardRouter instead.
  SubmitterFactory make_submitter;
  /// Keyspace partition function for per-group hotness reporting (bind
  /// shard::ShardMap::shard_of here).  With the scheduler on, the driver
  /// buckets TxScheduler::hot_keys() by it at every interval boundary and
  /// reports the peak counts in RunResult::hot_keys_by_group (plus the
  /// sched.hot_keys gauge as before).  Null = no per-group breakdown.
  std::function<std::uint32_t(const store::ObjectKey&)> shard_of;
};

struct RunResult {
  Protocol protocol = Protocol::kFlat;
  std::vector<double> throughput;    // committed tx/s per interval
  std::vector<double> abort_rate;    // aborts (full+partial) per second
  ExecStats stats;                   // aggregated over clients
  std::uint64_t adaptations = 0;     // ACN only: Algorithm Module ticks
  std::uint64_t recompositions = 0;  // ACN only: ticks that changed the plan
  // End-to-end transaction latency (first attempt to commit), bucketed.
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  /// Per-run metrics delta (empty unless DriverConfig::obs was set).
  obs::Snapshot metrics;
  /// Peak per-interval count of scheduler hot keys homed on each quorum
  /// group (empty unless both DriverConfig::shard_of and the scheduler were
  /// set).  A skewed vector under uniform load means the placement, not
  /// the workload, concentrates contention.
  std::vector<std::uint64_t> hot_keys_by_group;

  double mean_throughput(std::size_t from_interval = 0) const;
};

/// Run `workload` on a fresh view of `cluster` under `protocol`.
/// The cluster must already be seeded (see seed_workload).
RunResult run(Cluster& cluster, const workloads::Workload& workload,
              Protocol protocol, const DriverConfig& config);

/// Seed every workload object on every replica, in either transport mode
/// (fully-replicated path; shard::ClientFleet::seed is the owner-scoped
/// sharded equivalent).
void seed_workload(Cluster& cluster, workloads::Workload& workload);

/// Convenience: build a cluster per protocol, seed it, run, and return the
/// three results in order {kFlat, kManualCN, kAcn}.
std::vector<RunResult> run_all_protocols(
    const ClusterConfig& cluster_config,
    const std::function<std::unique_ptr<workloads::Workload>()>& make_workload,
    const DriverConfig& config);

}  // namespace acn::harness
