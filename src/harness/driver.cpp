#include "src/harness/driver.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "src/common/clock.hpp"
#include "src/common/stats.hpp"

namespace acn::harness {
namespace {

/// The default Submitter: one group-0 stub + Executor, exactly the
/// pre-sharding client. Owns the stub so the pair's lifetimes stay tied.
class ExecutorSubmitter final : public Submitter {
 public:
  ExecutorSubmitter(dtm::QuorumStub stub, const acn::ExecutorConfig& config,
                    std::uint64_t seed)
      : stub_(std::move(stub)), executor_(stub_, config, seed) {}

  void run(Protocol protocol, const acn::RunOptions& options,
           const std::vector<acn::ir::Record>& params,
           acn::ExecStats& stats) override {
    executor_.run(protocol, options, params, stats);
  }

 private:
  dtm::QuorumStub stub_;
  Executor executor_;
};

}  // namespace

double RunResult::mean_throughput(std::size_t from_interval) const {
  if (from_interval >= throughput.size()) return 0.0;
  double total = 0.0;
  for (std::size_t i = from_interval; i < throughput.size(); ++i)
    total += throughput[i];
  return total / static_cast<double>(throughput.size() - from_interval);
}

RunResult run(Cluster& cluster, const workloads::Workload& workload,
              Protocol protocol, const DriverConfig& config) {
  const auto& profiles = workload.profiles();
  if (profiles.empty())
    throw std::invalid_argument("run: workload has no profiles");

  obs::Observability* const obs = config.obs;
  obs::Snapshot metrics_before;
  // Wire-level baseline: the transport accumulates its own atomic counters
  // (sim approximations or real TCP socket bytes); the run's delta is
  // folded into the obs registry at the end so both transports emit the
  // same transport.* metrics.
  const net::TransportCounters& wire = cluster.transport().counters();
  const std::uint64_t wire_sent0 = wire.bytes_sent.load();
  const std::uint64_t wire_recv0 = wire.bytes_recv.load();
  const std::uint64_t wire_reconnects0 = wire.reconnects.load();
  const std::uint64_t wire_corrupt0 = wire.frames_corrupt.load();
  if (obs) {
    metrics_before = obs->metrics.snapshot();
    cluster.set_obs(obs);
    // One trace "process" per protocol run: lanes group by protocol in the
    // Perfetto UI even when several runs share the tracer.
    obs->tracer.set_process(static_cast<std::int32_t>(protocol) + 1,
                            protocol_name(protocol));
  }

  // QR-ACN machinery: one controller per transaction program, one monitor
  // over the union of touched classes, refreshed through an admin stub.
  auto contention_model = default_contention_model();
  std::vector<std::unique_ptr<AdaptiveController>> controllers;
  std::unique_ptr<ContentionMonitor> monitor;
  std::unique_ptr<dtm::QuorumStub> admin_stub;
  if (protocol == Protocol::kAcn) {
    std::vector<ir::ClassId> classes;
    for (const auto& profile : profiles) {
      controllers.push_back(std::make_unique<AdaptiveController>(
          *profile.program, config.algorithm, contention_model));
      const auto touched = controllers.back()->touched_classes();
      classes.insert(classes.end(), touched.begin(), touched.end());
    }
    monitor = std::make_unique<ContentionMonitor>(std::move(classes));
    admin_stub = std::make_unique<dtm::QuorumStub>(
        cluster.make_stub(/*client_ordinal=*/1'000'000, config.seed ^ 0xadaULL));
    if (obs) {
      monitor->set_obs(obs);
      for (auto& controller : controllers) controller->set_obs(obs);
    }
  }

  // Contention-aware scheduler, shared by every client thread.  Its
  // class-hot refinement watches every class any profile touches.
  std::unique_ptr<sched::TxScheduler> scheduler;
  std::vector<ir::ClassId> sched_classes;
  if (config.scheduler.policy != sched::SchedulerPolicy::kNone) {
    scheduler = std::make_unique<sched::TxScheduler>(
        config.scheduler, config.n_clients, config.seed, obs);
    std::unordered_set<ir::ClassId> classes;
    for (const auto& profile : profiles)
      for (const auto& op : profile.program->ops)
        if (op.is_remote()) classes.insert(op.remote.cls);
    sched_classes.assign(classes.begin(), classes.end());
  }

  std::atomic<int> phase{0};
  // Peak per-interval hot-key count homed on each group (shard_of + sched).
  std::vector<std::uint64_t> hot_keys_by_group;
  if (config.shard_of) hot_keys_by_group.assign(cluster.n_groups(), 0);
  std::atomic<std::size_t> current_interval{0};
  std::atomic<bool> stop{false};
  IntervalSeries commits(config.intervals);
  IntervalSeries aborts(config.intervals);
  LatencyHistogram latency;
  std::vector<ExecStats> thread_stats(config.n_clients);
  std::vector<std::string> thread_errors(config.n_clients);

  std::vector<std::thread> clients;
  clients.reserve(config.n_clients);
  for (std::size_t t = 0; t < config.n_clients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + t + 1);
      ExecutorConfig exec_config = config.executor;
      if (obs) {
        exec_config.obs = obs;
        obs->tracer.set_thread_name("client-" + std::to_string(t));
      }
      if (protocol == Protocol::kAcn && config.piggyback_contention)
        exec_config.piggyback_monitor = monitor.get();
      const std::uint64_t exec_seed = config.seed ^ (t << 20);
      std::unique_ptr<Submitter> submitter =
          config.make_submitter
              ? config.make_submitter(cluster, t, exec_config, exec_seed)
              : std::make_unique<ExecutorSubmitter>(
                    cluster.make_stub(static_cast<int>(t),
                                      config.seed + 0x100 + t),
                    exec_config, exec_seed);
      // One RunOptions per profile, built once: only the per-transaction
      // params vary inside the loop.
      std::vector<RunOptions> profile_options(profiles.size());
      for (std::size_t p = 0; p < profiles.size(); ++p) {
        RunOptions& options = profile_options[p];
        options.batch_reads = config.batch_reads;
        options.prefetch = config.prefetch;
        if (scheduler) options.scheduler = &scheduler->session(t);
        switch (protocol) {
          case Protocol::kFlat:
          case Protocol::kCheckpoint:
            options.program = profiles[p].program.get();
            break;
          case Protocol::kManualCN:
            options.program = profiles[p].program.get();
            options.model = &profiles[p].static_model;
            options.sequence = &profiles[p].manual_sequence;
            break;
          case Protocol::kAcn:
            options.controller = controllers[p].get();
            break;
        }
      }
      ExecStats& stats = thread_stats[t];
      std::uint64_t aborts_seen = 0;
      try {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t p = workloads::pick_profile(profiles, rng);
          const auto params = profiles[p].make_params(
              rng, phase.load(std::memory_order_relaxed));
          const Stopwatch tx_watch;
          submitter->run(protocol, profile_options[p], params, stats);
          latency.add(tx_watch.elapsed_ns());
          const std::size_t interval =
              current_interval.load(std::memory_order_relaxed);
          commits.add(interval);
          const std::uint64_t aborts_now =
              stats.full_aborts + stats.partial_aborts;
          aborts.add(interval, aborts_now - aborts_seen);
          aborts_seen = aborts_now;
          if (config.think_time.count() > 0)
            std::this_thread::sleep_for(config.think_time);
        }
      } catch (const std::exception& e) {
        thread_errors[t] = e.what();
        stop.store(true);
      }
    });
  }

  for (std::size_t k = 0; k < config.intervals && !stop.load(); ++k) {
    for (const auto& [at, new_phase] : config.phase_changes)
      if (at == k) phase.store(new_phase);
    std::this_thread::sleep_for(config.interval);
    cluster.roll_contention_windows();
    if (scheduler) {
      scheduler->note_class_levels(sched_classes,
                                   cluster.class_levels(sched_classes));
      scheduler->tick();
      if (config.shard_of) {
        std::vector<std::uint64_t> by_group(cluster.n_groups(), 0);
        for (const auto& key : scheduler->hot_keys())
          ++by_group[config.shard_of(key) % cluster.n_groups()];
        for (std::size_t g = 0; g < by_group.size(); ++g)
          hot_keys_by_group[g] = std::max(hot_keys_by_group[g], by_group[g]);
      }
    }
    if (protocol == Protocol::kAcn) {
      if (!config.piggyback_contention) monitor->refresh(*admin_stub);
      const auto raw = monitor->raw();
      for (auto& controller : controllers) controller->adapt(raw);
      if (config.piggyback_contention) monitor->reset();
    }
    current_interval.store(k + 1);
  }

  stop.store(true);
  for (auto& client : clients) client.join();

  for (const auto& error : thread_errors)
    if (!error.empty()) throw std::runtime_error("client thread failed: " + error);

  RunResult result;
  result.protocol = protocol;
  const double seconds =
      std::chrono::duration<double>(config.interval).count();
  result.throughput.reserve(config.intervals);
  result.abort_rate.reserve(config.intervals);
  for (std::size_t k = 0; k < config.intervals; ++k) {
    result.throughput.push_back(static_cast<double>(commits.at(k)) / seconds);
    result.abort_rate.push_back(static_cast<double>(aborts.at(k)) / seconds);
  }
  for (const auto& stats : thread_stats) result.stats.merge(stats);
  for (const auto& controller : controllers) {
    result.adaptations += controller->adaptations();
    result.recompositions += controller->recompositions();
  }
  result.latency_p50_ns = latency.percentile(0.5);
  result.latency_p99_ns = latency.percentile(0.99);
  if (scheduler && config.shard_of)
    result.hot_keys_by_group = std::move(hot_keys_by_group);
  if (obs) {
    obs->transport_bytes_sent.add(wire.bytes_sent.load() - wire_sent0);
    obs->transport_bytes_recv.add(wire.bytes_recv.load() - wire_recv0);
    obs->transport_reconnects.add(wire.reconnects.load() - wire_reconnects0);
    obs->transport_frames_corrupt.add(wire.frames_corrupt.load() -
                                      wire_corrupt0);
    result.metrics = obs->metrics.snapshot().since(metrics_before);
  }

  if (config.check_invariants) {
    if (cluster.remote()) {
      // Remote replicas: reconstruct their committed state locally from
      // control-plane dumps so the workload's checks run unchanged.
      const StateMirror m = cluster.mirror();
      workload.check_invariants(m.servers);
    } else {
      workload.check_invariants(cluster.servers());
    }
  }
  return result;
}

void seed_workload(Cluster& cluster, workloads::Workload& workload) {
  workload.seed_objects(
      [&](const store::ObjectKey& key, const store::Record& value) {
        cluster.seed_object(key, value);
      });
  cluster.flush_seeds();
}

std::vector<RunResult> run_all_protocols(
    const ClusterConfig& cluster_config,
    const std::function<std::unique_ptr<workloads::Workload>()>& make_workload,
    const DriverConfig& config) {
  std::vector<RunResult> results;
  for (const Protocol protocol :
       {Protocol::kFlat, Protocol::kManualCN, Protocol::kAcn}) {
    Cluster cluster(cluster_config);
    auto workload = make_workload();
    seed_workload(cluster, *workload);
    results.push_back(run(cluster, *workload, protocol, config));
  }
  return results;
}

}  // namespace acn::harness
