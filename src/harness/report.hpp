// Figure-style result reporting.
#pragma once

#include <string>
#include <vector>

#include "src/harness/driver.hpp"

namespace acn::harness {

/// Print the per-interval throughput table (one row per interval, one
/// column per protocol) followed by the improvement summary the paper
/// quotes: QR-ACN vs QR-DTM and vs QR-CN, over the post-adaptation
/// intervals.  `phase_changes` are echoed as row markers.
void print_figure(const std::string& title,
                  const std::vector<RunResult>& results,
                  const DriverConfig& config);

/// Improvement of `a` over `b` in percent, measured on mean throughput from
/// `from_interval` on.
double improvement_pct(const RunResult& a, const RunResult& b,
                       std::size_t from_interval);

/// Write the per-interval series as CSV:
/// protocol,interval,t_seconds,throughput_tps,abort_rate_per_s
/// Returns false (with a message on stderr) when the file cannot be opened.
bool write_csv(const std::string& path, const std::vector<RunResult>& results,
               const DriverConfig& config);

/// Print a per-run metrics snapshot: abort counters split partial vs full
/// with the per-reason breakdown, RPC phase counts with p50/p99 latency,
/// and the ACN adaptation counters.  No-op on an empty snapshot.
void print_metrics(const char* label, const obs::Snapshot& snapshot);

/// Write the per-protocol metrics snapshots as one JSON object keyed by
/// protocol name ({"QR-DTM": {...}, ...}).  Protocols whose run carried no
/// metrics are skipped.  Returns false (with a message on stderr) when the
/// file cannot be opened.
bool write_metrics_json(const std::string& path,
                        const std::vector<RunResult>& results);

/// Append each protocol's metrics snapshot to the harness CSV convention:
/// protocol,name,kind,stat,value rows.
bool write_metrics_csv(const std::string& path,
                       const std::vector<RunResult>& results);

}  // namespace acn::harness
