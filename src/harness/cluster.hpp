// Simulated QR-DTM cluster: N server replicas behind a latency-injecting
// network, arranged in a logical ternary tree with tree quorums.
//
// This is the substitute for the paper's physical testbed (up to 30 AMD
// Opteron nodes on 1 Gbps Ethernet): server nodes are in-process replicas,
// clients are threads, and every RPC pays a configurable simulated latency,
// so remote re-execution cost — the quantity partial rollback saves —
// dominates exactly as it does on real hardware.
//
// With n_groups > 1 the cluster is horizontally sharded: each group is an
// independent quorum tree over its own disjoint replica slice, all behind
// the same network (src/shard routes transactions to groups and runs
// cross-shard 2PC when a footprint spans more than one).

#pragma once

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/dtm/quorum_stub.hpp"
#include "src/dtm/server.hpp"
#include "src/net/transport.hpp"
#include "src/quorum/level_quorum.hpp"
#include "src/quorum/offset_quorum.hpp"
#include "src/quorum/rowa_quorum.hpp"
#include "src/quorum/tree_quorum.hpp"
#include "src/wal/persistence.hpp"

namespace acn::transport {
class TcpTransport;
class ProcessFleet;
struct ReplicaProbe;
}  // namespace acn::transport

namespace acn::harness {

/// Whether replicas persist their state (src/wal) or stay volatile.
enum class DurabilityMode { kNone, kWal };

struct DurabilityConfig {
  DurabilityMode mode = DurabilityMode::kNone;
  /// Root data directory; node i keeps its log and snapshots under
  /// `<data_dir>/node-<i>`.  A Cluster built over existing directories
  /// recovers each replica from disk before serving.
  std::string data_dir = "wal-data";
  /// Group-commit window (see wal::WalConfig::flush_interval_ns).
  std::int64_t flush_interval_ns = 2'000'000;
  /// Snapshot + compact cadence (see wal::WalConfig::snapshot_every_bytes).
  std::uint64_t snapshot_every_bytes = std::uint64_t{1} << 20;
  bool fsync = true;
};

enum class QuorumPolicy {
  kTree,           // Agrawal-El Abbadi recursive tree quorums (default)
  kLevelMajority,  // the paper's level-majority description
  kRowa,           // read-one / write-all (comparison extreme)
};

/// How the cluster's replicas are reached.
enum class TransportMode {
  /// In-process replicas behind the deterministic simulated network
  /// (default — tests and fault matrices stay reproducible).
  kSim,
  /// Each replica is a separate cluster_main OS process on real sockets;
  /// the harness talks to the fleet through transport::TcpTransport.
  kTcp,
};

/// Multi-process deployment knobs (TransportMode::kTcp only).
struct TcpClusterConfig {
  /// cluster_main binary; empty = $ACN_CLUSTER_MAIN or the build-tree
  /// location next to the running executable.
  std::string binary;
  std::string host = "127.0.0.1";
  /// Per-call response deadline (maps to kDropped, which QuorumStub's
  /// retry ladder already handles).
  std::chrono::milliseconds call_timeout{250};
  /// Worker threads per replica process.
  std::size_t server_workers = 2;
  /// Per-process stderr logs and the generated topology file land here.
  std::string log_dir = "cluster-logs";
  /// How long a spawned replica may take to report ACN_READY.
  std::chrono::milliseconds ready_timeout{10000};
};

struct ClusterConfig {
  /// Replicas *per quorum group* (the whole cluster when n_groups == 1).
  std::size_t n_servers = 10;
  /// Quorum groups (shards).  Each group is an independent quorum system —
  /// its own tree over its own disjoint replica set — owning a disjoint
  /// slice of the keyspace (src/shard assigns keys to groups).  Group g
  /// occupies global node ids [g*n_servers, (g+1)*n_servers); all groups
  /// share one simulated network, so partitions and crashes address global
  /// ids as before.  1 = the classic unsharded cluster.
  std::size_t n_groups = 1;
  int tree_arity = 3;
  QuorumPolicy quorum_policy = QuorumPolicy::kTree;
  /// Probability read-quorum selection stops at a subtree root (tree
  /// policy only).
  double root_read_bias = 0.5;
  /// One-way base latency per message; 0 disables sleeping (unit tests).
  std::chrono::nanoseconds base_latency{std::chrono::microseconds{25}};
  std::chrono::nanoseconds per_kilobyte{std::chrono::microseconds{2}};
  /// Contention window; 0 means the harness rolls windows manually at
  /// interval boundaries (negative widths are rejected by the tracker).
  std::int64_t contention_window_ns = 0;
  /// Prepare-lease lifetime on every server; <= 0 disables expiry (prepared
  /// locks then live until an explicit commit or abort).
  std::int64_t prepare_lease_ns = 0;
  /// Give each server its own mailbox worker thread (see net::Mailbox)
  /// instead of executing handlers inline on client threads.
  bool async_servers = false;
  DurabilityConfig durability;
  dtm::StubConfig stub;
  /// Simulated in-process replicas (default) or a spawned multi-process
  /// fleet over real TCP.
  TransportMode transport_mode = TransportMode::kSim;
  TcpClusterConfig tcp;
};

/// Which peers a rejoining node syncs from before serving again.
enum class CatchUpScope {
  kReadQuorum,   // one read quorum — sufficient by the intersection property
  kAllReplicas,  // every live peer — exhaustive (verification / tests)
};

/// A local, read-only reconstruction of a remote cluster's committed state:
/// one in-process dtm::Server per replica, populated from control-plane
/// dumps.  Lets workload invariant checks (which read dtm::Server*) run
/// unchanged against a multi-process fleet.
struct StateMirror {
  std::vector<std::unique_ptr<dtm::Server>> owned;
  std::vector<dtm::Server*> servers;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  /// Total replica count across all groups (n_servers * n_groups) in both
  /// transport modes.  Client node ids start at size().
  std::size_t size() const noexcept { return total_nodes_; }
  /// True when the replicas are remote cluster_main processes — server(i)
  /// and servers() are then unavailable (use store_snapshot() / mirror()).
  bool remote() const noexcept {
    return config_.transport_mode == TransportMode::kTcp;
  }
  dtm::Server& server(std::size_t i);
  std::vector<dtm::Server*> servers();

  /// Quorum groups in this cluster (1 = unsharded).
  std::size_t n_groups() const noexcept { return config_.n_groups; }
  /// The group that owns global node id `id`.
  std::uint32_t group_of(net::NodeId id) const noexcept {
    return static_cast<std::uint32_t>(static_cast<std::size_t>(id) /
                                      config_.n_servers);
  }
  /// Global node ids of group `g`'s replicas, ascending.
  std::vector<net::NodeId> group_members(std::size_t g) const;
  /// Group `g`'s replicas (e.g. for workload seeding / invariant checks
  /// scoped to the slice of the keyspace that group owns).
  std::vector<dtm::Server*> group_servers(std::size_t g);

  /// The simulated network (sim mode only — throws std::logic_error on a
  /// TCP cluster; route faults through transport() instead).
  dtm::DtmNetwork& network();
  /// The request/reply + fault surface, valid in both modes.  Sim mode
  /// returns a SimTransport over network(); TCP mode the fleet's
  /// TcpTransport.
  dtm::DtmTransport& transport() noexcept { return *transport_; }
  /// The TCP transport's control plane, or nullptr in sim mode.
  transport::TcpTransport* tcp_transport() noexcept { return tcp_; }
  const quorum::QuorumSystem& quorums() const noexcept { return *quorums_[0]; }
  /// Group `g`'s quorum system; every id it returns is a global node id
  /// inside that group's slice.
  const quorum::QuorumSystem& quorums(std::size_t g) const {
    return *quorums_.at(g);
  }

  /// A client-side stub; `client_ordinal` gives the client a distinct
  /// network identity (node ids above the server range) and RNG stream.
  /// Addresses group 0 — the whole cluster when n_groups == 1.
  dtm::QuorumStub make_stub(int client_ordinal, std::uint64_t seed = 0);

  /// A stub addressing group `g`: quorums from that group's system, the
  /// group stamped into its 2PC traffic.  The same `client_ordinal` across
  /// groups shares one network identity (a cross-shard coordinator holds
  /// one stub per participant group).
  dtm::QuorumStub make_group_stub(std::size_t group, int client_ordinal,
                                  std::uint64_t seed = 0);

  /// Seed `key` = `value` (version 1) on every replica, or only on group
  /// `group`'s replicas when given.  Sim mode installs immediately; TCP
  /// mode buffers and ships per-node batches on flush_seeds() — call it
  /// once after the seeding loop (stub traffic before the flush would read
  /// unseeded state).
  void seed_object(const store::ObjectKey& key, const store::Record& value);
  void seed_object(const store::ObjectKey& key, const store::Record& value,
                   std::size_t group);
  void flush_seeds();

  /// Replica `i`'s committed objects: direct store snapshot in sim mode, a
  /// control-plane dump in TCP mode.  Throws transport::TransportError when
  /// a remote replica is unreachable.
  std::vector<std::pair<store::ObjectKey, store::VersionedRecord>>
  store_snapshot(std::size_t i);

  /// Reconstruct every replica's committed state locally (see StateMirror).
  /// Sim mode works too (it just snapshots in-process stores) so callers
  /// can stay mode-agnostic.
  StateMirror mirror();

  /// Force overdue prepare leases into the parked state on every replica
  /// (both modes); returns the number of leases expired.
  std::size_t expire_all_leases();

  /// Replica `i`'s parked in-doubt transactions (both modes).
  std::vector<dtm::InDoubtTx> indoubt_transactions(std::size_t i);

  /// Replica `i`'s cheap gauges — open leases, protected keys, wrong-group
  /// refusals, parked in-doubt count, open prepares — read off the Server
  /// in sim mode, via a kProbe control round-trip in TCP mode.  An
  /// unreachable remote replica reports all-zero (callers summing across
  /// the fleet tolerate a crashed node).
  transport::ReplicaProbe probe_replica(std::size_t i);

  /// Roll every server's contention window (harness interval boundary).
  void roll_contention_windows();

  /// Cluster-wide contention levels for `classes`: the max over replicas of
  /// each class's last-window level (replicas see the same committed writes
  /// modulo quorum membership, so the max is the least stale view).  Feeds
  /// the scheduler's class-hot refinement.
  std::vector<std::uint64_t> class_levels(
      const std::vector<store::ClassId>& classes);

  /// Take `id` off the network (calls to it fail with kNodeDown).  Without
  /// durability the replica's store is preserved (crash/offline node);
  /// with it, the group-commit buffer is dropped — those records never
  /// reached the disk — and `lose_disk` additionally wipes the node's data
  /// directory (disk-loss crash: only peer catch-up can rebuild it).
  void crash_node(net::NodeId id, bool lose_disk = false);

  /// Rejoin a crashed node.  A durable node first clears its volatile
  /// state, reloads the newest snapshot, replays its log (re-arming
  /// unresolved prepares as leased protections), and only then runs the
  /// peer sync — which becomes a *delta* pass fetching just what the log
  /// lost (at most one group-commit window).  Volatile nodes run the full
  /// peer sync as before.  The scope picks the peers: a read quorum
  /// suffices by the intersection property; kAllReplicas is exhaustive.
  /// Returns the number of keys whose version advanced during the sync.
  std::size_t restart_node(net::NodeId id,
                           CatchUpScope scope = CatchUpScope::kReadQuorum);

  /// Force node `i` (or every node) to cut a snapshot now, making its
  /// current store durable and compacting its log.  Benches call this
  /// after workload seeding — seeding writes stores directly, bypassing
  /// the WAL, so without a checkpoint the seed state would not survive a
  /// disk-faithful restart.  No-op without durability.
  void checkpoint_node(std::size_t i);
  void checkpoint_all();

  /// Node `i`'s durable backend, or nullptr when durability is off.
  wal::ReplicaPersistence* persistence(std::size_t i) {
    return i < persistence_.size() ? persistence_[i].get() : nullptr;
  }

  /// Route RPC instrumentation from stubs made after this call — and the
  /// servers' lease/recovery counters — into `obs` (the driver installs its
  /// bundle before spawning clients).
  void set_obs(obs::Observability* obs) noexcept {
    config_.stub.obs = obs;
    for (auto& server : servers_) server->set_obs(obs);
    for (auto& persistence : persistence_)
      if (persistence) persistence->set_obs(obs);
  }

  const ClusterConfig& config() const noexcept { return config_; }

  /// TCP mode: ask every replica process to exit via the control plane and
  /// reap them; returns true when all exited voluntarily with status 0.
  /// No-op (true) in sim mode.  The destructor calls it, then SIGKILLs
  /// stragglers.
  bool shutdown_fleet();

 private:
  void spawn_fleet();
  transport::TcpTransport& tcp();
  std::vector<net::NodeId> catchup_sources(net::NodeId id, CatchUpScope scope);
  std::size_t restart_remote_node(net::NodeId id, CatchUpScope scope);

  ClusterConfig config_;
  std::size_t total_nodes_ = 0;
  // Declared before servers_ so each sink outlives the server pointing at it.
  std::vector<std::unique_ptr<wal::ReplicaPersistence>> persistence_;
  std::vector<std::unique_ptr<dtm::Server>> servers_;
  dtm::DtmNetwork network_;
  /// The mode-selected transport every stub and fault plan routes through.
  std::unique_ptr<dtm::DtmTransport> transport_;
  transport::TcpTransport* tcp_ = nullptr;  // transport_'s TCP face, if any
  std::unique_ptr<transport::ProcessFleet> fleet_;
  /// TCP mode: seeds buffered per node until flush_seeds().
  std::unordered_map<std::size_t,
                     std::vector<std::pair<store::ObjectKey, store::Record>>>
      pending_seeds_;
  /// One quorum system per group, indexed by group id.
  std::vector<std::unique_ptr<quorum::QuorumSystem>> quorums_;
  /// Varies the read quorum successive restart_node() calls sync from, so
  /// repeated rejoins are deterministic but not identical.
  std::uint64_t catchup_seq_ = 0;
};

}  // namespace acn::harness
