// Simulated QR-DTM cluster: N server replicas behind a latency-injecting
// network, arranged in a logical ternary tree with tree quorums.
//
// This is the substitute for the paper's physical testbed (up to 30 AMD
// Opteron nodes on 1 Gbps Ethernet): server nodes are in-process replicas,
// clients are threads, and every RPC pays a configurable simulated latency,
// so remote re-execution cost — the quantity partial rollback saves —
// dominates exactly as it does on real hardware.
#pragma once

#include <memory>
#include <vector>

#include "src/dtm/quorum_stub.hpp"
#include "src/dtm/server.hpp"
#include "src/quorum/level_quorum.hpp"
#include "src/quorum/rowa_quorum.hpp"
#include "src/quorum/tree_quorum.hpp"

namespace acn::harness {

enum class QuorumPolicy {
  kTree,           // Agrawal-El Abbadi recursive tree quorums (default)
  kLevelMajority,  // the paper's level-majority description
  kRowa,           // read-one / write-all (comparison extreme)
};

struct ClusterConfig {
  std::size_t n_servers = 10;
  int tree_arity = 3;
  QuorumPolicy quorum_policy = QuorumPolicy::kTree;
  /// Probability read-quorum selection stops at a subtree root (tree
  /// policy only).
  double root_read_bias = 0.5;
  /// One-way base latency per message; 0 disables sleeping (unit tests).
  std::chrono::nanoseconds base_latency{std::chrono::microseconds{25}};
  std::chrono::nanoseconds per_kilobyte{std::chrono::microseconds{2}};
  /// Contention window; <= 0 means the harness rolls windows manually.
  std::int64_t contention_window_ns = 0;
  /// Prepare-lease lifetime on every server; <= 0 disables expiry (prepared
  /// locks then live until an explicit commit or abort).
  std::int64_t prepare_lease_ns = 0;
  /// Give each server its own mailbox worker thread (see net::Mailbox)
  /// instead of executing handlers inline on client threads.
  bool async_servers = false;
  dtm::StubConfig stub;
};

/// Which peers a rejoining node syncs from before serving again.
enum class CatchUpScope {
  kReadQuorum,   // one read quorum — sufficient by the intersection property
  kAllReplicas,  // every live peer — exhaustive (verification / tests)
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  std::size_t size() const noexcept { return servers_.size(); }
  dtm::Server& server(std::size_t i) { return *servers_[i]; }
  std::vector<dtm::Server*> servers();

  dtm::DtmNetwork& network() noexcept { return network_; }
  const quorum::QuorumSystem& quorums() const noexcept { return *quorums_; }

  /// A client-side stub; `client_ordinal` gives the client a distinct
  /// network identity (node ids above the server range) and RNG stream.
  dtm::QuorumStub make_stub(int client_ordinal, std::uint64_t seed = 0);

  /// Roll every server's contention window (harness interval boundary).
  void roll_contention_windows();

  /// Take `id` off the network (calls to it fail with kNodeDown).  The
  /// replica's store is preserved — this models a crash/offline node, and
  /// restart_node() brings it back after anti-entropy catch-up.
  void crash_node(net::NodeId id);

  /// Rejoin a crashed node: pull a snapshot from `scope` peers, install
  /// every version newer than the local replica's (apply() is version-
  /// guarded, so concurrent traffic is safe), then mark the node up.
  /// Returns the number of keys whose version advanced during catch-up.
  std::size_t restart_node(net::NodeId id,
                           CatchUpScope scope = CatchUpScope::kReadQuorum);

  /// Route RPC instrumentation from stubs made after this call — and the
  /// servers' lease/recovery counters — into `obs` (the driver installs its
  /// bundle before spawning clients).
  void set_obs(obs::Observability* obs) noexcept {
    config_.stub.obs = obs;
    for (auto& server : servers_) server->set_obs(obs);
  }

  const ClusterConfig& config() const noexcept { return config_; }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<dtm::Server>> servers_;
  dtm::DtmNetwork network_;
  std::unique_ptr<quorum::QuorumSystem> quorums_;
  /// Varies the read quorum successive restart_node() calls sync from, so
  /// repeated rejoins are deterministic but not identical.
  std::uint64_t catchup_seq_ = 0;
};

}  // namespace acn::harness
