#include "src/harness/indoubt.hpp"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/common/clock.hpp"
#include "src/common/rng.hpp"

namespace acn::harness {
namespace {

using dtm::DecisionCode;
using dtm::DecisionQuery;
using dtm::DecisionReply;

/// One bounded RPC: retry transport failures up to `retry.max_retries`
/// times within `op_deadline`, then give up with the last error.  Replies
/// that are not a DecisionReply (e.g. an unregistered default response)
/// count as failures too.
struct BoundedCaller {
  Cluster& cluster;
  const IndoubtOptions& options;
  Rng rng{0x1D0B7};
  std::size_t queries = 0;

  bool query(net::NodeId from, net::NodeId to, const DecisionQuery& what,
             DecisionReply& reply) {
    const std::uint64_t deadline_ns =
        static_cast<std::uint64_t>(options.op_deadline.count());
    Stopwatch watch;
    dtm::Request request;
    request.payload = what;
    for (int attempt = 0;; ++attempt) {
      ++queries;
      const auto result = cluster.transport().call(from, to, request);
      if (result.ok()) {
        const auto* answer =
            std::get_if<DecisionReply>(&result.response.payload);
        if (answer != nullptr) {
          reply = *answer;
          return true;
        }
        return false;  // peer exists but does not speak DecisionReply
      }
      if (attempt >= options.retry.max_retries ||
          (deadline_ns > 0 && watch.elapsed_ns() >= deadline_ns))
        return false;
      std::this_thread::sleep_for(options.retry.delay(attempt, rng));
    }
  }

  /// Deliver `request` to every node in `targets`, retrying transport
  /// failures per node under the same bounds.  Best-effort: handlers are
  /// idempotent, and lease expiry re-parks whatever a drop misses.
  void push(net::NodeId from, const std::vector<net::NodeId>& targets,
            const dtm::Request& request) {
    const std::uint64_t deadline_ns =
        static_cast<std::uint64_t>(options.op_deadline.count());
    Stopwatch watch;
    std::vector<net::NodeId> pending = targets;
    for (int attempt = 0;; ++attempt) {
      const auto results = cluster.transport().multicall(from, pending, request);
      std::vector<net::NodeId> still_pending;
      for (std::size_t i = 0; i < results.size(); ++i)
        if (!results[i].ok()) still_pending.push_back(pending[i]);
      pending = std::move(still_pending);
      if (pending.empty() || attempt >= options.retry.max_retries ||
          (deadline_ns > 0 && watch.elapsed_ns() >= deadline_ns))
        return;
      std::this_thread::sleep_for(options.retry.delay(attempt, rng));
    }
  }
};

}  // namespace

IndoubtReport resolve_indoubt(Cluster& cluster,
                              const IndoubtOptions& options) {
  IndoubtReport report;
  BoundedCaller caller{cluster, options};
  const net::NodeId self =
      static_cast<net::NodeId>(cluster.size()) + options.client_ordinal;

  // Collect the parked transactions, one entry per (tx, group) — every
  // write-quorum member of a group parks the same tx, and the terminating
  // push goes to the whole group anyway.
  struct ParkedGroup {
    std::uint32_t group = 0;
    dtm::InDoubtTx info;
  };
  std::map<dtm::TxId, std::vector<ParkedGroup>> parked;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const std::uint32_t group =
        cluster.group_of(static_cast<net::NodeId>(i));
    for (auto& tx : cluster.indoubt_transactions(i)) {
      auto& groups = parked[tx.tx];
      const bool seen = std::any_of(
          groups.begin(), groups.end(),
          [&](const ParkedGroup& p) { return p.group == group; });
      if (!seen) groups.push_back({group, std::move(tx)});
    }
  }

  for (auto& [tx, groups] : parked) {
    // Step 1: the coordinator's decision record — authoritative when the
    // node answers, including kUnknown (no record on a live coordinator
    // means no group was ever told to commit: presumed abort).
    const std::int64_t coordinator = groups.front().info.coordinator;
    bool know_outcome = false;
    bool commit = false;
    std::unordered_map<std::uint32_t, DecisionReply> coordinator_pushes;
    if (coordinator >= 0) {
      bool reached_all = true;
      for (const ParkedGroup& pg : groups) {
        DecisionReply reply;
        if (!caller.query(self, static_cast<net::NodeId>(coordinator),
                          DecisionQuery{tx, pg.group}, reply)) {
          reached_all = false;
          break;
        }
        know_outcome = true;
        commit = reply.code == DecisionCode::kCommitted;
        if (commit) coordinator_pushes[pg.group] = std::move(reply);
      }
      if (!reached_all) {
        know_outcome = false;
        coordinator_pushes.clear();
      }
    }

    // Step 2: sibling participant groups, when the coordinator is dead.  A
    // kCommitted/kAborted memory on ANY replica of ANY participant is
    // authoritative; kInDoubt and kUnknown decide nothing.
    if (!know_outcome) {
      std::vector<std::uint32_t> participants =
          groups.front().info.participants;
      for (const std::uint32_t g : participants) {
        if (know_outcome) break;
        for (const net::NodeId node : cluster.group_members(g)) {
          DecisionReply reply;
          if (!caller.query(self, node, DecisionQuery{tx, g}, reply))
            continue;
          if (reply.code == DecisionCode::kCommitted) {
            know_outcome = true;
            commit = true;
            break;
          }
          if (reply.code == DecisionCode::kAborted) {
            know_outcome = true;
            commit = false;
            break;
          }
        }
      }
    }

    if (!know_outcome) {
      // Every participant merely prepared and the coordinator is
      // unreachable: a commit record may exist behind the crash, so the
      // transaction must stay parked until the coordinator node heals.
      report.unresolved += groups.size();
      continue;
    }

    for (const ParkedGroup& pg : groups) {
      const auto members = cluster.group_members(pg.group);
      if (!commit) {
        dtm::Request request;
        request.payload = dtm::AbortRequest{tx, pg.info.keys};
        caller.push(self, members, request);
        ++report.resolved_abort;
        continue;
      }
      // Commit: prefer the coordinator's exact recorded push; fall back to
      // the in-doubt replica's own redo payload + locally-proposed versions
      // (value-identical to the coordinator's push, version-guarded so
      // replicas converge).
      dtm::CommitRequest push;
      const auto from_record = coordinator_pushes.find(pg.group);
      if (from_record != coordinator_pushes.end() &&
          !from_record->second.keys.empty()) {
        push = {tx, from_record->second.keys, from_record->second.values,
                from_record->second.versions, pg.group};
      } else {
        DecisionReply local;
        bool have_local = false;
        for (const net::NodeId node : members) {
          if (caller.query(self, node, DecisionQuery{tx, pg.group}, local) &&
              local.code == DecisionCode::kInDoubt) {
            have_local = true;
            break;
          }
        }
        if (!have_local) {
          // The group's replicas are unreachable; leave it parked for the
          // next resolve pass.
          ++report.unresolved;
          continue;
        }
        push = {tx, local.keys, local.values, local.versions, pg.group};
      }
      dtm::Request request;
      request.payload = push;
      caller.push(self, members, request);
      ++report.resolved_commit;
    }
  }

  report.queries = caller.queries;
  return report;
}

}  // namespace acn::harness
