#include "src/chaos/chaos.hpp"

#include <algorithm>
#include <cstdio>

namespace acn::chaos {
namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kCrashLoseDisk:
      return "crash-lose-disk";
    case FaultEvent::Kind::kRestart:
      return "restart";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kDropBurst:
      return "drop-burst";
    case FaultEvent::Kind::kDropRestore:
      return "drop-restore";
    case FaultEvent::Kind::kLatencySpike:
      return "latency-spike";
    case FaultEvent::Kind::kLatencyRestore:
      return "latency-restore";
    case FaultEvent::Kind::kClientDown:
      return "client-down";
    case FaultEvent::Kind::kClientUp:
      return "client-up";
  }
  return "?";
}

}  // namespace

FaultPlan& FaultPlan::crash(Ms at, std::vector<net::NodeId> nodes,
                            Ms down_for) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kCrash;
  event.at = at;
  event.nodes = nodes;
  events_.push_back(std::move(event));
  if (down_for.count() > 0) restart(at + down_for, std::move(nodes));
  return *this;
}

FaultPlan& FaultPlan::crash_lose_disk(Ms at, std::vector<net::NodeId> nodes,
                                      Ms down_for) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kCrashLoseDisk;
  event.at = at;
  event.nodes = nodes;
  events_.push_back(std::move(event));
  if (down_for.count() > 0) restart(at + down_for, std::move(nodes));
  return *this;
}

FaultPlan& FaultPlan::restart(Ms at, std::vector<net::NodeId> nodes) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kRestart;
  event.at = at;
  event.nodes = std::move(nodes);
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::partition(Ms at,
                                std::vector<std::vector<net::NodeId>> groups,
                                Ms heal_after) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kPartition;
  event.at = at;
  event.groups = std::move(groups);
  events_.push_back(std::move(event));
  if (heal_after.count() > 0) heal(at + heal_after);
  return *this;
}

FaultPlan& FaultPlan::isolate(Ms at, std::vector<net::NodeId> nodes,
                              Ms heal_after) {
  // Group 0 is implicit "everyone unlisted" (clients included); the named
  // nodes go to group 1, cut off from the rest.
  return partition(at, {{}, std::move(nodes)}, heal_after);
}

FaultPlan& FaultPlan::heal(Ms at) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kHeal;
  event.at = at;
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::drop_burst(Ms at, double probability, Ms burst_for) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kDropBurst;
  event.at = at;
  event.drop = probability;
  events_.push_back(std::move(event));
  if (burst_for.count() > 0) {
    FaultEvent restore;
    restore.kind = FaultEvent::Kind::kDropRestore;
    restore.at = at + burst_for;
    events_.push_back(std::move(restore));
  }
  return *this;
}

FaultPlan& FaultPlan::latency_spike(Ms at, std::chrono::nanoseconds extra,
                                    Ms spike_for) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kLatencySpike;
  event.at = at;
  event.extra_latency = extra;
  events_.push_back(std::move(event));
  if (spike_for.count() > 0) {
    FaultEvent restore;
    restore.kind = FaultEvent::Kind::kLatencyRestore;
    restore.at = at + spike_for;
    events_.push_back(std::move(restore));
  }
  return *this;
}

FaultPlan& FaultPlan::client_down(Ms at, std::vector<net::NodeId> nodes,
                                  Ms down_for) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kClientDown;
  event.at = at;
  event.nodes = nodes;
  events_.push_back(std::move(event));
  if (down_for.count() > 0) client_up(at + down_for, std::move(nodes));
  return *this;
}

FaultPlan& FaultPlan::client_up(Ms at, std::vector<net::NodeId> nodes) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kClientUp;
  event.at = at;
  event.nodes = std::move(nodes);
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::crash_coordinator(Ms at, net::NodeId client_node,
                                        Ms down_for) {
  return client_down(at, {client_node}, down_for);
}

FaultPlan& FaultPlan::isolate_group(Ms at, const harness::Cluster& cluster,
                                    std::size_t group, Ms heal_after) {
  return isolate(at, cluster.group_members(group), heal_after);
}

FaultPlan& FaultPlan::phase2_drop_burst(Ms at, double probability,
                                        Ms burst_for) {
  return drop_burst(at, probability, burst_for);
}

ChaosController::ChaosController(harness::Cluster& cluster, FaultPlan plan,
                                 obs::Observability* obs, bool verbose)
    : cluster_(cluster),
      timeline_(plan.events()),
      obs_(obs),
      verbose_(verbose) {
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

ChaosController::~ChaosController() { stop(/*drain=*/true); }

void ChaosController::start() {
  if (thread_.joinable()) return;
  stopping_ = false;
  healed_ = false;
  thread_ = std::thread([this] { run(); });
}

void ChaosController::stop(bool drain) {
  if (thread_.joinable()) {
    if (drain) {
      std::lock_guard<std::mutex> guard(mutex_);
      stopping_ = true;
      cv_.notify_all();
    }
    thread_.join();
  }
  heal_all();
}

void ChaosController::run() {
  const auto start = std::chrono::steady_clock::now();
  for (const FaultEvent& event : timeline_) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_until(lock, start + event.at, [this] { return stopping_; });
      if (stopping_) return;
    }
    fire(event);
    ++events_fired_;
  }
}

void ChaosController::fire(const FaultEvent& event) {
  auto& network = cluster_.transport();
  switch (event.kind) {
    case FaultEvent::Kind::kCrash:
    case FaultEvent::Kind::kCrashLoseDisk:
      for (const net::NodeId id : event.nodes) {
        cluster_.crash_node(
            id, event.kind == FaultEvent::Kind::kCrashLoseDisk);
        if (std::find(down_.begin(), down_.end(), id) == down_.end())
          down_.push_back(id);
        if (verbose_)
          std::printf("[chaos] %s node %d\n", kind_name(event.kind), id);
      }
      if (obs_ != nullptr) obs_->chaos_crashes.add(event.nodes.size());
      break;
    case FaultEvent::Kind::kRestart:
      for (const net::NodeId id : event.nodes) {
        const std::size_t updated = cluster_.restart_node(id);
        keys_caught_up_ += updated;
        down_.erase(std::remove(down_.begin(), down_.end(), id), down_.end());
        if (verbose_)
          std::printf("[chaos] restart node %d (caught up %zu keys)\n", id,
                      updated);
      }
      if (obs_ != nullptr) obs_->chaos_restarts.add(event.nodes.size());
      break;
    case FaultEvent::Kind::kPartition:
      network.set_partition(event.groups);
      if (verbose_) {
        std::printf("[chaos] partition into %zu groups\n",
                    event.groups.size());
      }
      if (obs_ != nullptr) obs_->chaos_partitions.add();
      break;
    case FaultEvent::Kind::kHeal:
      network.clear_partition();
      if (verbose_) std::printf("[chaos] heal partition\n");
      if (obs_ != nullptr) obs_->chaos_heals.add();
      break;
    case FaultEvent::Kind::kDropBurst:
      if (!drop_saved_) {
        drop_baseline_ = network.drop_probability();
        drop_saved_ = true;
      }
      network.set_drop_probability(event.drop);
      if (verbose_) std::printf("[chaos] drop burst p=%.3f\n", event.drop);
      if (obs_ != nullptr) obs_->chaos_drop_bursts.add();
      break;
    case FaultEvent::Kind::kDropRestore:
      if (drop_saved_) {
        network.set_drop_probability(drop_baseline_);
        drop_saved_ = false;
        if (verbose_)
          std::printf("[chaos] drop restored to p=%.3f\n", drop_baseline_);
      }
      break;
    case FaultEvent::Kind::kLatencySpike:
      if (!latency_saved_) {
        latency_baseline_ = network.extra_latency();
        latency_saved_ = true;
      }
      network.set_extra_latency(event.extra_latency);
      if (verbose_) {
        std::printf("[chaos] latency spike +%lldus\n",
                    static_cast<long long>(event.extra_latency.count() / 1000));
      }
      if (obs_ != nullptr) obs_->chaos_latency_spikes.add();
      break;
    case FaultEvent::Kind::kLatencyRestore:
      if (latency_saved_) {
        network.set_extra_latency(latency_baseline_);
        latency_saved_ = false;
        if (verbose_) std::printf("[chaos] latency restored\n");
      }
      break;
    case FaultEvent::Kind::kClientDown:
      // Client nodes have no store or durability: crash_node/restart_node
      // reject them, so a coordinator crash is just its network identity
      // going dark (taking its decision-record handler with it).
      for (const net::NodeId id : event.nodes) {
        network.set_node_down(id, true);
        if (std::find(client_down_.begin(), client_down_.end(), id) ==
            client_down_.end())
          client_down_.push_back(id);
        if (verbose_) std::printf("[chaos] client-down node %d\n", id);
      }
      if (obs_ != nullptr) obs_->chaos_crashes.add(event.nodes.size());
      break;
    case FaultEvent::Kind::kClientUp:
      for (const net::NodeId id : event.nodes) {
        network.set_node_down(id, false);
        client_down_.erase(
            std::remove(client_down_.begin(), client_down_.end(), id),
            client_down_.end());
        if (verbose_) std::printf("[chaos] client-up node %d\n", id);
      }
      if (obs_ != nullptr) obs_->chaos_restarts.add(event.nodes.size());
      break;
  }
}

void ChaosController::heal_all() {
  if (healed_) return;
  healed_ = true;
  auto& network = cluster_.transport();
  if (network.partitioned()) {
    network.clear_partition();
    if (obs_ != nullptr) obs_->chaos_heals.add();
  }
  if (drop_saved_) {
    network.set_drop_probability(drop_baseline_);
    drop_saved_ = false;
  }
  if (latency_saved_) {
    network.set_extra_latency(latency_baseline_);
    latency_saved_ = false;
  }
  for (const net::NodeId id : client_down_) {
    cluster_.transport().set_node_down(id, false);
    if (verbose_) std::printf("[chaos] final client-up node %d\n", id);
  }
  client_down_.clear();
  for (const net::NodeId id : down_) {
    const std::size_t updated = cluster_.restart_node(id);
    keys_caught_up_ += updated;
    if (obs_ != nullptr) obs_->chaos_restarts.add();
    if (verbose_)
      std::printf("[chaos] final restart node %d (caught up %zu keys)\n", id,
                  updated);
  }
  down_.clear();

  // The heal is not complete while a cross-shard prepare is still parked
  // in-doubt: force any overdue lease into the parked state, then run
  // cooperative termination over the (now fully connected) cluster.  With
  // every node back up the coordinator decision record is reachable, so
  // the report's `unresolved` should be zero here.
  cluster_.expire_all_leases();
  const harness::IndoubtReport report = harness::resolve_indoubt(cluster_);
  indoubt_report_.queries += report.queries;
  indoubt_report_.resolved_commit += report.resolved_commit;
  indoubt_report_.resolved_abort += report.resolved_abort;
  indoubt_report_.unresolved = report.unresolved;
  if (verbose_ && (report.resolved_commit + report.resolved_abort +
                   report.unresolved) > 0) {
    std::printf(
        "[chaos] in-doubt termination: %zu commit, %zu abort, %zu left\n",
        report.resolved_commit, report.resolved_abort, report.unresolved);
  }
}

std::vector<net::NodeId> ChaosController::leaf_victims(
    const harness::Cluster& cluster, std::size_t count, std::size_t group) {
  // Each quorum group is its own heap-layout tree over n_servers local ids,
  // relocated to global ids at `base`.  (The pre-sharding version assumed
  // one global tree over cluster.size() nodes, which mis-names leaves —
  // and can even pick a group's root — as soon as n_groups > 1.)
  const auto n = static_cast<net::NodeId>(cluster.config().n_servers);
  const auto arity = static_cast<net::NodeId>(cluster.config().tree_arity);
  const auto base =
      static_cast<net::NodeId>(group * cluster.config().n_servers);
  std::vector<net::NodeId> victims;
  // Leaves of the implicit heap layout: a node with no first child.  Walk
  // from the highest local id down so the victims sit deepest in the tree.
  for (net::NodeId id = n - 1; id >= 1 && victims.size() < count; --id)
    if (arity * id + 1 >= n) victims.push_back(base + id);
  // Tiny groups (everything a child of the root): settle for any non-root
  // member rather than returning fewer victims than asked.
  for (net::NodeId id = n - 1; id >= 1 && victims.size() < count; --id)
    if (std::find(victims.begin(), victims.end(), base + id) == victims.end())
      victims.push_back(base + id);
  return victims;
}

std::vector<std::vector<net::NodeId>> ChaosController::shard_partition_groups(
    const harness::Cluster& cluster) {
  std::vector<std::vector<net::NodeId>> groups;
  groups.reserve(cluster.n_groups());
  for (std::size_t g = 0; g < cluster.n_groups(); ++g)
    groups.push_back(cluster.group_members(g));
  return groups;
}

}  // namespace acn::chaos
