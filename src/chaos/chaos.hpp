// Declarative fault injection for the simulated cluster.
//
// A FaultPlan is a deterministic schedule of fault events — crash node N at
// t, partition the cluster for d, raise the drop rate, spike latency — and
// a ChaosController replays it against a harness::Cluster from a background
// thread while a workload runs.  This replaces ad-hoc fault threads inside
// individual benchmarks: the same plan drives abl_faults, abl_partition and
// the chaos tests, and stop() always heals the cluster (clears partitions,
// restores drop/latency baselines, rejoins crashed nodes with catch-up) so
// a run never leaks fault state into the final invariant check.
//
// Times are offsets from start() in milliseconds.  Events fire in time
// order; ties fire in insertion order.  The plan itself contains no
// randomness — seeding lives in the workload RNGs — so a chaos run is as
// reproducible as the fault-free benchmarks.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/harness/cluster.hpp"
#include "src/harness/indoubt.hpp"
#include "src/obs/obs.hpp"

namespace acn::chaos {

struct FaultEvent {
  enum class Kind {
    kCrash,           // take nodes off the network (stores preserved)
    kCrashLoseDisk,   // crash that also wipes the node's durable state
    kRestart,         // rejoin nodes after anti-entropy catch-up
    kPartition,       // install symmetric partition groups
    kHeal,            // remove the partition
    kDropBurst,       // raise the global drop probability
    kDropRestore,     // restore the pre-burst drop probability
    kLatencySpike,    // add global extra latency
    kLatencyRestore,  // remove the extra latency
    kClientDown,      // take CLIENT nodes down (coordinator crash: their
                      // decision records become unreachable; no store, no
                      // catch-up — kClientUp just flips them back)
    kClientUp,
  };

  Kind kind = Kind::kCrash;
  std::chrono::milliseconds at{0};
  std::vector<net::NodeId> nodes;                // crash / restart
  std::vector<std::vector<net::NodeId>> groups;  // partition
  double drop = 0.0;                             // drop burst
  std::chrono::nanoseconds extra_latency{0};     // latency spike
};

/// Fluent builder for a fault schedule.  Durations of zero mean "until
/// stop() heals the cluster".
class FaultPlan {
 public:
  using Ms = std::chrono::milliseconds;

  /// Crash `nodes` at `at`; when `down_for` > 0 they rejoin (with catch-up)
  /// that much later.
  FaultPlan& crash(Ms at, std::vector<net::NodeId> nodes, Ms down_for = Ms{0});
  /// Crash `nodes` *and* destroy their data directories: a durable node
  /// rejoins with nothing to replay and must rebuild entirely from peer
  /// catch-up (on a volatile cluster this behaves exactly like crash()).
  FaultPlan& crash_lose_disk(Ms at, std::vector<net::NodeId> nodes,
                             Ms down_for = Ms{0});
  FaultPlan& restart(Ms at, std::vector<net::NodeId> nodes);
  /// Split the cluster into symmetric `groups` at `at` (nodes not listed —
  /// clients in particular — stay in group 0); heal `heal_after` later when
  /// given.
  FaultPlan& partition(Ms at, std::vector<std::vector<net::NodeId>> groups,
                       Ms heal_after = Ms{0});
  /// Cut `nodes` off from everyone else (shorthand for a two-group
  /// partition whose majority side is "everyone unlisted").
  FaultPlan& isolate(Ms at, std::vector<net::NodeId> nodes,
                     Ms heal_after = Ms{0});
  FaultPlan& heal(Ms at);
  FaultPlan& drop_burst(Ms at, double probability, Ms burst_for = Ms{0});
  FaultPlan& latency_spike(Ms at, std::chrono::nanoseconds extra,
                           Ms spike_for = Ms{0});

  // -- 2PC phase-boundary helpers (cross-shard atomicity chaos) ------------
  /// Take client/coordinator nodes down at `at` (their in-flight 2PC is
  /// orphaned mid-protocol and their decision records go dark); back up
  /// `down_for` later when given.  Client nodes have no store — this is
  /// set_node_down, not crash_node.
  FaultPlan& client_down(Ms at, std::vector<net::NodeId> nodes,
                         Ms down_for = Ms{0});
  FaultPlan& client_up(Ms at, std::vector<net::NodeId> nodes);
  /// Crash ONE coordinator at `at` — sugar for client_down on its client
  /// node.  Timed between prepare_all() and phase 2 this creates the
  /// canonical in-doubt scenario: groups prepared, decision possibly
  /// recorded, nobody left to push phase 2.
  FaultPlan& crash_coordinator(Ms at, net::NodeId client_node,
                               Ms down_for = Ms{0});
  /// Partition quorum group `group` of `cluster` away from everyone else
  /// (its prepared transactions outlive their leases and park in-doubt).
  FaultPlan& isolate_group(Ms at, const harness::Cluster& cluster,
                           std::size_t group, Ms heal_after = Ms{0});
  /// A drop burst aimed at phase-two windows: same global drop knob, named
  /// so plans read as "lose commit pushes and decision queries here".
  FaultPlan& phase2_drop_burst(Ms at, double probability, Ms burst_for);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

class ChaosController {
 public:
  ChaosController(harness::Cluster& cluster, FaultPlan plan,
                  obs::Observability* obs = nullptr, bool verbose = true);
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;
  ~ChaosController();

  /// Begin replaying the plan (event times are offsets from this call).
  void start();

  /// Wait for the remaining events, then heal the cluster: clear any
  /// partition, restore drop/latency baselines, rejoin still-crashed nodes
  /// with catch-up, bring client nodes back up — and finally expire stale
  /// leases and run cooperative termination (harness::resolve_indoubt), so
  /// "healed" means no cross-shard prepare is still parked in-doubt.
  /// Idempotent.  `drain` skips the wait and fires nothing further (the
  /// heal still runs).
  void stop(bool drain = false);

  std::size_t events_fired() const noexcept { return events_fired_; }
  /// Keys advanced by catch-up across every restart this controller ran.
  std::size_t keys_caught_up() const noexcept { return keys_caught_up_; }
  /// Cooperative-termination outcome of the final heal (see stop()).
  const harness::IndoubtReport& indoubt_report() const noexcept {
    return indoubt_report_;
  }

  /// The `count` highest-numbered leaf nodes of quorum group `group`'s tree
  /// (never that group's root): the default crash victims — a leaf crash
  /// leaves write quorums constructible, so the workload keeps committing.
  /// Returned ids are global node ids inside the group's slice; on an
  /// unsharded cluster group 0 is the whole tree, the pre-sharding
  /// behavior.
  static std::vector<net::NodeId> leaf_victims(const harness::Cluster& cluster,
                                               std::size_t count,
                                               std::size_t group = 0);

  /// The cluster's groups as partition groups — `[group_members(0),
  /// group_members(1), ...]` — for plans that split the network along
  /// shard boundaries (isolating whole quorum groups instead of arbitrary
  /// node sets).
  static std::vector<std::vector<net::NodeId>> shard_partition_groups(
      const harness::Cluster& cluster);

 private:
  void run();
  void fire(const FaultEvent& event);
  void heal_all();

  harness::Cluster& cluster_;
  std::vector<FaultEvent> timeline_;  // sorted by `at`, stable
  obs::Observability* obs_;
  bool verbose_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool healed_ = false;

  std::vector<net::NodeId> down_;         // crashed and not yet restarted
  std::vector<net::NodeId> client_down_;  // client nodes currently down
  harness::IndoubtReport indoubt_report_;
  bool drop_saved_ = false;
  double drop_baseline_ = 0.0;
  bool latency_saved_ = false;
  std::chrono::nanoseconds latency_baseline_{0};

  std::size_t events_fired_ = 0;
  std::size_t keys_caught_up_ = 0;
};

}  // namespace acn::chaos
