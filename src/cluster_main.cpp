// cluster_main — one QR-DTM replica as a standalone OS process.
//
// The real-transport deployment shape: harness::Cluster (or an operator)
// launches one cluster_main per replica, each hosting a dtm::Server behind
// a transport::TcpServer.  The data plane decodes dtm::Requests off
// CRC-framed TCP and answers through the exact same Server::handle the
// simulated cluster calls inline; the control plane implements the
// management surface (seed / dump / crash / restart / probe / shutdown)
// the harness otherwise performs by poking server objects directly.
//
// Flags (every one mirrors a ClusterConfig field):
//   --node=N            global node id (required)
//   --group=G           quorum group (default: id/servers when --config
//                       names a topology, else 0)
//   --host=H --port=P   listen address (default 127.0.0.1:0 = ephemeral)
//   --config=FILE       topology file (src/transport/topology.hpp); the
//                       node's group/host/port come from its [[node]] entry
//   --lease-ns=N        prepare lease lifetime (0 = never expires)
//   --window-ns=N       contention window (0 = rolled via control plane)
//   --durability=MODE   none | wal
//   --data-dir=DIR      WAL directory (mode wal; default acn-data/node-N)
//   --flush-ns=N --snapshot-bytes=N --no-fsync   WAL tuning
//   --workers=N         request worker threads (default 2)
//
// Stdout prints exactly one line, `ACN_READY <node> <port>`, once the
// listener is up — the spawn handshake (ephemeral ports keep parallel CI
// jobs from colliding).  Logs go to stderr.  The process exits 0 on a
// control-plane shutdown.

#include <charconv>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "src/dtm/codec.hpp"
#include "src/dtm/server.hpp"
#include "src/transport/tcp_server.hpp"
#include "src/transport/topology.hpp"
#include "src/transport/wire.hpp"
#include "src/wal/persistence.hpp"

namespace {

using namespace acn;

struct Options {
  int node = -1;
  std::uint32_t group = 0;
  bool group_set = false;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string config_path;
  std::int64_t lease_ns = 0;
  std::int64_t window_ns = 0;
  std::string durability = "none";
  std::string data_dir;
  std::int64_t flush_ns = 2'000'000;
  std::uint64_t snapshot_bytes = std::uint64_t{1} << 20;
  bool fsync = true;
  std::size_t workers = 2;
};

bool parse_i64(const char* text, std::int64_t& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    std::int64_t num = 0;
    if (const char* v = value("--node=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.node = static_cast<int>(num);
    } else if (const char* v = value("--group=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.group = static_cast<std::uint32_t>(num);
      opt.group_set = true;
    } else if (const char* v = value("--host=")) {
      opt.host = v;
    } else if (const char* v = value("--port=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.port = static_cast<int>(num);
    } else if (const char* v = value("--config=")) {
      opt.config_path = v;
    } else if (const char* v = value("--lease-ns=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.lease_ns = num;
    } else if (const char* v = value("--window-ns=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.window_ns = num;
    } else if (const char* v = value("--durability=")) {
      opt.durability = v;
    } else if (const char* v = value("--data-dir=")) {
      opt.data_dir = v;
    } else if (const char* v = value("--flush-ns=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.flush_ns = num;
    } else if (const char* v = value("--snapshot-bytes=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.snapshot_bytes = static_cast<std::uint64_t>(num);
    } else if (arg == "--no-fsync") {
      opt.fsync = false;
    } else if (const char* v = value("--workers=")) {
      if (!parse_i64(v, num)) return std::nullopt;
      opt.workers = static_cast<std::size_t>(num);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (opt.node < 0) {
    std::fprintf(stderr, "--node is required\n");
    return std::nullopt;
  }
  if (opt.durability != "none" && opt.durability != "wal") {
    std::fprintf(stderr, "--durability must be none|wal\n");
    return std::nullopt;
  }
  return opt;
}

/// One replica's full state: the server plus its optional durable backend,
/// rebuilt the same way harness::Cluster builds its in-process replicas.
struct Replica {
  Options opt;
  std::unique_ptr<wal::ReplicaPersistence> persistence;
  std::unique_ptr<dtm::Server> server;

  explicit Replica(Options options) : opt(std::move(options)) {
    server = std::make_unique<dtm::Server>(opt.node, opt.window_ns,
                                           opt.lease_ns);
    server->set_group(opt.group);
    if (opt.durability == "wal") {
      wal::WalConfig wal_config;
      wal_config.dir = opt.data_dir;
      wal_config.flush_interval_ns = opt.flush_ns;
      wal_config.snapshot_every_bytes = opt.snapshot_bytes;
      wal_config.fsync = opt.fsync;
      persistence =
          std::make_unique<wal::ReplicaPersistence>(std::move(wal_config));
      auto recovered = persistence->recover();
      server->install_recovered(recovered.objects, recovered.open_prepares);
      server->set_durability(persistence.get());
    }
  }

  void checkpoint() {
    if (!persistence) return;
    dtm::Server* s = server.get();
    persistence->write_snapshot([s] {
      return dtm::SnapshotData{s->store().snapshot(), s->open_prepares()};
    });
  }

  transport::ControlOutcome handle_control(
      std::span<const std::uint8_t> body) {
    transport::ControlOutcome out;
    transport::ControlReply reply;
    try {
      const transport::ControlRequest req = transport::decode_control(body);
      switch (req.op) {
        case transport::ControlOp::kPing:
          break;
        case transport::ControlOp::kSeed:
          // Version-guarded installs: initial seeding and anti-entropy
          // delta pushes both land here; racing against live commits can
          // only lose to newer versions, same as the sim's catch-up.
          for (const transport::SeedEntry& e : req.entries)
            server->store().apply(e.key, e.value, e.version, store::kNoTx);
          reply.count = req.entries.size();
          break;
        case transport::ControlOp::kDump:
          for (auto& [key, rec] : server->store().snapshot())
            reply.entries.push_back({key, std::move(rec.value), rec.version});
          break;
        case transport::ControlOp::kRollWindows:
          server->roll_contention_window();
          break;
        case transport::ControlOp::kClassLevels:
          reply.levels = server->contention().class_levels(req.classes);
          break;
        case transport::ControlOp::kCrash:
          // The crash itself: suspend the data plane (below) and lose what
          // the group-commit buffer never flushed; a disk-loss crash also
          // wipes the directory.  The process and its memory survive —
          // kRestart decides what a reboot would have kept.
          if (persistence) {
            persistence->drop_unflushed();
            if (req.lose_disk) persistence->wipe();
          }
          out.action = transport::ControlAction::kSuspend;
          break;
        case transport::ControlOp::kRestart:
          if (persistence) {
            server->reset_volatile_state();
            auto recovered = persistence->recover();
            server->install_recovered(recovered.objects,
                                      recovered.open_prepares);
          }
          break;
        case transport::ControlOp::kResume:
          out.action = transport::ControlAction::kResume;
          break;
        case transport::ControlOp::kCheckpoint:
          checkpoint();
          break;
        case transport::ControlOp::kExpireLeases:
          reply.count = server->expire_stale_leases();
          break;
        case transport::ControlOp::kIndoubtList:
          reply.indoubt = server->indoubt_transactions();
          break;
        case transport::ControlOp::kProbe:
          reply.probe.open_leases = server->open_lease_count();
          reply.probe.protected_keys = server->store().protected_count();
          reply.probe.wrong_group = server->stats().wrong_group.load();
          reply.probe.indoubt = server->indoubt_count();
          reply.probe.open_prepares = server->open_prepares().size();
          break;
        case transport::ControlOp::kShutdown:
          if (persistence) persistence->flush();
          out.action = transport::ControlAction::kShutdown;
          break;
      }
    } catch (const std::exception& e) {
      reply = {};
      reply.ok = false;
      reply.error = e.what();
    }
    out.reply_body = transport::encode_control_reply(reply);
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  auto parsed = parse_args(argc, argv);
  if (!parsed) return 2;
  Options opt = *std::move(parsed);

  if (!opt.config_path.empty()) {
    std::string error;
    const auto topo = transport::load_topology(opt.config_path, &error);
    if (!topo) {
      std::fprintf(stderr, "bad --config %s: %s\n", opt.config_path.c_str(),
                   error.c_str());
      return 2;
    }
    if (const transport::TopologyNode* self = topo->find(opt.node)) {
      if (!opt.group_set) opt.group = self->group;
      opt.host = self->host;
      if (opt.port == 0) opt.port = self->port;
    } else {
      std::fprintf(stderr, "node %d not in topology %s\n", opt.node,
                   opt.config_path.c_str());
      return 2;
    }
    if (opt.durability == "none" && topo->durability == "wal")
      opt.durability = "wal";
  }
  if (opt.data_dir.empty())
    opt.data_dir = "acn-data/node-" + std::to_string(opt.node);

  try {
    Replica replica(opt);

    transport::TcpServerConfig server_config;
    server_config.host = opt.host;
    server_config.port = opt.port;
    server_config.workers = opt.workers;

    dtm::Server* server = replica.server.get();
    transport::TcpServer tcp(
        server_config,
        [server](std::int64_t from, std::span<const std::uint8_t> body)
            -> std::optional<std::vector<std::uint8_t>> {
          try {
            const dtm::Request request = dtm::decode_request(body);
            const dtm::Response response =
                server->handle(static_cast<net::NodeId>(from), request);
            return dtm::encode(response);
          } catch (const dtm::CodecError& e) {
            // Malformed dtm payload inside a CRC-valid frame: the stream
            // is not trustworthy — poison the connection.
            std::fprintf(stderr, "data codec error: %s\n", e.what());
            return std::nullopt;
          }
        },
        [&replica](std::span<const std::uint8_t> body) {
          return replica.handle_control(body);
        });

    std::printf("ACN_READY %d %d\n", opt.node, tcp.port());
    std::fflush(stdout);
    std::fprintf(stderr, "node %d (group %u) listening on %s:%d\n", opt.node,
                 opt.group, opt.host.c_str(), tcp.port());

    tcp.wait_shutdown();
    tcp.stop();
    std::fprintf(stderr, "node %d: clean shutdown\n", opt.node);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
