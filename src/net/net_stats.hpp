// Message accounting for the simulated network.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace acn::net {

/// Aggregate wire statistics.  All counters are relaxed atomics; values are
/// read for reporting only.
class NetStats {
 public:
  void on_message(std::size_t bytes) noexcept {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_drop() noexcept { drops_.fetch_add(1, std::memory_order_relaxed); }
  void on_response_drop() noexcept {
    response_drops_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_refused() noexcept { refused_.fetch_add(1, std::memory_order_relaxed); }
  void on_partitioned() noexcept {
    partitioned_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Request-leg drops (the handler never ran).
  std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  /// Response-leg drops (the handler ran; the ack was lost).
  std::uint64_t response_drops() const noexcept {
    return response_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t refused() const noexcept {
    return refused_.load(std::memory_order_relaxed);
  }
  std::uint64_t partitioned() const noexcept {
    return partitioned_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;
  std::string summary() const;

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> response_drops_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> partitioned_{0};
};

}  // namespace acn::net
