// Mailbox-based asynchronous server execution.
//
// By default the simulated network runs request handlers inline on the
// calling client thread (deterministic, zero queueing noise).  A Mailbox
// gives a node its own worker thread and request queue instead: clients
// enqueue, the worker drains in FIFO order and fulfills a future per
// request.  With mailboxes, a quorum multicall truly overlaps server-side
// processing across nodes (visible on multicore hosts), and per-node
// queue depth becomes an observable — the closer analogue of one server
// process per machine in the paper's testbed.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

namespace acn::net {

template <class Req, class Res>
class Mailbox {
 public:
  using Handler = std::function<Res(int from, const Req&)>;

  explicit Mailbox(Handler handler) : handler_(std::move(handler)) {
    worker_ = std::thread([this] { run(); });
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  ~Mailbox() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
    worker_.join();
  }

  /// Enqueue a request; the returned future is fulfilled by the worker.
  std::future<Res> submit(int from, Req request) {
    std::promise<Res> promise;
    auto future = promise.get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.push_back({from, std::move(request), std::move(promise)});
      peak_depth_ = std::max(peak_depth_, queue_.size());
    }
    ready_.notify_one();
    return future;
  }

  std::uint64_t processed() const {
    std::lock_guard lock(mutex_);
    return processed_;
  }
  std::size_t peak_depth() const {
    std::lock_guard lock(mutex_);
    return peak_depth_;
  }

 private:
  struct Item {
    int from;
    Req request;
    std::promise<Res> promise;
  };

  void run() {
    for (;;) {
      Item item;
      {
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      // Count before fulfilling the promise so processed() is never behind
      // what a waiter can observe.  Handler exceptions surface at the
      // waiter through the future.
      try {
        Res response = handler_(item.from, item.request);
        {
          std::lock_guard lock(mutex_);
          ++processed_;
        }
        item.promise.set_value(std::move(response));
      } catch (...) {
        {
          std::lock_guard lock(mutex_);
          ++processed_;
        }
        item.promise.set_exception(std::current_exception());
      }
    }
  }

  Handler handler_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  std::uint64_t processed_ = 0;
  std::size_t peak_depth_ = 0;
  std::thread worker_;
};

}  // namespace acn::net
