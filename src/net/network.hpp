// Simulated message-passing network.
//
// The cluster in this reproduction runs inside one process: server nodes are
// passive, thread-safe request handlers and client threads issue RPCs through
// a Network<Request, Response> instance.  The network
//   * injects one-way latency from a pluggable LatencyModel on the request
//     and the response leg (client threads sleep, so concurrent requests
//     overlap exactly like real in-flight messages);
//   * supports quorum "multicalls" that contact several nodes concurrently —
//     the caller pays the *maximum* round-trip once, matching a client that
//     fires all requests and waits for the slowest reply;
//   * accounts messages and bytes (requests/responses expose approx_size());
//   * injects faults: a node can be marked down, and a drop probability can
//     be set per link for fault-tolerance tests.
//
// Handlers execute on the calling thread.  This keeps the simulation
// deterministic under a fixed seed and free of cross-thread queue latency
// noise, while preserving real mutual exclusion inside the server objects.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/latency_model.hpp"
#include "src/common/rng.hpp"
#include "src/net/mailbox.hpp"
#include "src/net/net_stats.hpp"

namespace acn::net {

using NodeId = int;

enum class NetErrorCode {
  kOk = 0,
  kNodeDown,
  kDropped,
  kNoHandler,
};

/// Result of a single RPC: either a response or a transport error.
template <class Res>
struct CallResult {
  NetErrorCode error = NetErrorCode::kOk;
  Res response{};

  bool ok() const noexcept { return error == NetErrorCode::kOk; }
};

template <class Req, class Res>
class Network {
 public:
  using Handler = std::function<Res(NodeId from, const Req&)>;

  explicit Network(std::shared_ptr<const LatencyModel> latency =
                       std::make_shared<ZeroLatency>())
      : latency_(std::move(latency)) {}

  /// Register node `id`'s request handler (executed inline on the calling
  /// thread).  Must happen before traffic flows; not thread-safe against
  /// concurrent calls.
  void register_node(NodeId id, Handler handler) {
    auto& node = node_slot(id);
    node.handler = std::move(handler);
    node.mailbox.reset();
    node.down.store(false);
  }

  /// Register node `id` with its own mailbox worker thread: requests are
  /// enqueued and processed asynchronously, so a multicall overlaps
  /// processing across nodes.
  void register_node_async(NodeId id, Handler handler) {
    auto& node = node_slot(id);
    node.mailbox = std::make_shared<Mailbox<Req, Res>>(std::move(handler));
    node.handler = nullptr;
    node.down.store(false);
  }

  bool node_is_async(NodeId id) const {
    return static_cast<std::size_t>(id) < nodes_.size() &&
           nodes_[static_cast<std::size_t>(id)].mailbox != nullptr;
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Fault injection: mark a node unreachable / reachable.
  void set_node_down(NodeId id, bool down) {
    nodes_.at(static_cast<std::size_t>(id)).down.store(down);
  }
  bool node_down(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id)).down.load();
  }

  /// Fault injection: probability in [0,1] that any message is dropped
  /// (a dropped message surfaces as NetErrorCode::kDropped to the caller,
  /// standing in for an RPC timeout).
  void set_drop_probability(double p) { drop_probability_.store(p); }

  /// Synchronous RPC from `from` to `to`.  Sleeps for request + response
  /// latency, then invokes the handler inline.
  CallResult<Res> call(NodeId from, NodeId to, const Req& req) {
    CallResult<Res> out;
    const std::size_t req_bytes = req.approx_size();
    if (!deliverable(to)) {
      out.error = NetErrorCode::kNodeDown;
      stats_.on_refused();
      return out;
    }
    if (maybe_drop()) {
      out.error = NetErrorCode::kDropped;
      stats_.on_drop();
      return out;
    }
    stats_.on_message(req_bytes);
    const Nanos fwd = latency_->delay(from, to, req_bytes);
    sleep_for(fwd);
    out.response = invoke(to, from, req);
    const std::size_t res_bytes = out.response.approx_size();
    stats_.on_message(res_bytes);
    const Nanos back = latency_->delay(to, from, res_bytes);
    sleep_for(back);
    return out;
  }

  /// Concurrent RPC to all `targets`.  `make_req(target)` builds the
  /// per-target request.  The caller sleeps once for the slowest round trip
  /// and handlers run inline in target order; results align with `targets`.
  template <class MakeReq>
  std::vector<CallResult<Res>> multicall(NodeId from,
                                         const std::vector<NodeId>& targets,
                                         MakeReq&& make_req) {
    std::vector<CallResult<Res>> out(targets.size());
    std::vector<Nanos> fwd(targets.size(), Nanos{0});
    std::vector<std::future<Res>> pending(targets.size());
    Nanos worst{0};

    // Dispatch phase: inline nodes execute immediately, mailbox nodes are
    // enqueued so their processing overlaps.
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId to = targets[i];
      if (!deliverable(to)) {
        out[i].error = NetErrorCode::kNodeDown;
        stats_.on_refused();
        continue;
      }
      if (maybe_drop()) {
        out[i].error = NetErrorCode::kDropped;
        stats_.on_drop();
        continue;
      }
      Req req = make_req(to);
      const std::size_t req_bytes = req.approx_size();
      stats_.on_message(req_bytes);
      fwd[i] = latency_->delay(from, to, req_bytes);
      Node& node = nodes_[static_cast<std::size_t>(to)];
      if (node.mailbox)
        pending[i] = node.mailbox->submit(from, std::move(req));
      else
        out[i].response = node.handler(from, req);
    }

    // Gather phase.
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (out[i].error != NetErrorCode::kOk) continue;
      if (pending[i].valid()) out[i].response = pending[i].get();
      const std::size_t res_bytes = out[i].response.approx_size();
      stats_.on_message(res_bytes);
      worst = std::max(worst,
                       fwd[i] + latency_->delay(targets[i], from, res_bytes));
    }
    sleep_for(worst);
    return out;
  }

  NetStats& stats() noexcept { return stats_; }
  const NetStats& stats() const noexcept { return stats_; }
  const LatencyModel& latency_model() const noexcept { return *latency_; }

 private:
  struct Node {
    Handler handler;
    std::shared_ptr<Mailbox<Req, Res>> mailbox;
    std::atomic<bool> down{true};

    Node() = default;
    Node(Node&& other) noexcept
        : handler(std::move(other.handler)),
          mailbox(std::move(other.mailbox)),
          down(other.down.load()) {}
    Node& operator=(Node&& other) noexcept {
      handler = std::move(other.handler);
      mailbox = std::move(other.mailbox);
      down.store(other.down.load());
      return *this;
    }
  };

  Node& node_slot(NodeId id) {
    if (static_cast<std::size_t>(id) >= nodes_.size())
      nodes_.resize(static_cast<std::size_t>(id) + 1);
    return nodes_[static_cast<std::size_t>(id)];
  }

  Res invoke(NodeId to, NodeId from, const Req& req) {
    Node& node = nodes_[static_cast<std::size_t>(to)];
    if (node.mailbox) return node.mailbox->submit(from, req).get();
    return node.handler(from, req);
  }

  bool deliverable(NodeId to) const noexcept {
    const auto idx = static_cast<std::size_t>(to);
    return idx < nodes_.size() &&
           (nodes_[idx].handler || nodes_[idx].mailbox) &&
           !nodes_[idx].down.load();
  }

  bool maybe_drop() noexcept {
    const double p = drop_probability_.load(std::memory_order_relaxed);
    if (p <= 0.0) return false;
    return drop_rng().bernoulli(p);
  }

  // Per-thread drop RNG: every message used to take a process-global mutex
  // here, serialising all client threads on the hot send path.  Each thread
  // now owns a generator seeded deterministically from the order in which
  // threads first send (stable under a fixed seed and thread count).
  static Rng& drop_rng() noexcept {
    static std::atomic<std::uint64_t> next_stream{0};
    thread_local Rng rng = [] {
      std::uint64_t stream =
          0xd40bdeadULL + next_stream.fetch_add(1, std::memory_order_relaxed);
      return Rng(splitmix64(stream));
    }();
    return rng;
  }

  static void sleep_for(Nanos d) {
    if (d > Nanos{0}) std::this_thread::sleep_for(d);
  }

  std::shared_ptr<const LatencyModel> latency_;
  std::vector<Node> nodes_;
  std::atomic<double> drop_probability_{0.0};
  NetStats stats_;
};

}  // namespace acn::net
