// Simulated message-passing network.
//
// The cluster in this reproduction runs inside one process: server nodes are
// passive, thread-safe request handlers and client threads issue RPCs through
// a Network<Request, Response> instance.  The network
//   * injects one-way latency from a pluggable LatencyModel on the request
//     and the response leg (client threads sleep, so concurrent requests
//     overlap exactly like real in-flight messages);
//   * supports quorum "multicalls" that contact several nodes concurrently —
//     the caller pays the *maximum* round-trip once, matching a client that
//     fires all requests and waits for the slowest reply;
//   * accounts messages and bytes (requests/responses expose approx_size());
//   * injects faults: a node can be marked down, messages can be dropped
//     with a global probability, and — layered on top — per-link drop
//     probability / extra latency and symmetric partition groups.
//
// Fault model details:
//   * Drops are rolled independently on the request AND the response leg.
//     A response-leg drop surfaces as kDropped to the caller even though
//     the handler executed — the lost-ack hazard two-phase commit must
//     survive (see src/dtm prepare leases).
//   * A partition splits nodes into groups; messages cross groups only by
//     failing with kPartitioned.  Nodes not named in any group (typically
//     clients) belong to the first group, so `{{}, {8, 9}}` isolates nodes
//     8 and 9 from the clients and the rest of the cluster.
//
// Handlers execute on the calling thread.  This keeps the simulation
// deterministic under a fixed seed and free of cross-thread queue latency
// noise, while preserving real mutual exclusion inside the server objects.
//
// Re-entrancy contract: a request handler must NOT issue nested call() /
// multicall() invocations.  On this simulated network a nested call would
// "work" (it runs inline on the same thread), but on a real transport the
// handler executes on the server's event-loop or worker thread, where a
// nested synchronous RPC deadlocks or reorders arbitrarily.  So that
// SimTransport and TcpTransport expose identical semantics, the network
// wraps every registered handler in a thread-local depth guard and throws
// std::logic_error when call()/multicall() is entered from inside one.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/latency_model.hpp"
#include "src/common/rng.hpp"
#include "src/net/mailbox.hpp"
#include "src/net/net_stats.hpp"

namespace acn::net {

using NodeId = int;

enum class NetErrorCode {
  kOk = 0,
  kNodeDown,
  kDropped,
  kNoHandler,
  kPartitioned,  // sender and receiver sit in different partition groups
};

/// Result of a single RPC: either a response or a transport error.
template <class Res>
struct CallResult {
  NetErrorCode error = NetErrorCode::kOk;
  Res response{};

  bool ok() const noexcept { return error == NetErrorCode::kOk; }
};

/// Per-link fault state, layered over the global drop knob: an extra drop
/// probability (combined independently with the global one) and added
/// one-way latency for messages travelling this direction of the link.
struct LinkFault {
  double drop = 0.0;
  Nanos extra_latency{0};
};

/// Depth of request-handler execution on the current thread, shared by all
/// Network instances and by transports that invoke local handlers inline
/// (net::Transport::register_local).  Nonzero means "we are inside a
/// handler": issuing an RPC from here is the re-entrancy hazard a real
/// transport cannot honor, so entry points reject it.
inline thread_local int handler_depth = 0;

/// RAII depth bump wrapped around every handler invocation.
struct HandlerScope {
  HandlerScope() noexcept { ++handler_depth; }
  ~HandlerScope() { --handler_depth; }
  HandlerScope(const HandlerScope&) = delete;
  HandlerScope& operator=(const HandlerScope&) = delete;
};

/// Throws std::logic_error when invoked from inside a request handler.
inline void require_not_in_handler(const char* op) {
  if (handler_depth > 0)
    throw std::logic_error(
        std::string("net: nested RPC: ") + op +
        " invoked from inside a request handler.  Handlers must not call "
        "back into the transport — on a real transport this deadlocks the "
        "server's event loop (see network.hpp re-entrancy contract).");
}

template <class Req, class Res>
class Network {
 public:
  using Handler = std::function<Res(NodeId from, const Req&)>;

  explicit Network(std::shared_ptr<const LatencyModel> latency =
                       std::make_shared<ZeroLatency>())
      : latency_(std::move(latency)) {}

  /// Register node `id`'s request handler (executed inline on the calling
  /// thread).  Must happen before traffic flows; not thread-safe against
  /// concurrent calls.
  void register_node(NodeId id, Handler handler) {
    auto& node = node_slot(id);
    node.handler = guarded(std::move(handler));
    node.mailbox.reset();
    node.down.store(false);
  }

  /// Register node `id` with its own mailbox worker thread: requests are
  /// enqueued and processed asynchronously, so a multicall overlaps
  /// processing across nodes.
  void register_node_async(NodeId id, Handler handler) {
    auto& node = node_slot(id);
    node.mailbox = std::make_shared<Mailbox<Req, Res>>(guarded(std::move(handler)));
    node.handler = nullptr;
    node.down.store(false);
  }

  bool node_is_async(NodeId id) const {
    return static_cast<std::size_t>(id) < nodes_.size() &&
           nodes_[static_cast<std::size_t>(id)].mailbox != nullptr;
  }

  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Fault injection: mark a node unreachable / reachable.  Throws
  /// std::invalid_argument for an id no register_node() call ever named, so
  /// a bench with a bad victim list fails with a message instead of an
  /// out_of_range from deep inside the container.
  void set_node_down(NodeId id, bool down) {
    require_known(id, "set_node_down");
    nodes_[static_cast<std::size_t>(id)].down.store(down);
  }
  bool node_down(NodeId id) const {
    require_known(id, "node_down");
    return nodes_[static_cast<std::size_t>(id)].down.load();
  }

  /// Fault injection: probability in [0,1] that any message is dropped
  /// (a dropped message surfaces as NetErrorCode::kDropped to the caller,
  /// standing in for an RPC timeout).  Request and response legs roll
  /// independently.
  void set_drop_probability(double p) { drop_probability_.store(p); }
  double drop_probability() const noexcept { return drop_probability_.load(); }

  /// Fault injection: extra one-way latency added to every message on top
  /// of the LatencyModel (a cluster-wide latency spike).
  void set_extra_latency(Nanos extra) {
    extra_latency_ns_.store(extra.count(), std::memory_order_relaxed);
  }
  Nanos extra_latency() const noexcept {
    return Nanos{extra_latency_ns_.load(std::memory_order_relaxed)};
  }

  /// Fault injection: per-link (directional) drop probability and extra
  /// latency for messages from `from` to `to`.  Layered over the global
  /// knobs: drop probabilities combine as independent events.
  void set_link_fault(NodeId from, NodeId to, LinkFault fault) {
    std::unique_lock lock(fault_mutex_);
    links_[link_key(from, to)] = fault;
    faults_active_.store(true, std::memory_order_release);
  }
  void clear_link_fault(NodeId from, NodeId to) {
    std::unique_lock lock(fault_mutex_);
    links_.erase(link_key(from, to));
    update_faults_active();
  }
  void clear_link_faults() {
    std::unique_lock lock(fault_mutex_);
    links_.clear();
    update_faults_active();
  }

  /// Fault injection: split the network into symmetric partition groups.
  /// `groups[i]` lists the members of group i; any node (including client
  /// ids) not named in any group belongs to group 0.  Messages between
  /// different groups fail with kPartitioned.  Replaces any previous
  /// partition.
  void set_partition(const std::vector<std::vector<NodeId>>& groups) {
    std::unique_lock lock(fault_mutex_);
    groups_.clear();
    for (std::size_t g = 0; g < groups.size(); ++g)
      for (const NodeId id : groups[g]) groups_[id] = static_cast<int>(g);
    partitioned_ = true;
    faults_active_.store(true, std::memory_order_release);
  }
  void clear_partition() {
    std::unique_lock lock(fault_mutex_);
    groups_.clear();
    partitioned_ = false;
    update_faults_active();
  }
  bool partitioned() const {
    std::shared_lock lock(fault_mutex_);
    return partitioned_;
  }

  /// Synchronous RPC from `from` to `to`.  Sleeps for request + response
  /// latency, then invokes the handler inline.
  CallResult<Res> call(NodeId from, NodeId to, const Req& req) {
    require_not_in_handler("call");
    CallResult<Res> out;
    const std::size_t req_bytes = req.approx_size();
    if (!deliverable(to)) {
      out.error = NetErrorCode::kNodeDown;
      stats_.on_refused();
      return out;
    }
    if (partition_blocked(from, to)) {
      out.error = NetErrorCode::kPartitioned;
      stats_.on_partitioned();
      return out;
    }
    if (maybe_drop(from, to)) {
      out.error = NetErrorCode::kDropped;
      stats_.on_drop();
      return out;
    }
    stats_.on_message(req_bytes);
    const Nanos fwd = latency_->delay(from, to, req_bytes) + leg_extra(from, to);
    sleep_for(fwd);
    out.response = invoke(to, from, req);
    const std::size_t res_bytes = out.response.approx_size();
    const Nanos back =
        latency_->delay(to, from, res_bytes) + leg_extra(to, from);
    if (maybe_drop(to, from)) {
      // Lost ack: the handler already ran, only the response vanished.  The
      // caller still pays the round trip (it waited for a reply that never
      // came) and must treat the outcome as unknown.
      out.error = NetErrorCode::kDropped;
      out.response = Res{};
      stats_.on_response_drop();
      sleep_for(back);
      return out;
    }
    stats_.on_message(res_bytes);
    sleep_for(back);
    return out;
  }

  /// Concurrent RPC to all `targets`.  `make_req(target)` builds the
  /// per-target request.  The caller sleeps once for the slowest round trip
  /// and handlers run inline in target order; results align with `targets`.
  template <class MakeReq>
  std::vector<CallResult<Res>> multicall(NodeId from,
                                         const std::vector<NodeId>& targets,
                                         MakeReq&& make_req) {
    require_not_in_handler("multicall");
    std::vector<CallResult<Res>> out(targets.size());
    std::vector<Nanos> fwd(targets.size(), Nanos{0});
    std::vector<std::future<Res>> pending(targets.size());
    Nanos worst{0};

    // Dispatch phase: inline nodes execute immediately, mailbox nodes are
    // enqueued so their processing overlaps.
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const NodeId to = targets[i];
      if (!deliverable(to)) {
        out[i].error = NetErrorCode::kNodeDown;
        stats_.on_refused();
        continue;
      }
      if (partition_blocked(from, to)) {
        out[i].error = NetErrorCode::kPartitioned;
        stats_.on_partitioned();
        continue;
      }
      if (maybe_drop(from, to)) {
        out[i].error = NetErrorCode::kDropped;
        stats_.on_drop();
        continue;
      }
      Req req = make_req(to);
      const std::size_t req_bytes = req.approx_size();
      stats_.on_message(req_bytes);
      fwd[i] = latency_->delay(from, to, req_bytes) + leg_extra(from, to);
      Node& node = nodes_[static_cast<std::size_t>(to)];
      if (node.mailbox)
        pending[i] = node.mailbox->submit(from, std::move(req));
      else
        out[i].response = node.handler(from, req);
    }

    // Gather phase.
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (out[i].error != NetErrorCode::kOk) continue;
      if (pending[i].valid()) out[i].response = pending[i].get();
      const std::size_t res_bytes = out[i].response.approx_size();
      const Nanos back =
          latency_->delay(targets[i], from, res_bytes) + leg_extra(targets[i], from);
      worst = std::max(worst, fwd[i] + back);
      if (maybe_drop(targets[i], from)) {
        // Lost ack: handler side effects stand, the reply is gone.
        out[i].error = NetErrorCode::kDropped;
        out[i].response = Res{};
        stats_.on_response_drop();
        continue;
      }
      stats_.on_message(res_bytes);
    }
    sleep_for(worst);
    return out;
  }

  NetStats& stats() noexcept { return stats_; }
  const NetStats& stats() const noexcept { return stats_; }
  const LatencyModel& latency_model() const noexcept { return *latency_; }

 private:
  struct Node {
    Handler handler;
    std::shared_ptr<Mailbox<Req, Res>> mailbox;
    std::atomic<bool> down{true};

    Node() = default;
    Node(Node&& other) noexcept
        : handler(std::move(other.handler)),
          mailbox(std::move(other.mailbox)),
          down(other.down.load()) {}
    Node& operator=(Node&& other) noexcept {
      handler = std::move(other.handler);
      mailbox = std::move(other.mailbox);
      down.store(other.down.load());
      return *this;
    }
  };

  static Handler guarded(Handler handler) {
    return [h = std::move(handler)](NodeId from, const Req& req) -> Res {
      HandlerScope scope;
      return h(from, req);
    };
  }

  Node& node_slot(NodeId id) {
    if (static_cast<std::size_t>(id) >= nodes_.size())
      nodes_.resize(static_cast<std::size_t>(id) + 1);
    return nodes_[static_cast<std::size_t>(id)];
  }

  void require_known(NodeId id, const char* op) const {
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
      throw std::invalid_argument(std::string("Network::") + op +
                                  ": unknown node id " + std::to_string(id));
  }

  Res invoke(NodeId to, NodeId from, const Req& req) {
    Node& node = nodes_[static_cast<std::size_t>(to)];
    if (node.mailbox) return node.mailbox->submit(from, req).get();
    return node.handler(from, req);
  }

  bool deliverable(NodeId to) const noexcept {
    const auto idx = static_cast<std::size_t>(to);
    return idx < nodes_.size() &&
           (nodes_[idx].handler || nodes_[idx].mailbox) &&
           !nodes_[idx].down.load();
  }

  static std::uint64_t link_key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }

  // Caller must NOT hold fault_mutex_.  True when a partition is active and
  // `from` / `to` sit in different groups (unlisted nodes are group 0).
  bool partition_blocked(NodeId from, NodeId to) const {
    if (!faults_active_.load(std::memory_order_acquire)) return false;
    std::shared_lock lock(fault_mutex_);
    if (!partitioned_) return false;
    return group_of(from) != group_of(to);
  }

  // Requires fault_mutex_ (shared) held.
  int group_of(NodeId id) const {
    const auto it = groups_.find(id);
    return it == groups_.end() ? 0 : it->second;
  }

  // Requires fault_mutex_ (unique) held.
  void update_faults_active() {
    faults_active_.store(!links_.empty() || partitioned_,
                         std::memory_order_release);
  }

  // Drop decision for one leg (direction matters for per-link faults).
  bool maybe_drop(NodeId from, NodeId to) noexcept {
    double p = drop_probability_.load(std::memory_order_relaxed);
    if (faults_active_.load(std::memory_order_acquire)) {
      std::shared_lock lock(fault_mutex_);
      const auto it = links_.find(link_key(from, to));
      if (it != links_.end() && it->second.drop > 0.0)
        p = 1.0 - (1.0 - p) * (1.0 - it->second.drop);  // independent drops
    }
    if (p <= 0.0) return false;
    return drop_rng().bernoulli(p);
  }

  Nanos leg_extra(NodeId from, NodeId to) const {
    Nanos extra{extra_latency_ns_.load(std::memory_order_relaxed)};
    if (faults_active_.load(std::memory_order_acquire)) {
      std::shared_lock lock(fault_mutex_);
      const auto it = links_.find(link_key(from, to));
      if (it != links_.end()) extra += it->second.extra_latency;
    }
    return extra;
  }

  // Per-thread drop RNG: every message used to take a process-global mutex
  // here, serialising all client threads on the hot send path.  Each thread
  // now owns a generator seeded deterministically from the order in which
  // threads first send (stable under a fixed seed and thread count).
  static Rng& drop_rng() noexcept {
    static std::atomic<std::uint64_t> next_stream{0};
    thread_local Rng rng = [] {
      std::uint64_t stream =
          0xd40bdeadULL + next_stream.fetch_add(1, std::memory_order_relaxed);
      return Rng(splitmix64(stream));
    }();
    return rng;
  }

  static void sleep_for(Nanos d) {
    if (d > Nanos{0}) std::this_thread::sleep_for(d);
  }

  std::shared_ptr<const LatencyModel> latency_;
  std::vector<Node> nodes_;
  std::atomic<double> drop_probability_{0.0};
  std::atomic<std::int64_t> extra_latency_ns_{0};

  // Per-link faults + partition groups, read on every message but mutated
  // only by fault injectors; faults_active_ keeps the no-fault hot path
  // lock-free.
  mutable std::shared_mutex fault_mutex_;
  std::unordered_map<std::uint64_t, LinkFault> links_;
  std::unordered_map<NodeId, int> groups_;
  bool partitioned_ = false;
  std::atomic<bool> faults_active_{false};

  NetStats stats_;
};

}  // namespace acn::net
