// Transport: the abstract request/reply surface between stubs and replicas.
//
// Every client-side component (QuorumStub, the cross-shard coordinator, the
// in-doubt resolver, chaos) used to talk straight to the simulated
// net::Network.  The Transport interface extracts exactly the surface they
// consume — call / multicall, local handler registration, and the fault
// knobs — so the same stack runs over two implementations:
//
//   * SimTransport (below, header-only): a thin adapter over the existing
//     deterministic Network.  Default for tests and chaos matrices — the
//     sleep-injecting simulation is what makes fault injection
//     reproducible.
//   * transport::TcpTransport (src/transport): real asynchronous TCP —
//     non-blocking sockets on an epoll loop, CRC-framed codec messages,
//     per-connection write queues, request-id correlation, reconnect with
//     backoff.  Replicas run as separate cluster_main processes.
//
// Semantics both implementations honor:
//   * multicall sends the SAME request to every target and returns results
//     aligned with `targets`.  (The simulated network accepts a per-target
//     request factory; every caller in the tree builds an identical request
//     per target, so the narrower surface loses nothing and lets TCP encode
//     the frame once.)
//   * A handler registered through register_local must not issue nested
//     calls through the transport (see network.hpp — enforced there, and
//     the TCP loop would deadlock; identical contract on both).
//   * Fault knobs are best effort on TCP: node_down / partitions fail fast
//     client-side and kill live connections; drop probability is rolled per
//     leg client-side (a request-leg drop is simply never written, a
//     response-leg drop is discarded after arrival — same lost-ack hazard
//     as the simulation).  Listener-level suspension (the server refusing
//     the world, not one client refusing the server) is a control-plane
//     operation owned by harness::Cluster::crash_node.
//
// Counters: both implementations feed the same TransportCounters, emitted
// as transport.* metrics by the harness.  On TCP they count real socket
// bytes and observed reconnects/corruption; on sim they approximate wire
// bytes from approx_size() so dashboards stay comparable.  Under drop
// injection the two necessarily diverge (a simulated response-leg drop
// still "paid" the bytes); treat fault-window byte counts as indicative.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/net/network.hpp"

namespace acn::net {

/// Wire-level counters shared by every Transport implementation.
struct TransportCounters {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_recv{0};
  /// Successful connection establishments beyond the first per peer (TCP);
  /// always 0 on the simulated transport — there is nothing to re-dial.
  std::atomic<std::uint64_t> reconnects{0};
  /// Frames rejected for a CRC mismatch or an oversized length prefix.
  std::atomic<std::uint64_t> frames_corrupt{0};
};

template <class Req, class Res>
class Transport {
 public:
  using Handler = std::function<Res(NodeId from, const Req&)>;

  virtual ~Transport() = default;

  /// Synchronous RPC from `from` to `to`.
  virtual CallResult<Res> call(NodeId from, NodeId to, const Req& req) = 0;

  /// Concurrent RPC of the SAME request to all `targets`; results align
  /// with `targets`.  The caller waits for the slowest reply (or its
  /// deadline) once, like a quorum client that fires and gathers.
  virtual std::vector<CallResult<Res>> multicall(
      NodeId from, const std::vector<NodeId>& targets, const Req& req) = 0;

  /// Register a handler served locally by this endpoint (e.g. a cross-shard
  /// coordinator answering DecisionQuery on its client node id).  On TCP a
  /// call addressed to a local id loops back in-process; remote processes
  /// reach it through the caller's listening socket only when one exists —
  /// in this tree, decision queries are always issued by the harness
  /// process that owns the coordinator, so loopback suffices.
  virtual void register_local(NodeId id, Handler handler) = 0;

  // -- Fault surface (chaos plans route through these) --------------------
  virtual void set_node_down(NodeId id, bool down) = 0;
  virtual bool node_down(NodeId id) const = 0;
  virtual void set_drop_probability(double p) = 0;
  virtual double drop_probability() const = 0;
  virtual void set_extra_latency(Nanos extra) = 0;
  virtual Nanos extra_latency() const = 0;
  virtual void set_partition(const std::vector<std::vector<NodeId>>& groups) = 0;
  virtual void clear_partition() = 0;
  virtual bool partitioned() const = 0;
  virtual void set_link_fault(NodeId from, NodeId to, LinkFault fault) = 0;
  virtual void clear_link_fault(NodeId from, NodeId to) = 0;
  virtual void clear_link_faults() = 0;

  virtual const TransportCounters& counters() const = 0;
};

/// Adapter: the deterministic simulated network behind the Transport
/// interface.  Owns nothing — the Network (and the registered servers)
/// outlive it, exactly as they outlive the stubs today.
template <class Req, class Res>
class SimTransport final : public Transport<Req, Res> {
 public:
  using Handler = typename Transport<Req, Res>::Handler;

  explicit SimTransport(Network<Req, Res>& network) : network_(network) {}

  CallResult<Res> call(NodeId from, NodeId to, const Req& req) override {
    CallResult<Res> out = network_.call(from, to, req);
    account(req, out);
    return out;
  }

  std::vector<CallResult<Res>> multicall(NodeId from,
                                         const std::vector<NodeId>& targets,
                                         const Req& req) override {
    auto out = network_.multicall(from, targets, [&](NodeId) { return req; });
    for (const auto& r : out) account(req, r);
    return out;
  }

  void register_local(NodeId id, Handler handler) override {
    network_.register_node(id, std::move(handler));
  }

  void set_node_down(NodeId id, bool down) override {
    network_.set_node_down(id, down);
  }
  bool node_down(NodeId id) const override { return network_.node_down(id); }
  void set_drop_probability(double p) override {
    network_.set_drop_probability(p);
  }
  double drop_probability() const override {
    return network_.drop_probability();
  }
  void set_extra_latency(Nanos extra) override {
    network_.set_extra_latency(extra);
  }
  Nanos extra_latency() const override { return network_.extra_latency(); }
  void set_partition(const std::vector<std::vector<NodeId>>& groups) override {
    network_.set_partition(groups);
  }
  void clear_partition() override { network_.clear_partition(); }
  bool partitioned() const override { return network_.partitioned(); }
  void set_link_fault(NodeId from, NodeId to, LinkFault fault) override {
    network_.set_link_fault(from, to, fault);
  }
  void clear_link_fault(NodeId from, NodeId to) override {
    network_.clear_link_fault(from, to);
  }
  void clear_link_faults() override { network_.clear_link_faults(); }

  const TransportCounters& counters() const override { return counters_; }

  Network<Req, Res>& network() noexcept { return network_; }

 private:
  // Approximate the wire bytes a real transport would move: the request
  // leg unless the node refused it outright, the response leg on success.
  void account(const Req& req, const CallResult<Res>& result) {
    if (result.error == NetErrorCode::kNodeDown ||
        result.error == NetErrorCode::kPartitioned)
      return;
    counters_.bytes_sent.fetch_add(req.approx_size(),
                                   std::memory_order_relaxed);
    if (result.ok())
      counters_.bytes_recv.fetch_add(result.response.approx_size(),
                                     std::memory_order_relaxed);
  }

  Network<Req, Res>& network_;
  TransportCounters counters_;
};

}  // namespace acn::net
