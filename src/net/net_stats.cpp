#include "src/net/net_stats.hpp"

#include <cstdio>

namespace acn::net {

void NetStats::reset() noexcept {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
  response_drops_.store(0, std::memory_order_relaxed);
  refused_.store(0, std::memory_order_relaxed);
  partitioned_.store(0, std::memory_order_relaxed);
}

std::string NetStats::summary() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "messages=%llu bytes=%llu drops=%llu response_drops=%llu "
                "refused=%llu partitioned=%llu",
                static_cast<unsigned long long>(messages()),
                static_cast<unsigned long long>(bytes()),
                static_cast<unsigned long long>(drops()),
                static_cast<unsigned long long>(response_drops()),
                static_cast<unsigned long long>(refused()),
                static_cast<unsigned long long>(partitioned()));
  return buf;
}

}  // namespace acn::net
