#include "src/net/net_stats.hpp"

#include <cstdio>

namespace acn::net {

void NetStats::reset() noexcept {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
  refused_.store(0, std::memory_order_relaxed);
}

std::string NetStats::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "messages=%llu bytes=%llu drops=%llu refused=%llu",
                static_cast<unsigned long long>(messages()),
                static_cast<unsigned long long>(bytes()),
                static_cast<unsigned long long>(drops()),
                static_cast<unsigned long long>(refused()));
  return buf;
}

}  // namespace acn::net
