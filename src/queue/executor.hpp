// Speculative epoch execution: the workspace and the per-entry runner.
//
// An epoch executes against a Workspace — a client-side image of the
// cluster state the planner prefetched for the epoch's planned keys.
// Entries run speculatively: reads are served from (a) the entry's own
// buffered writes, (b) writes *published* by earlier-priority entries of
// the same epoch (the speculative read — QueCC's "read from the queue, not
// the store"), or (c) the prefetched committed version.  Writes are
// buffered privately and published into the workspace only when the entry
// completes, so a failed entry leaves no trace and its queue successors
// read pre-epoch state.
//
// Misprediction is the speculation escape hatch: any access to a key
// OUTSIDE the entry's planned footprint (a key produced mid-transaction —
// pointer chase, fetched counter) throws MispredictedAccess.  The entry is
// then *demoted*: it publishes nothing, its dependents proceed as if it
// never ran, and the submitter re-executes it on the optimistic ACN path
// after the epoch commits — which serializes it after the epoch, exactly
// the order the epoch's atomic commit establishes.  Reads of a planned key
// no replica holds demote the same way (the optimistic path owns the
// ObjectMissing protocol: escalate a routing miss, surface a workload bug).
//
// Nothing here touches the network: the planner prefetches every planned
// key up front (one batched quorum round per group), so intra-epoch
// execution is pure local compute and the executor pool never stalls on
// I/O mid-queue.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/acn/txir.hpp"
#include "src/queue/epoch.hpp"
#include "src/store/record.hpp"

namespace acn::queue {

/// Thrown by SpecBackend on an access outside the planned footprint (or to
/// a planned key the prefetch proved absent).  Deliberately NOT a
/// dtm::TxAbort: workload programs and retry loops catch TxAbort, and a
/// misprediction must reach the epoch runner, not a retry loop.
struct MispredictedAccess {
  store::ObjectKey key;
};

/// Shared per-epoch state.  `cache`/`absent` are filled by the planner
/// before executors start and read-only during execution; `written` and
/// `reads_used` accumulate publishes.  The mutex guards map structure —
/// per-key access ordering is already enforced by the epoch plan's
/// dependency DAG (two entries sharing a planned key never run
/// concurrently).
struct Workspace {
  std::mutex mutex;
  /// Prefetched committed versions of the planned keys.
  std::unordered_map<store::ObjectKey, store::VersionedRecord,
                     store::ObjectKeyHash>
      cache;
  /// Planned keys no replica holds (blind-insert targets).
  std::unordered_set<store::ObjectKey, store::ObjectKeyHash> absent;
  /// Published speculative writes; queue order makes the last writer's
  /// value the epoch's final value for the key.
  std::unordered_map<store::ObjectKey, store::Record, store::ObjectKeyHash>
      written;
  /// Prefetched versions consumed by committed entries — the epoch
  /// transaction's read set, validated at epoch commit.
  std::map<store::ObjectKey, store::VersionedRecord> reads_used;
};

/// What one entry's speculative run produced.
struct EntryOutcome {
  bool committed = false;
  std::uint64_t ops = 0;
  /// Reads served from earlier-in-epoch published writes.
  std::uint64_t spec_reads = 0;
  /// Set when the entry was demoted: the unplanned (or absent) key.
  std::optional<store::ObjectKey> mispredicted;
};

/// ir::TxBackend over a Workspace: read-your-writes, then published epoch
/// writes, then the prefetched cache; buffered writes published by the
/// caller on success only.
class SpecBackend final : public ir::TxBackend {
 public:
  /// `planned` must be canonical (ascending) — the entry's predicted
  /// footprint; it bounds every access.
  SpecBackend(Workspace& workspace, const KeyFootprint& planned);

  ir::Record read(const ir::ObjectKey& key) override;
  void write(const ir::ObjectKey& key, ir::Record value) override;
  void insert(const ir::ObjectKey& key, ir::Record value) override;

  /// Publish buffered writes and consumed reads into the workspace (call
  /// once, after the program ran to completion).
  void publish();

  std::uint64_t spec_reads() const noexcept { return spec_reads_; }

 private:
  bool planned(const ir::ObjectKey& key) const;

  Workspace& workspace_;
  const KeyFootprint& planned_;
  std::map<ir::ObjectKey, ir::Record> writes_;
  std::map<ir::ObjectKey, store::VersionedRecord> cluster_reads_;
  std::uint64_t spec_reads_ = 0;
};

/// Run one epoch entry speculatively: execute `program` over the workspace
/// and publish on success.  A MispredictedAccess demotes the entry
/// (nothing published) and is reported in the outcome; any other exception
/// propagates (a workload bug should surface, not vanish into demotion).
EntryOutcome run_entry(const ir::TxProgram& program,
                       const std::vector<ir::Record>& params,
                       const KeyFootprint& planned, Workspace& workspace);

}  // namespace acn::queue
