// Epoch planning for the queue-oriented deterministic executor.
//
// Per Qadah's queue-oriented transaction-processing paradigm (QueCC /
// Q-Store), the planner batches submitted transactions into an *epoch* and
// turns their predicted footprints into priority-ordered per-key execution
// queues: a transaction's priority is its arrival order inside the epoch,
// and every key queue lists the transactions touching that key in priority
// order.  Two transactions that conflict are therefore *ordered* — the
// later one simply waits for the earlier one — instead of racing an
// optimistic validation one of them must lose.
//
// The plan is a pure function of the batch's footprints: no clocks, no
// cluster, no threads.  plan_epoch computes
//   * key_queues   — per-key priority queues in canonical (ascending key)
//     order, the order every downstream consumer (prefetch batching, the
//     epoch commit's write set) iterates in;
//   * deps/dependents — the execution DAG: entry j waits on entry i when i
//     immediately precedes j in some key queue.  Adjacency per key is
//     sufficient (precedence is transitive along the queue), so the DAG has
//     at most one edge per queue position.  Both read-read and write-write
//     neighbors are ordered: determinism — every replanning of the same
//     batch executes in the same order — is what makes speculation safe,
//     and it costs nothing because ordered entries still run back to back.
//   * footprint    — the union footprint of the epoch (ascending, deduped,
//     for_write OR-ed), which seeds the epoch transaction's route plan.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/store/key.hpp"

namespace acn::queue {

struct EpochPlan {
  /// Per-key execution queues: entry indices in priority (arrival) order,
  /// keys in canonical ascending order.
  std::map<store::ObjectKey, std::vector<std::size_t>> key_queues;
  /// deps[i] = distinct entries that must complete before entry i may run.
  std::vector<std::size_t> deps;
  /// dependents[i] = entries whose deps count drops when entry i completes.
  std::vector<std::vector<std::size_t>> dependents;
  /// Union of the planned footprints (ascending, deduped, for_write OR-ed).
  KeyFootprint footprint;

  /// Entries with no predecessor — the initial ready set.
  std::vector<std::size_t> roots() const;
};

/// Build the epoch plan for a batch of predicted footprints (entry i's
/// priority is i).  Footprints must be canonical (ascending, deduplicated),
/// as acn::predicted_footprint produces them.
EpochPlan plan_epoch(const std::vector<const KeyFootprint*>& footprints);

}  // namespace acn::queue
