#include "src/queue/epoch.hpp"

#include <algorithm>

namespace acn::queue {

std::vector<std::size_t> EpochPlan::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < deps.size(); ++i)
    if (deps[i] == 0) out.push_back(i);
  return out;
}

EpochPlan plan_epoch(const std::vector<const KeyFootprint*>& footprints) {
  EpochPlan plan;
  const std::size_t n = footprints.size();
  plan.deps.assign(n, 0);
  plan.dependents.assign(n, {});

  std::map<store::ObjectKey, bool> merged;  // key -> for_write union
  for (std::size_t i = 0; i < n; ++i) {
    for (const FootprintEntry& entry : *footprints[i]) {
      plan.key_queues[entry.key].push_back(i);
      merged[entry.key] |= entry.for_write;
    }
  }

  plan.footprint.reserve(merged.size());
  for (const auto& [key, for_write] : merged)
    plan.footprint.push_back({key, for_write});

  // One edge per adjacent queue pair; a pair sharing several keys must
  // still count as ONE dependency, so predecessor lists are deduplicated
  // before they become counts.
  std::vector<std::vector<std::size_t>> preds(n);
  for (const auto& [key, queue] : plan.key_queues)
    for (std::size_t i = 1; i < queue.size(); ++i)
      preds[queue[i]].push_back(queue[i - 1]);
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(preds[i].begin(), preds[i].end());
    preds[i].erase(std::unique(preds[i].begin(), preds[i].end()),
                   preds[i].end());
    plan.deps[i] = preds[i].size();
    for (const std::size_t p : preds[i]) plan.dependents[p].push_back(i);
  }
  return plan;
}

}  // namespace acn::queue
