#include "src/queue/executor.hpp"

#include <algorithm>
#include <utility>

namespace acn::queue {

SpecBackend::SpecBackend(Workspace& workspace, const KeyFootprint& planned)
    : workspace_(workspace), planned_(planned) {}

bool SpecBackend::planned(const ir::ObjectKey& key) const {
  const auto it = std::lower_bound(
      planned_.begin(), planned_.end(), key,
      [](const FootprintEntry& entry, const ir::ObjectKey& k) {
        return entry.key < k;
      });
  return it != planned_.end() && it->key == key;
}

ir::Record SpecBackend::read(const ir::ObjectKey& key) {
  if (!planned(key)) throw MispredictedAccess{key};
  if (const auto it = writes_.find(key); it != writes_.end())
    return it->second;
  std::lock_guard<std::mutex> lock(workspace_.mutex);
  if (const auto it = workspace_.written.find(key);
      it != workspace_.written.end()) {
    ++spec_reads_;
    return it->second;
  }
  if (workspace_.absent.count(key) != 0) throw MispredictedAccess{key};
  const auto it = workspace_.cache.find(key);
  // Planned keys are prefetched exhaustively, so a cache miss means the
  // planner never saw this batch — treat it as a misprediction rather than
  // guessing at cluster state.
  if (it == workspace_.cache.end()) throw MispredictedAccess{key};
  cluster_reads_.emplace(key, it->second);
  return it->second.value;
}

void SpecBackend::write(const ir::ObjectKey& key, ir::Record value) {
  // An unplanned write would race a concurrent entry outside the queues'
  // ordering guarantee; demote instead of installing nondeterminism.
  if (!planned(key)) throw MispredictedAccess{key};
  writes_[key] = std::move(value);
}

void SpecBackend::insert(const ir::ObjectKey& key, ir::Record value) {
  // The epoch commit validates read checks only, never write versions, so
  // a buffered write with no prior read IS a blind insert.
  write(key, std::move(value));
}

void SpecBackend::publish() {
  std::lock_guard<std::mutex> lock(workspace_.mutex);
  for (auto& [key, value] : writes_)
    workspace_.written[key] = std::move(value);
  // emplace: the first reader's version stands (later readers of the same
  // key saw the identical prefetched version — the cache is immutable for
  // the epoch).
  for (const auto& [key, record] : cluster_reads_)
    workspace_.reads_used.emplace(key, record);
}

EntryOutcome run_entry(const ir::TxProgram& program,
                       const std::vector<ir::Record>& params,
                       const KeyFootprint& planned, Workspace& workspace) {
  EntryOutcome out;
  SpecBackend backend(workspace, planned);
  ir::TxEnv env(backend, program, params);
  try {
    for (const ir::Op& op : program.ops) {
      ++out.ops;
      if (op.is_remote())
        env.run_remote(op.remote);
      else
        op.local.fn(env);
    }
  } catch (const MispredictedAccess& miss) {
    out.mispredicted = miss.key;
    return out;
  }
  backend.publish();
  out.spec_reads = backend.spec_reads();
  out.committed = true;
  return out;
}

}  // namespace acn::queue
