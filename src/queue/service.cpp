#include "src/queue/service.hpp"

#include <algorithm>
#include <utility>

namespace acn::queue {
namespace {

/// Ordinal namespace for epoch services: far above the driver's per-thread
/// client ordinals, unique per service so two lanes on one cluster can
/// never share a network identity or a TxId namespace.
int next_service_ordinal() {
  static std::atomic<int> seq{0};
  return 0x5EE0 + seq.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

EpochService::EpochService(harness::Cluster& cluster,
                           const shard::ShardRouter& router,
                           QueueConfig config, std::uint64_t seed,
                           obs::Observability* obs)
    : config_(config),
      router_(router),
      obs_(obs),
      ordinal_(next_service_ordinal()),
      coordinator_(cluster, router, ordinal_, seed ^ 0xE90CULL) {
  stubs_.reserve(cluster.n_groups());
  for (std::size_t g = 0; g < cluster.n_groups(); ++g)
    stubs_.push_back(cluster.make_group_stub(g, ordinal_, seed + g));
  const std::size_t n_executors = std::max<std::size_t>(1, config_.n_executors);
  executors_.reserve(n_executors);
  for (std::size_t i = 0; i < n_executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
  planner_ = std::thread([this] { planner_loop(); });
}

EpochService::~EpochService() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    submit_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    work_cv_.notify_all();
  }
  planner_.join();
  for (std::thread& t : executors_) t.join();
  // The planner drains pending submissions as demotions on stop, so no
  // submitter can be left waiting (defensively — the driver joins its
  // client threads before the bench tears the fleet down).
}

void EpochService::set_logs(nesting::HistoryLog* history,
                            nesting::CrossShardLog* cross) {
  coordinator_.set_logs(history, cross);
}

shard::LaneOutcome EpochService::submit(const ir::TxProgram& program,
                                        const std::vector<ir::Record>& params,
                                        const KeyFootprint& predicted,
                                        acn::ExecStats& stats) {
  Submission submission;
  submission.program = &program;
  submission.params = &params;
  submission.footprint = predicted;
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_relaxed))
      return shard::LaneOutcome::kDemoted;
    pending_.push_back(&submission);
  }
  submit_cv_.notify_one();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return submission.done; });

  // Failed epoch attempts re-executed this entry; account them as the full
  // aborts they are, so queue-mode abort numbers stay honest.
  stats.full_aborts +=
      static_cast<std::uint64_t>(std::max(0, submission.epoch_retries));
  if (submission.outcome == shard::LaneOutcome::kCommitted) {
    ++stats.commits;
    ++stats.blocks_executed;  // the epoch ran the program as one window
    stats.ops_executed += submission.result.ops;
  }
  return submission.outcome;
}

void EpochService::planner_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    submit_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) || !pending_.empty();
    });
    if (stop_.load(std::memory_order_relaxed)) break;
    // Let the epoch fill: cut at epoch_max, or when the wait expires with
    // whatever arrived.
    const auto deadline = std::chrono::steady_clock::now() + config_.epoch_wait;
    submit_cv_.wait_until(lock, deadline, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.size() >= config_.epoch_max;
    });
    if (stop_.load(std::memory_order_relaxed)) break;

    const std::size_t take = std::min(pending_.size(), config_.epoch_max);
    std::vector<Submission*> batch(pending_.begin(),
                                   pending_.begin() + static_cast<long>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(take));
    lock.unlock();
    run_one_epoch(batch);
    lock.lock();
    for (Submission* s : batch) s->done = true;
    done_cv_.notify_all();
  }
  // Drain on stop: everything still pending demotes (submit() reruns it
  // optimistically — or, in the teardown case, nobody is waiting).
  for (Submission* s : pending_) {
    s->outcome = shard::LaneOutcome::kDemoted;
    s->done = true;
  }
  pending_.clear();
  done_cv_.notify_all();
}

std::uint32_t EpochService::group_for(const store::ObjectKey& key,
                                      std::uint32_t home) const {
  const shard::ShardMap& map = router_.map();
  return map.replicated(key.cls) ? home : map.shard_of(key);
}

void EpochService::prefetch(const EpochPlan& plan, dtm::TxId tx,
                            std::uint32_t home, Workspace& workspace) {
  std::map<std::uint32_t, std::vector<store::ObjectKey>> by_group;
  for (const FootprintEntry& entry : plan.footprint)
    by_group[group_for(entry.key, home)].push_back(entry.key);
  for (auto& [group, keys] : by_group) {
    dtm::QuorumStub& stub = stubs_.at(group);
    try {
      dtm::BatchedReadOutcome out = stub.read_many(tx, keys, {});
      for (std::size_t i = 0; i < keys.size(); ++i)
        workspace.cache[keys[i]] = std::move(out.records[i]);
    } catch (const dtm::ObjectMissing&) {
      // Some key has no replica (a blind-insert target, or a routing
      // surprise).  Fall back per key so the present ones still cache and
      // the absent ones are marked (reads of them demote).
      for (const store::ObjectKey& key : keys) {
        try {
          workspace.cache[key] = stub.read(tx, key, {}).record;
        } catch (const dtm::ObjectMissing&) {
          workspace.absent.insert(key);
        }
      }
    }
  }
}

void EpochService::execute(const EpochPlan& plan,
                           std::vector<Submission*>& batch,
                           Workspace& workspace) {
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    active_.plan = &plan;
    active_.batch = &batch;
    active_.workspace = &workspace;
    active_.ready = plan.roots();
    active_.deps = plan.deps;
    active_.remaining = batch.size();
    epoch_live_ = true;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(epoch_mu_);
  epoch_done_cv_.wait(lock, [&] { return active_.remaining == 0; });
  epoch_live_ = false;
}

void EpochService::executor_loop() {
  std::unique_lock<std::mutex> lock(epoch_mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             (epoch_live_ && !active_.ready.empty());
    });
    if (stop_.load(std::memory_order_relaxed)) return;
    const std::size_t index = active_.ready.back();
    active_.ready.pop_back();
    const EpochPlan& plan = *active_.plan;
    Workspace& workspace = *active_.workspace;
    Submission& entry = *(*active_.batch)[index];
    lock.unlock();
    EntryOutcome out =
        run_entry(*entry.program, *entry.params, entry.footprint, workspace);
    lock.lock();
    entry.result = out;
    // Completion (committed OR demoted) unblocks the queue successors —
    // a demoted entry published nothing, so they read pre-epoch state.
    for (const std::size_t dependent : plan.dependents[index]) {
      if (--active_.deps[dependent] == 0) {
        active_.ready.push_back(dependent);
        work_cv_.notify_one();
      }
    }
    if (--active_.remaining == 0) epoch_done_cv_.notify_all();
  }
}

void EpochService::run_one_epoch(std::vector<Submission*>& batch) {
  std::vector<const KeyFootprint*> footprints;
  footprints.reserve(batch.size());
  for (const Submission* s : batch) footprints.push_back(&s->footprint);
  const EpochPlan plan = plan_epoch(footprints);
  const std::uint32_t home = router_.plan(plan.footprint).home();

  stats_.epochs.fetch_add(1, std::memory_order_relaxed);
  if (obs_) {
    obs_->queue_epochs.add();
    obs_->queue_epoch_size.observe(batch.size());
  }

  bool epoch_decided = false;
  int retries_used = 0;
  for (int attempt = 0; attempt <= config_.max_epoch_retries; ++attempt) {
    Workspace workspace;
    for (Submission* s : batch) s->result = {};
    try {
      shard::ShardTx tx = coordinator_.begin(plan.footprint);
      prefetch(plan, tx.id(), home, workspace);
      execute(plan, batch, workspace);
      if (workspace.written.empty() && workspace.reads_used.empty()) {
        // Every entry demoted — nothing to decide.
        tx.abort();
        epoch_decided = true;
        break;
      }
      shard::ShardTx::Checkpoint state;
      state.reads = workspace.reads_used;
      for (const auto& [key, record] : workspace.reads_used)
        state.read_groups[key] = group_for(key, home);
      for (const auto& [key, value] : workspace.written)
        state.writes[key] = value;
      tx.restore(std::move(state));
      // ONE decision for the whole epoch: single-group epochs take the
      // classic prepare+commit, multi-group epochs cross-shard 2PC with
      // decision records and in-doubt parking — all inherited.
      tx.commit();
      epoch_decided = true;
      break;
    } catch (const dtm::TxAbort&) {
      // The prefetched snapshot went stale (optimistic traffic in hybrid
      // mode, chaos) or the cluster was busy/unreachable.  Refetch and
      // re-run the whole epoch: execution is deterministic, so the re-run
      // reproduces the same queue order over the fresh snapshot.
      ++retries_used;
      stats_.epoch_retries.fetch_add(1, std::memory_order_relaxed);
      if (obs_) obs_->queue_epoch_retries.add();
      for (Submission* s : batch) ++s->epoch_retries;
      if (attempt >= config_.max_epoch_retries) break;
      const auto base = config_.retry_backoff.count();
      std::this_thread::sleep_for(
          std::chrono::nanoseconds{base << std::min(attempt, 4)});
    }
  }

  for (Submission* s : batch) {
    const bool committed = epoch_decided && s->result.committed;
    s->outcome = committed ? shard::LaneOutcome::kCommitted
                           : shard::LaneOutcome::kDemoted;
    if (committed) {
      stats_.committed.fetch_add(1, std::memory_order_relaxed);
      stats_.spec_reads.fetch_add(s->result.spec_reads,
                                  std::memory_order_relaxed);
      if (obs_) {
        obs_->queue_spec_commits.add();
        obs_->queue_spec_reads.add(s->result.spec_reads);
      }
    } else {
      stats_.demoted.fetch_add(1, std::memory_order_relaxed);
      if (obs_) obs_->queue_spec_demotions.add();
      if (s->result.mispredicted) {
        stats_.mispredicted.fetch_add(1, std::memory_order_relaxed);
        if (obs_) obs_->queue_spec_mispredicts.add();
      }
    }
  }
  if (epoch_decided) {
    stats_.epoch_commits.fetch_add(1, std::memory_order_relaxed);
    if (obs_) obs_->queue_epoch_commits.add();
  }
}

}  // namespace acn::queue
