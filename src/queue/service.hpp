// The queue-oriented deterministic epoch executor (shard::Lane).
//
// EpochService is the subsystem's engine: a planner thread batches
// submitted transactions into epochs, plans per-key priority queues from
// their predicted footprints (src/queue/epoch.hpp), prefetches every
// planned key in one batched quorum round per group, and a pool of queue
// executors runs the entries speculatively against the prefetched
// workspace (src/queue/executor.hpp).  All writes of an epoch then commit
// in ONE decision: the workspace's consumed reads and final writes are
// loaded into a ShardTx (restore) and committed — single-group epochs take
// the classic one-prepare fast path, multi-group epochs take cross-shard
// 2PC with decision records, in-doubt parking and the WAL group-commit
// underneath, all inherited from src/shard.  Cross-shard 2PC thus
// collapses from one decision per transaction into one decision per epoch.
//
// Intra-epoch conflicts never abort: they are queue order.  The epoch can
// still lose a *validation* race against state that changed after the
// prefetch (hybrid mode's optimistic traffic, a concurrent lane, chaos);
// the planner then refetches and re-runs the whole epoch — deterministic,
// so every re-run executes the same order — up to max_epoch_retries, after
// which the batch is demoted wholesale to the optimistic path (liveness
// does not depend on the epoch ever winning).
//
// Submitters block in submit() until their epoch decides; the driver's
// client threads thus pace themselves to the epoch cadence, which is the
// paradigm's batching discipline (QueCC's "plan, then execute").
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/harness/cluster.hpp"
#include "src/obs/obs.hpp"
#include "src/queue/epoch.hpp"
#include "src/queue/executor.hpp"
#include "src/shard/client.hpp"
#include "src/shard/coordinator.hpp"

namespace acn::queue {

struct QueueConfig {
  /// Epoch cut size: the planner closes an epoch when this many
  /// transactions are pending (or epoch_wait elapsed with at least one).
  std::size_t epoch_max = 128;
  /// How long the planner waits for the epoch to fill after the first
  /// pending submission.  The effective epoch size under a closed-loop
  /// driver is ~n_clients: every client blocks in submit(), so waiting
  /// longer than their resubmission jitter buys nothing.
  std::chrono::nanoseconds epoch_wait{std::chrono::microseconds{200}};
  /// Queue executor threads draining the ready entries of an epoch.
  std::size_t n_executors = 4;
  /// Whole-epoch re-runs after a commit-time abort (validation races from
  /// concurrent optimistic traffic, cluster faults) before demoting the
  /// batch to the optimistic path.
  int max_epoch_retries = 12;
  /// Backoff base between epoch re-runs (doubling, capped).
  std::chrono::nanoseconds retry_backoff{std::chrono::microseconds{100}};
};

/// Lane-side counters (tests and benches read these; the obs bundle gets
/// the same signals as queue.epoch.* / queue.spec.* when wired).
struct ServiceStats {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> epochs{0};          // epochs planned
  std::atomic<std::uint64_t> epoch_commits{0};   // epochs whose decision held
  std::atomic<std::uint64_t> epoch_retries{0};   // whole-epoch re-runs
  std::atomic<std::uint64_t> committed{0};       // entries committed in-epoch
  std::atomic<std::uint64_t> demoted{0};         // entries returned kDemoted
  std::atomic<std::uint64_t> mispredicted{0};    // demotions by unplanned key
  std::atomic<std::uint64_t> spec_reads{0};      // reads from epoch writes
};

class EpochService final : public shard::Lane {
 public:
  /// The service shares `cluster`'s network as one more client identity
  /// (its own ordinal namespace, disjoint from the driver's thread
  /// ordinals) and must be destroyed before the cluster.  `router` is the
  /// fleet's (must outlive the service).  `obs` may be null.
  EpochService(harness::Cluster& cluster, const shard::ShardRouter& router,
               QueueConfig config = {}, std::uint64_t seed = 1,
               obs::Observability* obs = nullptr);
  ~EpochService() override;

  EpochService(const EpochService&) = delete;
  EpochService& operator=(const EpochService&) = delete;

  shard::LaneOutcome submit(const ir::TxProgram& program,
                            const std::vector<ir::Record>& params,
                            const KeyFootprint& predicted,
                            acn::ExecStats& stats) override;

  /// Verification taps, forwarded to the epoch coordinator: `history`
  /// receives every epoch commit as one transaction (the epoch IS one
  /// serializable unit), `cross` every multi-group epoch decision.
  void set_logs(nesting::HistoryLog* history, nesting::CrossShardLog* cross);

  const ServiceStats& stats() const noexcept { return stats_; }
  const shard::CoordinatorStats& coordinator_stats() const noexcept {
    return coordinator_.stats();
  }

 private:
  struct Submission {
    const ir::TxProgram* program = nullptr;
    const std::vector<ir::Record>* params = nullptr;
    KeyFootprint footprint;
    EntryOutcome result;  // written by executors, read by the planner
    shard::LaneOutcome outcome = shard::LaneOutcome::kDemoted;
    int epoch_retries = 0;  // failed epoch attempts this entry sat through
    bool done = false;      // guarded by mu_
  };

  /// The epoch currently on the executor pool (guarded by epoch_mu_).
  struct ActiveEpoch {
    const EpochPlan* plan = nullptr;
    std::vector<Submission*>* batch = nullptr;
    Workspace* workspace = nullptr;
    std::vector<std::size_t> ready;
    std::vector<std::size_t> deps;  // working copy, decremented live
    std::size_t remaining = 0;
  };

  void planner_loop();
  void executor_loop();
  void run_one_epoch(std::vector<Submission*>& batch);
  /// One batched quorum round per participating group into the workspace.
  void prefetch(const EpochPlan& plan, dtm::TxId tx, std::uint32_t home,
                Workspace& workspace);
  /// Run the planned entries over the executor pool; returns when all done.
  void execute(const EpochPlan& plan, std::vector<Submission*>& batch,
               Workspace& workspace);
  std::uint32_t group_for(const store::ObjectKey& key,
                          std::uint32_t home) const;

  const QueueConfig config_;
  const shard::ShardRouter& router_;
  obs::Observability* const obs_;
  /// The service's network identity (client ordinal for the coordinator
  /// and every prefetch stub) — unique per service instance.
  const int ordinal_;
  shard::CrossShardCoordinator coordinator_;
  /// One stub per group for the epoch-wide prefetch (read_many).
  std::vector<dtm::QuorumStub> stubs_;
  ServiceStats stats_;

  std::atomic<bool> stop_{false};

  // Submission side: pending queue + completion flags.
  std::mutex mu_;
  std::condition_variable submit_cv_;  // planner <- submitters
  std::condition_variable done_cv_;    // submitters <- planner
  std::deque<Submission*> pending_;

  // Execution side: the planner/executor handoff.
  std::mutex epoch_mu_;
  std::condition_variable work_cv_;        // executors <- planner
  std::condition_variable epoch_done_cv_;  // planner <- executors
  ActiveEpoch active_;
  bool epoch_live_ = false;

  std::thread planner_;
  std::vector<std::thread> executors_;
};

}  // namespace acn::queue
