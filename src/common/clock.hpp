// Monotonic-clock helpers shared by the runtime and the harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace acn {

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace acn
