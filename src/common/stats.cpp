#include "src/common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace acn {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void LatencyHistogram::add(std::uint64_t value_ns) noexcept {
  const int bucket = value_ns == 0 ? 0 : 64 - std::countl_zero(value_ns);
  buckets_[std::min(bucket, kBuckets - 1)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t LatencyHistogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return i == 0 ? 1 : (1ULL << i);
  }
  return ~0ULL;
}

void LatencyHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

IntervalSeries::IntervalSeries(std::size_t intervals) : slots_(intervals) {}

void IntervalSeries::add(std::size_t interval, std::uint64_t delta) noexcept {
  if (interval < slots_.size())
    slots_[interval].fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t IntervalSeries::at(std::size_t interval) const noexcept {
  return interval < slots_.size() ? slots_[interval].load(std::memory_order_relaxed)
                                  : 0;
}

std::vector<std::uint64_t> IntervalSeries::snapshot() const {
  std::vector<std::uint64_t> out(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) out[i] = at(i);
  return out;
}

double percentile_of(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::string format_series(const std::vector<double>& values, int width) {
  std::string out;
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%*.1f", width, v);
    out += buf;
  }
  return out;
}

}  // namespace acn
