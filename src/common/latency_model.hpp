// Latency models for the simulated network.
//
// The paper's testbed is a 1 Gbps switched LAN; what matters for the
// reproduced phenomena is that a remote object access costs orders of
// magnitude more than local compute, so that re-executing remote reads
// after an abort dominates transaction latency.  The models below supply
// that cost.  They return a duration; the network layer sleeps for it,
// which lets concurrently executing client threads overlap their waits
// exactly like real in-flight messages do.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace acn {

using Nanos = std::chrono::nanoseconds;

/// One-way message delay model.  Implementations must be thread-safe.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Delay for a message of `bytes` bytes from node `from` to node `to`.
  virtual Nanos delay(int from, int to, std::size_t bytes) const = 0;
};

/// Zero delay; used by unit tests so they run instantly.
class ZeroLatency final : public LatencyModel {
 public:
  Nanos delay(int, int, std::size_t) const override { return Nanos{0}; }
};

/// Fixed propagation delay plus per-byte serialization cost
/// (switched-LAN approximation: base ~= software + switch latency,
/// per-byte ~= 1/bandwidth).
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Nanos base, Nanos per_kilobyte = Nanos{0})
      : base_(base), per_kb_(per_kilobyte) {}

  Nanos delay(int from, int to, std::size_t bytes) const override {
    if (from == to) return Nanos{0};  // loopback
    return base_ + per_kb_ * static_cast<std::int64_t>(bytes / 1024);
  }

 private:
  Nanos base_;
  Nanos per_kb_;
};

/// Base delay with bounded uniform jitter, deterministic per (from, to,
/// message index) so runs remain reproducible without shared RNG state.
class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(Nanos base, Nanos jitter, std::uint64_t seed = 42)
      : base_(base), jitter_(jitter), seed_(seed) {}

  Nanos delay(int from, int to, std::size_t bytes) const override;

 private:
  Nanos base_;
  Nanos jitter_;
  std::uint64_t seed_;
};

/// Factory for the default benchmark model (LAN-like, scaled down so the
/// single-machine simulation finishes quickly: 50us base RTT component).
std::shared_ptr<const LatencyModel> default_lan_model();

}  // namespace acn
