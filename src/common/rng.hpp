// Deterministic pseudo-random number generation for the simulator.
//
// Everything in the repository that needs randomness takes an explicit
// generator so experiments are reproducible from a single seed.  The core
// generator is xoshiro256** seeded through splitmix64, which is both fast
// and high quality; on top of it we provide the samplers the workloads
// need: uniform ranges, Bernoulli, Zipf (for hot-spot skew) and TPC-C's
// NURand non-uniform distribution.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace acn {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    // Lemire's nearly-divisionless bounded sampling.
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    __uint128_t m = static_cast<__uint128_t>((*this)()) * span;
    auto low = static_cast<std::uint64_t>(m);
    if (low < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (low < threshold) {
        m = static_cast<__uint128_t>((*this)()) * span;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Split off an independently-seeded child generator (for per-thread use).
  Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `theta`.
/// Uses the precomputed-CDF method; construction is O(n), sampling O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double theta() const noexcept { return theta_; }

 private:
  std::vector<double> cdf_;
  double theta_ = 0.0;
};

/// TPC-C NURand(A, x, y): non-uniform random over [x, y].
/// `c` is the per-run constant the spec draws once; pass any fixed value.
std::uint64_t nurand(Rng& rng, std::uint64_t a, std::uint64_t x, std::uint64_t y,
                     std::uint64_t c) noexcept;

}  // namespace acn
