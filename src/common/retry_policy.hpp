// Randomized-exponential-backoff retry policy.
//
// One struct owns the retry constants that used to be hard-coded in the
// quorum stub's busy ladder (base delay, doubling with a cap, full-range
// jitter) so every layer that backs off — the stub's busy retries, the
// executor's full-restart backoff, and the scheduler's admission pacing —
// shares the same documented shape instead of re-deriving it:
//
//   delay(attempt) = shifted + U[0, jitter * shifted],
//   shifted        = base << min(attempt, max_doublings).
//
// `attempt` counts from 0; with the defaults the un-jittered delay doubles
// six times and then plateaus at 64x base, and the jitter term spreads
// concurrent retriers across one extra delay-width to break synchronized
// convoys.  All fields are plain data so configs can embed and tweak them.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "src/common/rng.hpp"

namespace acn {

struct RetryPolicy {
  /// Retries before the caller surfaces the failure (meaningful where the
  /// policy gates a bounded ladder; pacing-only users ignore it).
  int max_retries = 10;
  /// Un-jittered delay of attempt 0.
  std::chrono::nanoseconds base{std::chrono::microseconds{50}};
  /// Doublings before the exponential plateaus (attempt is clamped here).
  int max_doublings = 6;
  /// Jitter fraction: the random addend is uniform in [0, jitter*shifted].
  /// 0 disables jitter (deterministic tests); 1 is the classic full-range
  /// decorrelation the stub has always used.
  double jitter = 1.0;

  /// Backoff delay for `attempt` (0-based), jittered through `rng`.
  std::chrono::nanoseconds delay(int attempt, Rng& rng) const noexcept {
    const std::int64_t shifted =
        base.count() << std::min(std::max(attempt, 0), max_doublings);
    std::int64_t jittered = 0;
    if (jitter > 0.0 && shifted > 0) {
      const auto span = static_cast<std::uint64_t>(
          jitter * static_cast<double>(shifted));
      if (span > 0)
        jittered = static_cast<std::int64_t>(rng.uniform(0, span));
    }
    return std::chrono::nanoseconds{shifted + jittered};
  }
};

}  // namespace acn
