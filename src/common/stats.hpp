// Lightweight statistics utilities used by the DTM runtime and the
// benchmark harness: streaming moments, log-bucketed latency histograms,
// and per-interval throughput series (the unit the paper's Figure 4 plots).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace acn {

/// Streaming count/mean/variance/min/max (Welford).  Not thread-safe;
/// aggregate per-thread instances with merge().
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with power-of-two buckets over [1, 2^63).  Suitable for
/// nanosecond latencies.  add() is wait-free; percentile() is approximate
/// (bucket upper bound).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t value_ns) noexcept;
  std::uint64_t count() const noexcept;
  /// q in [0, 1]; returns the upper bound of the bucket containing the
  /// q-quantile, or 0 when empty.
  std::uint64_t percentile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Committed-operations-per-interval counter: the harness opens one slot
/// per measurement interval and client threads bump the slot for the
/// interval in which their transaction committed.
class IntervalSeries {
 public:
  explicit IntervalSeries(std::size_t intervals);

  void add(std::size_t interval, std::uint64_t delta = 1) noexcept;
  std::uint64_t at(std::size_t interval) const noexcept;
  std::size_t size() const noexcept { return slots_.size(); }
  std::vector<std::uint64_t> snapshot() const;

 private:
  std::vector<std::atomic<std::uint64_t>> slots_;
};

/// Exact percentile over a sample vector (sorts a copy).
double percentile_of(std::vector<double> samples, double q);

/// Render a vector of per-interval throughputs as "v0 v1 v2 ..." for logs.
std::string format_series(const std::vector<double>& values, int width = 9);

}  // namespace acn
