#include "src/common/latency_model.hpp"

#include <atomic>

#include "src/common/rng.hpp"

namespace acn {

Nanos JitterLatency::delay(int from, int to, std::size_t bytes) const {
  if (from == to) return Nanos{0};
  // Stateless hash of (seed, from, to, bytes, a process-wide counter) so two
  // messages on the same link can still see different jitter.
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t h = seed_;
  h ^= splitmix64(h) + static_cast<std::uint64_t>(from) * 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(h) + static_cast<std::uint64_t>(to);
  h ^= splitmix64(h) + bytes;
  h ^= splitmix64(h) + counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t mixed = splitmix64(h);
  const auto jitter_ns = static_cast<std::int64_t>(
      mixed % static_cast<std::uint64_t>(jitter_.count() + 1));
  return base_ + Nanos{jitter_ns};
}

std::shared_ptr<const LatencyModel> default_lan_model() {
  using namespace std::chrono_literals;
  return std::make_shared<FixedLatency>(Nanos{25us}, Nanos{2us});
}

}  // namespace acn
