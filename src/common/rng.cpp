#include "src/common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acn {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (theta < 0.0) throw std::invalid_argument("ZipfSampler: theta must be >= 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::uint64_t nurand(Rng& rng, std::uint64_t a, std::uint64_t x, std::uint64_t y,
                     std::uint64_t c) noexcept {
  const std::uint64_t r1 = rng.uniform(0, a);
  const std::uint64_t r2 = rng.uniform(x, y);
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

}  // namespace acn
