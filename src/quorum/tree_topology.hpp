// Logical k-ary tree over server nodes.
//
// QR-DTM arranges replicas in a logical ternary tree (k = 3) and derives
// read/write quorums from it (Agrawal & El Abbadi's tree quorum protocol).
// Node ids are assigned in breadth-first order: the root is 0 and the
// children of node i are k*i + 1 ... k*i + k (those that exist).
#pragma once

#include <cstddef>
#include <vector>

namespace acn::quorum {

using NodeId = int;

class TreeTopology {
 public:
  /// A complete (last level possibly partial) k-ary tree with n nodes.
  TreeTopology(std::size_t n, int arity = 3);

  std::size_t size() const noexcept { return n_; }
  int arity() const noexcept { return arity_; }
  NodeId root() const noexcept { return 0; }

  bool is_leaf(NodeId id) const noexcept { return children(id).empty(); }
  std::vector<NodeId> children(NodeId id) const;
  NodeId parent(NodeId id) const noexcept;  // -1 for the root
  int level_of(NodeId id) const noexcept;
  int depth() const noexcept;  // number of levels

  /// All nodes at a given level, in id order.
  std::vector<NodeId> level(int lvl) const;

 private:
  std::size_t n_;
  int arity_;
};

}  // namespace acn::quorum
