#include "src/quorum/tree_topology.hpp"

#include <stdexcept>

namespace acn::quorum {

TreeTopology::TreeTopology(std::size_t n, int arity) : n_(n), arity_(arity) {
  if (n == 0) throw std::invalid_argument("TreeTopology: n must be > 0");
  if (arity < 2) throw std::invalid_argument("TreeTopology: arity must be >= 2");
}

std::vector<NodeId> TreeTopology::children(NodeId id) const {
  std::vector<NodeId> out;
  const auto base = static_cast<std::size_t>(id) * static_cast<std::size_t>(arity_);
  for (int c = 1; c <= arity_; ++c) {
    const std::size_t child = base + static_cast<std::size_t>(c);
    if (child < n_) out.push_back(static_cast<NodeId>(child));
  }
  return out;
}

NodeId TreeTopology::parent(NodeId id) const noexcept {
  if (id <= 0) return -1;
  return (id - 1) / arity_;
}

int TreeTopology::level_of(NodeId id) const noexcept {
  int lvl = 0;
  while (id > 0) {
    id = parent(id);
    ++lvl;
  }
  return lvl;
}

int TreeTopology::depth() const noexcept {
  return level_of(static_cast<NodeId>(n_ - 1)) + 1;
}

std::vector<NodeId> TreeTopology::level(int lvl) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n_; ++i)
    if (level_of(static_cast<NodeId>(i)) == lvl) out.push_back(static_cast<NodeId>(i));
  return out;
}

}  // namespace acn::quorum
