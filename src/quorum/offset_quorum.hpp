// Group-scoped quorum construction for the sharded cluster.
//
// A quorum group is an ordinary quorum system (tree, level-majority, ROWA)
// built over its own replica set, but those replicas live at a *slice* of
// the cluster's global node-id space: group g of a cluster with m servers
// per group owns ids [g*m, (g+1)*m).  Every QuorumSystem implementation
// numbers its nodes 0..n-1 internally — the tree topology, majority
// recursion and designated-quorum seeding all assume that — so rather than
// threading an origin through each construction, this adapter translates:
// it wraps an inner system built over local ids and adds a fixed offset to
// every id it hands out.  The intersection properties are preserved
// verbatim (adding a constant is a bijection on the member sets), and the
// inner system never learns it has been relocated.
#pragma once

#include <memory>

#include "src/quorum/quorum_system.hpp"

namespace acn::quorum {

class OffsetQuorumSystem final : public QuorumSystem {
 public:
  OffsetQuorumSystem(std::unique_ptr<QuorumSystem> inner, NodeId offset);

  std::size_t node_count() const override { return inner_->node_count(); }
  std::vector<NodeId> read_quorum(Rng& rng) const override;
  std::vector<NodeId> write_quorum(Rng& rng) const override;

  NodeId offset() const noexcept { return offset_; }
  const QuorumSystem& inner() const noexcept { return *inner_; }

 private:
  std::vector<NodeId> shift(std::vector<NodeId> ids) const;

  std::unique_ptr<QuorumSystem> inner_;
  NodeId offset_;
};

}  // namespace acn::quorum
