#include "src/quorum/offset_quorum.hpp"

#include <stdexcept>
#include <utility>

namespace acn::quorum {

OffsetQuorumSystem::OffsetQuorumSystem(std::unique_ptr<QuorumSystem> inner,
                                       NodeId offset)
    : inner_(std::move(inner)), offset_(offset) {
  if (inner_ == nullptr)
    throw std::invalid_argument("OffsetQuorumSystem: null inner system");
  if (offset_ < 0)
    throw std::invalid_argument("OffsetQuorumSystem: negative offset");
}

std::vector<NodeId> OffsetQuorumSystem::shift(std::vector<NodeId> ids) const {
  for (NodeId& id : ids) id += offset_;
  return ids;
}

std::vector<NodeId> OffsetQuorumSystem::read_quorum(Rng& rng) const {
  return shift(inner_->read_quorum(rng));
}

std::vector<NodeId> OffsetQuorumSystem::write_quorum(Rng& rng) const {
  return shift(inner_->write_quorum(rng));
}

}  // namespace acn::quorum
