#include "src/quorum/rowa_quorum.hpp"

#include <numeric>
#include <stdexcept>

namespace acn::quorum {

RowaQuorumSystem::RowaQuorumSystem(std::size_t n_nodes) : n_(n_nodes) {
  if (n_nodes == 0)
    throw std::invalid_argument("RowaQuorumSystem: need at least one node");
}

std::vector<NodeId> RowaQuorumSystem::read_quorum(Rng& rng) const {
  return {static_cast<NodeId>(rng.uniform(0, n_ - 1))};
}

std::vector<NodeId> RowaQuorumSystem::write_quorum(Rng& /*rng*/) const {
  std::vector<NodeId> all(n_);
  std::iota(all.begin(), all.end(), 0);
  return all;
}

}  // namespace acn::quorum
