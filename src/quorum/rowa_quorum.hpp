// Read-One / Write-All (ROWA) as a quorum system.
//
// The classical full-replication extreme: any single replica serves a read
// (cheapest possible read quorum), every write installs on all replicas.
// Intersection trivially holds.  Included as a comparison point for the
// quorum ablation: ROWA minimizes read traffic but makes commits pay the
// full fan-out and blocks writes when any replica is down — the exact
// trade-off tree quorums soften.
#pragma once

#include "src/quorum/quorum_system.hpp"

namespace acn::quorum {

class RowaQuorumSystem final : public QuorumSystem {
 public:
  explicit RowaQuorumSystem(std::size_t n_nodes);

  std::size_t node_count() const override { return n_; }
  std::vector<NodeId> read_quorum(Rng& rng) const override;
  std::vector<NodeId> write_quorum(Rng& rng) const override;

 private:
  std::size_t n_;
};

}  // namespace acn::quorum
