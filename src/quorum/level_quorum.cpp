#include "src/quorum/level_quorum.hpp"

#include <algorithm>

namespace acn::quorum {

LevelMajorityQuorumSystem::LevelMajorityQuorumSystem(TreeTopology topology)
    : topology_(std::move(topology)) {
  levels_.resize(static_cast<std::size_t>(topology_.depth()));
  for (int lvl = 0; lvl < topology_.depth(); ++lvl)
    levels_[static_cast<std::size_t>(lvl)] = topology_.level(lvl);
}

std::vector<NodeId> LevelMajorityQuorumSystem::majority_of_level(int lvl,
                                                                 Rng& rng) const {
  const auto& nodes = levels_[static_cast<std::size_t>(lvl)];
  const std::size_t need = nodes.size() / 2 + 1;
  std::vector<NodeId> shuffled = nodes;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(0, i - 1);
    std::swap(shuffled[i - 1], shuffled[j]);
  }
  shuffled.resize(need);
  std::sort(shuffled.begin(), shuffled.end());
  return shuffled;
}

std::vector<NodeId> LevelMajorityQuorumSystem::read_quorum(Rng& rng) const {
  const int lvl = static_cast<int>(rng.uniform(0, levels_.size() - 1));
  return majority_of_level(lvl, rng);
}

std::vector<NodeId> LevelMajorityQuorumSystem::write_quorum(Rng& rng) const {
  std::vector<NodeId> out;
  for (int lvl = 0; lvl < topology_.depth(); ++lvl) {
    const auto part = majority_of_level(lvl, rng);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace acn::quorum
