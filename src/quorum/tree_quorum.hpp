// Agrawal & El Abbadi's tree quorum protocol (VLDB '90), the construction
// QR-DTM cites for its quorums.
//
// For a subtree rooted at r with children c_1..c_m (majority M = floor(m/2)+1):
//   read(r)  = {r}                       -- the root alone suffices, or
//              union of read(c_i) over any M children  (recursive)
//   write(r) = {r} union write(c_i) over any M children (recursive, root
//              always included)
// These satisfy read/write and write/write intersection at every level.
#pragma once

#include <memory>

#include "src/quorum/quorum_system.hpp"

namespace acn::quorum {

class TreeQuorumSystem final : public QuorumSystem {
 public:
  /// `root_read_bias` is the probability that read-quorum selection stops at
  /// the subtree root instead of recursing into a child majority; 1.0 always
  /// reads the root only, 0.0 always recurses (until leaves).
  explicit TreeQuorumSystem(TreeTopology topology, double root_read_bias = 0.5);

  std::size_t node_count() const override { return topology_.size(); }
  std::vector<NodeId> read_quorum(Rng& rng) const override;
  std::vector<NodeId> write_quorum(Rng& rng) const override;

  const TreeTopology& topology() const noexcept { return topology_; }

 private:
  void read_rec(NodeId root, Rng& rng, std::vector<NodeId>& out) const;
  void write_rec(NodeId root, Rng& rng, std::vector<NodeId>& out) const;
  std::vector<NodeId> pick_majority(const std::vector<NodeId>& children,
                                    Rng& rng) const;

  TreeTopology topology_;
  double root_read_bias_;
};

}  // namespace acn::quorum
