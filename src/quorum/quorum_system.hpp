// Quorum-system interface.
//
// A quorum system over server nodes supplies read and write quorums with the
// intersection properties QR-DTM relies on for 1-copy serializability:
//   * every read quorum intersects every write quorum (a reader always sees
//     at least one replica holding the latest committed version), and
//   * every two write quorums intersect (two commits cannot both install
//     conflicting versions unobserved).
// Implementations may randomize quorum *selection* for load spreading; every
// returned set must satisfy the properties against every other possible set.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/quorum/tree_topology.hpp"

namespace acn::quorum {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  virtual std::size_t node_count() const = 0;

  /// A read quorum; `rng` drives selection among the valid alternatives.
  virtual std::vector<NodeId> read_quorum(Rng& rng) const = 0;

  /// A write quorum.
  virtual std::vector<NodeId> write_quorum(Rng& rng) const = 0;

  /// Deterministic quorums "designated" for a client, as in QR-DTM where
  /// each node is assigned fixed quorums.  Defaults to seeding selection
  /// from the client id.
  std::vector<NodeId> designated_read_quorum(int client_id) const {
    Rng rng(0x4ead0000ULL + static_cast<std::uint64_t>(client_id));
    return read_quorum(rng);
  }
  std::vector<NodeId> designated_write_quorum(int client_id) const {
    Rng rng(0xc0bb17ULL + static_cast<std::uint64_t>(client_id));
    return write_quorum(rng);
  }
};

/// Returns true when `a` and `b` share at least one node.  Both inputs must
/// be sorted ascending.
bool intersects(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

}  // namespace acn::quorum
