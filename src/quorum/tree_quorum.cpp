#include "src/quorum/tree_quorum.hpp"

#include <algorithm>

namespace acn::quorum {

bool intersects(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib)
      ++ia;
    else
      ++ib;
  }
  return false;
}

TreeQuorumSystem::TreeQuorumSystem(TreeTopology topology, double root_read_bias)
    : topology_(std::move(topology)), root_read_bias_(root_read_bias) {}

std::vector<NodeId> TreeQuorumSystem::read_quorum(Rng& rng) const {
  std::vector<NodeId> out;
  read_rec(topology_.root(), rng, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> TreeQuorumSystem::write_quorum(Rng& rng) const {
  std::vector<NodeId> out;
  write_rec(topology_.root(), rng, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> TreeQuorumSystem::pick_majority(
    const std::vector<NodeId>& children, Rng& rng) const {
  const std::size_t need = children.size() / 2 + 1;
  std::vector<NodeId> shuffled = children;
  // Fisher-Yates driven by the caller's RNG.
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(0, i - 1);
    std::swap(shuffled[i - 1], shuffled[j]);
  }
  shuffled.resize(need);
  return shuffled;
}

void TreeQuorumSystem::read_rec(NodeId root, Rng& rng,
                                std::vector<NodeId>& out) const {
  const auto children = topology_.children(root);
  if (children.empty() || rng.bernoulli(root_read_bias_)) {
    out.push_back(root);
    return;
  }
  for (NodeId child : pick_majority(children, rng)) read_rec(child, rng, out);
}

void TreeQuorumSystem::write_rec(NodeId root, Rng& rng,
                                 std::vector<NodeId>& out) const {
  out.push_back(root);
  const auto children = topology_.children(root);
  if (children.empty()) return;
  for (NodeId child : pick_majority(children, rng)) write_rec(child, rng, out);
}

}  // namespace acn::quorum
