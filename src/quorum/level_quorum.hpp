// Level-majority quorum policy, matching the paper's informal description of
// QR-DTM's quorums (Section II-B):
//   "A read quorum is the majority of children at a level of the tree,
//    while a write quorum is the majority of children at every level."
// Interpreted over tree *levels*: a read quorum is a majority of the nodes
// at one chosen level; a write quorum takes a majority of the nodes at
// every level.  Any read majority at level L intersects the write majority
// at level L, and two write quorums intersect at every level, so both
// required properties hold.
//
// Compared to the recursive tree quorum this trades smaller read quorums
// (when a level is small) against larger write quorums; it is provided both
// for fidelity to the paper's text and as an ablation point.
#pragma once

#include "src/quorum/quorum_system.hpp"

namespace acn::quorum {

class LevelMajorityQuorumSystem final : public QuorumSystem {
 public:
  explicit LevelMajorityQuorumSystem(TreeTopology topology);

  std::size_t node_count() const override { return topology_.size(); }
  std::vector<NodeId> read_quorum(Rng& rng) const override;
  std::vector<NodeId> write_quorum(Rng& rng) const override;

  const TreeTopology& topology() const noexcept { return topology_; }

 private:
  std::vector<NodeId> majority_of_level(int lvl, Rng& rng) const;

  TreeTopology topology_;
  std::vector<std::vector<NodeId>> levels_;
};

}  // namespace acn::quorum
