#include "src/nesting/history.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace acn::nesting {

void HistoryLog::record(CommittedTxn txn) {
  std::lock_guard lock(mutex_);
  txns_.push_back(std::move(txn));
}

std::vector<CommittedTxn> HistoryLog::snapshot() const {
  std::lock_guard lock(mutex_);
  return txns_;
}

std::size_t HistoryLog::size() const {
  std::lock_guard lock(mutex_);
  return txns_.size();
}

void HistoryLog::clear() {
  std::lock_guard lock(mutex_);
  txns_.clear();
}

void CrossShardLog::record(CrossShardTxn txn) {
  std::lock_guard lock(mutex_);
  txns_.push_back(std::move(txn));
}

std::vector<CrossShardTxn> CrossShardLog::snapshot() const {
  std::lock_guard lock(mutex_);
  return txns_;
}

std::size_t CrossShardLog::size() const {
  std::lock_guard lock(mutex_);
  return txns_.size();
}

void CrossShardLog::clear() {
  std::lock_guard lock(mutex_);
  txns_.clear();
}

namespace {

using store::ObjectKey;
using store::Version;

struct VersionedKey {
  ObjectKey key;
  Version version;
  friend bool operator<(const VersionedKey& a, const VersionedKey& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.version < b.version;
  }
};

/// Cycle detection via iterative three-colour DFS.
bool has_cycle(const std::vector<std::vector<std::size_t>>& adjacency) {
  const std::size_t n = adjacency.size();
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> colour(n, kWhite);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // node, next edge
  for (std::size_t start = 0; start < n; ++start) {
    if (colour[start] != kWhite) continue;
    colour[start] = kGrey;
    stack.push_back({start, 0});
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge < adjacency[node].size()) {
        const std::size_t next = adjacency[node][edge++];
        if (colour[next] == kGrey) return true;
        if (colour[next] == kWhite) {
          colour[next] = kGrey;
          stack.push_back({next, 0});
        }
      } else {
        colour[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

SerializabilityReport check_serializable(const std::vector<CommittedTxn>& history,
                                         store::Version seed_version) {
  SerializabilityReport report;

  // Who installed each (key, version)?
  std::map<VersionedKey, std::size_t> installer;
  for (std::size_t i = 0; i < history.size(); ++i) {
    for (const auto& [key, version] : history[i].writes) {
      const auto [it, inserted] = installer.emplace(
          VersionedKey{key, version}, i);
      if (!inserted) {
        report.ok = false;
        report.violation = "duplicate install of " + store::to_string(key) +
                           " v" + std::to_string(version) + " by tx " +
                           std::to_string(history[i].tx) + " and tx " +
                           std::to_string(history[it->second].tx);
        return report;
      }
    }
  }

  // Per-key ascending version list of writers, for ww and rw edges.
  std::unordered_map<ObjectKey, std::vector<std::pair<Version, std::size_t>>,
                     store::ObjectKeyHash>
      writers_by_key;
  for (const auto& [vk, txn_index] : installer)
    writers_by_key[vk.key].push_back({vk.version, txn_index});

  std::vector<std::vector<std::size_t>> adjacency(history.size());
  auto add_edge = [&](std::size_t from, std::size_t to) {
    if (from != to) adjacency[from].push_back(to);
  };

  // ww edges along each key's version chain.
  for (const auto& [key, writers] : writers_by_key)
    for (std::size_t w = 1; w < writers.size(); ++w)
      add_edge(writers[w - 1].second, writers[w].second);

  // wr and rw edges from reads.
  for (std::size_t i = 0; i < history.size(); ++i) {
    for (const auto& [key, version] : history[i].reads) {
      const auto writer = installer.find(VersionedKey{key, version});
      if (writer != installer.end()) {
        add_edge(writer->second, i);  // wr
      } else if (version > seed_version) {
        report.ok = false;
        report.violation = "tx " + std::to_string(history[i].tx) + " read " +
                           store::to_string(key) + " v" +
                           std::to_string(version) + " which nobody installed";
        return report;
      }
      // rw: the reader precedes the next installer of this key.
      const auto chain = writers_by_key.find(key);
      if (chain != writers_by_key.end()) {
        const auto next = std::upper_bound(
            chain->second.begin(), chain->second.end(),
            std::make_pair(version, history.size()));
        if (next != chain->second.end()) add_edge(i, next->second);
      }
    }
  }

  if (has_cycle(adjacency)) {
    report.ok = false;
    report.violation = "precedence graph has a cycle: the history is not "
                       "conflict-serializable";
  }
  return report;
}

SerializabilityReport check_cross_shard_atomicity(
    const std::vector<CommittedTxn>& history,
    const std::vector<CrossShardTxn>& cross,
    const std::vector<std::pair<store::ObjectKey, store::Version>>&
        final_versions) {
  SerializabilityReport report;

  std::unordered_map<ObjectKey, Version, store::ObjectKeyHash> final_of;
  for (const auto& [key, version] : final_versions)
    final_of[key] = std::max(final_of[key], version);
  const auto installed = [&](const ObjectKey& key, Version version) {
    const auto it = final_of.find(key);
    return it != final_of.end() && version <= it->second;
  };

  // Which cross-shard transaction owns each proposed (key, version)?
  std::map<VersionedKey, std::size_t> proposer;
  for (std::size_t i = 0; i < cross.size(); ++i)
    for (const auto& [key, version] : cross[i].writes)
      proposer.emplace(VersionedKey{key, version}, i);

  for (std::size_t i = 0; i < cross.size(); ++i) {
    const CrossShardTxn& txn = cross[i];
    std::size_t in = 0;
    for (const auto& [key, version] : txn.writes)
      if (installed(key, version)) ++in;
    if (in != 0 && in != txn.writes.size()) {
      report.ok = false;
      report.violation = "torn cross-shard tx " + std::to_string(txn.tx) +
                         ": " + std::to_string(in) + " of " +
                         std::to_string(txn.writes.size()) +
                         " writes installed";
      return report;
    }
    if (txn.committed.has_value()) {
      const bool all_in = !txn.writes.empty() && in == txn.writes.size();
      if (*txn.committed != all_in) {
        report.ok = false;
        report.violation = "cross-shard tx " + std::to_string(txn.tx) +
                           " reported " +
                           (*txn.committed ? "committed" : "aborted") +
                           " but " + std::to_string(in) + " of " +
                           std::to_string(txn.writes.size()) +
                           " writes installed";
        return report;
      }
    }
  }

  // No committed transaction may have observed a write of a cross-shard
  // transaction that did not (fully) install.  A torn proposer was already
  // reported above; this catches reads of fully-UNinstalled proposals —
  // a value leaked out of a prepare that was later released.
  for (const CommittedTxn& txn : history) {
    for (const auto& [key, version] : txn.reads) {
      const auto it = proposer.find(VersionedKey{key, version});
      if (it == proposer.end()) continue;
      if (!installed(key, version)) {
        report.ok = false;
        report.violation =
            "tx " + std::to_string(txn.tx) + " read " +
            store::to_string(key) + " v" + std::to_string(version) +
            " proposed by cross-shard tx " +
            std::to_string(cross[it->second].tx) + " which never installed";
        return report;
      }
    }
  }
  return report;
}

}  // namespace acn::nesting
