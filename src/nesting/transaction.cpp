#include "src/nesting/transaction.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace acn::nesting {

TxId next_tx_id() {
  static std::atomic<TxId> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Transaction::Transaction(dtm::QuorumStub& stub, TxId id) : stub_(stub), id_(id) {
  frames_.emplace_back();
}

std::vector<dtm::VersionCheck> Transaction::all_version_checks() const {
  std::vector<dtm::VersionCheck> checks;
  for (const auto& frame : frames_)
    for (const auto& [key, record] : frame.reads)
      checks.push_back({key, record.version});
  return checks;
}

const Record* Transaction::find_buffered(const ObjectKey& key) const {
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    if (const auto w = it->writes.find(key); w != it->writes.end())
      return &w->second;
    if (const auto r = it->reads.find(key); r != it->reads.end())
      return &r->second.value;
  }
  return nullptr;
}

const Record& Transaction::remote_read(const ObjectKey& key,
                                       const std::vector<dtm::ClassId>& classes,
                                       std::vector<std::uint64_t>* levels_out) {
  ++stats_.remote_reads;
  if (obs_) obs_->remote_reads.add();
  auto outcome = stub_.read(id_, key, all_version_checks(), classes);
  if (levels_out && !outcome.contention.empty())
    *levels_out = std::move(outcome.contention);
  auto [it, inserted] =
      frames_.back().reads.emplace(key, std::move(outcome.record));
  (void)inserted;
  return it->second.value;
}

const Record& Transaction::read(const ObjectKey& key) {
  if (const Record* buffered = find_buffered(key)) {
    ++stats_.cached_reads;
    if (obs_) obs_->cached_reads.add();
    return *buffered;
  }
  return remote_read(key, {}, nullptr);
}

const Record& Transaction::read(const ObjectKey& key,
                                const std::vector<dtm::ClassId>& classes,
                                std::vector<std::uint64_t>& levels_out) {
  if (const Record* buffered = find_buffered(key)) {
    ++stats_.cached_reads;
    if (obs_) obs_->cached_reads.add();
    return *buffered;
  }
  return remote_read(key, classes, &levels_out);
}

std::vector<std::pair<ObjectKey, VersionedRecord>> Transaction::read_many(
    const std::vector<ObjectKey>& keys,
    const std::vector<ObjectKey>& speculative,
    const std::vector<dtm::ClassId>& classes,
    std::vector<std::uint64_t>* levels_out) {
  std::vector<ObjectKey> fetch;
  fetch.reserve(keys.size() + speculative.size());
  const auto want = [&](const ObjectKey& key) {
    return find_buffered(key) == nullptr &&
           std::find(fetch.begin(), fetch.end(), key) == fetch.end();
  };
  for (const auto& key : keys)
    if (want(key)) fetch.push_back(key);
  const std::size_t group_count = fetch.size();
  for (const auto& key : speculative)
    if (want(key)) fetch.push_back(key);
  if (fetch.empty()) return {};

  stats_.remote_reads += group_count;
  if (obs_ && group_count > 0) obs_->remote_reads.add(group_count);
  auto outcome = stub_.read_many(id_, fetch, all_version_checks(), classes);
  if (levels_out && !outcome.contention.empty())
    *levels_out = std::move(outcome.contention);

  std::vector<std::pair<ObjectKey, VersionedRecord>> spec;
  spec.reserve(fetch.size() - group_count);
  for (std::size_t i = 0; i < fetch.size(); ++i) {
    if (i < group_count)
      frames_.back().reads.emplace(fetch[i], std::move(outcome.records[i]));
    else
      spec.emplace_back(fetch[i], std::move(outcome.records[i]));
  }
  return spec;
}

bool Transaction::adopt_read(const ObjectKey& key, const VersionedRecord& record) {
  if (find_buffered(key) != nullptr) return false;
  frames_.back().reads.emplace(key, record);
  return true;
}

void Transaction::write(const ObjectKey& key, Record value) {
  if (!has_read(key) && !has_written(key))
    throw std::logic_error("Transaction::write before read: " +
                           store::to_string(key) + " (use insert for fresh objects)");
  ++stats_.writes;
  frames_.back().writes[key] = std::move(value);
}

void Transaction::insert(const ObjectKey& key, Record value) {
  ++stats_.writes;
  frames_.back().writes[key] = std::move(value);
}

bool Transaction::has_read(const ObjectKey& key) const {
  return std::any_of(frames_.begin(), frames_.end(), [&](const Frame& f) {
    return f.reads.contains(key);
  });
}

bool Transaction::has_written(const ObjectKey& key) const {
  return std::any_of(frames_.begin(), frames_.end(), [&](const Frame& f) {
    return f.writes.contains(key);
  });
}

void Transaction::begin_nested() {
  if (frames_.size() >= 2)
    throw std::logic_error(
        "Transaction::begin_nested: only one level of nesting is supported");
  frames_.emplace_back();
}

void Transaction::commit_nested() {
  if (frames_.size() < 2)
    throw std::logic_error("Transaction::commit_nested without begin_nested");
  Frame top = std::move(frames_.back());
  frames_.pop_back();
  Frame& parent = frames_.back();
  for (auto& [key, record] : top.reads) parent.reads.emplace(key, std::move(record));
  for (auto& [key, value] : top.writes) parent.writes[key] = std::move(value);
}

void Transaction::abort_nested() {
  if (frames_.size() < 2)
    throw std::logic_error("Transaction::abort_nested without begin_nested");
  frames_.pop_back();
}

AbortScope Transaction::classify(const TxAbort& abort) const {
  const AbortScope scope = classify_scope(abort);
  if (obs_) {
    if (scope == AbortScope::kPartial)
      obs_->classify_partial.add();
    else
      obs_->classify_full.add();
  }
  return scope;
}

AbortScope Transaction::classify_scope(const TxAbort& abort) const {
  if (frames_.size() < 2) return AbortScope::kFull;
  // Partial rollback applies only when every invalidated object was first
  // accessed by the active sub-transaction: objects never seen before (e.g.
  // the busy object of the read that just failed) also qualify, since
  // re-running the sub-transaction re-issues that access.
  for (const auto& key : abort.invalid()) {
    for (std::size_t i = 0; i + 1 < frames_.size(); ++i) {
      if (frames_[i].reads.contains(key) || frames_[i].writes.contains(key))
        return AbortScope::kFull;
    }
  }
  return AbortScope::kPartial;
}

void Transaction::commit() {
  if (frames_.size() != 1)
    throw std::logic_error("Transaction::commit with open sub-transaction");
  Frame& frame = frames_.front();
  obs::Tracer::Span commit_span;
  if (obs_)
    commit_span.restart(&obs_->tracer, "tx.commit_phase", "tx", id_,
                        "writes",
                        static_cast<std::int64_t>(frame.writes.size()));

  auto record_history = [&](const std::vector<ObjectKey>& keys,
                            const std::vector<Version>& versions) {
    if (!history_) return;
    CommittedTxn entry;
    entry.tx = id_;
    for (const auto& [key, record] : frame.reads)
      entry.reads.push_back({key, record.version});
    for (std::size_t i = 0; i < keys.size(); ++i)
      entry.writes.push_back({keys[i], versions[i]});
    history_->record(std::move(entry));
  };

  if (frame.writes.empty()) {
    // Read-only: one final validation round suffices (no 2PC).
    stub_.validate(id_, all_version_checks());
    record_history({}, {});
    return;
  }

  std::vector<ObjectKey> write_keys;
  write_keys.reserve(frame.writes.size());
  for (const auto& [key, value] : frame.writes) write_keys.push_back(key);
  std::sort(write_keys.begin(), write_keys.end());

  std::vector<Version> read_versions;
  read_versions.reserve(write_keys.size());
  for (const auto& key : write_keys) {
    const auto it = frame.reads.find(key);
    read_versions.push_back(it == frame.reads.end() ? 0 : it->second.version);
  }

  // Validation payload: reads not overwritten still need their version
  // checked; written objects are protected during prepare, and their checks
  // ride along too (the server skips self-protected busy conflicts by
  // comparing versions only).
  const auto ticket =
      stub_.prepare(id_, all_version_checks(), write_keys, read_versions);

  std::vector<Record> values;
  values.reserve(write_keys.size());
  for (const auto& key : write_keys) values.push_back(frame.writes.at(key));
  stub_.commit(ticket, values);
  record_history(ticket.keys, ticket.new_versions);
}

void Transaction::reset(TxId new_id) {
  frames_.clear();
  frames_.emplace_back();
  id_ = new_id;
  stats_ = {};
}

std::size_t Transaction::read_set_size() const {
  std::size_t total = 0;
  for (const auto& frame : frames_) total += frame.reads.size();
  return total;
}

std::size_t Transaction::write_set_size() const {
  std::size_t total = 0;
  for (const auto& frame : frames_) total += frame.writes.size();
  return total;
}

}  // namespace acn::nesting
